"""System parameters and their derived quantities."""

from fractions import Fraction

import pytest

from repro.core.params import SystemParams


class TestPaperPreset:
    def test_paper_values(self):
        params = SystemParams.for_paper()
        assert params.num_hsms == 3100
        assert params.cluster_size == 40
        assert params.threshold == 20
        assert params.pin_space_size == 10**6
        assert params.tolerated_compromises == 193  # floor(3100/16)
        assert params.tolerated_failures == 48  # floor(3100/64)
        assert params.max_punctures == 1 << 20

    def test_paper_bloom_key_is_64mb(self):
        params = SystemParams.for_paper()
        bloom = params.bloom_params()
        # §7.1/§9.1: the 64 MB secret key vs 256 KB of device storage,
        # rotated after 2^18 decryptions (half of 2^21 slots, 4 per puncture).
        assert bloom.secret_key_bytes() == (1 << 21) * 32
        assert bloom.num_slots // (2 * bloom.num_hashes) == 1 << 18


class TestValidation:
    def test_threshold_ordering(self):
        with pytest.raises(ValueError):
            SystemParams(num_hsms=10, cluster_size=11, threshold=2)
        with pytest.raises(ValueError):
            SystemParams(num_hsms=10, cluster_size=5, threshold=6)
        with pytest.raises(ValueError):
            SystemParams(num_hsms=10, cluster_size=5, threshold=0)

    def test_pin_length(self):
        with pytest.raises(ValueError):
            SystemParams(num_hsms=10, cluster_size=4, threshold=2, pin_length=0)

    def test_fraction_bounds(self):
        with pytest.raises(ValueError):
            SystemParams(
                num_hsms=10, cluster_size=4, threshold=2, f_secret=Fraction(2)
            )

    def test_validate_pin(self):
        params = SystemParams.for_testing(pin_length=4)
        params.validate_pin("0123")
        with pytest.raises(ValueError):
            params.validate_pin("012")
        with pytest.raises(ValueError):
            params.validate_pin("01x3")


class TestDerivedConfigs:
    def test_log_config_propagation(self):
        params = SystemParams.for_testing(audit_count=5, quorum_fraction=0.8)
        cfg = params.log_config()
        assert cfg.audit_count == 5
        assert cfg.quorum_fraction == 0.8
        assert cfg.max_attempts_per_user == params.max_attempts_per_user

    def test_testing_preset_threshold_default(self):
        params = SystemParams.for_testing(cluster_size=6)
        assert params.threshold == 3
