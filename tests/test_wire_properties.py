"""Property-based wire-format tests: every message type round-trips, and
malformed bytes are rejected — never mis-decoded, never a foreign crash.

The service layer's Channel transport moves *all* client↔HSM traffic
through ``core/wire.py``, so these properties are load-bearing: a decoder
that crashes on junk is a DoS vector, and a non-canonical encoding would
let the untrusted provider present two byte strings for one message.

Canonicality property used throughout: if ``decode(b)`` succeeds then
``encode(decode(b)) == b`` — corrupt bytes either raise
:class:`WireFormatError` or decode to the object that re-encodes to
exactly those bytes (i.e. the corruption changed the message, never the
parse).
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import wire
from repro.core.lhe import LheCiphertext
from repro.crypto.bfe import BfeCiphertext
from repro.crypto.commit import commit_recovery
from repro.crypto.ec import P256
from repro.crypto.elgamal import ElGamalCiphertext
from repro.crypto.merkle import MerkleProof
from repro.hsm.device import DecryptShareRequest
from repro.log.authdict import InclusionProof, PathStep
from repro.log.sharded import ShardedInclusionProof

# Valid curve points are expensive to make; sample from a fixed pool.
_POINTS = tuple(P256.keygen(random.Random(seed)).public for seed in range(8))

points = st.sampled_from(_POINTS)
blobs = st.binary(max_size=48)
digests = st.binary(min_size=32, max_size=32)
u32s = st.integers(min_value=0, max_value=(1 << 32) - 1)
usernames = st.text(
    alphabet=st.characters(blacklist_characters="|", blacklist_categories=("Cs",)),
    max_size=16,
)

bfe_ciphertexts = st.builds(
    BfeCiphertext,
    tag=blobs,
    ephemeral=points,
    wrapped_keys=st.lists(blobs, max_size=5).map(tuple),
    payload=blobs,
)

elgamal_ciphertexts = st.builds(ElGamalCiphertext, ephemeral=points, body=blobs)

recovery_ciphertexts = st.builds(
    LheCiphertext,
    salt=blobs,
    username=usernames,
    share_ciphertexts=st.lists(
        st.one_of(bfe_ciphertexts, elgamal_ciphertexts), max_size=4
    ).map(tuple),
    payload=blobs,
    threshold=u32s,
    num_hsms=u32s,
    config_epoch=u32s,
)

inclusion_proofs = st.builds(
    InclusionProof,
    steps=st.lists(
        st.builds(PathStep, idh=digests, value=blobs, other=digests), max_size=6
    ).map(tuple),
    left=digests,
    right=digests,
)


@st.composite
def sharded_proofs(draw):
    num_shards = draw(st.integers(min_value=2, max_value=8))
    shard = draw(st.integers(min_value=0, max_value=num_shards - 1))
    path = MerkleProof(
        index=shard,
        path=tuple(
            (draw(digests), draw(st.booleans()))
            for _ in range(draw(st.integers(min_value=0, max_value=4)))
        ),
    )
    return ShardedInclusionProof(
        shard=shard,
        num_shards=num_shards,
        shard_digest=draw(digests),
        shard_path=path,
        inclusion=draw(inclusion_proofs),
    )


@st.composite
def decrypt_requests(draw):
    username = draw(usernames)
    cluster = tuple(draw(st.lists(st.integers(0, 1000), min_size=1, max_size=4)))
    _, opening = commit_recovery(username, cluster, draw(digests))
    return DecryptShareRequest(
        username=username,
        log_identifier=draw(blobs),
        commitment=opening.commitment(),
        opening=opening,
        inclusion_proof=draw(st.one_of(inclusion_proofs, sharded_proofs())),
        share_ciphertext=draw(bfe_ciphertexts),
        context=draw(blobs),
        response_key=draw(points),
    )


def _assert_rejects_mangling(encoded: bytes, decode) -> None:
    """Truncations always raise; mutations never mis-decode (see module
    docstring for the canonicality property)."""
    cuts = range(len(encoded)) if len(encoded) < 40 else range(0, len(encoded), 7)
    for cut in cuts:
        with pytest.raises(wire.WireFormatError):
            decode(encoded[:cut])
    with pytest.raises(wire.WireFormatError):
        decode(encoded + b"\x00")


_SETTINGS = dict(max_examples=30, deadline=None)


class TestBfeCiphertextWire:
    @given(ct=bfe_ciphertexts)
    @settings(**_SETTINGS)
    def test_roundtrip_and_mangling(self, ct):
        encoded = wire.encode_bfe_ciphertext(ct)
        assert wire.decode_bfe_ciphertext(encoded) == ct
        _assert_rejects_mangling(encoded, wire.decode_bfe_ciphertext)

    @given(junk=st.binary(max_size=64))
    @settings(**_SETTINGS)
    def test_junk_is_canonical_or_rejected(self, junk):
        try:
            decoded = wire.decode_bfe_ciphertext(junk)
        except wire.WireFormatError:
            return
        assert wire.encode_bfe_ciphertext(decoded) == junk


class TestRecoveryCiphertextWire:
    @given(ct=recovery_ciphertexts)
    @settings(**_SETTINGS)
    def test_roundtrip_and_mangling(self, ct):
        encoded = wire.encode_recovery_ciphertext(ct)
        assert wire.decode_recovery_ciphertext(encoded) == ct
        _assert_rejects_mangling(encoded, wire.decode_recovery_ciphertext)

    @given(ct=recovery_ciphertexts, flip=st.integers(min_value=0, max_value=1 << 30))
    @settings(**_SETTINGS)
    def test_corruption_never_misdecodes(self, ct, flip):
        encoded = bytearray(wire.encode_recovery_ciphertext(ct))
        encoded[flip % len(encoded)] ^= 1 + (flip % 255)
        corrupted = bytes(encoded)
        try:
            decoded = wire.decode_recovery_ciphertext(corrupted)
        except wire.WireFormatError:
            return
        assert wire.encode_recovery_ciphertext(decoded) == corrupted


class TestInclusionProofWire:
    @given(proof=inclusion_proofs)
    @settings(**_SETTINGS)
    def test_roundtrip_and_mangling(self, proof):
        encoded = wire.encode_inclusion_proof(proof)
        assert wire.decode_inclusion_proof(encoded) == proof
        _assert_rejects_mangling(encoded, wire.decode_inclusion_proof)

    @given(proof=sharded_proofs())
    @settings(**_SETTINGS)
    def test_sharded_roundtrip_and_mangling(self, proof):
        encoded = wire.encode_inclusion_proof(proof)
        assert wire.decode_inclusion_proof(encoded) == proof
        _assert_rejects_mangling(encoded, wire.decode_inclusion_proof)

    def test_shard_out_of_range_rejected(self):
        proof = ShardedInclusionProof(
            shard=5,
            num_shards=4,
            shard_digest=b"\x00" * 32,
            shard_path=MerkleProof(index=5, path=()),
            inclusion=InclusionProof(steps=(), left=b"\x00" * 32, right=b"\x00" * 32),
        )
        with pytest.raises(wire.WireFormatError):
            wire.decode_inclusion_proof(wire.encode_inclusion_proof(proof))


_FIELD_STRATEGIES = {
    "text": usernames,
    "blob": blobs,
    "u32": u32s,
    "i32": st.integers(min_value=-(1 << 31), max_value=(1 << 31) - 1),
    "recovery_ct": recovery_ciphertexts,
    "proof": st.one_of(inclusion_proofs, sharded_proofs()),
    "opt_proof": st.one_of(st.none(), inclusion_proofs, sharded_proofs()),
    "blobs": st.lists(blobs, max_size=4),
    "entries": st.lists(st.tuples(blobs, blobs), max_size=4),
    "err_status": st.sampled_from(wire._PROVIDER_ERROR_STATUSES),
}


@st.composite
def _framed(draw, schemas):
    tag = draw(st.sampled_from(sorted(schemas)))
    fields = {
        name: draw(_FIELD_STRATEGIES[kind]) for name, kind in schemas[tag]
    }
    return tag, fields


def provider_requests():
    return _framed(wire.PROVIDER_REQUEST_SCHEMAS)


def provider_replies():
    return _framed(wire.PROVIDER_REPLY_SCHEMAS)


def _normalized(value):
    """Entry lists decode to tuples; compare values, not container types."""
    if isinstance(value, list):
        return [tuple(v) if isinstance(v, (tuple, list)) else v for v in value]
    return value


class TestProviderRequestWire:
    """Every provider RPC request op round-trips and rejects malformation."""

    @given(frame=provider_requests())
    @settings(**_SETTINGS)
    def test_roundtrip_and_mangling(self, frame):
        op, fields = frame
        encoded = wire.encode_provider_request(op, fields)
        assert wire.decode_provider_request(encoded) == (op, fields)
        _assert_rejects_mangling(encoded, wire.decode_provider_request)

    @given(frame=provider_requests(), tag=st.integers(min_value=0, max_value=255))
    @settings(**_SETTINGS)
    def test_wrong_tag_never_misdecodes(self, frame, tag):
        """Rewriting the op byte either raises the typed wire error or
        decodes canonically as the other op — never crashes, never parses
        one op's body as another's silently."""
        op, fields = frame
        encoded = bytearray(wire.encode_provider_request(op, fields))
        encoded[1] = tag
        mutated = bytes(encoded)
        try:
            decoded_op, decoded_fields = wire.decode_provider_request(mutated)
        except wire.WireFormatError:
            return
        assert (
            wire.encode_provider_request(decoded_op, decoded_fields) == mutated
        )

    def test_unknown_op_rejected(self):
        frame = wire.encode_provider_request(
            wire.PROV_BACKUP_COUNT, {"username": "u"}
        )
        for bad_op in (0, 99, 255):
            mutated = bytes([frame[0], bad_op]) + frame[2:]
            with pytest.raises(wire.WireFormatError):
                wire.decode_provider_request(mutated)

    def test_bad_version_rejected(self):
        frame = wire.encode_provider_request(
            wire.PROV_NEXT_ATTEMPT, {"username": "u"}
        )
        with pytest.raises(wire.WireFormatError):
            wire.decode_provider_request(bytes([7]) + frame[1:])

    def test_mismatched_fields_refused_on_encode(self):
        with pytest.raises(wire.WireFormatError):
            wire.encode_provider_request(wire.PROV_NEXT_ATTEMPT, {"user": "u"})
        with pytest.raises(wire.WireFormatError):
            wire.encode_provider_request(200, {})

    @given(junk=st.binary(max_size=96))
    @settings(**_SETTINGS)
    def test_junk_raises_only_the_typed_wire_error(self, junk):
        try:
            op, fields = wire.decode_provider_request(junk)
        except wire.WireFormatError:
            return
        assert wire.encode_provider_request(op, fields) == junk


class TestProviderReplyWire:
    """Every provider RPC reply kind round-trips and rejects malformation."""

    @given(frame=provider_replies())
    @settings(**_SETTINGS)
    def test_roundtrip_and_mangling(self, frame):
        kind, fields = frame
        encoded = wire.encode_provider_reply(kind, fields)
        decoded_kind, decoded_fields = wire.decode_provider_reply(encoded)
        assert decoded_kind == kind
        assert {n: _normalized(v) for n, v in decoded_fields.items()} == {
            n: _normalized(v) for n, v in fields.items()
        }
        _assert_rejects_mangling(encoded, wire.decode_provider_reply)

    @given(frame=provider_replies(), tag=st.integers(min_value=0, max_value=255))
    @settings(**_SETTINGS)
    def test_wrong_tag_never_misdecodes(self, frame, tag):
        kind, fields = frame
        encoded = bytearray(wire.encode_provider_reply(kind, fields))
        encoded[1] = tag
        mutated = bytes(encoded)
        try:
            decoded_kind, decoded_fields = wire.decode_provider_reply(mutated)
        except wire.WireFormatError:
            return
        assert (
            wire.encode_provider_reply(decoded_kind, decoded_fields) == mutated
        )

    @given(status=st.sampled_from(wire._PROVIDER_ERROR_STATUSES), message=st.text(max_size=48))
    @settings(**_SETTINGS)
    def test_error_frame_roundtrip(self, status, message):
        encoded = wire.encode_provider_error(status, message)
        kind, fields = wire.decode_provider_reply(encoded)
        assert kind == wire.PROV_REPLY_ERROR
        assert fields == {"status": status, "message": message}
        _assert_rejects_mangling(encoded, wire.decode_provider_reply)

    def test_unknown_error_status_rejected(self):
        with pytest.raises(wire.WireFormatError):
            wire.encode_provider_error(42, "nope")
        encoded = bytearray(wire.encode_provider_error(wire.PROV_ERR_PROVIDER, "x"))
        encoded[2] = 42  # the status byte follows [version, kind]
        with pytest.raises(wire.WireFormatError):
            wire.decode_provider_reply(bytes(encoded))

    @given(junk=st.binary(max_size=96))
    @settings(**_SETTINGS)
    def test_junk_raises_only_the_typed_wire_error(self, junk):
        try:
            kind, fields = wire.decode_provider_reply(junk)
        except wire.WireFormatError:
            return
        assert wire.encode_provider_reply(kind, fields) == junk


class TestDecryptRequestWire:
    @given(request=decrypt_requests())
    @settings(**_SETTINGS)
    def test_roundtrip_and_mangling(self, request):
        encoded = wire.encode_decrypt_request(request)
        assert wire.decode_decrypt_request(encoded) == request
        _assert_rejects_mangling(encoded, wire.decode_decrypt_request)


class TestDecryptReplyWire:
    @given(reply=elgamal_ciphertexts)
    @settings(**_SETTINGS)
    def test_ok_roundtrip_and_mangling(self, reply):
        encoded = wire.encode_decrypt_reply(reply)
        status, decoded = wire.decode_decrypt_reply(encoded)
        assert status == wire.REPLY_OK
        assert decoded == reply
        _assert_rejects_mangling(encoded, wire.decode_decrypt_reply)

    @given(
        status=st.sampled_from(
            (
                wire.REPLY_REFUSED,
                wire.REPLY_PUNCTURED,
                wire.REPLY_UNAVAILABLE,
                wire.REPLY_STALE_PROOF,
            )
        ),
        message=st.text(max_size=48),
    )
    @settings(**_SETTINGS)
    def test_error_roundtrip_and_mangling(self, status, message):
        encoded = wire.encode_decrypt_error(status, message)
        assert wire.decode_decrypt_reply(encoded) == (status, message)
        _assert_rejects_mangling(encoded, wire.decode_decrypt_reply)

    def test_ok_is_not_an_error_status(self):
        with pytest.raises(wire.WireFormatError):
            wire.encode_decrypt_error(wire.REPLY_OK, "nope")

    def test_unknown_status_rejected(self):
        encoded = bytearray(wire.encode_decrypt_error(wire.REPLY_REFUSED, "x"))
        encoded[1] = 9
        with pytest.raises(wire.WireFormatError):
            wire.decode_decrypt_reply(bytes(encoded))

    @given(junk=st.binary(max_size=64))
    @settings(**_SETTINGS)
    def test_junk_never_crashes(self, junk):
        try:
            wire.decode_decrypt_reply(junk)
        except wire.WireFormatError:
            pass
