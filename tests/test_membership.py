"""HSM membership management via the log (§6 extension)."""

import pytest

from repro.log.membership import (
    ADD,
    REMOVE,
    ROTATE,
    MembershipEvent,
    MembershipVerifier,
    MembershipViolation,
)


class TestEventEncoding:
    def test_roundtrip(self):
        event = MembershipEvent(3, ROTATE, 7, 2, b"\xab" * 32)
        parsed = MembershipEvent.parse(event.identifier(), event.value())
        assert parsed == event

    def test_identifier_namespace(self):
        event = MembershipEvent(0, ADD, 0, 0, b"")
        assert event.identifier().startswith(b"mbr|")
        with pytest.raises(ValueError):
            MembershipEvent.parse(b"rec|alice|0", event.value())


class TestFolding:
    def _events(self):
        return [
            MembershipEvent(0, ADD, 0, 0, b"k0"),
            MembershipEvent(1, ADD, 1, 0, b"k1"),
            MembershipEvent(2, ROTATE, 0, 1, b"k0v2"),
            MembershipEvent(3, REMOVE, 1, 0, b""),
        ]

    def test_current_membership(self):
        state = MembershipVerifier.current_membership(self._events())
        assert set(state) == {0}
        assert state[0].key_commitment == b"k0v2"
        assert state[0].key_epoch == 1

    def test_replacement_fraction_ignores_bootstrap(self):
        events = self._events()
        assert MembershipVerifier.replacement_fraction(events, 2, window=10) == 1.0
        bootstrap_only = events[:2]
        assert MembershipVerifier.replacement_fraction(bootstrap_only, 2, window=10) == 0.0


class TestDeploymentIntegration:
    def test_initial_fleet_logged_and_verifiable(self, fresh_deployment):
        fresh_deployment.verify_published_keys()  # must not raise
        entries = list(fresh_deployment.provider.log.dict.items())
        events = MembershipVerifier.events_from_log(entries)
        assert len(events) == len(fresh_deployment.fleet)
        assert all(e.action == ADD for e in events)

    def test_rotation_is_logged_and_still_verifies(self, fresh_deployment):
        hsm = fresh_deployment.fleet[0]
        info = hsm.rotate_keys(fresh_deployment.provider.storage_for_hsm(0))
        fresh_deployment.membership.record_rotation(info)
        fresh_deployment.run_log_update()
        fresh_deployment.verify_published_keys()

    def test_unlogged_key_substitution_detected(self, fresh_deployment):
        """The §2 attack: the provider swaps an HSM's advertised key for its
        own without logging it.  The client's membership check must fire."""
        hsm = fresh_deployment.fleet[1]
        hsm.rotate_keys(fresh_deployment.provider.storage_for_hsm(1))  # not logged!
        with pytest.raises(MembershipViolation):
            fresh_deployment.verify_published_keys()

    def test_advertising_unknown_hsm_detected(self, fresh_deployment):
        import dataclasses

        mpk = fresh_deployment.fleet.master_public_key()
        ghost = dataclasses.replace(mpk[0], index=999)
        with pytest.raises(MembershipViolation):
            MembershipVerifier.verify_mpk(
                list(mpk) + [ghost], list(fresh_deployment.provider.log.dict.items())
            )

    def test_bulk_replacement_detector(self, fresh_deployment):
        """The paper's 'replace the whole fleet in a day' alarm."""
        dep = fresh_deployment
        for hsm in list(dep.fleet)[:8]:
            info = hsm.rotate_keys(dep.provider.storage_for_hsm(hsm.index))
            dep.membership.record_rotation(info)
        dep.run_log_update()
        events = MembershipVerifier.events_from_log(
            list(dep.provider.log.dict.items())
        )
        fraction = MembershipVerifier.replacement_fraction(
            events, len(dep.fleet), window=8
        )
        assert fraction == 8 / len(dep.fleet)
        assert fraction >= 0.5  # alarm threshold a client might use
