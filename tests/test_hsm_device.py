"""HSM firmware behaviour: recovery checks, rotation, failure injection."""

import random

import pytest

from repro.core.identifiers import attempt_identifier
from repro.core.lhe import BfePke, LocationHidingEncryption
from repro.crypto.bfe import BloomFilterEncryption, PuncturedKeyError
from repro.crypto.bloom import BloomParams
from repro.crypto.commit import commit_recovery
from repro.crypto.ec import P256
from repro.crypto.elgamal import HashedElGamal
from repro.hsm.device import (
    DecryptShareRequest,
    HsmRefusedError,
    HsmUnavailableError,
)
from repro.hsm.fleet import HsmFleet
from repro.log.distributed import DistributedLog, LogConfig

CFG = LogConfig(audit_count=2, quorum_fraction=0.6, max_attempts_per_user=3)
N, CLUSTER, T = 6, 3, 2


@pytest.fixture(scope="module")
def env():
    """A small fleet + log + one logged recovery attempt ready to serve."""
    rng = random.Random(2)
    # Generous puncture budget: the module shares one fleet across ~10
    # recovery attempts, each of which punctures.
    params = BloomParams.for_punctures(64, failure_exponent=4)
    fleet = HsmFleet(N, params, log_config=CFG, rng=rng)
    log = DistributedLog(CFG)
    lhe = LocationHidingEncryption(N, CLUSTER, T, BfePke())
    mpk = fleet.master_public_key()
    return fleet, log, lhe, mpk


def logged_request_for(env, username, pin, message=b"msg", attempt=0, salt=None):
    """Create a backup + logged recovery attempt; return per-HSM requests."""
    fleet, log, lhe, _ = env
    # Re-read the fleet's current keys: rotation tests in this module bump
    # key epochs, and encrypting to stale keys would (correctly) fail.
    mpk = fleet.master_public_key()
    ct = lhe.encrypt(mpk, pin, message, username=username, salt=salt)
    cluster = lhe.select(ct.salt, pin)
    context = lhe.context_for(ct, mpk, pin)
    commitment, opening = commit_recovery(username, cluster, ct.ciphertext_hash())
    identifier = attempt_identifier(username, attempt)
    log.insert(identifier, commitment)
    log.run_update(fleet.hsms)
    proof = log.prove_includes(identifier, commitment)
    response_kp = P256.keygen()
    requests = []
    for position, hsm_index in enumerate(cluster):
        requests.append(
            (
                hsm_index,
                DecryptShareRequest(
                    username=username,
                    log_identifier=identifier,
                    commitment=commitment,
                    opening=opening,
                    inclusion_proof=proof,
                    share_ciphertext=ct.share_ciphertexts[position],
                    context=context,
                    response_key=response_kp.public,
                ),
            )
        )
    return ct, cluster, requests, response_kp


class TestDecryptShare:
    def test_happy_path_returns_share(self, env):
        fleet = env[0]
        _, _, requests, kp = logged_request_for(env, "hsm-t1", "1111")
        hsm_index, request = requests[0]
        reply = fleet[hsm_index].decrypt_share(request)
        share_bytes = HashedElGamal.decrypt(
            kp.secret, reply, context=b"recovery-reply" + b"hsm-t1"
        )
        assert len(share_bytes) == 36  # 4-byte x + 32-byte y

    def test_unlogged_attempt_refused(self, env):
        fleet, log, lhe, mpk = env
        ct, cluster, requests, _ = logged_request_for(env, "hsm-t2", "2222")
        hsm_index, request = requests[0]
        # Forge: point the proof at a different (unlogged) identifier.
        import dataclasses

        forged = dataclasses.replace(
            request, log_identifier=attempt_identifier("hsm-t2", 1)
        )
        with pytest.raises(HsmRefusedError):
            fleet[hsm_index].decrypt_share(forged)

    def test_bad_opening_refused(self, env):
        import dataclasses

        from repro.crypto.commit import CommitmentOpening

        fleet = env[0]
        _, _, requests, _ = logged_request_for(env, "hsm-t3", "3333")
        hsm_index, request = requests[0]
        bad_opening = CommitmentOpening(
            request.opening.username,
            request.opening.cluster,
            request.opening.ciphertext_hash,
            bytes(32),
        )
        with pytest.raises(HsmRefusedError):
            fleet[hsm_index].decrypt_share(dataclasses.replace(request, opening=bad_opening))

    def test_non_member_hsm_refuses(self, env):
        fleet = env[0]
        _, cluster, requests, _ = logged_request_for(env, "hsm-t4", "4444")
        outsider = next(i for i in range(N) if i not in cluster)
        _, request = requests[0]
        with pytest.raises(HsmRefusedError):
            fleet[outsider].decrypt_share(request)

    def test_username_mismatch_refused(self, env):
        import dataclasses

        fleet = env[0]
        _, _, requests, _ = logged_request_for(env, "hsm-t5", "5555")
        hsm_index, request = requests[0]
        with pytest.raises(HsmRefusedError):
            fleet[hsm_index].decrypt_share(dataclasses.replace(request, username="mallory"))

    def test_attempt_limit_enforced(self, env):
        import dataclasses

        fleet = env[0]
        _, _, requests, _ = logged_request_for(
            env, "hsm-t6", "6666", attempt=CFG.max_attempts_per_user
        )
        hsm_index, request = requests[0]
        with pytest.raises(HsmRefusedError):
            fleet[hsm_index].decrypt_share(request)

    def test_malformed_identifier_refused(self, env):
        import dataclasses

        fleet = env[0]
        _, _, requests, _ = logged_request_for(env, "hsm-t7", "7777")
        hsm_index, request = requests[0]
        with pytest.raises(HsmRefusedError):
            fleet[hsm_index].decrypt_share(
                dataclasses.replace(request, log_identifier=b"garbage")
            )

    def test_puncture_after_decrypt(self, env):
        fleet = env[0]
        _, _, requests, _ = logged_request_for(env, "hsm-t8", "8888")
        hsm_index, request = requests[0]
        fleet[hsm_index].decrypt_share(request)
        with pytest.raises(PuncturedKeyError):
            fleet[hsm_index].decrypt_share(request)

    def test_failed_hsm_unavailable(self, env):
        fleet = env[0]
        _, _, requests, _ = logged_request_for(env, "hsm-t9", "9999")
        hsm_index, request = requests[0]
        fleet[hsm_index].fail_stop()
        try:
            with pytest.raises(HsmUnavailableError):
                fleet[hsm_index].decrypt_share(request)
        finally:
            fleet[hsm_index].restart()


class TestRotation:
    def test_rotation_changes_public_key_and_epoch(self, env):
        fleet = env[0]
        hsm = fleet[0]
        before = hsm.public_info()
        after = hsm.rotate_keys()
        assert after.key_epoch == before.key_epoch + 1
        assert after.bfe_public.commitment != before.bfe_public.commitment
        assert hsm.rotations == 1

    def test_old_ciphertexts_dead_after_rotation(self, env):
        """Rotation is the coarse form of forward security: everything
        encrypted to the old key becomes undecryptable."""
        fleet, log, lhe, mpk = env
        hsm = fleet[1]
        pub = hsm.public_info().bfe_public
        ct = BloomFilterEncryption.encrypt(pub, b"old secret", context=b"c")
        hsm.rotate_keys()
        with pytest.raises(Exception):
            BloomFilterEncryption.decrypt(hsm._bfe_secret, ct, context=b"c")


class TestMetering:
    def test_device_meter_accumulates(self, env):
        fleet = env[0]
        _, _, requests, _ = logged_request_for(env, "hsm-t10", "1010")
        hsm_index, request = requests[0]
        before = dict(fleet[hsm_index].meter.counts)
        fleet[hsm_index].decrypt_share(request)
        after = fleet[hsm_index].meter.counts
        assert after["elgamal_dec"] > before.get("elgamal_dec", 0)
        assert after["elgamal_enc"] > before.get("elgamal_enc", 0)  # the reply


class TestCompromise:
    def test_extract_secrets_shape(self, env):
        fleet = env[0]
        stolen = fleet[3].extract_secrets()
        assert stolen.index == 3
        assert stolen.sig_secret > 0
        assert stolen.log_digest == fleet[3].log_digest
