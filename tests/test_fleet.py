"""Fleet provisioning and management."""

import random

import pytest

from repro.crypto.bloom import BloomParams
from repro.hsm.fleet import HsmFleet
from repro.log.distributed import LogConfig


@pytest.fixture(scope="module")
def fleet():
    return HsmFleet(
        6,
        BloomParams.for_punctures(4, failure_exponent=4),
        log_config=LogConfig(audit_count=2),
        rng=random.Random(37),
    )


class TestProvisioning:
    def test_size_and_indexing(self, fleet):
        assert len(fleet) == 6
        assert fleet[3].index == 3
        assert [h.index for h in fleet] == list(range(6))

    def test_empty_fleet_rejected(self):
        with pytest.raises(ValueError):
            HsmFleet(0, BloomParams.for_punctures(2, failure_exponent=2))

    def test_master_public_key_order(self, fleet):
        mpk = fleet.master_public_key()
        assert [info.index for info in mpk] == list(range(6))
        # distinct keys per device
        commitments = {info.bfe_public.commitment for info in mpk}
        assert len(commitments) == 6

    def test_signer_directory_installed(self, fleet):
        # every HSM can verify every other's signature via its directory
        for hsm in fleet:
            assert set(hsm._sig_directory) == set(range(6))


class TestFaultInjection:
    def test_fail_random_and_restart(self, fleet):
        victims = fleet.fail_random(2, random.Random(1))
        assert len(victims) == 2
        assert len(fleet.online()) == 4
        fleet.restart_all()
        assert len(fleet.online()) == 6

    def test_compromise_returns_secrets(self, fleet):
        stolen = fleet.compromise([1, 4])
        assert [s.index for s in stolen] == [1, 4]

    def test_fail_more_than_online_is_a_clear_error(self, fleet):
        """Regression: used to surface as random.sample's opaque ValueError."""
        fleet.restart_all()
        with pytest.raises(ValueError, match="only 6 of 6 are online"):
            fleet.fail_random(7)
        assert len(fleet.online()) == 6  # nothing was failed by the refusal
        fleet.fail_random(2, random.Random(3))
        with pytest.raises(ValueError, match="only 4 of 6"):
            fleet.fail_random(5)
        fleet.restart_all()

    def test_fail_negative_rejected(self, fleet):
        fleet.restart_all()
        with pytest.raises(ValueError, match="negative"):
            fleet.fail_random(-1)


class TestMetering:
    def test_total_counts_and_reset(self, fleet):
        fleet.reset_meters()
        fleet[0].meter.add("ec_mult", 3)
        fleet[1].meter.add("ec_mult", 2)
        totals = fleet.total_op_counts()
        assert totals["ec_mult"] == 5
        fleet.reset_meters()
        assert fleet.total_op_counts() == {}
