"""The Figure 5 update protocol: audits, aggregation, GC, catch-up."""

import dataclasses
import random

import pytest

from repro.crypto.bloom import BloomParams
from repro.hsm.device import HsmRefusedError
from repro.hsm.fleet import HsmFleet
from repro.log.authdict import verify_includes
from repro.log.distributed import (
    DistributedLog,
    LogConfig,
    LogUpdateRejected,
    audit_chunk_indices,
)


CFG = LogConfig(audit_count=3, quorum_fraction=0.75, max_garbage_collections=2)


@pytest.fixture(scope="module")
def fleet():
    params = BloomParams.for_punctures(4, failure_exponent=4)
    return HsmFleet(8, params, log_config=CFG, rng=random.Random(1))


@pytest.fixture
def log(fleet):
    fleet.restart_all()
    log = DistributedLog(CFG)
    # re-sync devices to a fresh empty log
    for hsm in fleet:
        hsm._log_digest = log.digest
        hsm.garbage_collections_seen = 0
    return log


class TestHappyPath:
    def test_update_propagates_digest(self, fleet, log):
        for i in range(12):
            log.insert(f"u{i}".encode(), b"h")
        log.run_update(fleet.hsms)
        for hsm in fleet:
            assert hsm.log_digest == log.digest

    def test_inclusion_proof_accepted_by_hsm_digest(self, fleet, log):
        log.insert(b"user", b"commitment")
        log.run_update(fleet.hsms)
        proof = log.prove_includes(b"user", b"commitment")
        assert verify_includes(fleet[0].log_digest, b"user", b"commitment", proof)

    def test_multiple_rounds(self, fleet, log):
        for round_no in range(3):
            for i in range(5):
                log.insert(f"r{round_no}-u{i}".encode(), b"h")
            log.run_update(fleet.hsms)
            assert fleet[0].log_digest == log.digest

    def test_empty_round(self, fleet, log):
        before = log.digest
        log.run_update(fleet.hsms)
        assert log.digest == before
        assert fleet[0].log_digest == before

    def test_duplicate_identifier_rejected_at_insert(self, fleet, log):
        log.insert(b"dup", b"v1")
        with pytest.raises(KeyError):
            log.insert(b"dup", b"v2")
        log.run_update(fleet.hsms)
        with pytest.raises(KeyError):
            log.insert(b"dup", b"v3")

    def test_pending_setter_rebuilds_duplicate_index(self, log):
        """The O(1) duplicate index must track wholesale replacement of the
        pending queue (rollback and adversarial subclasses assign it)."""
        log.insert(b"a", b"1")
        log.pending = [(b"b", b"2"), (b"c", b"3")]
        log.insert(b"a", b"1")  # no longer pending: fine again
        with pytest.raises(KeyError):
            log.insert(b"b", b"other")

    def test_pending_getter_is_a_snapshot(self, log):
        """In-place mutation of the returned list must not desync the
        duplicate index — the getter hands out a copy."""
        log.insert(b"snap", b"1")
        log.pending.clear()  # mutates the copy, not the queue
        assert log.pending == [(b"snap", b"1")]
        with pytest.raises(KeyError):
            log.insert(b"snap", b"2")  # still queued, still a duplicate

    def test_has_pending_tracks_queue_without_snapshot(self, log):
        """The O(1) emptiness probe the batcher polls every tick; it must
        agree with ``pending`` through insert, setter, and commit."""
        assert not log.has_pending
        log.insert(b"hp", b"1")
        assert log.has_pending
        log.pending = []
        assert not log.has_pending
        log.pending = [(b"hp2", b"2")]
        assert log.has_pending
        log.prepare_update(num_chunks=1)
        assert not log.has_pending

    def test_chunk_serialization_cached_and_forgery_visible(self, log):
        import dataclasses

        from repro.log.distributed import ChunkPackage

        log.insert(b"cs1", b"x")
        log.insert(b"cs2", b"y")
        round_ = log.prepare_update(num_chunks=1)
        package = round_.chunks[0]
        assert package.serialized_proofs() is package.serialized_proofs()  # cached
        assert package.proofs_consistent()
        assert package.wire_size() > 0
        forged = dataclasses.replace(package, proofs=package.proofs[:1])
        assert not forged.proofs_consistent()  # fresh cache, tamper detected


class TestAuditSelection:
    def test_deterministic(self):
        a = audit_chunk_indices(b"root", 3, 100, 8)
        assert a == audit_chunk_indices(b"root", 3, 100, 8)

    def test_depends_on_root_and_node(self):
        assert audit_chunk_indices(b"r1", 3, 100, 8) != audit_chunk_indices(b"r2", 3, 100, 8)
        assert audit_chunk_indices(b"r1", 3, 100, 8) != audit_chunk_indices(b"r1", 4, 100, 8)

    def test_distinct_and_in_range(self):
        picks = audit_chunk_indices(b"r", 0, 10, 6)
        assert len(set(picks)) == len(picks) == 6
        assert all(0 <= p < 10 for p in picks)

    def test_want_more_than_available(self):
        assert sorted(audit_chunk_indices(b"r", 0, 3, 10)) == [0, 1, 2]

    def test_zero_chunks(self):
        assert audit_chunk_indices(b"r", 0, 0, 4) == []


class TestTamperDetection:
    def test_forged_chunk_proofs_detected(self, fleet, log):
        for i in range(8):
            log.insert(f"t{i}".encode(), b"h")
        round_ = log.prepare_update(num_chunks=4)
        round_.chunks[2] = dataclasses.replace(round_.chunks[2], proofs=())
        rejected = 0
        for hsm in fleet.online():
            try:
                hsm.audit_log_update(round_)
            except LogUpdateRejected:
                rejected += 1
        assert rejected >= 1  # audit_count=3 of 4 chunks: overwhelming odds

    def test_wrong_base_digest_rejected(self, fleet, log):
        log.insert(b"x", b"h")
        round_ = log.prepare_update(num_chunks=2)
        bad = dataclasses.replace(round_, old_digest=b"\x00" * 32)
        with pytest.raises(LogUpdateRejected):
            fleet[0].audit_log_update(bad)

    def test_wrong_final_digest_rejected(self, fleet, log):
        log.insert(b"y", b"h")
        round_ = log.prepare_update(num_chunks=1)
        bad = dataclasses.replace(round_, new_digest=b"\x00" * 32)
        rejected = 0
        for hsm in fleet.online():
            try:
                hsm.audit_log_update(bad)
            except LogUpdateRejected:
                rejected += 1
        assert rejected == len(fleet.online())  # single chunk: all audit it

    def test_bad_aggregate_signature_rejected(self, fleet, log):
        log.insert(b"z", b"h")
        round_ = log.prepare_update(num_chunks=1)
        sigs = [h.audit_log_update(round_) for h in fleet.online()]
        scheme = fleet.multisig_scheme
        aggregate = scheme.aggregate(sigs)
        signers = tuple(h.index for h in fleet.online())
        # Tamper with the signer list (claim a different quorum)
        with pytest.raises(LogUpdateRejected):
            fleet[0].accept_log_digest(round_, aggregate, signers[:-1])

    def test_below_quorum_rejected(self, fleet, log):
        log.insert(b"q", b"h")
        round_ = log.prepare_update(num_chunks=1)
        few = list(fleet.online())[:2]
        sigs = [h.audit_log_update(round_) for h in few]
        aggregate = fleet.multisig_scheme.aggregate(sigs)
        with pytest.raises(LogUpdateRejected):
            fleet[0].accept_log_digest(round_, aggregate, tuple(h.index for h in few))

    def test_unknown_signer_rejected(self, fleet, log):
        log.insert(b"w", b"h")
        round_ = log.prepare_update(num_chunks=1)
        sigs = [h.audit_log_update(round_) for h in fleet.online()]
        aggregate = fleet.multisig_scheme.aggregate(sigs)
        signers = tuple(h.index for h in fleet.online())[:-1] + (999,)
        with pytest.raises(LogUpdateRejected):
            fleet[0].accept_log_digest(round_, aggregate, signers)

    def test_duplicate_signer_rejected(self, fleet, log):
        log.insert(b"v", b"h")
        round_ = log.prepare_update(num_chunks=1)
        sigs = [h.audit_log_update(round_) for h in fleet.online()]
        aggregate = fleet.multisig_scheme.aggregate(sigs)
        signers = tuple(h.index for h in fleet.online())
        padded = signers[:-1] + (signers[0],)
        with pytest.raises(LogUpdateRejected):
            fleet[0].accept_log_digest(round_, aggregate, padded)


class TestFailureAndCatchUp:
    def test_update_succeeds_with_failed_hsm(self, fleet, log):
        fleet[5].fail_stop()
        try:
            log.insert(b"f1", b"h")
            log.run_update(fleet.hsms)
            assert fleet[0].log_digest == log.digest
            assert fleet[5].log_digest != log.digest
        finally:
            fleet[5].restart()

    def test_failed_certification_rolls_the_provider_back(self, fleet, log):
        """A quorum-less epoch must not leave the provider's digest ahead of
        the fleet: the insertions return to pending and a later epoch (once
        quorum is back) commits them."""
        log.insert(b"rb1", b"h")
        log.run_update(fleet.hsms)
        digest_before = log.digest
        for hsm in list(fleet)[:4]:  # 4/8 online < 0.75 quorum
            hsm.fail_stop()
        log.insert(b"rb2", b"h")
        with pytest.raises(LogUpdateRejected):
            log.run_update(fleet.hsms)
        assert log.digest == digest_before  # rolled back, not stranded ahead
        assert log.pending == [(b"rb2", b"h")]
        assert log.get(b"rb2") is None
        fleet.restart_all()
        log.run_update(fleet.hsms)  # the insertion rides the next epoch
        assert log.get(b"rb2") == b"h"
        assert fleet[0].log_digest == log.digest

    def test_hsm_failing_mid_accept_does_not_brick_the_log(self, fleet, log):
        """A device that fail-stops between signing and accepting d' must
        not strand the epoch: the transition is certified (a quorum
        signed), the survivors adopt d', and the victim catches up from the
        certified chain after restarting."""
        from repro.hsm.device import HsmUnavailableError

        log.insert(b"ma1", b"h")
        log.run_update(fleet.hsms)
        victim = fleet[3]

        def die_mid_accept(*args, **kwargs):
            victim.fail_stop()
            raise HsmUnavailableError("died between signing and accepting")

        victim.accept_log_digest = die_mid_accept
        try:
            log.insert(b"ma2", b"h")
            log.run_update(fleet.hsms)  # must succeed despite the mid-accept death
        finally:
            del victim.accept_log_digest
        assert log.get(b"ma2") == b"h"
        assert fleet[0].log_digest == log.digest
        assert victim.log_digest != log.digest
        victim.restart()
        log.insert(b"ma3", b"h")
        log.run_update(fleet.hsms)
        assert victim.log_digest == log.digest  # caught up via certified chain

    def test_rejoined_hsm_catches_up(self, fleet, log):
        fleet[6].fail_stop()
        log.insert(b"c1", b"h")
        log.run_update(fleet.hsms)
        log.insert(b"c2", b"h")
        log.run_update(fleet.hsms)
        fleet[6].restart()
        log.insert(b"c3", b"h")
        log.run_update(fleet.hsms)
        assert fleet[6].log_digest == log.digest


class TestGarbageCollection:
    def test_gc_resets_log(self, fleet, log):
        log.insert(b"g1", b"h")
        log.run_update(fleet.hsms)
        log.garbage_collect(fleet.hsms)
        assert log.digest == DistributedLog(CFG).digest
        assert fleet[0].log_digest == log.digest
        # the old log is archived for auditors
        assert [e for e in log.archived_logs[-1]] == [(b"g1", b"h")]
        # the identifier is reusable after GC
        log.insert(b"g1", b"h2")
        log.run_update(fleet.hsms)

    def test_gc_budget_enforced(self, fleet, log):
        log.garbage_collect(fleet.hsms)
        log.garbage_collect(fleet.hsms)
        with pytest.raises(HsmRefusedError):
            log.garbage_collect(fleet.hsms)
