"""Workload generation."""

import random

import pytest

from repro.sim.workload import PoissonWorkload


class TestPoisson:
    def test_arrival_times_increasing(self):
        workload = PoissonWorkload(rate_per_second=2.0, rng=random.Random(1))
        times = workload.arrival_times(100)
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_mean_interarrival_matches_rate(self):
        workload = PoissonWorkload(rate_per_second=4.0, rng=random.Random(2))
        times = workload.arrival_times(5000)
        mean_gap = times[-1] / len(times)
        assert mean_gap == pytest.approx(1 / 4.0, rel=0.1)

    def test_users_shape(self):
        workload = PoissonWorkload(rate_per_second=1.0, rng=random.Random(3))
        users = workload.users(10, pin_length=6)
        assert len(users) == 10
        names = {name for name, _ in users}
        assert len(names) == 10
        for _, pin in users:
            assert len(pin) == 6 and pin.isdigit()

    def test_deterministic_with_seed(self):
        a = PoissonWorkload(1.0, random.Random(7)).arrival_times(10)
        b = PoissonWorkload(1.0, random.Random(7)).arrival_times(10)
        assert a == b
