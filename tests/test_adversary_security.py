"""Security integration tests: the paper's attacks against the real system.

The contrast tests in test_baseline.py show the same attacks *succeeding*
against the status quo.
"""

import random

import pytest

from repro.adversary.attacks import (
    AdaptiveCorruptionAttacker,
    CheatingProvider,
    decrypt_with_stolen_secrets,
)
from repro.core.client import RecoveryError
from repro.core.params import SystemParams
from repro.core.protocol import Deployment
from repro.log.distributed import LogConfig, LogUpdateRejected


class TestAdaptiveCorruption:
    def test_small_corruption_budget_fails_without_pin(self, fresh_deployment, unique_user):
        """Compromise f_secret·N HSMs chosen adaptively after seeing the
        ciphertext: without the right PIN among the guesses, the attacker
        learns nothing."""
        dep = fresh_deployment
        client = dep.new_client(unique_user)
        client.backup(b"top secret", pin="7315")
        ct = dep.provider.fetch_backup(unique_user)
        budget = max(1, dep.params.tolerated_compromises)
        attacker = AdaptiveCorruptionAttacker(dep.fleet, client.lhe, budget)
        wrong_pins = [f"{p:04d}" for p in range(20) if f"{p:04d}" != "7315"]
        assert attacker.run(ct, wrong_pins, client.mpk) is None
        assert len(attacker.corrupted) <= budget

    def test_correct_pin_with_enough_corruption_succeeds(
        self, fresh_deployment, unique_user
    ):
        """Sanity check on the attack harness (and the scheme's tightness):
        with the right PIN and the whole cluster corrupted, the attacker
        wins — the defense is the PIN space times cluster hiding, nothing
        else."""
        dep = fresh_deployment
        client = dep.new_client(unique_user)
        client.backup(b"top secret", pin="7315")
        ct = dep.provider.fetch_backup(unique_user)
        stolen = dep.fleet.compromise(sorted(set(client.lhe.select(ct.salt, "7315"))))
        result = decrypt_with_stolen_secrets(client.lhe, ct, stolen, "7315", client.mpk)
        assert result == b"top secret"

    def test_forward_secrecy_after_recovery(self, fresh_deployment, unique_user):
        """Compromise *every* HSM after the client recovered: the punctured
        keys reveal nothing about the recovered backup (Figure 4's right
        region)."""
        dep = fresh_deployment
        client = dep.new_client(unique_user)
        client.backup(b"already recovered", pin="2468")
        ct = dep.provider.fetch_backup(unique_user)
        assert client.recover(pin="2468") == b"already recovered"
        stolen = dep.fleet.compromise(range(len(dep.fleet)))
        result = decrypt_with_stolen_secrets(client.lhe, ct, stolen, "2468", client.mpk)
        assert result is None

    def test_compromise_before_recovery_with_wrong_cluster(self, fresh_deployment, unique_user):
        """Corrupting HSMs outside the hidden cluster yields nothing even
        with the correct PIN in hand."""
        dep = fresh_deployment
        client = dep.new_client(unique_user)
        client.backup(b"data", pin="1357")
        ct = dep.provider.fetch_backup(unique_user)
        cluster = set(client.lhe.select(ct.salt, "1357"))
        outside = [i for i in range(len(dep.fleet)) if i not in cluster]
        stolen = dep.fleet.compromise(outside)
        assert decrypt_with_stolen_secrets(client.lhe, ct, stolen, "1357", client.mpk) is None


class TestBruteForceThroughProtocol:
    def test_attempt_budget_is_global(self, fresh_deployment, unique_user):
        dep = fresh_deployment
        victim = dep.new_client(unique_user)
        victim.backup(b"data", pin="9731")
        attacker_client = dep.new_client(unique_user)  # attacker knows username
        budget = dep.params.max_attempts_per_user
        refused_early = False
        guesses = 0
        for pin in (f"{p:04d}" for p in range(budget + 5)):
            guesses += 1
            try:
                attacker_client.recover(pin)
            except RecoveryError as exc:
                if "exhausted" in str(exc):
                    refused_early = True
                    break
        assert refused_early
        assert guesses == budget + 1
        # ...and every single guess left a public trace:
        assert len(victim.audit_my_recovery_attempts()) == budget


class TestCheatingProvider:
    def _fleet(self):
        cfg = LogConfig(audit_count=3, quorum_fraction=0.75)
        from repro.crypto.bloom import BloomParams
        from repro.hsm.fleet import HsmFleet

        return HsmFleet(
            8,
            BloomParams.for_punctures(4, failure_exponent=4),
            log_config=cfg,
            rng=random.Random(5),
        ), cfg

    def test_rewrite_is_unverifiable(self):
        """After silently rewriting an entry, the provider can no longer
        produce inclusion proofs the HSM digest accepts — so it cannot serve
        a forged recovery attempt."""
        fleet, cfg = self._fleet()
        log = CheatingProvider(cfg)
        log.insert(b"victim", b"honest-commitment")
        log.run_update(fleet.hsms)
        log.rewrite_entry(b"victim", b"forged-commitment")
        from repro.log.authdict import verify_includes

        proof = log.prove_includes(b"victim", b"forged-commitment")
        assert not verify_includes(fleet[0].log_digest, b"victim", b"forged-commitment", proof)

    def test_rewrite_breaks_future_updates(self):
        """The forked provider state can never be certified again: its next
        round does not build on the digest the HSMs hold."""
        fleet, cfg = self._fleet()
        log = CheatingProvider(cfg)
        log.insert(b"victim", b"honest")
        log.run_update(fleet.hsms)
        log.rewrite_entry(b"victim", b"forged")
        log.insert(b"other", b"x")
        with pytest.raises(LogUpdateRejected):
            log.run_update(fleet.hsms)

    def test_dropped_insertion_caught_by_audit(self):
        fleet, cfg = self._fleet()
        log = CheatingProvider(cfg)
        for i in range(8):
            log.insert(f"u{i}".encode(), b"h")
        round_ = log.forge_round_dropping_entry(hsm_count=4)
        rejected = 0
        for hsm in fleet.online():
            try:
                hsm.audit_log_update(round_)
            except LogUpdateRejected:
                rejected += 1
        assert rejected >= 1

    def test_equivocation_cannot_satisfy_both_quorums(self):
        """Showing different logs to different HSM subsets: neither side can
        reach quorum, so neither digest is ever certified."""
        fleet, cfg = self._fleet()
        log = CheatingProvider(cfg)
        round_a, round_b = log.equivocate([(b"a", b"1")], [(b"b", b"2")])
        half_a = list(fleet.online())[:4]
        half_b = list(fleet.online())[4:]
        sigs_a = [h.audit_log_update(round_a) for h in half_a]
        sigs_b = [h.audit_log_update(round_b) for h in half_b]
        agg_a = fleet.multisig_scheme.aggregate(sigs_a)
        agg_b = fleet.multisig_scheme.aggregate(sigs_b)
        with pytest.raises(LogUpdateRejected):
            half_a[0].accept_log_digest(round_a, agg_a, tuple(h.index for h in half_a))
        with pytest.raises(LogUpdateRejected):
            half_b[0].accept_log_digest(round_b, agg_b, tuple(h.index for h in half_b))


class TestStatisticalLocationHiding:
    def test_cluster_indistinguishable_without_pin(self):
        """Empirical check of the location-hiding intuition: over many
        (salt, PIN) pairs, every HSM index is selected at close-to-uniform
        frequency, so the ciphertext's salt alone gives the attacker no
        slate of HSMs to steal."""
        from repro.core.lhe import LocationHidingEncryption

        lhe = LocationHidingEncryption(32, 4, 2)
        counts = [0] * 32
        trials = 2000
        rng = random.Random(1)
        for t in range(trials):
            salt = rng.randbytes(8)
            for index in lhe.select(salt, "0000"):
                counts[index] += 1
        expected = trials * 4 / 32
        for count in counts:
            assert abs(count - expected) < 6 * (expected**0.5)
