"""NIST P-256 curve arithmetic, serialization, ECDSA."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.ec import N, P256, ECPoint
from repro.metering import metered

G = P256.generator

# Published small multiples of the P-256 base point.
KNOWN_MULTIPLES = {
    2: 0x7CF27B188D034F7E8A52380304B51AC3C08969E277F21B35A60B48FC47669978,
    3: 0x5ECBE4D1A6330A44C8F7EF951D4BF165E6C6B721EFADA985FB41661BC6E7FD6C,
    4: 0xE2534A3532D08FBBA02DDE659EE62BD0031FE2DB785596EF509302446B030852,
    5: 0x51590B7A515140D2D784C85608668FDFEF8C82FD1F5BE52421554A0DC3D033ED,
    10: 0xCEF66D6B2A3A993E591214D1EA223FB545CA6C471C48306E4C36069404C5723F,
    112233445566778899: 0x339150844EC15234807FE862A86BE77977DBFB3AE3D96F4C22795513AEAAB82F,
}


class TestKnownVectors:
    @pytest.mark.parametrize("k,x", sorted(KNOWN_MULTIPLES.items()))
    def test_scalar_multiples(self, k, x):
        assert (G * k).x == x

    def test_generator_on_curve(self):
        ECPoint(G.x, G.y)  # constructor validates curve membership

    def test_order_annihilates(self):
        assert (G * N).is_infinity


class TestGroupLaws:
    def test_identity(self):
        infinity = ECPoint(None, None)
        assert G + infinity == G
        assert infinity + G == G

    def test_inverse(self):
        assert (G + (-G)).is_infinity

    def test_commutativity(self):
        assert G * 3 + G * 5 == G * 5 + G * 3

    def test_distributivity(self):
        assert G * 7 + G * 9 == G * 16

    def test_doubling_matches_addition(self):
        assert G + G == G * 2

    def test_subtraction(self):
        assert G * 5 - G * 3 == G * 2

    @given(a=st.integers(1, N - 1), b=st.integers(1, N - 1))
    @settings(max_examples=10, deadline=None)
    def test_homomorphism_property(self, a, b):
        assert (G * a) + (G * b) == G * ((a + b) % N)


class TestValidationAndSerialization:
    def test_off_curve_rejected(self):
        with pytest.raises(ValueError):
            ECPoint(1, 1)

    def test_compressed_roundtrip_even_and_odd(self):
        for k in (2, 3, 5, 7):
            point = G * k
            assert ECPoint.from_bytes(point.to_bytes()) == point

    def test_infinity_roundtrip(self):
        infinity = ECPoint(None, None)
        assert ECPoint.from_bytes(infinity.to_bytes()).is_infinity

    def test_malformed_encodings_rejected(self):
        with pytest.raises(ValueError):
            ECPoint.from_bytes(b"\x05" + bytes(32))
        with pytest.raises(ValueError):
            ECPoint.from_bytes(b"\x02" + bytes(10))

    def test_invalid_x_rejected(self):
        # x = p - 1 has no square-root rhs for P-256
        bad = b"\x02" + (P256.p - 1).to_bytes(32, "big")
        with pytest.raises(ValueError):
            ECPoint.from_bytes(bad)


class TestKeygen:
    def test_deterministic_with_rng(self, rng):
        import random

        kp1 = P256.keygen(random.Random(1))
        kp2 = P256.keygen(random.Random(1))
        assert kp1.secret == kp2.secret
        assert kp1.public == kp2.public

    def test_public_matches_secret(self):
        kp = P256.keygen()
        assert kp.public == G * kp.secret


class TestEcdsa:
    def test_sign_verify(self):
        kp = P256.keygen()
        sig = P256.ecdsa_sign(kp.secret, b"message")
        assert P256.ecdsa_verify(kp.public, b"message", sig)

    def test_wrong_message_rejected(self):
        kp = P256.keygen()
        sig = P256.ecdsa_sign(kp.secret, b"message")
        assert not P256.ecdsa_verify(kp.public, b"other", sig)

    def test_wrong_key_rejected(self):
        kp1, kp2 = P256.keygen(), P256.keygen()
        sig = P256.ecdsa_sign(kp1.secret, b"message")
        assert not P256.ecdsa_verify(kp2.public, b"message", sig)

    def test_garbage_signature_rejected(self):
        kp = P256.keygen()
        assert not P256.ecdsa_verify(kp.public, b"message", (0, 0))
        assert not P256.ecdsa_verify(kp.public, b"message", (N, 1))

    def test_signing_is_deterministic(self):
        assert P256.ecdsa_sign(123, b"m") == P256.ecdsa_sign(123, b"m")


class TestHashToPoint:
    def test_on_curve_and_deterministic(self):
        point = P256.hash_to_point(b"seed")
        assert point == P256.hash_to_point(b"seed")
        ECPoint(point.x, point.y)

    def test_different_inputs_differ(self):
        assert P256.hash_to_point(b"a") != P256.hash_to_point(b"b")


class TestMetering:
    def test_scalar_mult_reports(self):
        with metered() as meter:
            _ = G * 12345
        assert meter.counts["ec_mult"] == 1

    def test_ecdsa_verify_reports(self):
        kp = P256.keygen()
        sig = P256.ecdsa_sign(kp.secret, b"m")
        with metered() as meter:
            P256.ecdsa_verify(kp.public, b"m", sig)
        assert meter.counts["ecdsa_verify"] == 1
