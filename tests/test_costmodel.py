"""Cost model: Table 7 rates, device scaling, category breakdowns."""

import pytest

from repro.hsm.costmodel import CostBreakdown, CostModel, Transport
from repro.hsm.devices import INTEL_I7, PIXEL4, SAFENET_A700, SOLOKEY, YUBIHSM2
from repro.metering import OpMeter


class TestTable7Rates:
    """Each modeled rate must match the paper's measured SoloKey value."""

    @pytest.mark.parametrize(
        "op,rate",
        [
            ("pairing", 0.43),
            ("ecdsa_verify", 5.85),
            ("elgamal_dec", 6.67),
            ("ec_mult", 7.69),
            ("hmac", 2173.91),
            ("aes_block", 3703.70),
        ],
    )
    def test_solokey_rate(self, op, rate):
        model = CostModel(SOLOKEY)
        assert model.seconds_per_op(op) == pytest.approx(1.0 / rate)

    def test_io_rates(self):
        cdc = CostModel(SOLOKEY, Transport.USB_CDC)
        hid = CostModel(SOLOKEY, Transport.USB_HID)
        # Table 7: CDC gives a ~32x I/O improvement over HID.
        ratio = hid.seconds_per_op("io_bytes") / cdc.seconds_per_op("io_bytes")
        assert ratio == pytest.approx(2277.90 / 71.43, rel=0.01)

    def test_flash_rate(self):
        model = CostModel(SOLOKEY)
        assert model.seconds_per_op("flash_read_bytes") == pytest.approx(
            1.0 / (166000 * 32)
        )

    def test_unknown_op_rejected(self):
        with pytest.raises(KeyError):
            CostModel(SOLOKEY).seconds_per_op("quantum_fourier_transform")


class TestDeviceScaling:
    def test_safenet_scales_by_gx_ratio(self):
        solo = CostModel(SOLOKEY)
        safenet = CostModel(SAFENET_A700)
        ratio = solo.seconds_per_op("ec_mult") / safenet.seconds_per_op("ec_mult")
        assert ratio == pytest.approx(2000 / 7.69, rel=1e-6)

    def test_cpu_is_fastest(self):
        times = {
            d.name: CostModel(d).seconds_per_op("elgamal_dec")
            for d in (SOLOKEY, YUBIHSM2, SAFENET_A700, INTEL_I7)
        }
        assert times[INTEL_I7.name] == min(times.values())
        assert times[SOLOKEY.name] == max(times.values())

    def test_safenet_defaults_to_network_transport(self):
        assert CostModel(SAFENET_A700).transport is Transport.NETWORK

    def test_table2_catalog_values(self):
        assert SOLOKEY.price_usd == 20 and SOLOKEY.storage_kb == 256
        assert YUBIHSM2.price_usd == 650 and YUBIHSM2.gx_per_sec == 14
        assert SAFENET_A700.fips_140_2 and SAFENET_A700.gx_per_sec == 2000
        assert INTEL_I7.gx_per_sec == 22338


class TestPricing:
    def test_breakdown_categories(self):
        model = CostModel(SOLOKEY)
        breakdown = model.breakdown(
            {"ec_mult": 2, "aes_block": 100, "io_bytes": 640, "flash_read_bytes": 64}
        )
        assert breakdown.public_key == pytest.approx(2 / 7.69)
        assert breakdown.symmetric == pytest.approx(100 / 3703.70)
        assert breakdown.io > 0 and breakdown.flash > 0
        assert breakdown.total == pytest.approx(
            breakdown.public_key + breakdown.symmetric + breakdown.io + breakdown.flash
        )

    def test_accepts_opmeter(self):
        meter = OpMeter()
        meter.add("ec_mult", 3)
        assert CostModel(SOLOKEY).seconds(meter) == pytest.approx(3 / 7.69)

    def test_zero_counts_are_free(self):
        assert CostModel(SOLOKEY).seconds({"ec_mult": 0}) == 0.0

    def test_breakdown_addition_and_scaling(self):
        a = CostBreakdown(public_key=1, symmetric=2, io=3, flash=4)
        b = a + a
        assert b.total == 20
        assert a.scaled(0.5).total == 5
        assert set(a.as_dict()) == {"public_key", "symmetric", "io", "flash", "total"}


class TestPaperAnchors:
    def test_elgamal_dec_near_measured_composite(self):
        """Sanity: the measured ElGamal rate (6.67/s) is close to but faster
        than two g^x (the naive composite), because decryption needs one
        point-mult plus cheap symmetric work."""
        model = CostModel(SOLOKEY)
        assert model.seconds_per_op("elgamal_dec") < 2 * model.seconds_per_op("ec_mult")
        assert model.seconds_per_op("elgamal_dec") > model.seconds_per_op("ec_mult")

    def test_pairing_is_dominant_public_key_op(self):
        model = CostModel(SOLOKEY)
        assert model.seconds_per_op("pairing") > 10 * model.seconds_per_op("ec_mult")
