"""Salt protection and safe PIN re-use (§6.3 / §8 extension)."""

import pytest

from repro.core.client import RecoveryError
from repro.core.saltprotect import SaltProtectedClient, null_pin


@pytest.fixture
def protected(shared_deployment, unique_user):
    client = shared_deployment.new_client(unique_user)
    return SaltProtectedClient(client)


class TestSaltProtectedFlow:
    def test_backup_and_recover(self, protected):
        protected.backup(b"protected data", pin="1234")
        assert protected.recover(pin="1234") == b"protected data"

    def test_salt_fetch_is_logged(self, protected):
        protected.backup(b"data", pin="1234")
        assert protected.salt_fetch_log() == []
        protected.fetch_salt()
        assert len(protected.salt_fetch_log()) == 1

    def test_salt_fetch_returns_true_salt(self, protected, shared_deployment):
        protected.backup(b"data", pin="1234")
        ct = shared_deployment.provider.fetch_backup(protected.client.username)
        assert protected.fetch_salt() == ct.salt

    def test_salt_is_destroyed_after_fetch(self, protected):
        """The second fetch fails: the HSMs punctured the salt shares, so a
        silent offline attacker cannot obtain the salt after the user has."""
        protected.backup(b"data", pin="1234")
        protected.fetch_salt()
        with pytest.raises(RecoveryError):
            protected.fetch_salt()


class TestPinReuseVerdict:
    def test_safe_when_only_own_fetch(self, protected):
        protected.backup(b"data", pin="1234")
        protected.recover(pin="1234")
        verdict = protected.pin_reuse_verdict(own_fetches_expected=1)
        assert verdict.safe_to_reuse
        assert verdict.foreign_fetches == 0

    def test_unsafe_after_foreign_fetch(self, protected, shared_deployment):
        protected.backup(b"data", pin="1234")
        # An attacker (who controls the provider and knows the username)
        # fetches the salt before the user ever recovers:
        attacker_view = SaltProtectedClient(
            shared_deployment.new_client(protected.client.username)
        )
        attacker_view.fetch_salt()
        verdict = protected.pin_reuse_verdict(own_fetches_expected=0)
        assert not verdict.safe_to_reuse
        assert verdict.foreign_fetches == 1
        assert "new PIN" in verdict.reason

    def test_null_pin_shape(self, shared_params):
        pin = null_pin(shared_params)
        shared_params.validate_pin(pin)
        assert set(pin) == {"0"}
