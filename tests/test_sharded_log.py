"""The sharded log: routing, determinism, lane isolation, migration.

Covers the three claims the sharded design stands on:

1. **Determinism** — a fixed seeded workload produces byte-identical shard
   digests and cross-shard root no matter how the lanes are scheduled
   (sequential, shuffled, or truly parallel through the service's lane
   workers), because shard content depends only on the insertion stream.
2. **Invariance at one shard** — the shard-aware refactor of the device
   and log code meters *exactly* the seed's operation counts for an
   unsharded deployment (constants captured from the pre-refactor tree).
3. **Isolation** — a shard whose epoch fails rolls back and fails alone;
   sibling lanes commit, and the write-once guarantee never spans lanes
   incorrectly (an identifier belongs to exactly one shard).
"""

import random
import threading

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.params import SystemParams
from repro.core.protocol import Deployment
from repro.core.provider import ProviderError
from repro.hsm.device import HsmRefusedError, HsmStaleProofError
from repro.log import AuditFailure, ExternalAuditor
from repro.log.authdict import AuthenticatedDictionary
from repro.log.distributed import DistributedLog, LogConfig, LogUpdateRejected
from repro.log.sharded import (
    ShardedInclusionProof,
    ShardedLog,
    cross_shard_root,
    partition_entries,
    shard_of,
    verify_includes_sharded,
)
from repro.metering import OpMeter

SHARDS = 4


def small_params(**kwargs) -> SystemParams:
    defaults = dict(num_hsms=8, cluster_size=3, max_punctures=48)
    defaults.update(kwargs)
    return SystemParams.for_testing(**defaults)


def fixed_workload(count: int = 48):
    """A deterministic insertion stream (identifier, value) pairs."""
    return [
        (b"rec|det-user-%d|0" % i, b"commitment-%d" % i) for i in range(count)
    ]


# ---------------------------------------------------------------------------
# Routing and the cross-shard root
# ---------------------------------------------------------------------------
class TestShardRouting:
    def test_shard_of_is_stable_and_in_range(self):
        for i in range(200):
            identifier = b"id-%d" % i
            shard = shard_of(identifier, SHARDS)
            assert 0 <= shard < SHARDS
            assert shard == shard_of(identifier, SHARDS)

    def test_single_shard_short_circuits_without_hashing(self):
        meter = OpMeter()
        with meter.attached():
            assert shard_of(b"anything", 1) == 0
        assert meter.snapshot().get("sha256_block", 0) == 0

    def test_workload_spreads_across_shards(self):
        shards = {shard_of(identifier, SHARDS) for identifier, _ in fixed_workload(64)}
        assert shards == set(range(SHARDS))

    def test_sharded_log_requires_two_shards(self):
        with pytest.raises(ValueError):
            ShardedLog(LogConfig(num_shards=1))

    def test_duplicate_check_spans_pending_and_committed(self):
        log = ShardedLog(LogConfig(num_shards=SHARDS))
        log.insert(b"dup", b"v1")
        with pytest.raises(KeyError):
            log.insert(b"dup", b"v2")


@pytest.fixture(scope="module")
def sharded_deployment():
    return Deployment.create(small_params(), rng=random.Random(41), shards=SHARDS)


class TestCrossShardAnchor:
    def test_device_anchor_matches_published_root(self, sharded_deployment):
        dep = sharded_deployment
        log = dep.provider.log
        assert dep.fleet[0].log_digest == log.digest
        assert log.digest == cross_shard_root(log.shard_digests)

    def test_root_anchored_proof_verifies(self, sharded_deployment):
        dep = sharded_deployment
        log = dep.provider.log
        log.insert(b"rec|anchor|0", b"h-anchor")
        log.run_update(dep.fleet.hsms)
        proof = log.prove_includes(b"rec|anchor|0", b"h-anchor")
        assert isinstance(proof, ShardedInclusionProof)
        assert verify_includes_sharded(log.digest, b"rec|anchor|0", b"h-anchor", proof)
        # ... and anchors exactly to the devices' single trust value.
        assert verify_includes_sharded(
            dep.fleet[0].log_digest, b"rec|anchor|0", b"h-anchor", proof
        )

    def test_forged_shard_digest_fails_root_verification(self, sharded_deployment):
        log = sharded_deployment.provider.log
        log.insert(b"rec|forge|0", b"h-forge")
        log.run_update(sharded_deployment.fleet.hsms)
        proof = log.prove_includes(b"rec|forge|0", b"h-forge")
        import dataclasses

        forged = dataclasses.replace(proof, shard_digest=b"\x00" * 32)
        assert not verify_includes_sharded(
            log.digest, b"rec|forge|0", b"h-forge", forged
        )
        wrong_shard = dataclasses.replace(proof, shard=(proof.shard + 1) % SHARDS)
        assert not verify_includes_sharded(
            log.digest, b"rec|forge|0", b"h-forge", wrong_shard
        )
        assert not verify_includes_sharded(
            b"\x11" * 32, b"rec|forge|0", b"h-forge", proof
        )


# ---------------------------------------------------------------------------
# Incremental root maintenance: byte-identical to the from-scratch recompute
# ---------------------------------------------------------------------------
class TestIncrementalRoot:
    """``ShardedLog.digest`` is maintained with O(log S) path updates; it
    must stay byte-identical to :func:`cross_shard_root` recomputed from
    scratch after *any* mutation sequence."""

    @given(data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_root_matches_scratch_after_any_dirty_sequence(self, data):
        num_shards = data.draw(st.sampled_from([2, 3, 5, 8]))
        log = ShardedLog(LogConfig(num_shards=num_shards))
        committed = {}
        counter = 0
        for _ in range(data.draw(st.integers(1, 10))):
            op = data.draw(st.sampled_from(["commit", "wipe", "read"]))
            if op == "commit":
                for _ in range(data.draw(st.integers(1, 4))):
                    identifier = b"prop|%d|0" % counter
                    value = b"v-%d" % counter
                    counter += 1
                    log.insert(identifier, value)
                    committed[identifier] = value
                for k in log.shards_with_pending():
                    log.shards[k].prepare_update(num_chunks=1)
            elif op == "wipe":
                # GC-style reset of one lane by direct mutation: the
                # compare-on-read dirtiness check must pick it up even
                # though no ShardedLog method was called.
                k = data.draw(st.integers(0, num_shards - 1))
                log.shards[k].dict = AuthenticatedDictionary()
                log.shards[k].ordered_entries = []
                committed = {
                    i: v
                    for i, v in committed.items()
                    if shard_of(i, num_shards) != k
                }
            assert log.digest == cross_shard_root(log.shard_digests)
        for identifier, value in committed.items():
            proof = log.prove_includes(identifier, value)
            assert proof is not None
            assert verify_includes_sharded(log.digest, identifier, value, proof)

    def test_migration_root_is_identical_to_scratch(self):
        """Reshard migration rebuilds every lane from genesis; the migrated
        log's incremental root and proofs must equal the from-scratch
        construction."""
        dep = Deployment.create(small_params(), rng=random.Random(7))
        log = dep.provider.log
        workload = fixed_workload(12)
        for identifier, value in workload:
            log.insert(identifier, value)
        log.run_update(dep.fleet.hsms)
        sharded = ShardedLog.migrate(log, SHARDS, dep.fleet.hsms)
        assert sharded.digest == cross_shard_root(sharded.shard_digests)
        for identifier, value in workload:
            proof = sharded.prove_includes(identifier, value)
            assert proof is not None
            assert verify_includes_sharded(
                sharded.digest, identifier, value, proof
            )

    def test_proof_paths_match_scratch_tree(self, sharded_deployment):
        """Shard paths from the persistent tree are byte-identical to a
        fresh MerkleTree over the same shard-digest leaves."""
        from repro.crypto.merkle import MerkleTree
        from repro.log.sharded import shard_leaf

        log = sharded_deployment.provider.log
        log.insert(b"rec|path-eq|0", b"h-path")
        log.run_update(sharded_deployment.fleet.hsms)
        scratch = MerkleTree(
            [shard_leaf(i, d) for i, d in enumerate(log.shard_digests)]
        )
        assert log.digest == scratch.root
        proof = log.prove_includes(b"rec|path-eq|0", b"h-path")
        assert proof.shard_path == scratch.prove(proof.shard)


# ---------------------------------------------------------------------------
# Determinism across lane scheduling
# ---------------------------------------------------------------------------
class TestShardDeterminism:
    @staticmethod
    def _fresh(seed: int = 51) -> Deployment:
        # Identical rng => identical keys => identical membership entries,
        # so digests are comparable across deployments.
        return Deployment.create(small_params(), rng=random.Random(seed), shards=SHARDS)

    def test_digests_identical_across_runs_and_lane_orders(self):
        roots = []
        digest_sets = []
        for schedule in ("sequential", "sequential", "reversed", "shuffled"):
            dep = self._fresh()
            log = dep.provider.log
            for identifier, value in fixed_workload():
                log.insert(identifier, value)
            lanes = log.shards_with_pending()
            if schedule == "reversed":
                lanes = list(reversed(lanes))
            elif schedule == "shuffled":
                random.Random(99).shuffle(lanes)
            for shard in lanes:
                log.run_shard_update(shard, dep.fleet.hsms)
            digest_sets.append([d.hex() for d in log.shard_digests])
            roots.append(log.digest.hex())
        assert len(set(roots)) == 1
        assert all(ds == digest_sets[0] for ds in digest_sets)

    def test_parallel_lanes_match_sequential_digests(self):
        sequential = self._fresh()
        log_a = sequential.provider.log
        for identifier, value in fixed_workload():
            log_a.insert(identifier, value)
        log_a.run_update(sequential.fleet.hsms)

        parallel = self._fresh()
        service = parallel.recovery_service()
        log_b = parallel.provider.log
        for identifier, value in fixed_workload():
            log_b.insert(identifier, value)
        service.pool.start()
        try:
            outcomes = service.run_shard_epochs(log_b.shards_with_pending())
        finally:
            service.pool.stop()
        assert all(error is None for error in outcomes.values())
        assert log_b.shard_digests == log_a.shard_digests
        assert log_b.digest == log_a.digest
        # Devices in both deployments converged on the same anchor.
        assert parallel.fleet[0].log_digest == sequential.fleet[0].log_digest


# ---------------------------------------------------------------------------
# Metering invariance at shards=1 (the seed's exact operation counts)
# ---------------------------------------------------------------------------
class TestUnshardedInvariance:
    # Captured from the pre-sharding tree (commit 0a64ddd) by running this
    # exact workload; the shard-aware refactor must not move a single count.
    AMBIENT = {"sha256_block": 8242, "ec_mult": 24, "ecdsa_verify": 192, "hmac": 24}
    DEVICE = {"sha256_block": 8499, "ec_mult": 416, "ecdsa_verify": 256}
    DIGEST = "c0dc9c0d982ec92dda58e216f616687823120537da44e64da9d32170452f8e2b"

    def test_seed_counts_and_digest_unchanged(self):
        params = SystemParams.for_testing(num_hsms=8, cluster_size=3, audit_count=2)
        dep = Deployment.create(params, rng=random.Random(1234))
        assert isinstance(dep.provider.log, DistributedLog)
        meter = OpMeter()
        with meter.attached():
            for epoch in range(3):
                for i in range(16):
                    dep.provider.log.insert(
                        b"bench|u%d-%d|0" % (epoch, i),
                        b"commitment-%d-%d" % (epoch, i),
                    )
                dep.provider.log.run_update(dep.fleet.hsms)
        ambient = meter.snapshot()
        device = {}
        for hsm in dep.fleet.hsms:
            for key, value in hsm.meter.snapshot().items():
                device[key] = device.get(key, 0) + value
        for key, expected in self.AMBIENT.items():
            assert ambient.get(key, 0) == expected, f"ambient {key} moved"
        for key, expected in self.DEVICE.items():
            assert device.get(key, 0) == expected, f"device {key} moved"
        assert dep.provider.log.digest.hex() == self.DIGEST


# ---------------------------------------------------------------------------
# Lane isolation: one bad shard never takes the others down
# ---------------------------------------------------------------------------
class TestLaneIsolation:
    def test_failed_shard_rolls_back_alone(self):
        dep = Deployment.create(small_params(), rng=random.Random(61), shards=SHARDS)
        log = dep.provider.log
        for identifier, value in fixed_workload(32):
            log.insert(identifier, value)
        lanes = log.shards_with_pending()
        poisoned = lanes[0]
        digests_before = log.shard_digests
        pending_before = {k: len(log.shards[k].pending) for k in lanes}

        original = log.shards[poisoned].certify_round

        def sabotage(round_, hsms):
            raise LogUpdateRejected("injected shard failure")

        log.shards[poisoned].certify_round = sabotage
        try:
            with pytest.raises(LogUpdateRejected):
                log.run_update(dep.fleet.hsms)
        finally:
            log.shards[poisoned].certify_round = original

        # The poisoned shard rolled back: digest unchanged, insertions
        # re-queued.  Every sibling lane committed.
        assert log.shards[poisoned].digest == digests_before[poisoned]
        assert len(log.shards[poisoned].pending) == pending_before[poisoned]
        for lane in lanes:
            if lane == poisoned:
                continue
            assert log.shards[lane].digest != digests_before[lane]
            assert not log.shards[lane].pending
        # The next epoch commits the re-queued insertions.
        log.run_update(dep.fleet.hsms)
        assert not log.pending
        assert dep.fleet[0].log_digest == log.digest

    def test_batched_service_fails_only_the_bad_lane(self):
        dep = Deployment.create(small_params(), rng=random.Random(62), shards=SHARDS)
        service = dep.recovery_service(lease_timeout=5.0)
        log = dep.provider.log
        # Find usernames landing on two different shards.
        users = {}
        for i in range(64):
            name = f"lane-{i}"
            users.setdefault(shard_of(b"rec|%s|0" % name.encode(), SHARDS), name)
            if len(users) >= 2:
                break
        (bad_shard, bad_user), (_, good_user) = sorted(users.items())[:2]

        original = log.shards[bad_shard].certify_round
        log.shards[bad_shard].certify_round = lambda *a: (_ for _ in ()).throw(
            LogUpdateRejected("injected lane failure")
        )
        service.pool.start()
        try:
            bad = service.batcher.submit(bad_user, 0, b"h-bad")
            good = service.batcher.submit(good_user, 0, b"h-good")
            served = service.tick()
            assert served == 1
            identifier, proof = good.wait(timeout=5)
            assert verify_includes_sharded(log.digest, identifier, b"h-good", proof)
            with pytest.raises(ProviderError):
                bad.wait(timeout=5)
            stats_failures = service.batcher.epoch_failures
            assert stats_failures == 1
            assert service.batcher.epochs_run >= 1
        finally:
            log.shards[bad_shard].certify_round = original
            service.pool.stop()
            service.batcher.release(good_user, 0)


# ---------------------------------------------------------------------------
# Device-side shard checks
# ---------------------------------------------------------------------------
class TestDeviceShardChecks:
    def test_wrong_arity_round_rejected(self, sharded_deployment):
        unsharded = DistributedLog(LogConfig(audit_count=2))
        unsharded.insert(b"foreign", b"v")
        round_ = unsharded.prepare_update(num_chunks=1)
        with pytest.raises(LogUpdateRejected, match="shard"):
            sharded_deployment.fleet[0].audit_log_update(round_)

    def test_shard_shopping_is_refused(self, sharded_deployment):
        """A proof claiming a foreign shard must be refused even if the
        inner BST proof is genuine (write-once must not span lanes)."""
        dep = sharded_deployment
        client = dep.new_client("shard-shopper")
        client.backup(b"payload", pin="1111")
        session = client.begin_recovery("1111", backup_recovery_key=False)
        import dataclasses

        proof = session.inclusion_proof
        assert isinstance(proof, ShardedInclusionProof)
        session.inclusion_proof = dataclasses.replace(
            proof, shard=(proof.shard + 1) % SHARDS
        )
        request = client._share_request(session, 0)
        with pytest.raises(HsmRefusedError):
            dep.fleet[session.cluster[0]].decrypt_share(request)
        # Restore the honest proof: recovery then completes.
        session.inclusion_proof = proof
        obtained = client.request_shares(session, "1111")
        assert obtained >= dep.params.threshold
        assert client.finish_recovery(session) == b"payload"

    def test_arity_mismatch_reads_as_stale(self, sharded_deployment):
        """An unsharded proof against sharded devices asks for a refresh
        (the client retry path), not a hard refusal."""
        dep = sharded_deployment
        client = dep.new_client("arity-mismatch")
        client.backup(b"x", pin="2222")
        session = client.begin_recovery("2222", backup_recovery_key=False)
        sharded_proof = session.inclusion_proof
        session.inclusion_proof = sharded_proof.inclusion  # strip the envelope
        request = client._share_request(session, 0)
        with pytest.raises(HsmStaleProofError):
            dep.fleet[session.cluster[0]].decrypt_share(request)


# ---------------------------------------------------------------------------
# Reshard migration
# ---------------------------------------------------------------------------
class TestReshardMigration:
    def test_migration_preserves_entries_and_counters(self):
        dep = Deployment.create(small_params(), rng=random.Random(71))
        client = dep.new_client("migrator")
        client.backup(b"pre-migration", pin="3333")
        attempts_before = dep.provider.next_attempt_number("migrator")
        entries_before = sorted(dep.provider.log.dict.items())

        dep.reshard_log(SHARDS)
        log = dep.provider.log
        assert isinstance(log, ShardedLog)
        assert sorted(log.dict.items()) == entries_before
        assert dep.provider.next_attempt_number("migrator") == attempts_before
        assert dep.provider.scan_attempt_number("migrator") == attempts_before
        assert dep.fleet[0].log_digest == log.digest
        # The archived unsharded log audits cleanly against the new shards.
        auditor = ExternalAuditor()
        auditor.audit_reshard(log.archived_logs[-1], log.shard_entries())
        auditor.audit_sharded_snapshot(log.shard_entries(), log.digest)
        # And the client's backup still recovers through sharded epochs.
        assert client.recover("3333") == b"pre-migration"

    def test_resharding_is_one_way(self):
        dep = Deployment.create(small_params(), rng=random.Random(72), shards=2)
        with pytest.raises(ValueError, match="one-way"):
            dep.recovery_service(shards=4)
        with pytest.raises(HsmRefusedError, match="one-way"):
            dep.fleet[0].accept_reshard(8)

    def test_reshard_requires_full_fleet(self):
        dep = Deployment.create(small_params(), rng=random.Random(73))
        dep.fleet[2].fail_stop()
        with pytest.raises(LogUpdateRejected, match="online"):
            dep.reshard_log(SHARDS)

    def test_membership_events_keep_flowing_after_reshard(self):
        dep = Deployment.create(small_params(), rng=random.Random(74))
        dep.reshard_log(SHARDS)
        dep.verify_published_keys()
        # Force-rotate one device; the rotation event must land in the
        # *new* log (the registry was rebound) and still verify.
        info = dep.fleet[0].rotate_keys(dep.provider.storage_for_hsm(0))
        dep.membership.record_rotation(info)
        dep.provider.log.run_update(dep.fleet.hsms)
        for hsm_client in dep.clients:
            hsm_client.refresh_mpk(dep.fleet.master_public_key())
        dep.verify_published_keys()


# ---------------------------------------------------------------------------
# Sharded audits
# ---------------------------------------------------------------------------
class TestShardedAudits:
    def _audited_log(self):
        log = ShardedLog(LogConfig(num_shards=SHARDS))
        for identifier, value in fixed_workload(24):
            log.shard_for(identifier).dict.insert(identifier, value)
            log.shard_for(identifier).ordered_entries.append((identifier, value))
        return log

    def test_honest_snapshot_passes(self):
        log = self._audited_log()
        ExternalAuditor().audit_sharded_snapshot(log.shard_entries(), log.digest)

    def test_tampered_value_detected(self):
        log = self._audited_log()
        entries = log.shard_entries()
        entries[1][0] = (entries[1][0][0], b"forged")
        with pytest.raises(AuditFailure):
            ExternalAuditor().audit_sharded_snapshot(entries, log.digest)

    def test_misplaced_entry_detected(self):
        log = self._audited_log()
        entries = log.shard_entries()
        donor = next(k for k, es in enumerate(entries) if es)
        target = (donor + 1) % SHARDS
        entries[target].append(entries[donor].pop(0))
        with pytest.raises(AuditFailure, match="hashes"):
            ExternalAuditor().audit_sharded_snapshot(entries, log.digest)

    def test_dropped_entry_fails_reshard_audit(self):
        old = fixed_workload(24)
        shard_entries = partition_entries(old, SHARDS)
        donor = next(k for k, es in enumerate(shard_entries) if es)
        shard_entries[donor].pop(0)  # "lost" during migration
        with pytest.raises(AuditFailure):
            ExternalAuditor().audit_reshard(old, shard_entries)


# ---------------------------------------------------------------------------
# Committee certification and lazy foreign adoption
# ---------------------------------------------------------------------------
class TestCommitteeCertification:
    def test_device_and_provider_agree_on_committees(self, sharded_deployment):
        dep = sharded_deployment
        log = dep.provider.log
        for shard in range(SHARDS):
            provider_side = [h.index for h in log.committee(shard, dep.fleet.hsms)]
            assert provider_side == dep.fleet[0].committee_for(shard)
            assert all(i % SHARDS == shard for i in provider_side)

    def test_foreign_devices_adopt_lazily(self):
        dep = Deployment.create(small_params(), rng=random.Random(101), shards=SHARDS)
        log = dep.provider.log
        # Commit one epoch on a single shard only.
        identifier = b"rec|lazy-adoption|0"
        shard = shard_of(identifier, SHARDS)
        log.insert(identifier, b"h-lazy")
        log.run_shard_update(shard, dep.fleet.hsms)
        committee = {h.index for h in log.committee(shard, dep.fleet.hsms)}
        foreign = next(h for h in dep.fleet.hsms if h.index not in committee)
        member = next(h for h in dep.fleet.hsms if h.index in committee)
        # The committee member adopted eagerly; the foreign device still
        # holds the queued offer and a stale raw shard digest.
        assert member.shard_digest(shard) == log.shards[shard].digest
        assert foreign.shard_digest(shard) != log.shards[shard].digest
        # Reading the anchor verifies + applies the offer.
        assert foreign.log_digest == log.digest
        assert foreign.shard_digest(shard) == log.shards[shard].digest

    def test_stale_offer_is_dropped_and_bogus_offer_rejected(self):
        from repro.log.distributed import CertifiedTransition

        dep = Deployment.create(small_params(), rng=random.Random(102), shards=SHARDS)
        foreign = dep.fleet[1]
        shard = next(k for k in range(SHARDS) if foreign.index % SHARDS != k)

        # A stale offer (does not extend the device's chain) is dropped.
        stale = CertifiedTransition(
            old_digest=b"\xaa" * 32,
            new_digest=b"\xbb" * 32,
            root=b"\xcc" * 32,
            aggregate=(),
            signer_ids=(),
            shard=shard,
            num_shards=SHARDS,
        )
        foreign.offer_certified_transition(stale)
        assert isinstance(foreign.log_digest, bytes)  # no exception

        # A forged offer that *claims* to extend the chain is an attack:
        # verification fails loudly.
        forged = CertifiedTransition(
            old_digest=foreign.shard_digest(shard),
            new_digest=b"\xbb" * 32,
            root=b"\xcc" * 32,
            aggregate=(),
            signer_ids=(),
            shard=shard,
            num_shards=SHARDS,
        )
        foreign.offer_certified_transition(forged)
        with pytest.raises(LogUpdateRejected):
            foreign.log_digest

    def test_off_committee_signers_cannot_certify_a_shard(self):
        """Compromised devices from *other* committees must not be able to
        forge a shard's transitions: quorum counts committee members only."""
        from repro.log.distributed import CertifiedTransition, shard_transition_message

        dep = Deployment.create(small_params(), rng=random.Random(104), shards=SHARDS)
        victim = dep.fleet[0]  # shard 0's committee is {0, 4}
        stolen = [dep.fleet[i].extract_secrets() for i in (1, 2)]  # off-committee
        old = victim.shard_digest(0)
        fake_new, root = b"\xab" * 32, b"\xcd" * 32
        message = shard_transition_message(0, SHARDS, old, fake_new, root)
        scheme = dep.fleet.multisig_scheme
        signatures = [scheme.sign(s.sig_secret, message) for s in stolen]
        forged = CertifiedTransition(
            old_digest=old,
            new_digest=fake_new,
            root=root,
            aggregate=scheme.aggregate(signatures),
            signer_ids=(1, 2),
            shard=0,
            num_shards=SHARDS,
        )
        # Two valid fleet signatures — a fleet-wide count would accept them
        # (0.75 * committee of 2 -> 1.5), but neither signer is on committee 0.
        with pytest.raises(LogUpdateRejected, match="committee"):
            victim.accept_certified_transition(forged)
        assert victim.shard_digest(0) == old

    def test_shed_offers_heal_next_epoch(self):
        """A device that lost queued offers (overflow / dropped forgery) is
        re-fed the missing chain suffix by the next epoch's frontier check —
        lag, never a permanent gap."""
        dep = Deployment.create(small_params(), rng=random.Random(105), shards=SHARDS)
        log = dep.provider.log
        identifier = b"rec|heal-a|0"
        shard = shard_of(identifier, SHARDS)
        log.insert(identifier, b"h1")
        log.run_shard_update(shard, dep.fleet.hsms)
        committee = {h.index for h in log.committee(shard, dep.fleet.hsms)}
        foreign = next(h for h in dep.fleet.hsms if h.index not in committee)
        # Simulate shed offers: wipe this shard's queue (genesis + first
        # epoch) before the device ever synced it.
        with foreign._offer_lock:
            foreign._pending_foreign.pop(shard, None)
        # Next epoch on the same shard offers the full missing suffix.
        second = next(
            b"rec|heal-%d|0" % i
            for i in range(256)
            if shard_of(b"rec|heal-%d|0" % i, SHARDS) == shard
        )
        log.insert(second, b"h2")
        log.run_shard_update(shard, dep.fleet.hsms)
        assert foreign.log_digest == log.digest  # gap healed, chain replayed

    def test_committee_quorum_enforced(self):
        dep = Deployment.create(small_params(), rng=random.Random(103), shards=SHARDS)
        log = dep.provider.log
        identifier = b"rec|quorum|0"
        shard = shard_of(identifier, SHARDS)
        log.insert(identifier, b"h")
        log.run_shard_update(shard, dep.fleet.hsms)
        genuine = log.shards[shard].certified_transitions[-1]
        import dataclasses

        # Strip the aggregate down to a single signer: below the committee
        # quorum (0.75 * committee size 2 -> needs 2), so devices refuse.
        unders = dataclasses.replace(
            genuine,
            signer_ids=genuine.signer_ids[:1],
            aggregate=genuine.aggregate[:1],
        )
        lagging = Deployment.create(
            small_params(), rng=random.Random(103), shards=SHARDS
        )  # same seed: same keys, same pre-epoch digests
        victim = lagging.fleet[int(genuine.signer_ids[0])]
        with pytest.raises(LogUpdateRejected, match="signers"):
            victim.accept_certified_transition(unders)


# ---------------------------------------------------------------------------
# Sharded garbage collection
# ---------------------------------------------------------------------------
class TestShardedGarbageCollection:
    def test_gc_resets_every_lane_and_charges_once(self):
        dep = Deployment.create(small_params(), rng=random.Random(81), shards=SHARDS)
        log = dep.provider.log
        for identifier, value in fixed_workload(16):
            log.insert(identifier, value)
        log.run_update(dep.fleet.hsms)
        seen_before = dep.fleet[0].garbage_collections_seen
        dep.garbage_collect_log()
        assert dep.fleet[0].garbage_collections_seen == seen_before + 1
        assert log.garbage_collections == 1
        empty = ShardedLog(LogConfig(num_shards=SHARDS))
        assert log.digest == empty.digest
        assert dep.fleet[0].log_digest == log.digest
        assert log.archived_logs[-1]  # history preserved for auditors


# ---------------------------------------------------------------------------
# Concurrent sessions over lanes (integration, small)
# ---------------------------------------------------------------------------
class TestShardedService:
    def test_concurrent_recoveries_across_lanes(self):
        dep = Deployment.create(small_params(), rng=random.Random(91), shards=SHARDS)
        service = dep.recovery_service(tick_interval=0.01, lease_timeout=5.0)
        clients = [service.new_client(f"lanes-{i}") for i in range(6)]
        errors = []

        def run(i):
            try:
                clients[i].backup(b"m%d" % i, pin="1111")
                assert clients[i].recover("1111") == b"m%d" % i
            except Exception as exc:  # noqa: BLE001
                errors.append((i, repr(exc)))

        with service:
            threads = [threading.Thread(target=run, args=(i,)) for i in range(6)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert errors == []
        stats = service.stats()
        assert stats["shard_lanes"] == SHARDS
        assert stats["sessions_served"] == 6
        assert stats["epoch_failures"] == 0
        assert sum(stats["epoch_sessions"]) == 6
