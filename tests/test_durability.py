"""The durability layer: WAL integrity, journal protocol, tamper detection.

Covers the claims the write-ahead design stands on:

1. **Round-trip** — records appended to the WAL replay verbatim, across
   process restarts (a fresh ``WriteAheadLog`` over the same store).
2. **Integrity** — every tampering move ``TamperingBlockStore`` can make
   (corrupt a block, swap two blocks, replay a stale version) is *detected*
   during replay/restore, never silently restored; truncation of the tail
   is caught by the ``expected_head`` check.
3. **Write-ahead protocol** — epoch intents resolve to exactly one commit
   or rollback; record sequences no crash can produce are rejected.
4. **Snapshots** — anchoring + compaction preserve the restored state and
   a stale (replayed) anchor dangles and fails loudly.
"""

import random

import pytest

from repro.core.params import SystemParams
from repro.core.protocol import Deployment
from repro.core.wire import WireFormatError
from repro.log.distributed import CertifiedTransition
from repro.storage.blockstore import InMemoryBlockStore, TamperingBlockStore
from repro.storage.journal import (
    JournalReplayError,
    ProviderJournal,
    RestoredState,
    StoredTransition,
    decode_aggregate,
    decode_state,
    encode_aggregate_auto,
    encode_state,
)
from repro.storage.wal import WalCorruptionError, WriteAheadLog


# ---------------------------------------------------------------------------
# WriteAheadLog
# ---------------------------------------------------------------------------
class TestWriteAheadLog:
    def test_append_replay_round_trip(self):
        wal = WriteAheadLog(InMemoryBlockStore())
        records = [(1, b"alpha"), (2, b""), (7, b"x" * 300)]
        for kind, payload in records:
            wal.append(kind, payload)
        assert [(k, p) for _, k, p in wal.replay()] == records
        assert len(wal) == 3

    def test_reopen_continues_the_chain(self):
        store = InMemoryBlockStore()
        first = WriteAheadLog(store)
        first.append(1, b"pre-crash")
        head = first.head
        reopened = WriteAheadLog(store)  # the "restarted process"
        assert reopened.head == head
        reopened.append(2, b"post-crash")
        assert [(k, p) for _, k, p in reopened.replay()] == [
            (1, b"pre-crash"),
            (2, b"post-crash"),
        ]

    def test_stale_writer_append_is_fenced(self):
        """A pre-restore handle left around after a restart must not fork
        the chain: once the live handle appends, the stale one's next
        append targets an occupied address and fails loudly instead of
        silently clobbering the live writer's records."""
        store = InMemoryBlockStore()
        stale = WriteAheadLog(store)
        stale.append(1, b"shared-prefix")
        live = WriteAheadLog(store)  # the restarted process
        live.append(2, b"live-only")
        with pytest.raises(WalCorruptionError, match="another writer"):
            stale.append(3, b"fork attempt")
        # The live chain is untouched.
        assert [(k, p) for _, k, p in live.replay(live.head)] == [
            (1, b"shared-prefix"),
            (2, b"live-only"),
        ]

    def test_kind_must_fit_one_byte(self):
        wal = WriteAheadLog(InMemoryBlockStore())
        with pytest.raises(ValueError):
            wal.append(256, b"")
        with pytest.raises(ValueError):
            wal.append(-1, b"")

    def test_corrupted_record_detected(self):
        store = TamperingBlockStore()
        wal = WriteAheadLog(store)
        for i in range(4):
            wal.append(1, b"record-%d" % i)
        store.corrupt(2, bit=7)
        with pytest.raises(WalCorruptionError):
            list(wal.replay())
        # A restart over the tampered store fails during open, too.
        with pytest.raises(WalCorruptionError):
            WriteAheadLog(store)

    def test_swapped_records_detected(self):
        store = TamperingBlockStore()
        wal = WriteAheadLog(store)
        wal.append(1, b"first")
        wal.append(1, b"second")
        store.swap(1, 2)
        with pytest.raises(WalCorruptionError):
            list(wal.replay())

    def test_replayed_block_detected(self):
        """Serving one record's (valid) bytes at another's address is the
        positional-replay attack; the position-bound chain hash catches it."""
        store = TamperingBlockStore()
        wal = WriteAheadLog(store)
        wal.append(1, b"first")
        wal.append(1, b"second")
        store.intercept = lambda addr, block: (
            store.history[1][0] if addr == 2 else block
        )
        with pytest.raises(WalCorruptionError):
            list(wal.replay())

    def test_truncated_tail_detected_via_expected_head(self):
        store = InMemoryBlockStore()
        wal = WriteAheadLog(store)
        wal.append(1, b"kept")
        wal.append(1, b"dropped by the adversary")
        head = wal.head
        store.delete(2)
        # A pure chain walk cannot see a clean truncation...
        assert [p for _, _, p in WriteAheadLog(store).replay()] == [b"kept"]
        # ...but a head reconciled from outside the store can.
        with pytest.raises(WalCorruptionError):
            list(WriteAheadLog(store).replay(expected_head=head))

    def test_anchor_and_compaction_preserve_replay(self):
        store = InMemoryBlockStore()
        wal = WriteAheadLog(store)
        for i in range(5):
            wal.append(1, b"old-%d" % i)
        wal.append(9, b"snapshot")  # the record the anchor will name
        wal.anchor_now()
        assert wal.compact_before(6) == 5
        wal.append(1, b"tail")
        replayed = [(k, p) for _, k, p in WriteAheadLog(store).replay()]
        assert replayed == [(9, b"snapshot"), (1, b"tail")]

    def test_anchor_refuses_empty_log(self):
        with pytest.raises(ValueError):
            WriteAheadLog(InMemoryBlockStore()).anchor_now()

    def test_corrupted_anchor_detected(self):
        store = TamperingBlockStore()
        wal = WriteAheadLog(store)
        wal.append(9, b"snapshot")
        wal.anchor_now()
        store.corrupt(0, bit=100)
        with pytest.raises(WalCorruptionError):
            WriteAheadLog(store)

    def test_stale_anchor_replay_detected(self):
        """An adversary serving yesterday's anchor (pointing at a compacted
        snapshot) must not silently resurrect old state."""
        store = TamperingBlockStore()
        wal = WriteAheadLog(store)
        wal.append(9, b"snapshot-one")
        wal.anchor_now()
        wal.append(1, b"newer work")
        wal.append(9, b"snapshot-two")
        wal.anchor_now()
        wal.compact_before(3)  # snapshot-one's record is gone
        store.replay(0, version=0)  # serve the stale anchor on the next read
        with pytest.raises(WalCorruptionError):
            WriteAheadLog(store)


# ---------------------------------------------------------------------------
# Aggregate-signature serialization
# ---------------------------------------------------------------------------
class TestAggregateCodec:
    def test_ecdsa_list_round_trips(self):
        aggregate = ((12345, 67890), (2**200, 3**100))
        scheme, data = encode_aggregate_auto(aggregate)
        assert scheme == "ecdsa-list"
        assert decode_aggregate(scheme, data) == aggregate

    def test_to_bytes_objects_use_bls(self):
        class FakeBls:
            def to_bytes(self):
                return b"\x01" * 96

        scheme, data = encode_aggregate_auto(FakeBls())
        assert (scheme, data) == ("bls", b"\x01" * 96)

    def test_unserializable_aggregate_degrades_to_none(self):
        assert encode_aggregate_auto(object()) == (None, None)

    def test_unknown_scheme_rejected(self):
        with pytest.raises(WireFormatError):
            decode_aggregate("rot13", b"")
        with pytest.raises(WireFormatError):
            decode_aggregate("ecdsa-list", b"\x00" * 63)  # not a 64B multiple


# ---------------------------------------------------------------------------
# ProviderJournal: the write-ahead epoch protocol
# ---------------------------------------------------------------------------
def _transition(old=b"\xaa" * 32, new=b"\xbb" * 32, root=b"\xcc" * 32):
    return CertifiedTransition(
        old_digest=old,
        new_digest=new,
        root=root,
        aggregate=((1, 2), (3, 4)),
        signer_ids=(0, 1),
        shard=0,
        num_shards=1,
    )


class TestProviderJournal:
    def test_escrow_records_round_trip(self):
        journal = ProviderJournal(InMemoryBlockStore())
        journal.record_incremental("alice", b"inc-1")
        journal.record_incremental("alice", b"inc-2")
        journal.record_reply("bob", 3, b"escrowed-reply")
        journal.record_hsm_block(5, 77, b"key-block")
        journal.record_publish(b"\xdd" * 32)
        state = journal.replay_state()
        assert state.incrementals == {"alice": [b"inc-1", b"inc-2"]}
        assert state.replies == {("bob", 3): [b"escrowed-reply"]}
        assert state.hsm_blocks == {5: {77: b"key-block"}}
        assert state.last_publish_root == b"\xdd" * 32

    def test_intent_commit_applies_entries(self):
        journal = ProviderJournal(InMemoryBlockStore())
        entries = [(b"rec|a|0", b"h1"), (b"rec|b|0", b"h2")]
        seq = journal.record_intent(0, 1, b"\xaa" * 32, b"\xbb" * 32, b"\xcc" * 32, entries)
        journal.record_commit(0, seq, _transition())
        state = journal.replay_state()
        assert state.open_intents == {}
        assert state.shard_entries[0] == entries
        assert state.shard_epochs[0] == 1
        (stored,) = state.shard_transitions[0]
        assert stored.scheme == "ecdsa-list"
        assert stored.to_certified(0, 1).aggregate == ((1, 2), (3, 4))

    def test_intent_rollback_drops_entries(self):
        journal = ProviderJournal(InMemoryBlockStore())
        seq = journal.record_intent(
            0, 1, b"\xaa" * 32, b"\xbb" * 32, b"\xcc" * 32, [(b"rec|a|0", b"h")]
        )
        journal.record_rollback(0, seq)
        state = journal.replay_state()
        assert state.open_intents == {}
        assert state.shard_entries.get(0, []) == []
        assert state.shard_transitions.get(0, []) == []

    def test_crash_leaves_an_open_intent(self):
        journal = ProviderJournal(InMemoryBlockStore())
        journal.record_intent(
            2, 4, b"\xaa" * 32, b"\xbb" * 32, b"\xcc" * 32, [(b"rec|a|0", b"h")]
        )
        state = journal.replay_state()
        assert list(state.open_intents) == [2]
        assert state.open_intents[2].entries == [(b"rec|a|0", b"h")]

    def test_double_intent_on_one_lane_rejected(self):
        journal = ProviderJournal(InMemoryBlockStore())
        args = (1, 2, b"\xaa" * 32, b"\xbb" * 32, b"\xcc" * 32, [])
        journal.record_intent(*args)
        journal.record_intent(*args)  # no crash of run_update can do this
        with pytest.raises(JournalReplayError):
            journal.replay_state()

    def test_commit_without_intent_rejected(self):
        journal = ProviderJournal(InMemoryBlockStore())
        journal.record_commit(0, 99, _transition())
        with pytest.raises(JournalReplayError):
            journal.replay_state()

    def test_rollback_without_intent_rejected(self):
        journal = ProviderJournal(InMemoryBlockStore())
        journal.record_rollback(0, 99)
        with pytest.raises(JournalReplayError):
            journal.replay_state()

    def test_gc_clears_entries_but_keeps_escrow(self):
        journal = ProviderJournal(InMemoryBlockStore())
        seq = journal.record_intent(
            0, 1, b"\xaa" * 32, b"\xbb" * 32, b"\xcc" * 32, [(b"rec|a|0", b"h")]
        )
        journal.record_commit(0, seq, _transition())
        journal.record_incremental("alice", b"inc")
        journal.record_gc(1)
        state = journal.replay_state()
        assert state.shard_entries[0] == []
        assert state.garbage_collections == 1
        assert state.incrementals == {"alice": [b"inc"]}

    def test_snapshot_refuses_open_intents(self):
        journal = ProviderJournal(InMemoryBlockStore())
        journal.record_intent(0, 1, b"\xaa" * 32, b"\xbb" * 32, b"\xcc" * 32, [])
        with pytest.raises(ValueError):
            journal.write_snapshot(journal.replay_state())

    def test_snapshot_compacts_and_replays_identically(self):
        store = InMemoryBlockStore()
        journal = ProviderJournal(store)
        entries = [(b"rec|a|0", b"h1")]
        seq = journal.record_intent(
            0, 1, b"\xaa" * 32, b"\xbb" * 32, b"\xcc" * 32, entries
        )
        journal.record_commit(0, seq, _transition())
        journal.record_reply("bob", 0, b"reply")
        before = journal.replay_state()
        blocks_before = len(store)
        journal.write_snapshot(before)
        assert len(store) < blocks_before  # history reclaimed
        journal.record_incremental("carol", b"post-snapshot")
        after = ProviderJournal(store).replay_state()  # a restarted process
        assert after.shard_entries == before.shard_entries
        assert after.replies == before.replies
        assert after.incrementals == {"carol": [b"post-snapshot"]}

    def test_state_codec_round_trips(self):
        state = RestoredState(
            num_shards=2,
            shard_entries={0: [(b"id", b"v")], 1: []},
            shard_epochs={0: 3, 1: 1},
            shard_transitions={
                0: [
                    StoredTransition(
                        old_digest=b"\xaa" * 32,
                        new_digest=b"\xbb" * 32,
                        root=b"\xcc" * 32,
                        signer_ids=(1, 3),
                        scheme="ecdsa-list",
                        aggregate=b"\x00" * 64,
                    )
                ],
                1: [],
            },
            garbage_collections=2,
            incrementals={"alice": [b"blob"]},
            replies={("bob", 1): [b"reply-a", b"reply-b"]},
            hsm_blocks={0: {4: b"block"}},
            last_publish_root=b"\xee" * 32,
        )
        decoded = decode_state(encode_state(state))
        assert decoded == state


# ---------------------------------------------------------------------------
# Tampering x restore (deployment level): detected, never silently restored
# ---------------------------------------------------------------------------
class TestTamperedRestore:
    @pytest.fixture(scope="class")
    def tampered_setup(self):
        """One durable deployment on a TamperingBlockStore, with a backup."""
        store = TamperingBlockStore()
        params = SystemParams.for_testing(num_hsms=4, cluster_size=4)
        dep = Deployment.create(params, rng=random.Random(7), store=store)
        dep.new_client("alice", transport="direct").backup(b"secret", "1234")
        return params, store, dep

    def _survivor(self, store):
        copy = TamperingBlockStore()
        copy._blocks = dict(store._blocks)
        copy.history = {addr: list(v) for addr, v in store.history.items()}
        return copy

    def test_honest_store_restores(self, tampered_setup):
        # The control for the tests below: a pristine copy restores fine.
        params, store, dep = tampered_setup
        restored = Deployment.restore(params, self._survivor(store), dep.fleet)
        assert restored.provider.journal is not None
        assert restored.provider.log.digest == dep.provider.log.digest

    def test_corrupted_block_detected_on_restore(self, tampered_setup):
        params, store, dep = tampered_setup
        survivor = self._survivor(store)
        survivor.corrupt(3, bit=11)
        with pytest.raises(WalCorruptionError):
            Deployment.restore(params, survivor, dep.fleet)

    def test_swapped_blocks_detected_on_restore(self, tampered_setup):
        params, store, dep = tampered_setup
        survivor = self._survivor(store)
        survivor.swap(2, 5)
        with pytest.raises(WalCorruptionError):
            Deployment.restore(params, survivor, dep.fleet)

    def test_replayed_block_detected_on_restore(self, tampered_setup):
        params, store, dep = tampered_setup
        survivor = self._survivor(store)
        survivor.intercept = lambda addr, block: (
            survivor.history[1][0] if addr == 4 else block
        )
        with pytest.raises(WalCorruptionError):
            Deployment.restore(params, survivor, dep.fleet)
