"""Shamir secret sharing: reconstruction identities and failure modes."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.shamir import Share, ShamirSharer


class TestSharing:
    def test_roundtrip_all_shares(self):
        sharer = ShamirSharer(3, 5)
        secret = b"sixteen-byte-key"
        assert sharer.reconstruct(sharer.share(secret)) == secret

    def test_roundtrip_exactly_threshold(self):
        sharer = ShamirSharer(3, 5)
        secret = b"sixteen-byte-key"
        shares = sharer.share(secret)
        assert sharer.reconstruct(shares[:3]) == secret
        assert sharer.reconstruct(shares[2:]) == secret

    def test_missing_shares_as_none(self):
        sharer = ShamirSharer(2, 4)
        secret = b"0123456789abcdef"
        shares = sharer.share(secret)
        assert sharer.reconstruct([None, shares[1], None, shares[3]]) == secret

    def test_below_threshold_raises(self):
        sharer = ShamirSharer(3, 5)
        shares = sharer.share(b"0123456789abcdef")
        with pytest.raises(ValueError):
            sharer.reconstruct(shares[:2])

    def test_below_threshold_reveals_nothing_statistically(self):
        # With t-1 shares every candidate secret is equally consistent:
        # reconstructing from 2-of-3 shares plus a *wrong* third gives a
        # different (valid-looking) secret, not an error.
        sharer = ShamirSharer(3, 3)
        secret = b"0123456789abcdef"
        shares = sharer.share(secret)
        forged = Share(x=shares[2].x, y=(shares[2].y + 1) % sharer.field.modulus)
        wrong = sharer.reconstruct([shares[0], shares[1], forged])
        assert wrong != secret

    def test_one_of_one(self):
        sharer = ShamirSharer(1, 1)
        assert sharer.reconstruct(sharer.share(b"k" * 16)) == b"k" * 16

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            ShamirSharer(0, 5)
        with pytest.raises(ValueError):
            ShamirSharer(6, 5)

    def test_secret_too_large(self):
        sharer = ShamirSharer(2, 3)
        with pytest.raises(ValueError):
            sharer.share(b"\xff" * 33)

    def test_deterministic_with_rng(self):
        import random

        sharer = ShamirSharer(2, 3)
        s1 = sharer.share(b"k" * 16, rng=random.Random(5))
        s2 = sharer.share(b"k" * 16, rng=random.Random(5))
        assert s1 == s2


class TestShareSerialization:
    def test_roundtrip(self):
        share = Share(x=7, y=123456789)
        assert Share.from_bytes(share.to_bytes()) == share

    def test_malformed_rejected(self):
        with pytest.raises(ValueError):
            Share.from_bytes(b"short")


class TestRobustReconstruction:
    def test_recovers_despite_corrupt_share(self):
        sharer = ShamirSharer(2, 5)
        secret = b"0123456789abcdef"
        shares = list(sharer.share(secret))
        shares[0] = Share(x=shares[0].x, y=(shares[0].y ^ 1))

        def verifier(candidate):
            return candidate == secret

        assert sharer.reconstruct_robust(shares, verifier) == secret

    def test_all_corrupt_fails(self):
        sharer = ShamirSharer(2, 3)
        shares = sharer.share(b"0123456789abcdef")
        bad = [Share(x=s.x, y=s.y ^ 1) for s in shares]
        with pytest.raises(ValueError):
            sharer.reconstruct_robust(bad, lambda c: False, max_attempts=8)


@given(
    secret=st.binary(min_size=16, max_size=16),
    threshold=st.integers(1, 6),
    extra=st.integers(0, 4),
)
@settings(max_examples=40)
def test_share_reconstruct_property(secret, threshold, extra):
    sharer = ShamirSharer(threshold, threshold + extra)
    shares = sharer.share(secret)
    assert sharer.reconstruct(shares[:threshold]) == secret


@given(data=st.data(), secret=st.binary(min_size=16, max_size=16))
@settings(max_examples=25)
def test_any_threshold_subset_works(data, secret):
    sharer = ShamirSharer(3, 6)
    shares = sharer.share(secret)
    subset = data.draw(st.permutations(shares)) [:3]
    assert sharer.reconstruct(subset) == secret
