"""Appendix B.3: making progress despite failures during the audit."""

import random

import pytest

from repro.crypto.bloom import BloomParams
from repro.hsm.fleet import HsmFleet
from repro.log.distributed import (
    DistributedLog,
    LogConfig,
    LogUpdateRejected,
    audit_chunk_indices,
)


@pytest.fixture
def small_world():
    cfg = LogConfig(audit_count=1, quorum_fraction=0.4)
    fleet = HsmFleet(
        6,
        BloomParams.for_punctures(4, failure_exponent=4),
        log_config=cfg,
        rng=random.Random(13),
    )
    return fleet, DistributedLog(cfg), cfg


class TestCoverage:
    def test_uncovered_chunks_computed_from_deterministic_sets(self, small_world):
        fleet, log, cfg = small_world
        for i in range(12):
            log.insert(b"c%d" % i, b"h")
        round_ = log.prepare_update(num_chunks=6)
        all_ids = [h.index for h in fleet]
        uncovered_all = log._uncovered_chunks(round_, all_ids)
        # With audit_count=1 and 6 HSMs over 6 chunks, some chunks may be
        # uncovered; dropping signers can only grow the uncovered set.
        uncovered_some = log._uncovered_chunks(round_, all_ids[:2])
        assert set(uncovered_all) <= set(uncovered_some)
        log.certify_round(round_, fleet.hsms)

    def test_round_completes_when_hsm_fails_mid_audit(self, small_world):
        """An HSM dying between prepare and audit must not stall the epoch:
        survivors cover its chunks and the digest still certifies."""
        fleet, log, cfg = small_world
        for i in range(12):
            log.insert(b"m%d" % i, b"h")
        round_ = log.prepare_update(num_chunks=6)
        fleet[3].fail_stop()
        log.certify_round(round_, fleet.hsms)
        assert fleet[0].log_digest == log.digest
        assert fleet[3].log_digest != log.digest

    def test_survivors_catch_tampering_in_covered_chunks(self, small_world):
        """Coverage audits are real audits: if the provider tampers with a
        chunk that only a failed HSM would have audited, a survivor covering
        it must still reject."""
        import dataclasses

        fleet, log, cfg = small_world
        for i in range(12):
            log.insert(b"t%d" % i, b"h")
        round_ = log.prepare_update(num_chunks=6)
        signer_ids = [h.index for h in fleet]
        # Find a chunk covered by few HSMs; tamper with it and fail those.
        coverage = {
            i: [
                s
                for s in signer_ids
                if i in audit_chunk_indices(round_.root, s, round_.num_chunks, cfg.audit_count)
            ]
            for i in range(round_.num_chunks)
        }
        target = min(coverage, key=lambda i: len(coverage[i]))
        for hsm_index in coverage[target]:
            fleet[hsm_index].fail_stop()
        if len(fleet.online()) < 2:
            pytest.skip("degenerate draw: almost all HSMs audit the target chunk")
        round_.chunks[target] = dataclasses.replace(round_.chunks[target], proofs=())
        with pytest.raises(LogUpdateRejected):
            log.certify_round(round_, fleet.hsms)

    def test_coverage_request_checks_base_digest(self, small_world):
        import dataclasses

        fleet, log, cfg = small_world
        log.insert(b"x", b"h")
        round_ = log.prepare_update(num_chunks=2)
        forged = dataclasses.replace(round_, old_digest=b"\x00" * 32)
        with pytest.raises(LogUpdateRejected):
            fleet[0].audit_specific_chunks(forged, [0])
