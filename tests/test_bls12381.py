"""BLS12-381: field tower, curve groups, pairing bilinearity.

Pairings in pure Python cost ~1s each, so this file computes few of them
and reuses results across assertions.
"""

import pytest

from repro.crypto import bls12381 as bls


class TestFieldTower:
    def test_fq_arithmetic(self):
        a = bls.Fq(5)
        assert a + 3 == bls.Fq(8)
        assert a * a == bls.Fq(25)
        assert (a / a) == bls.Fq(1)
        assert a * a.inv() == bls.Fq(1)
        assert -a == bls.Fq(bls.Q - 5)
        assert a ** 3 == bls.Fq(125)

    def test_fq_zero_inverse(self):
        with pytest.raises(ZeroDivisionError):
            bls.Fq(0).inv()

    def test_fq2_is_complex_like(self):
        # u^2 = -1
        u = bls.Fq2([0, 1])
        assert u * u == -bls.Fq2.one()

    def test_fq2_inverse(self):
        x = bls.Fq2([3, 7])
        assert x * x.inv() == bls.Fq2.one()

    def test_fq2_conjugate_norm(self):
        x = bls.Fq2([3, 7])
        norm = x * x.conjugate()
        assert norm.coeffs[1] == 0  # norm lands in Fq

    def test_fq12_inverse(self):
        x = bls.Fq12([1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12])
        assert x * x.inv() == bls.Fq12.one()

    def test_fq12_modulus_relation(self):
        # w^12 = 2w^6 - 2
        w = bls.Fq12([0, 1] + [0] * 10)
        w6 = w ** 6
        assert w ** 12 == w6 * 2 - bls.Fq12([2] + [0] * 11)

    def test_coefficient_count_enforced(self):
        with pytest.raises(ValueError):
            bls.Fq2([1, 2, 3])


class TestCurveGroups:
    def test_generators_on_curve(self):
        assert bls.is_on_curve(bls.G1_GEN, bls.B1)
        assert bls.is_on_curve(bls.G2_GEN, bls.B2)

    def test_group_orders(self):
        assert bls.multiply(bls.G1_GEN, bls.R) is None
        assert bls.multiply(bls.G2_GEN, bls.R) is None

    def test_addition_laws(self):
        p2 = bls.add(bls.G1_GEN, bls.G1_GEN)
        assert p2 == bls.double(bls.G1_GEN) == bls.multiply(bls.G1_GEN, 2)
        p5 = bls.add(bls.multiply(bls.G1_GEN, 2), bls.multiply(bls.G1_GEN, 3))
        assert p5 == bls.multiply(bls.G1_GEN, 5)

    def test_identity_and_inverse(self):
        assert bls.add(bls.G1_GEN, None) == bls.G1_GEN
        assert bls.add(bls.G1_GEN, bls.neg(bls.G1_GEN)) is None

    def test_twist_lands_on_fq12_curve(self):
        twisted = bls.twist(bls.G2_GEN)
        assert bls.is_on_curve(twisted, bls.Fq12([4] + [0] * 11))


class TestSerialization:
    def test_g1_roundtrip(self):
        p = bls.multiply(bls.G1_GEN, 7)
        assert bls.g1_from_bytes(bls.g1_to_bytes(p)) == p

    def test_g2_roundtrip(self):
        p = bls.multiply(bls.G2_GEN, 7)
        assert bls.g2_from_bytes(bls.g2_to_bytes(p)) == p

    def test_infinity_roundtrip(self):
        assert bls.g1_from_bytes(bls.g1_to_bytes(None)) is None
        assert bls.g2_from_bytes(bls.g2_to_bytes(None)) is None

    def test_off_curve_rejected(self):
        bad = b"\x01" + (1).to_bytes(48, "big") + (1).to_bytes(48, "big")
        with pytest.raises(ValueError):
            bls.g1_from_bytes(bad)
        with pytest.raises(ValueError):
            bls.g1_from_bytes(b"junk")


class TestHashToG1:
    def test_in_subgroup(self):
        h = bls.hash_to_g1(b"message")
        assert bls.is_on_curve(h, bls.B1)
        assert bls.multiply(h, bls.R) is None

    def test_deterministic_and_distinct(self):
        assert bls.hash_to_g1(b"a") == bls.hash_to_g1(b"a")
        assert bls.hash_to_g1(b"a") != bls.hash_to_g1(b"b")


class TestPairing:
    def test_bilinearity_and_nondegeneracy(self):
        e = bls.pairing(bls.G1_GEN, bls.G2_GEN)
        assert e != bls.Fq12.one()
        assert e ** bls.R == bls.Fq12.one()
        e2a = bls.pairing(bls.multiply(bls.G1_GEN, 2), bls.G2_GEN)
        e2b = bls.pairing(bls.G1_GEN, bls.multiply(bls.G2_GEN, 2))
        assert e2a == e * e == e2b

    def test_identity_pairs_to_one(self):
        assert bls.pairing(None, bls.G2_GEN) == bls.Fq12.one()
        assert bls.pairing(bls.G1_GEN, None) == bls.Fq12.one()

    def test_off_curve_inputs_rejected(self):
        with pytest.raises(ValueError):
            bls.pairing((bls.Fq(1), bls.Fq(1)), bls.G2_GEN)
