"""Key rotation (§9.1) and log garbage collection (§6.2) at system level."""

import pytest

from repro.core.client import RecoveryError
from repro.core.params import SystemParams
from repro.core.protocol import Deployment
from repro.hsm.device import HsmRefusedError


@pytest.fixture
def tiny_deployment():
    """Very small Bloom keys so rotation triggers after a few recoveries."""
    import random

    params = SystemParams.for_testing(
        num_hsms=8, cluster_size=3, max_punctures=2, bloom_failure_exponent=3
    )
    return Deployment.create(params, rng=random.Random(21))


class TestRotation:
    def test_rotation_triggers_after_wear(self, tiny_deployment):
        dep = tiny_deployment
        rotated = []
        for i in range(8):
            client = dep.new_client(f"wear{i}")
            client.backup(b"data", pin="1234")
            assert client.recover(pin="1234") == b"data"
            rotated.extend(dep.rotate_keys_if_needed())
        assert rotated  # some HSM wore out and rotated

    def test_rotation_bumps_epochs_and_updates_clients(self, tiny_deployment):
        dep = tiny_deployment
        client = dep.new_client("epoch-watcher")
        assert client._config_epoch() == 0
        dep.fleet[0].rotate_keys(dep.provider.storage_for_hsm(0))
        # deployment-level rotation refresh
        dep.rotate_keys_if_needed()  # no-op but harmless
        client.refresh_mpk(dep.fleet.master_public_key())
        assert client._config_epoch() == 1

    def test_backup_recover_works_after_rotation(self, tiny_deployment):
        dep = tiny_deployment
        for hsm in dep.fleet:
            hsm.rotate_keys(dep.provider.storage_for_hsm(hsm.index))
        client = dep.new_client("post-rotate")
        client.refresh_mpk(dep.fleet.master_public_key())
        client.backup(b"fresh keys", pin="1234")
        assert client.recover(pin="1234") == b"fresh keys"

    def test_stale_mpk_backup_unrecoverable_after_rotation(self, tiny_deployment):
        """A backup encrypted to pre-rotation keys dies with them — which is
        why clients download rotated keys daily (2 MB/day in the paper)."""
        dep = tiny_deployment
        client = dep.new_client("stale")
        client.backup(b"doomed", pin="1234")
        ct = dep.provider.fetch_backup("stale")
        cluster = set(client.lhe.select(ct.salt, "1234"))
        for index in cluster:
            dep.fleet[index].rotate_keys(dep.provider.storage_for_hsm(index))
        with pytest.raises(RecoveryError):
            client.recover(pin="1234")


class TestGarbageCollection:
    def test_gc_resets_attempt_budget(self, tiny_deployment):
        dep = tiny_deployment
        client = dep.new_client("gc-user")
        client.backup(b"data", pin="5678")
        budget = dep.params.max_attempts_per_user
        for guess in range(budget):
            try:
                client.recover(pin=f"{guess:04d}")
            except RecoveryError:
                pass
        with pytest.raises(RecoveryError):
            client.recover(pin="5678")
        dep.garbage_collect_log()
        # After GC the user has budget again (and the backup survived).
        assert client.recover(pin="5678") == b"data"

    def test_gc_archives_old_log(self, tiny_deployment):
        dep = tiny_deployment
        client = dep.new_client("archived")
        client.backup(b"data", pin="1234")
        client.recover(pin="1234")
        entries_before = list(dep.provider.log.ordered_entries)
        dep.garbage_collect_log()
        assert dep.provider.log.archived_logs[-1] == entries_before

    def test_gc_budget_bounds_resets(self, tiny_deployment):
        dep = tiny_deployment
        for _ in range(dep.params.max_garbage_collections):
            dep.garbage_collect_log()
        with pytest.raises(HsmRefusedError):
            dep.garbage_collect_log()
