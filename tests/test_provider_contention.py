"""Attempt-number reservation under heavy thread contention.

``reserve_attempt_number`` is the provider's only defense against two
concurrent sessions for one user colliding on a log identifier, so the
O(1) counters must never skip or reuse a slot no matter how the scheduler
interleaves.  16 threads hammer reservations — on the raw provider, and
through the byte-framed ``WireProviderChannel`` loopback — logging each
reserved slot, then every outcome is cross-checked against the reference
full-log scan.
"""

import random
import threading

import pytest

from repro.core.provider import ServiceProvider
from repro.service.channel import ProviderWireEndpoint, WireProviderChannel

THREADS = 16
RESERVATIONS_PER_THREAD = 50
#: One hot user every thread fights over, plus a handful of bystanders so
#: per-user isolation is exercised at the same time.
USERS = ("hot-user", "cold-user-a", "cold-user-b", "cold-user-c")


def _hammer(surface, provider) -> dict:
    """Reserve-and-log from THREADS threads; returns reservations per user."""
    reserved = {user: [] for user in USERS}
    lock = threading.Lock()
    start = threading.Barrier(THREADS)
    errors = []

    def worker(seed: int) -> None:
        rng = random.Random(seed)
        start.wait()
        try:
            for _ in range(RESERVATIONS_PER_THREAD):
                # Mostly the contended user, sometimes a bystander.
                user = USERS[0] if rng.random() < 0.7 else rng.choice(USERS[1:])
                attempt = surface.reserve_attempt_number(user)
                surface.log_recovery_attempt(user, attempt, b"commit")
                with lock:
                    reserved[user].append(attempt)
        except Exception as exc:  # noqa: BLE001 - fail the test, not the thread
            errors.append(repr(exc))

    threads = [threading.Thread(target=worker, args=(seed,)) for seed in range(THREADS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors, errors
    return reserved


def _assert_no_skips_or_reuse(provider, reserved: dict) -> None:
    total = sum(len(slots) for slots in reserved.values())
    assert total == THREADS * RESERVATIONS_PER_THREAD
    for user, slots in reserved.items():
        # No reuse, no skips: exactly 0..n-1, each exactly once.
        assert sorted(slots) == list(range(len(slots))), f"slots broken for {user!r}"
        # The O(1) counter agrees with the reference full-log scan.
        assert provider.next_attempt_number(user) == len(slots)
        assert provider.scan_attempt_number(user) == len(slots)


@pytest.mark.slow
def test_reserve_attempt_number_under_contention_direct():
    provider = ServiceProvider()
    reserved = _hammer(provider, provider)
    _assert_no_skips_or_reuse(provider, reserved)


@pytest.mark.slow
def test_reserve_attempt_number_under_contention_over_the_wire():
    """The same hammering with every reservation crossing wire frames (the
    channel and endpoint must add no race of their own)."""
    provider = ServiceProvider()
    channel = WireProviderChannel(ProviderWireEndpoint(provider))
    reserved = _hammer(channel, provider)
    _assert_no_skips_or_reuse(provider, reserved)
    assert channel.wire_stats()["frames_sent"] == 2 * THREADS * RESERVATIONS_PER_THREAD
