"""Service-provider storage and log-facing behaviour."""

import pytest

from repro.core.identifiers import attempt_identifier
from repro.core.provider import ProviderError, ServiceProvider
from repro.log.distributed import LogConfig


@pytest.fixture
def provider():
    return ServiceProvider(LogConfig(audit_count=2))


class TestBackupStorage:
    def test_upload_fetch_roundtrip(self, provider):
        index = provider.upload_backup("alice", "ct-0")
        assert index == 0
        assert provider.fetch_backup("alice") == "ct-0"

    def test_multiple_versions(self, provider):
        provider.upload_backup("alice", "ct-0")
        provider.upload_backup("alice", "ct-1")
        assert provider.backup_count("alice") == 2
        assert provider.fetch_backup("alice", 0) == "ct-0"
        assert provider.fetch_backup("alice", -1) == "ct-1"

    def test_missing_user(self, provider):
        with pytest.raises(ProviderError):
            provider.fetch_backup("ghost")

    def test_incrementals(self, provider):
        provider.upload_incremental("alice", b"day1")
        provider.upload_incremental("alice", b"day2")
        assert provider.fetch_incrementals("alice") == [b"day1", b"day2"]
        assert provider.fetch_incrementals("bob") == []


class TestAttemptNumbering:
    def test_first_attempt_is_zero(self, provider):
        assert provider.next_attempt_number("alice") == 0

    def test_pending_attempts_counted(self, provider):
        provider.log_recovery_attempt("alice", 0, b"h0")
        assert provider.next_attempt_number("alice") == 1

    def test_committed_attempts_counted(self, provider):
        provider.log_recovery_attempt("alice", 0, b"h0")
        provider.log.prepare_update(num_chunks=1)  # commit without HSMs
        assert provider.next_attempt_number("alice") == 1

    def test_numbering_is_per_user(self, provider):
        provider.log_recovery_attempt("alice", 0, b"h0")
        assert provider.next_attempt_number("bob") == 0

    def test_duplicate_attempt_rejected(self, provider):
        provider.log_recovery_attempt("alice", 0, b"h0")
        with pytest.raises(KeyError):
            provider.log_recovery_attempt("alice", 0, b"h1")

    def test_counter_agrees_with_reference_scan(self, provider):
        """The O(1) counters must match the full-log rescan at every step."""
        for step in range(4):
            for user in ("alice", "bob"):
                assert provider.next_attempt_number(user) == provider.scan_attempt_number(
                    user
                )
            provider.log_recovery_attempt("alice", step, b"h%d" % step)
            if step % 2:  # counters must survive pending -> committed moves
                provider.log.prepare_update(num_chunks=1)
        assert provider.next_attempt_number("alice") == 4
        assert provider.scan_attempt_number("alice") == 4

    def test_reserve_is_atomic_across_threads(self, provider):
        import threading

        claimed = []

        def worker():
            for _ in range(25):
                claimed.append(provider.reserve_attempt_number("alice"))

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sorted(claimed) == list(range(100))

    def test_garbage_collection_resets_counters(self, provider):
        provider.log_recovery_attempt("alice", 0, b"h0")
        provider.reserve_attempt_number("alice")
        assert provider.next_attempt_number("alice") == 2
        provider.log.garbage_collect(hsms=[])
        assert provider.next_attempt_number("alice") == 0
        assert provider.scan_attempt_number("alice") == 0
        # and the counters start counting again in the new generation
        provider.log_recovery_attempt("alice", 0, b"h0")
        assert provider.next_attempt_number("alice") == 1


class TestReplyEscrow:
    def test_store_and_fetch(self, provider):
        provider.store_reply("alice", 0, b"reply-a")
        provider.store_reply("alice", 0, b"reply-b")
        assert provider.fetch_replies("alice", 0) == [b"reply-a", b"reply-b"]
        assert provider.fetch_replies("alice", 1) == []


class TestWiring:
    def test_update_runner_required(self, provider):
        with pytest.raises(ProviderError):
            provider.run_log_update()

    def test_hsm_store_is_stable(self, provider):
        store = provider.storage_for_hsm(3)
        assert provider.storage_for_hsm(3) is store

    def test_monitoring_view(self, provider):
        provider.log_recovery_attempt("alice", 0, b"h0")
        provider.log.prepare_update(num_chunks=1)
        attempts = provider.recovery_attempts_for("alice")
        assert attempts == [(attempt_identifier("alice", 0), b"h0")]
