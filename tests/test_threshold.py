"""Threshold ElGamal (the rejected §1 design) — correctness and cost shape."""

import random

import pytest

from repro.crypto import threshold
from repro.crypto.gcm import AuthenticationError
from repro.metering import metered


@pytest.fixture(scope="module")
def setup():
    rng = random.Random(19)
    public, shares = threshold.keygen(3, 7, rng)
    return public, shares


class TestRoundtrip:
    def test_threshold_subset_decrypts(self, setup):
        public, shares = setup
        ct = threshold.encrypt(public, b"backup key", context=b"ctx")
        partials = [threshold.partial_decrypt(s, ct) for s in shares[:3]]
        assert threshold.combine(public, ct, partials, context=b"ctx") == b"backup key"

    def test_any_subset_works(self, setup):
        public, shares = setup
        ct = threshold.encrypt(public, b"m", context=b"c")
        partials = [threshold.partial_decrypt(s, ct) for s in (shares[1], shares[4], shares[6])]
        assert threshold.combine(public, ct, partials, context=b"c") == b"m"

    def test_below_threshold_rejected(self, setup):
        public, shares = setup
        ct = threshold.encrypt(public, b"m")
        partials = [threshold.partial_decrypt(s, ct) for s in shares[:2]]
        with pytest.raises(ValueError):
            threshold.combine(public, ct, partials)

    def test_duplicate_partials_do_not_count(self, setup):
        public, shares = setup
        ct = threshold.encrypt(public, b"m")
        one = threshold.partial_decrypt(shares[0], ct)
        with pytest.raises(ValueError):
            threshold.combine(public, ct, [one, one, one])

    def test_wrong_context_fails(self, setup):
        public, shares = setup
        ct = threshold.encrypt(public, b"m", context=b"right")
        partials = [threshold.partial_decrypt(s, ct) for s in shares[:3]]
        with pytest.raises(AuthenticationError):
            threshold.combine(public, ct, partials, context=b"wrong")

    def test_corrupt_partial_fails_closed(self, setup):
        public, shares = setup
        ct = threshold.encrypt(public, b"m")
        partials = [threshold.partial_decrypt(s, ct) for s in shares[:3]]
        index, point = partials[0]
        partials[0] = (index, point + point)
        with pytest.raises(AuthenticationError):
            threshold.combine(public, ct, partials)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            threshold.keygen(0, 5)
        with pytest.raises(ValueError):
            threshold.keygen(6, 5)


class TestCostShape:
    def test_per_recovery_work_scales_with_participants(self):
        """The rejected design's fatal property, measured: decryption work
        (point mults across HSMs) grows linearly with the threshold."""
        rng = random.Random(23)

        def mults_for(t, n):
            public, shares = threshold.keygen(t, n, rng)
            ct = threshold.encrypt(public, b"m")
            with metered() as meter:
                partials = [threshold.partial_decrypt(s, ct) for s in shares[:t]]
                threshold.combine(public, ct, partials)
            return meter.counts["elgamal_dec"] + meter.counts.get("ec_mult", 0)

        small = mults_for(2, 8)
        large = mults_for(8, 8)
        assert large > 3 * small
