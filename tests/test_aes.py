"""AES-128 against FIPS-197 vectors; GCM against NIST SP 800-38D vectors."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.aes import Aes128
from repro.crypto.gcm import AesGcm, AuthenticationError, ae_decrypt, ae_encrypt


class TestAesBlockVectors:
    def test_fips197_c1(self):
        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
        plaintext = bytes.fromhex("00112233445566778899aabbccddeeff")
        expected = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")
        assert Aes128(key).encrypt_block(plaintext) == expected

    def test_fips197_b(self):
        key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
        plaintext = bytes.fromhex("3243f6a8885a308d313198a2e0370734")
        expected = bytes.fromhex("3925841d02dc09fbdc118597196a0b32")
        assert Aes128(key).encrypt_block(plaintext) == expected

    def test_decrypt_inverts_encrypt(self):
        key = bytes(range(16))
        cipher = Aes128(key)
        block = b"sixteen byte blk"
        assert cipher.decrypt_block(cipher.encrypt_block(block)) == block

    def test_bad_key_length(self):
        with pytest.raises(ValueError):
            Aes128(b"short")

    def test_bad_block_length(self):
        with pytest.raises(ValueError):
            Aes128(bytes(16)).encrypt_block(b"short")
        with pytest.raises(ValueError):
            Aes128(bytes(16)).decrypt_block(b"short")

    @given(key=st.binary(min_size=16, max_size=16), block=st.binary(min_size=16, max_size=16))
    @settings(max_examples=30)
    def test_roundtrip_property(self, key, block):
        cipher = Aes128(key)
        assert cipher.decrypt_block(cipher.encrypt_block(block)) == block


class TestGcmVectors:
    def test_nist_case_1_empty(self):
        gcm = AesGcm(bytes(16))
        out = gcm.encrypt(bytes(12), b"")
        assert out == bytes.fromhex("58e2fccefa7e3061367f1d57a4e7455a")

    def test_nist_case_2_zero_block(self):
        gcm = AesGcm(bytes(16))
        out = gcm.encrypt(bytes(12), bytes(16))
        ct = bytes.fromhex("0388dace60b6a392f328c2b971b2fe78")
        tag = bytes.fromhex("ab6e47d42cec13bdf53a67b21257bddf")
        assert out == ct + tag

    def test_nist_case_4_with_aad(self):
        key = bytes.fromhex("feffe9928665731c6d6a8f9467308308")
        iv = bytes.fromhex("cafebabefacedbaddecaf888")
        plaintext = bytes.fromhex(
            "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72"
            "1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b39"
        )
        aad = bytes.fromhex("feedfacedeadbeeffeedfacedeadbeefabaddad2")
        ct = bytes.fromhex(
            "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e"
            "21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091"
        )
        tag = bytes.fromhex("5bc94fbc3221a5db94fae95ae7121a47")
        gcm = AesGcm(key)
        assert gcm.encrypt(iv, plaintext, aad) == ct + tag
        assert gcm.decrypt(iv, ct + tag, aad) == plaintext


class TestGcmBehaviour:
    def test_tamper_ciphertext_detected(self):
        gcm = AesGcm(bytes(16))
        out = bytearray(gcm.encrypt(bytes(12), b"hello world"))
        out[0] ^= 1
        with pytest.raises(AuthenticationError):
            gcm.decrypt(bytes(12), bytes(out))

    def test_tamper_tag_detected(self):
        gcm = AesGcm(bytes(16))
        out = bytearray(gcm.encrypt(bytes(12), b"hello world"))
        out[-1] ^= 1
        with pytest.raises(AuthenticationError):
            gcm.decrypt(bytes(12), bytes(out))

    def test_wrong_aad_detected(self):
        gcm = AesGcm(bytes(16))
        out = gcm.encrypt(bytes(12), b"data", aad=b"right")
        with pytest.raises(AuthenticationError):
            gcm.decrypt(bytes(12), out, aad=b"wrong")

    def test_truncated_raises(self):
        with pytest.raises(AuthenticationError):
            AesGcm(bytes(16)).decrypt(bytes(12), b"short")

    def test_bad_nonce_length(self):
        with pytest.raises(ValueError):
            AesGcm(bytes(16)).encrypt(b"short", b"data")

    @given(
        key=st.binary(min_size=16, max_size=16),
        plaintext=st.binary(max_size=200),
        aad=st.binary(max_size=50),
    )
    @settings(max_examples=25)
    def test_roundtrip_property(self, key, plaintext, aad):
        nonce = bytes(12)
        gcm = AesGcm(key)
        assert gcm.decrypt(nonce, gcm.encrypt(nonce, plaintext, aad), aad) == plaintext


class TestOneShotAe:
    def test_roundtrip(self):
        key = bytes(range(16))
        assert ae_decrypt(key, ae_encrypt(key, b"msg", b"aad"), b"aad") == b"msg"

    def test_nonce_randomized(self):
        key = bytes(range(16))
        assert ae_encrypt(key, b"msg") != ae_encrypt(key, b"msg")

    def test_wrong_key_fails(self):
        blob = ae_encrypt(bytes(16), b"msg")
        with pytest.raises(AuthenticationError):
            ae_decrypt(bytes([1] * 16), blob)

    def test_too_short_fails(self):
        with pytest.raises(AuthenticationError):
            ae_decrypt(bytes(16), b"tiny")
