"""The fixed-cluster baseline and its (reproduced) weaknesses."""

import pytest

from repro.baseline.system import (
    BaselineRecoveryError,
    BaselineSystem,
    PinAttemptsExhausted,
)
from repro.crypto.elgamal import HashedElGamal


class TestHappyPath:
    def test_roundtrip(self):
        system = BaselineSystem()
        client = system.new_client("alice")
        client.backup(b"recovery-key-16b", pin="123456")
        assert client.recover(pin="123456") == b"recovery-key-16b"

    def test_wrong_pin_rejected(self):
        system = BaselineSystem()
        client = system.new_client("alice")
        client.backup(b"recovery-key-16b", pin="123456")
        with pytest.raises(BaselineRecoveryError):
            client.recover(pin="654321")

    def test_ciphertext_is_tiny(self):
        """The paper: ~130 B baseline vs 16.5 KB SafetyPin."""
        system = BaselineSystem()
        client = system.new_client("alice")
        ct = client.backup(b"recovery-key-16b", pin="123456")
        assert ct.size_bytes() < 200


class TestFaultTolerance:
    def test_failover_within_cluster(self):
        system = BaselineSystem()
        client = system.new_client("alice")
        client.backup(b"recovery-key-16b", pin="123456")
        cluster = system.cluster_for("alice")
        for hsm in cluster[:4]:
            hsm.fail_stop()
        assert client.recover(pin="123456") == b"recovery-key-16b"

    def test_whole_cluster_down_fails(self):
        system = BaselineSystem()
        client = system.new_client("alice")
        client.backup(b"recovery-key-16b", pin="123456")
        for hsm in system.cluster_for("alice"):
            hsm.fail_stop()
        with pytest.raises(BaselineRecoveryError):
            client.recover(pin="123456")


class TestAttemptLimiting:
    def test_per_hsm_counter(self):
        system = BaselineSystem(max_attempts=3)
        client = system.new_client("alice")
        client.backup(b"recovery-key-16b", pin="123456")
        hsm = system.cluster_for("alice")[0]
        ct = system.fetch("alice")
        from repro.baseline.system import _pin_hash

        wrong = _pin_hash("000000", ct.salt)
        for _ in range(3):
            with pytest.raises(BaselineRecoveryError):
                hsm.recover(ct, wrong)
        with pytest.raises(PinAttemptsExhausted):
            hsm.recover(ct, wrong)

    def test_independent_counters_multiply_attack_budget(self):
        """The baseline's documented weakness: counters are per-HSM, so an
        attacker gets max_attempts x CLUSTER_SIZE guesses in total."""
        system = BaselineSystem(max_attempts=2)
        client = system.new_client("alice")
        client.backup(b"recovery-key-16b", pin="123456")
        ct = system.fetch("alice")
        from repro.baseline.system import _pin_hash

        total_guesses = 0
        for hsm in system.cluster_for("alice"):
            for _ in range(2):
                try:
                    hsm.recover(ct, _pin_hash("000000", ct.salt))
                except BaselineRecoveryError:
                    total_guesses += 1
                except PinAttemptsExhausted:
                    break
        assert total_guesses == 10  # 2 x 5, vs SafetyPin's global limit


class TestSinglePointOfFailure:
    def test_one_stolen_hsm_breaks_every_user(self):
        """The motivating attack: extract one baseline HSM's key and decrypt
        every ciphertext in its cluster offline — no PIN needed beyond a
        trivially parallelizable offline brute force; here we read the
        plaintext directly since the PIN hash is inside the ciphertext."""
        system = BaselineSystem()
        users = {}
        for i in range(5):
            name = f"user{i}"
            client = system.new_client(name)
            key = bytes([i]) * 16
            client.backup(key, pin="123456")
            users[name] = key
        stolen_secret = system.clusters[0][0].extract_secrets()
        for name, key in users.items():
            ct = system.fetch(name)
            plaintext = HashedElGamal.decrypt(stolen_secret, ct.body, context=b"baseline")
            assert plaintext[32:] == key  # recovery key exposed, sans PIN
