"""Stress/property harness: >= 16 threaded clients through RecoveryService.

Each thread runs interleaved backup/recovery sessions against one shared
deployment while the service ticker commits batched log epochs underneath.
The run is seeded (deployment RNG, fixed usernames/PINs) and the
assertions are schedule-independent, so the test is deterministic:

- every session recovers its exact plaintext;
- the log stays consistent (replaying the ordered public entries
  reproduces the provider's digest; nothing left pending);
- attempt numbers are unique and contiguous per user, and the O(1)
  counters agree with the reference full-log scan;
- every session's inclusion proof verifies against the digest of the
  shared epoch that served it, and epochs really are shared (strictly
  fewer epochs than sessions).
"""

import random
import threading

import pytest

from repro.core.identifiers import parse_attempt_identifier
from repro.core.params import SystemParams
from repro.core.protocol import Deployment
from repro.log.authdict import AuthenticatedDictionary, verify_includes

NUM_CLIENTS = 16
SECOND_ROUND_CLIENTS = 6  # these also run a second backup+recovery


@pytest.mark.slow
def test_sixteen_threaded_clients_interleave_backup_and_recovery():
    params = SystemParams.for_testing(
        num_hsms=12, cluster_size=3, max_punctures=96
    )
    deployment = Deployment.create(params, rng=random.Random(0xD06F00D))
    service = deployment.recovery_service(
        transport="wire", tick_interval=0.01, lease_timeout=10.0
    )
    clients = [service.new_client(f"stress-{i:02d}") for i in range(NUM_CLIENTS)]

    errors = []
    sessions = []  # (username, attempt, identifier, commitment, proof)
    sessions_lock = threading.Lock()

    def one_session(i: int, round_no: int) -> None:
        client = clients[i]
        pin = f"{(7 * i + round_no) % 10000:04d}"
        message = f"blob-{i}-{round_no}".encode("utf-8")
        client.backup(message, pin=pin)
        session = client.begin_recovery(pin)
        # Capture the proof exactly as the shared epoch resolved it (the
        # share phase may later refresh it).
        with sessions_lock:
            sessions.append(
                (
                    session.username,
                    session.attempt,
                    session.log_identifier,
                    session.commitment,
                    session.inclusion_proof,
                )
            )
        client.request_shares(session, pin)
        recovered = client.finish_recovery(session)
        assert recovered == message, f"client {i} round {round_no}: wrong plaintext"

    def run(i: int) -> None:
        try:
            one_session(i, 0)
            if i < SECOND_ROUND_CLIENTS:
                one_session(i, 1)
        except Exception as exc:  # noqa: BLE001 - collected and reported below
            errors.append(f"client {i}: {exc!r}")

    with service:
        threads = [
            threading.Thread(target=run, args=(i,), name=f"stress-client-{i}")
            for i in range(NUM_CLIENTS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

    assert errors == []
    total_sessions = NUM_CLIENTS + SECOND_ROUND_CLIENTS
    assert len(sessions) == total_sessions

    # -- the epochs were shared -------------------------------------------------
    stats = service.stats()
    assert stats["sessions_served"] == total_sessions
    assert stats["epochs_run"] == len(stats["epoch_sessions"])
    assert sum(stats["epoch_sessions"]) == total_sessions
    assert stats["epochs_run"] < total_sessions  # batching actually batched
    # History rows are appended in lockstep (a tick that commits nothing
    # appends nothing): sessions and digests always pair up.
    assert len(stats["epoch_sessions"]) == len(service.batcher.epoch_digests)
    assert service.batcher.abandoned_sessions == 0

    # -- every session holds a valid proof from the epoch that served it -------
    digests = service.batcher.epoch_digests
    for username, attempt, identifier, commitment, proof in sessions:
        assert any(
            verify_includes(digest, identifier, commitment, proof)
            for digest in digests
        ), f"no epoch digest validates the proof for {username} attempt {attempt}"

    # -- unique, contiguous attempt numbers per user -----------------------------
    provider = deployment.provider
    by_user = {}
    for (username, attempt, _, _, _) in sessions:
        by_user.setdefault(username, []).append(attempt)
    for username, attempts in by_user.items():
        assert sorted(attempts) == list(range(len(attempts))), username
        # O(1) counters agree with the reference full-log rescan.
        assert provider.next_attempt_number(username) == provider.scan_attempt_number(
            username
        )

    # -- log consistency ---------------------------------------------------------
    assert not provider.log.pending
    replayed = AuthenticatedDictionary.from_entries(provider.log.ordered_entries)
    assert replayed.digest == provider.log.digest
    logged = [identifier for identifier, _ in provider.log.dict.items()]
    assert len(logged) == len(set(logged))
    # every recovery identifier in the log parses and stays under the limit
    recovery_ids = [i for i in logged if i.startswith(b"rec|")]
    for identifier in recovery_ids:
        username, attempt = parse_attempt_identifier(identifier)
        assert attempt < params.max_attempts_per_user
    # exactly one logged attempt per session (nested recovery-key material is
    # a backup, so it stores a ciphertext but logs nothing)
    assert len(recovery_ids) == total_sessions
