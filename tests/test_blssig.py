"""BLS multisignatures with public-key aggregation."""

import random

import pytest

from repro.crypto import blssig


@pytest.fixture(scope="module")
def keypairs():
    rng = random.Random(99)
    return [blssig.keygen(rng) for _ in range(3)]


MESSAGE = b"log digest transition (d, d', R)"


@pytest.fixture(scope="module")
def signatures(keypairs):
    return [blssig.sign(kp.secret, MESSAGE) for kp in keypairs]


class TestSingleSigner:
    def test_verify(self, keypairs, signatures):
        assert blssig.verify(keypairs[0].public, MESSAGE, signatures[0])

    def test_wrong_message(self, keypairs, signatures):
        assert not blssig.verify(keypairs[0].public, b"other", signatures[0])

    def test_wrong_key(self, keypairs, signatures):
        assert not blssig.verify(keypairs[1].public, MESSAGE, signatures[0])

    def test_empty_signature(self, keypairs):
        assert not blssig.verify(keypairs[0].public, MESSAGE, blssig.BlsSignature(None))


class TestAggregation:
    def test_aggregate_verifies(self, keypairs, signatures):
        aggregate = blssig.aggregate_signatures(signatures)
        publics = [kp.public for kp in keypairs]
        assert blssig.verify_aggregate(publics, MESSAGE, aggregate)

    def test_subset_of_signers_rejected(self, keypairs, signatures):
        aggregate = blssig.aggregate_signatures(signatures)
        publics = [kp.public for kp in keypairs[:2]]
        assert not blssig.verify_aggregate(publics, MESSAGE, aggregate)

    def test_partial_aggregate_rejected(self, keypairs, signatures):
        aggregate = blssig.aggregate_signatures(signatures[:2])
        publics = [kp.public for kp in keypairs]
        assert not blssig.verify_aggregate(publics, MESSAGE, aggregate)

    def test_empty_signers_rejected(self, signatures):
        aggregate = blssig.aggregate_signatures(signatures)
        assert not blssig.verify_aggregate([], MESSAGE, aggregate)

    def test_single_signer_aggregate(self, keypairs, signatures):
        aggregate = blssig.aggregate_signatures(signatures[:1])
        assert blssig.verify_aggregate([keypairs[0].public], MESSAGE, aggregate)


class TestProofOfPossession:
    def test_valid_pop(self, keypairs):
        pop = blssig.prove_possession(keypairs[0])
        assert blssig.verify_possession(keypairs[0].public, pop)

    def test_pop_does_not_transfer(self, keypairs):
        pop = blssig.prove_possession(keypairs[0])
        assert not blssig.verify_possession(keypairs[1].public, pop)


class TestSerialization:
    def test_public_key_roundtrip(self, keypairs):
        pk = keypairs[0].public
        assert blssig.BlsPublicKey.from_bytes(pk.to_bytes()).point == pk.point

    def test_signature_roundtrip(self, signatures):
        sig = signatures[0]
        assert blssig.BlsSignature.from_bytes(sig.to_bytes()).point == sig.point
