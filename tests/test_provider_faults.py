"""Fault injection: a lossy/hostile transport must surface typed errors and
can never corrupt log or counter state.

``FlakyProviderChannel`` / ``FlakyChannel`` (``repro.sim.faults``,
re-exported by ``tests/conftest.py``) wrap the
provider RPC and client->HSM wire transports with deterministic seeded
frame faults — drops, duplicates (retransmission), bit-flips, truncation,
trailing garbage.  Sessions run through ``RecoveryService`` (provider leg)
and a plain deployment (HSM leg); each may fail, but only with an error
from the clean set, and afterwards:

- the O(1) attempt counters agree with the reference full-log scan;
- replaying the public log entries reproduces the provider's digest and
  nothing is left pending;
- a healthy client can still back up and recover.
"""

import random

import pytest

from conftest import FlakyChannel, FlakyProviderChannel, FrameDropped
from repro.core.client import Client, RecoveryError
from repro.core.params import SystemParams
from repro.core.protocol import Deployment
from repro.core.provider import ProviderError
from repro.core.wire import WireFormatError
from repro.log.authdict import AuthenticatedDictionary
from repro.service.channel import WireProviderChannel, provider_channel

#: The only exception types a faulty transport may surface.  Everything
#: else (KeyError, IndexError, struct.error, ...) is a harness bug.
CLEAN_ERRORS = (ProviderError, WireFormatError, RecoveryError, FrameDropped)

FAULT_SEEDS = range(10)


def _assert_state_uncorrupted(provider, usernames, exact: bool = False) -> None:
    """Counters never fall behind the reference scan; the digest replays.

    A dropped frame may *burn* a reserved attempt slot (the counter runs
    ahead of the log — by design, that only under-serves the user), but a
    counter behind the scan would hand out an already-logged attempt
    number: that is corruption.  ``exact=True`` asserts equality for runs
    whose provider leg was healthy (every reservation reached the log).
    """
    for username in usernames:
        counter = provider.next_attempt_number(username)
        scan = provider.scan_attempt_number(username)
        assert counter >= scan, f"attempt counter behind the log for {username!r}"
        if exact:
            assert counter == scan, f"attempt counters diverged for {username!r}"
    assert not provider.log.pending
    replayed = AuthenticatedDictionary.from_entries(provider.log.ordered_entries)
    assert replayed.digest == provider.log.digest


def test_flaky_provider_channel_surfaces_clean_errors_only():
    params = SystemParams.for_testing(num_hsms=8, cluster_size=3, max_punctures=96)
    deployment = Deployment.create(params, rng=random.Random(0xFA01))
    service = deployment.recovery_service(tick_interval=0.01, lease_timeout=0.5)
    usernames, faults_seen, failures = [], 0, 0
    with service:
        healthy_channel = service.provider_channel
        for seed in FAULT_SEEDS:
            flaky = FlakyProviderChannel(service.provider_endpoint, seed=seed)
            service.provider_channel = flaky
            username = f"prov-flaky-{seed}"
            usernames.append(username)
            client = service.new_client(username)
            message = b"payload-%d" % seed
            try:
                client.backup(message, pin="2468")
                assert client.recover("2468") == message
            except CLEAN_ERRORS:
                failures += 1
            faults_seen += sum(
                count
                for mode, count in flaky.faults.faults_injected.items()
                if mode != "ok"
            )
        # The injector must have actually fired, and the service must keep
        # serving: a healthy client succeeds on the same deployment.
        assert faults_seen > 0
        service.provider_channel = healthy_channel
        survivor = service.new_client("prov-flaky-survivor")
        usernames.append("prov-flaky-survivor")
        survivor.backup(b"still alive", pin="1357")
        assert survivor.recover("1357") == b"still alive"
    _assert_state_uncorrupted(deployment.provider, usernames)


def test_flaky_hsm_channel_never_corrupts_state():
    params = SystemParams.for_testing(num_hsms=8, cluster_size=3, max_punctures=96)
    deployment = Deployment.create(params, rng=random.Random(0xFA02))
    usernames, faults_seen = [], 0
    for seed in FAULT_SEEDS:
        channels = {
            index: FlakyChannel(deployment.fleet[index], seed=seed * 31 + index)
            for index in range(params.num_hsms)
        }
        username = f"hsm-flaky-{seed}"
        usernames.append(username)
        client = Client(
            username=username,
            params=params,
            provider=provider_channel(deployment.provider, "wire"),
            channels=channels.__getitem__,
            mpk=deployment.fleet.master_public_key(),
        )
        message = b"payload-%d" % seed
        try:
            client.backup(message, pin="8642")
            assert client.recover("8642") == message
        except CLEAN_ERRORS:
            pass
        faults_seen += sum(
            count
            for channel in channels.values()
            for mode, count in channel.faults.faults_injected.items()
            if mode != "ok"
        )
    assert faults_seen > 0
    # A healthy client on the same deployment still recovers.
    survivor = deployment.new_client("hsm-flaky-survivor")
    usernames.append("hsm-flaky-survivor")
    survivor.backup(b"still alive", pin="9753")
    assert survivor.recover("9753") == b"still alive"
    _assert_state_uncorrupted(deployment.provider, usernames, exact=True)


def test_fault_injection_is_deterministic_per_seed():
    """Same seed -> same fault schedule (the suite must be reproducible)."""
    provider = Deployment.create(
        SystemParams.for_testing(num_hsms=4, cluster_size=2),
        rng=random.Random(3),
    ).provider

    def trace(seed: int):
        from repro.service.channel import ProviderWireEndpoint

        flaky = FlakyProviderChannel(ProviderWireEndpoint(provider), seed=seed)
        for call in range(20):
            try:
                flaky.backup_count(f"determinism-{call}")
            except CLEAN_ERRORS:
                pass
        return list(flaky.faults.faults_injected.items())

    assert trace(7) == trace(7)
    assert trace(7) != trace(8)  # and the schedule really varies by seed
