"""repro.lintkit test suite: each pass must catch its seeded violation.

Every pass gets a good/bad fixture pair written into a temporary repo
tree: the bad snippet contains exactly the violation the rule exists for
(secret through an assignment and an f-string, an unguarded write, an
orphan wire tag, an unmetered multiply, an undocumented module), the good
snippet is the compliant version.  On top of that, the engine mechanics —
suppressions, justification requirement, baselines, deterministic
ordering — are covered directly, and a smoke test runs the real CLI over
``src/repro`` and requires a clean exit, which is the CI gate's contract.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.lintkit import default_passes
from repro.lintkit.docs import DocstringPass
from repro.lintkit.engine import (
    Finding,
    ScanContext,
    collect_files,
    read_baseline,
    run_passes,
    write_baseline,
)
from repro.lintkit.locks import LockDisciplinePass
from repro.lintkit.metering import MeteringPass
from repro.lintkit.secrets import SecretTaintPass
from repro.lintkit.wireschema import WireSchemaPass

REPO_ROOT = Path(__file__).resolve().parent.parent


def make_ctx(tmp_path: Path, files: dict) -> ScanContext:
    """Write ``{relpath: source}`` under ``tmp_path`` and parse it all."""
    for rel, text in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
    sources = collect_files(
        tmp_path, [tmp_path / rel for rel in sorted(files) if rel.endswith(".py")]
    )
    return ScanContext(tmp_path, sources)


# ---------------------------------------------------------------------------
# secret-hygiene taint
# ---------------------------------------------------------------------------
BAD_TAINT = '''
def fail(pin: str):
    alias = pin
    raise ValueError(f"rejected pin {alias}")
'''

GOOD_TAINT = '''
def fail(pin: str, share_ciphertext: bytes):
    pin_length = len(pin)
    raise ValueError(f"rejected pin of {pin_length} digits,"
                     f" ct {len(share_ciphertext)} bytes")
'''


def test_secret_taint_catches_assignment_and_fstring(tmp_path):
    ctx = make_ctx(tmp_path, {"src/repro/crypto/bad.py": BAD_TAINT})
    report = run_passes(ctx, [SecretTaintPass()])
    rules = {f.rule for f in report.findings}
    assert rules == {"secret-taint"}
    # The alias (taint through assignment) is flagged at the f-string sink
    # and again as the exception argument.
    messages = " ".join(f.message for f in report.findings)
    assert "`alias`" in messages
    assert "f-string" in messages
    assert "exception message" in messages


def test_secret_taint_accepts_sanitized_names(tmp_path):
    ctx = make_ctx(tmp_path, {"src/repro/crypto/good.py": GOOD_TAINT})
    report = run_passes(ctx, [SecretTaintPass()])
    assert report.clean, [f.render() for f in report.findings]


def test_secret_taint_flags_str_and_log_sinks(tmp_path):
    source = (
        "def leak(hsm_seed, logger, user_share):\n"
        "    logger.warning('got', user_share)\n"
        "    return str(hsm_seed)\n"
    )
    ctx = make_ctx(tmp_path, {"src/repro/hsm/leaky.py": source})
    report = run_passes(ctx, [SecretTaintPass()])
    sinks = " ".join(f.message for f in report.findings)
    assert "`str()`" in sinks and "log call" in sinks


def test_secret_taint_scope_excludes_other_layers(tmp_path):
    ctx = make_ctx(tmp_path, {"src/repro/service/elsewhere.py": BAD_TAINT})
    report = run_passes(ctx, [SecretTaintPass()])
    assert report.clean  # service/ is outside the secret-material scope


# ---------------------------------------------------------------------------
# lock discipline
# ---------------------------------------------------------------------------
BAD_LOCK = '''
import threading

class Counter:
    """Doc."""

    _GUARDED_BY = {"total": "_lock", "_items": "_lock"}

    def __init__(self):
        self._lock = threading.Lock()
        self.total = 0
        self._items = []

    def bump(self):
        self.total += 1          # unguarded write
        self._items.append(1)    # unguarded mutation
'''

GOOD_LOCK = BAD_LOCK.replace(
    "    def bump(self):\n"
    "        self.total += 1          # unguarded write\n"
    "        self._items.append(1)    # unguarded mutation\n",
    "    def bump(self):\n"
    "        with self._lock:\n"
    "            self.total += 1\n"
    "            self._items.append(1)\n",
)


def test_lock_discipline_catches_unguarded_write(tmp_path):
    ctx = make_ctx(tmp_path, {"src/repro/service/counter.py": BAD_LOCK})
    report = run_passes(ctx, [LockDisciplinePass()])
    assert {f.rule for f in report.findings} == {"unguarded-write"}
    assert len(report.findings) == 2  # the assignment and the .append
    assert all("with self._lock" in f.message for f in report.findings)


def test_lock_discipline_accepts_with_block_and_init(tmp_path):
    ctx = make_ctx(tmp_path, {"src/repro/service/counter.py": GOOD_LOCK})
    report = run_passes(ctx, [LockDisciplinePass()])
    assert report.clean, [f.render() for f in report.findings]


def test_lock_discipline_def_level_suppression(tmp_path):
    suppressed = BAD_LOCK.replace(
        "    def bump(self):",
        "    # lint: unguarded[caller serializes access in the fixture]\n"
        "    def bump(self):",
    )
    ctx = make_ctx(tmp_path, {"src/repro/service/counter.py": suppressed})
    report = run_passes(ctx, [LockDisciplinePass()])
    assert report.clean
    assert len(report.suppressed) == 2


def test_lock_discipline_requires_justification(tmp_path):
    unjustified = BAD_LOCK.replace(
        "        self.total += 1          # unguarded write",
        "        self.total += 1  # lint: unguarded[]",
    )
    ctx = make_ctx(tmp_path, {"src/repro/service/counter.py": unjustified})
    report = run_passes(ctx, [LockDisciplinePass()])
    rules = {f.rule for f in report.findings}
    # The original finding survives AND the empty reason is itself flagged.
    assert "unguarded-write" in rules and "bad-suppression" in rules


# ---------------------------------------------------------------------------
# wire-schema consistency
# ---------------------------------------------------------------------------
WIRE_OK = '''
"""Mini wire module."""
PROV_PING = 1
PROV_REPLY_PONG = 1

_FIELD_ENCODERS = {"text": None}
_FIELD_DECODERS = {"text": None}

PROVIDER_REQUEST_SCHEMAS = {PROV_PING: (("name", "text"),)}
PROVIDER_REPLY_SCHEMAS = {PROV_REPLY_PONG: (("name", "text"),)}
'''

CHANNEL_OK = '''
"""Mini channel module."""
import wire

_PROVIDER_RPC_HANDLERS = {wire.PROV_PING: None}
'''

TESTS_OK = '''
"""Mini strategies module."""
_FIELD_STRATEGIES = {"text": None}
'''

DOCS_OK = "| `PROV_PING` | name | `PONG` |\n"

_WIRE_LAYOUT = {
    "src/repro/core/wire.py": WIRE_OK,
    "src/repro/service/channel.py": CHANNEL_OK,
    "tests/test_wire_properties.py": TESTS_OK,
    "docs/ARCHITECTURE.md": DOCS_OK,
}


def test_wire_schema_accepts_complete_catalog(tmp_path):
    ctx = make_ctx(tmp_path, dict(_WIRE_LAYOUT))
    report = run_passes(ctx, [WireSchemaPass()])
    assert report.clean, [f.render() for f in report.findings]


def test_wire_schema_catches_orphan_tag(tmp_path):
    files = dict(_WIRE_LAYOUT)
    # PROV_ORPHAN: no schema, no dispatch arm, no docs row.
    files["src/repro/core/wire.py"] = WIRE_OK + "PROV_ORPHAN = 2\n"
    ctx = make_ctx(tmp_path, files)
    report = run_passes(ctx, [WireSchemaPass()])
    messages = " ".join(f.message for f in report.findings)
    assert {f.rule for f in report.findings} == {"wire-schema"}
    assert "no body schema" in messages
    assert "no dispatch arm" in messages
    assert "no catalog row" in messages


def test_wire_schema_catches_duplicate_value_and_missing_strategy(tmp_path):
    files = dict(_WIRE_LAYOUT)
    files["src/repro/core/wire.py"] = WIRE_OK.replace(
        'PROVIDER_REQUEST_SCHEMAS = {PROV_PING: (("name", "text"),)}',
        "PROV_PING2 = 1\n"
        "PROVIDER_REQUEST_SCHEMAS = {\n"
        '    PROV_PING: (("name", "text"),),\n'
        '    PROV_PING2: (("payload", "blob"),),\n'
        "}",
    )
    files["src/repro/service/channel.py"] = CHANNEL_OK.replace(
        "{wire.PROV_PING: None}", "{wire.PROV_PING: None, wire.PROV_PING2: None}"
    )
    files["docs/ARCHITECTURE.md"] = DOCS_OK + "| `PROV_PING2` | payload | `PONG` |\n"
    ctx = make_ctx(tmp_path, files)
    report = run_passes(ctx, [WireSchemaPass()])
    messages = " ".join(f.message for f in report.findings)
    assert "reuses tag value 1" in messages
    assert "'blob' has no hypothesis strategy" in messages
    assert "'blob' has no entry in _FIELD_ENCODERS" in messages


# ---------------------------------------------------------------------------
# metering discipline
# ---------------------------------------------------------------------------
BAD_METER = '''
"""Mini curve module."""
from repro import metering


def _raw_mult(point, scalar):
    return point


def _helper(point, scalar):
    return _raw_mult(point, scalar)


def mult(point, scalar):
    return _helper(point, scalar)
'''

GOOD_METER = BAD_METER.replace(
    "def mult(point, scalar):\n    return _helper(point, scalar)",
    "def mult(point, scalar):\n"
    '    metering.count("ec_mult")\n'
    "    return _helper(point, scalar)",
)


def _meter_pass():
    return MeteringPass(modules=("src/repro/crypto/mini.py",), engines=("_raw_mult",))


def test_metering_catches_unmetered_public_entry(tmp_path):
    ctx = make_ctx(tmp_path, {"src/repro/crypto/mini.py": BAD_METER})
    report = run_passes(ctx, [_meter_pass()])
    assert len(report.findings) == 1
    finding = report.findings[0]
    assert finding.rule == "unmetered-op"
    # The fixpoint walked mult -> _helper -> _raw_mult through the private
    # helper; the message names the propagated engine.
    assert "`mult`" in finding.message and "_helper" in finding.message


def test_metering_accepts_counted_entry(tmp_path):
    ctx = make_ctx(tmp_path, {"src/repro/crypto/mini.py": GOOD_METER})
    report = run_passes(ctx, [_meter_pass()])
    assert report.clean, [f.render() for f in report.findings]


def test_metering_real_modules_contract():
    """The real ec.py/field.py scan only relies on in-file suppressions."""
    files = collect_files(
        REPO_ROOT,
        [REPO_ROOT / "src/repro/crypto/ec.py", REPO_ROOT / "src/repro/crypto/field.py"],
    )
    ctx = ScanContext(REPO_ROOT, files)
    report = run_passes(ctx, [MeteringPass()])
    assert report.clean, [f.render() for f in report.findings]
    # field.py's batch-inversion trio is justified, not silently ignored.
    suppressed = {f.message.split("`")[1] for f, _ in report.suppressed}
    assert "batch_inverse_mod" in suppressed
    assert all(sup.reason for _, sup in report.suppressed)


# ---------------------------------------------------------------------------
# docstring contract
# ---------------------------------------------------------------------------
def test_docstring_pass_flags_thin_module_and_bare_function(tmp_path):
    source = '"""Too thin."""\n\n\ndef public_thing():\n    return 1\n'
    ctx = make_ctx(tmp_path, {"src/repro/service/mod.py": source})
    report = run_passes(ctx, [DocstringPass()])
    rules = sorted(f.rule for f in report.findings)
    assert rules == ["docstring-missing", "docstring-thin"]


def test_docstring_pass_out_of_scope_file_ignored(tmp_path):
    source = "def undocumented():\n    return 1\n"
    ctx = make_ctx(tmp_path, {"src/repro/crypto/mod.py": source})
    report = run_passes(ctx, [DocstringPass()])
    assert report.clean


# ---------------------------------------------------------------------------
# engine mechanics: determinism, baselines, line-level suppression
# ---------------------------------------------------------------------------
def test_findings_are_deterministic_and_sorted(tmp_path):
    files = {
        "src/repro/crypto/b.py": BAD_TAINT,
        "src/repro/crypto/a.py": BAD_TAINT,
    }
    ctx = make_ctx(tmp_path, files)
    first = run_passes(ctx, [SecretTaintPass()])
    second = run_passes(ctx, [SecretTaintPass()])
    assert [f.render() for f in first.findings] == [f.render() for f in second.findings]
    assert first.findings == sorted(first.findings)
    assert first.findings[0].path.endswith("a.py")


def test_line_level_suppression_with_reason(tmp_path):
    source = BAD_TAINT.replace(
        '    raise ValueError(f"rejected pin {alias}")',
        '    raise ValueError(f"rejected pin {alias}")'
        "  # lint: secret[fixture: demonstrating a justified suppression]",
    )
    ctx = make_ctx(tmp_path, {"src/repro/crypto/bad.py": source})
    report = run_passes(ctx, [SecretTaintPass()])
    assert report.clean
    assert report.suppressed and all(sup.reason for _, sup in report.suppressed)


def test_baseline_roundtrip(tmp_path):
    ctx = make_ctx(tmp_path, {"src/repro/crypto/bad.py": BAD_TAINT})
    report = run_passes(ctx, [SecretTaintPass()])
    assert report.findings
    baseline_file = tmp_path / "baseline.json"
    write_baseline(baseline_file, report.findings)
    fingerprints = read_baseline(baseline_file)
    rerun = run_passes(ctx, [SecretTaintPass()], baseline=fingerprints)
    assert rerun.clean
    assert len(rerun.baselined) == len(report.findings)


def test_fingerprints_are_line_independent(tmp_path):
    finding_a = Finding(path="x.py", line=3, rule="secret-taint", message="m")
    finding_b = Finding(path="x.py", line=30, rule="secret-taint", message="m")
    assert finding_a.fingerprint() == finding_b.fingerprint()
    assert finding_a.fingerprint() != Finding(
        path="x.py", line=3, rule="secret-taint", message="other"
    ).fingerprint()


def test_suppression_comments_in_strings_are_ignored(tmp_path):
    source = 'DOC = "# lint: secret[not a real comment]"\n' + BAD_TAINT
    ctx = make_ctx(tmp_path, {"src/repro/crypto/bad.py": source})
    report = run_passes(ctx, [SecretTaintPass()])
    assert report.findings  # the string literal suppresses nothing


# ---------------------------------------------------------------------------
# CLI + full-repo gate
# ---------------------------------------------------------------------------
def _run_cli(*args, cwd=REPO_ROOT):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return subprocess.run(
        [sys.executable, str(REPO_ROOT / "scripts" / "repro_lint.py"), *args],
        capture_output=True,
        text=True,
        cwd=cwd,
        env=env,
    )


def test_cli_full_repo_is_clean():
    """The acceptance gate: zero unsuppressed findings over src/repro."""
    result = _run_cli("src/repro")
    assert result.returncode == 0, result.stdout + result.stderr
    assert "clean" in result.stdout


def test_cli_json_output_is_parseable():
    result = _run_cli("src/repro", "--json")
    assert result.returncode == 0, result.stdout + result.stderr
    doc = json.loads(result.stdout)
    assert doc["findings"] == []
    assert doc["suppressed"] > 0  # the justified field.py/batcher suppressions


def test_cli_fails_on_seeded_violation(tmp_path):
    bad = tmp_path / "src" / "repro" / "crypto" / "bad.py"
    bad.parent.mkdir(parents=True)
    bad.write_text(BAD_TAINT)
    result = _run_cli(
        "src/repro", "--root", str(tmp_path), cwd=tmp_path
    )
    assert result.returncode == 1
    assert "secret-taint" in result.stdout


def test_cli_baseline_write_then_check(tmp_path):
    bad = tmp_path / "src" / "repro" / "crypto" / "bad.py"
    bad.parent.mkdir(parents=True)
    bad.write_text(BAD_TAINT)
    baseline = tmp_path / "lint-baseline.json"
    wrote = _run_cli(
        "src/repro", "--root", str(tmp_path), "--write-baseline", str(baseline),
        cwd=tmp_path,
    )
    assert wrote.returncode == 0, wrote.stdout + wrote.stderr
    checked = _run_cli(
        "src/repro", "--root", str(tmp_path), "--baseline", str(baseline),
        cwd=tmp_path,
    )
    assert checked.returncode == 0, checked.stdout + checked.stderr
    assert "baselined" in checked.stdout


def test_cli_rejects_unknown_pass():
    result = _run_cli("src/repro", "--passes", "nonsense")
    assert result.returncode == 2


def test_docs_lint_shim_still_works():
    env = dict(os.environ)
    result = subprocess.run(
        [
            sys.executable,
            str(REPO_ROOT / "scripts" / "docs_lint.py"),
            "src/repro/service",
            "src/repro/log",
            "src/repro/core/wire.py",
        ],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        env=env,
    )
    assert result.returncode == 0, result.stdout + result.stderr
    assert "clean" in result.stdout


def test_default_passes_cover_all_five_surfaces():
    names = [p.name for p in default_passes()]
    assert names == ["secrets", "locks", "wire", "metering", "docs"]
