"""§8 extensions: device failure during recovery, incremental backups."""

import pytest

from repro.core.client import RecoveryError


class TestResumeAfterDeviceFailure:
    def test_replacement_device_finishes_recovery(self, shared_deployment, unique_user):
        client = shared_deployment.new_client(unique_user)
        client.backup(b"precious data", pin="1234")
        session = client.begin_recovery("1234")
        client.request_shares(session, "1234")
        # The client device dies here without ever calling finish_recovery.
        replacement = shared_deployment.new_client(unique_user)
        recovered = replacement.resume_recovery("1234", attempt=session.attempt)
        assert recovered == b"precious data"

    def test_resume_without_escrow_fails(self, shared_deployment, unique_user):
        client = shared_deployment.new_client(unique_user)
        client.backup(b"data", pin="1234")
        with pytest.raises(RecoveryError):
            client.resume_recovery("1234", attempt=0)

    def test_resume_requires_correct_pin(self, shared_deployment, unique_user):
        client = shared_deployment.new_client(unique_user)
        client.backup(b"data", pin="1234")
        session = client.begin_recovery("1234")
        client.request_shares(session, "1234")
        replacement = shared_deployment.new_client(unique_user)
        with pytest.raises(RecoveryError):
            replacement.resume_recovery("0000", attempt=session.attempt)

    def test_original_device_can_also_finish(self, shared_deployment, unique_user):
        client = shared_deployment.new_client(unique_user)
        client.backup(b"data", pin="1234")
        session = client.begin_recovery("1234")
        client.request_shares(session, "1234")
        assert client.finish_recovery(session) == b"data"


class TestIncrementalBackups:
    def test_increments_roundtrip(self, shared_deployment, unique_user):
        client = shared_deployment.new_client(unique_user)
        client.enable_incremental_backups("1234")
        client.incremental_backup(b"monday photos")
        client.incremental_backup(b"tuesday notes")
        assert client.recover_incrementals("1234") == [
            b"monday photos",
            b"tuesday notes",
        ]

    def test_incrementals_require_enabling(self, shared_deployment, unique_user):
        client = shared_deployment.new_client(unique_user)
        with pytest.raises(RecoveryError):
            client.incremental_backup(b"data")
        with pytest.raises(RecoveryError):
            client.recover_incrementals("1234")

    def test_incrementals_are_cheap(self, shared_deployment, unique_user):
        """An increment must cost zero public-key operations (that is the
        point of the §8 design)."""
        client = shared_deployment.new_client(unique_user)
        client.enable_incremental_backups("1234")
        before = dict(client.meter.counts)
        client.incremental_backup(b"x" * 4096)
        delta_pk = client.meter.counts.get("elgamal_enc", 0) - before.get("elgamal_enc", 0)
        assert delta_pk == 0
