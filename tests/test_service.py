"""The serving layer: epoch batcher, channels, worker queues, service."""

import random
import threading
import time

import pytest

from repro.core.params import SystemParams
from repro.core.protocol import Deployment
from repro.core.provider import ProviderError, ServiceProvider
from repro.crypto.bfe import PuncturedKeyError
from repro.hsm.device import HsmRefusedError, HsmUnavailableError
from repro.log.authdict import verify_includes
from repro.log.distributed import LogConfig
from repro.service.batcher import EpochBatcher, EpochTicket, ServiceTimeout
from repro.service.channel import WireChannel, HsmWireEndpoint, wire_channels
from repro.service.workers import HsmWorkerPool


# ---------------------------------------------------------------------------
# EpochBatcher (standalone provider; epochs commit via prepare_update)
# ---------------------------------------------------------------------------
@pytest.fixture
def batcher_provider():
    provider = ServiceProvider(LogConfig(audit_count=2))
    provider.install_update_runner(lambda: provider.log.prepare_update(num_chunks=1))
    return provider


class TestEpochBatcher:
    def test_one_tick_serves_all_waiters(self, batcher_provider):
        batcher = EpochBatcher(batcher_provider)
        tickets = [
            batcher.submit(f"user{i}", 0, b"commit%d" % i) for i in range(3)
        ]
        assert batcher.pending_sessions() == 3
        assert batcher.tick() == 3
        assert batcher.epochs_run == 1
        assert list(batcher.epoch_sessions) == [3]
        for i, ticket in enumerate(tickets):
            identifier, proof = ticket.wait(timeout=1)
            assert verify_includes(
                batcher_provider.log.digest, identifier, b"commit%d" % i, proof
            )

    def test_tick_without_work_is_a_noop(self, batcher_provider):
        batcher = EpochBatcher(batcher_provider)
        assert batcher.tick() == 0
        assert batcher.epochs_run == 0

    def test_duplicate_insertion_fails_that_ticket_only(self, batcher_provider):
        batcher = EpochBatcher(batcher_provider)
        good = batcher.submit("dup", 0, b"h0")
        bad = batcher.submit("dup", 0, b"h1")
        batcher.tick()
        good.wait(timeout=1)
        with pytest.raises(ProviderError):
            bad.wait(timeout=1)

    def test_wait_without_tick_times_out(self, batcher_provider):
        batcher = EpochBatcher(batcher_provider)
        ticket = batcher.submit("alone", 0, b"h")
        with pytest.raises(ServiceTimeout):
            ticket.wait(timeout=0.05)

    def test_leases_defer_the_next_epoch(self, batcher_provider):
        batcher = EpochBatcher(batcher_provider, lease_timeout=10.0)
        batcher.submit("leaseholder", 0, b"h")
        batcher.tick()
        assert batcher.outstanding_leases() == 1

        batcher.submit("next", 0, b"h2")
        second_tick_done = threading.Event()
        thread = threading.Thread(
            target=lambda: (batcher.tick(), second_tick_done.set())
        )
        thread.start()
        # The share phase of "leaseholder" is still open: no second epoch.
        assert not second_tick_done.wait(0.15)
        assert batcher.epochs_run == 1
        batcher.release("leaseholder", 0)
        assert second_tick_done.wait(2)
        thread.join()
        assert batcher.epochs_run == 2
        assert batcher.lease_timeouts == 0

    def test_lease_timeout_keeps_the_log_live(self, batcher_provider):
        batcher = EpochBatcher(batcher_provider, lease_timeout=0.05)
        batcher.submit("crashed-client", 0, b"h")
        batcher.tick()  # lease taken, never released
        batcher.submit("healthy", 0, b"h2")
        assert batcher.tick() == 1  # proceeds despite the abandoned lease
        assert batcher.lease_timeouts == 1
        assert batcher.outstanding_leases() == 1  # the new session's lease

    def test_ticket_is_single_use_state(self):
        ticket = EpochTicket()
        ticket.resolve((b"id", "proof"))
        assert ticket.wait(timeout=0) == (b"id", "proof")


# ---------------------------------------------------------------------------
# Worker pool: per-device FIFO execution
# ---------------------------------------------------------------------------
class TestHsmWorkerPool:
    def test_requires_start(self):
        pool = HsmWorkerPool(2)
        with pytest.raises(RuntimeError):
            pool.call(0, lambda: 1)

    def test_call_returns_result_and_counts(self):
        pool = HsmWorkerPool(2)
        pool.start()
        try:
            assert pool.call(1, lambda: 41 + 1) == 42
            assert pool.jobs_processed == [0, 1]
        finally:
            pool.stop()

    def test_exceptions_propagate_to_caller(self):
        pool = HsmWorkerPool(1)
        pool.start()
        try:
            with pytest.raises(ValueError, match="boom"):
                pool.call(0, lambda: (_ for _ in ()).throw(ValueError("boom")))
        finally:
            pool.stop()

    def test_stop_before_start_does_not_poison_queues(self):
        pool = HsmWorkerPool(2)
        pool.stop()  # must be a no-op, not a sentinel enqueue
        pool.start()
        try:
            assert pool.call(0, lambda: "alive") == "alive"
        finally:
            pool.stop()
        pool.stop()  # double-stop is also safe
        pool.start()
        try:
            assert pool.call(1, lambda: "restarted") == "restarted"
        finally:
            pool.stop()

    def test_device_never_runs_two_jobs_at_once(self):
        pool = HsmWorkerPool(2)
        pool.start()
        busy = [False] * 2
        overlaps = []

        def job(device):
            if busy[device]:
                overlaps.append(device)
            busy[device] = True
            time.sleep(0.002)
            busy[device] = False
            return device

        try:
            threads = [
                threading.Thread(target=pool.call, args=(i % 2, lambda i=i: job(i % 2)))
                for i in range(16)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        finally:
            pool.stop()
        assert overlaps == []
        assert sum(pool.jobs_processed) == 16


# ---------------------------------------------------------------------------
# Channels: wire transport and error mapping
# ---------------------------------------------------------------------------
class TestWireChannel:
    def test_recovery_over_wire_channel(self, shared_deployment, unique_user):
        client = shared_deployment.new_client(unique_user, transport="wire")
        client.backup(b"wire payload", pin="1234")
        assert client.recover("1234") == b"wire payload"

    def test_unavailable_crosses_the_wire(self, fresh_deployment, unique_user):
        client = fresh_deployment.new_client(unique_user)
        client.backup(b"x", pin="1234")
        session = client.begin_recovery("1234", backup_recovery_key=False)
        target = session.cluster[0]
        fresh_deployment.fleet[target].fail_stop()
        channel = wire_channels(fresh_deployment.fleet)(target)
        with pytest.raises(HsmUnavailableError):
            channel.decrypt_share(client._share_request(session, 0))
        fresh_deployment.fleet[target].restart()

    def test_puncture_crosses_the_wire(self, shared_deployment, unique_user):
        client = shared_deployment.new_client(unique_user)
        client.backup(b"x", pin="1234")
        session = client.begin_recovery("1234", backup_recovery_key=False)
        channel = WireChannel(
            HsmWireEndpoint(shared_deployment.fleet[session.cluster[0]])
        )
        request = client._share_request(session, 0)
        channel.decrypt_share(request)  # first decryption punctures
        with pytest.raises(PuncturedKeyError):
            channel.decrypt_share(request)

    def test_stale_proof_refresh_survives_an_interleaved_epoch(
        self, fresh_deployment, unique_user
    ):
        """An epoch committing between proof receipt and the share phase
        must not kill the session: HSMs answer REPLY_STALE_PROOF, the
        client refreshes its proof and retries."""
        from repro.hsm.device import HsmStaleProofError

        client = fresh_deployment.new_client(unique_user)
        client.backup(b"stale proof survivor", pin="1234")
        session = client.begin_recovery("1234", backup_recovery_key=False)
        # Another epoch commits: every HSM's digest moves past the proof.
        fresh_deployment.provider.log.insert(b"interloper", b"v")
        fresh_deployment.run_log_update()
        stale_proof = session.inclusion_proof
        channel = wire_channels(fresh_deployment.fleet)(session.cluster[0])
        with pytest.raises(HsmStaleProofError):  # distinct status on the wire
            channel.decrypt_share(client._share_request(session, 0))
        obtained = client.request_shares(session, "1234")
        assert obtained >= fresh_deployment.params.threshold
        assert session.inclusion_proof != stale_proof  # the client refreshed
        assert client.finish_recovery(session) == b"stale proof survivor"

    def test_refusal_crosses_the_wire(self, shared_deployment, unique_user):
        client = shared_deployment.new_client(unique_user)
        client.backup(b"x", pin="1234")
        session = client.begin_recovery("1234", backup_recovery_key=False)
        # An HSM outside the committed cluster must refuse.
        outside = next(
            i for i in range(len(shared_deployment.fleet)) if i not in session.cluster
        )
        channel = wire_channels(shared_deployment.fleet)(outside)
        with pytest.raises(HsmRefusedError):
            channel.decrypt_share(client._share_request(session, 0))


# ---------------------------------------------------------------------------
# RecoveryService end-to-end (small; the heavy run is the slow stress test)
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def service_deployment():
    params = SystemParams.for_testing(num_hsms=8, cluster_size=3, max_punctures=48)
    return Deployment.create(params, rng=random.Random(29))


class TestRecoveryService:
    def test_concurrent_sessions_share_an_epoch(self, service_deployment):
        service = service_deployment.recovery_service(
            tick_interval=0.01, lease_timeout=5.0
        )
        clients = [service.new_client(f"svc-share-{i}") for i in range(4)]
        errors = []

        def run(i):
            try:
                clients[i].backup(b"m%d" % i, pin="1111")
                assert clients[i].recover("1111") == b"m%d" % i
            except Exception as exc:  # noqa: BLE001
                errors.append((i, repr(exc)))

        with service:
            threads = [threading.Thread(target=run, args=(i,)) for i in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert errors == []
        stats = service.stats()
        assert stats["sessions_served"] == 4
        # Batching: strictly fewer epochs than sessions, one epoch per tick.
        assert stats["epochs_run"] < 4
        assert stats["epochs_run"] == len(stats["epoch_sessions"])
        assert sum(stats["epoch_sessions"]) == 4

    def test_manual_ticks_are_deterministic(self, service_deployment):
        service = service_deployment.recovery_service(lease_timeout=5.0)
        service.pool.start()  # workers but no ticker: the test owns epochs
        client = service.new_client("svc-manual")
        try:
            client.backup(b"manual", pin="2222")
            done = []
            thread = threading.Thread(
                target=lambda: done.append(client.recover("2222"))
            )
            thread.start()
            # One session pending -> exactly one epoch serves it.
            while service.batcher.pending_sessions() == 0:
                time.sleep(0.005)
            assert service.tick() == 1
            thread.join(timeout=30)
            assert done == [b"manual"]
        finally:
            service.pool.stop()

    def test_per_request_mode_matches_seed_semantics(self, service_deployment):
        service = service_deployment.recovery_service(
            epoch_mode="per-request", tick_interval=0.01
        )
        epochs_before = service_deployment.provider.log.epoch
        clients = [service.new_client(f"svc-perreq-{i}") for i in range(2)]
        errors = []

        def run(i):
            try:
                clients[i].backup(b"p%d" % i, pin="3333")
                assert clients[i].recover("3333") == b"p%d" % i
            except Exception as exc:  # noqa: BLE001
                errors.append((i, repr(exc)))

        with service:
            threads = [threading.Thread(target=run, args=(i,)) for i in range(2)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert errors == []
        # One full epoch per recovery, exactly like the seed's log_and_prove.
        assert service_deployment.provider.log.epoch - epochs_before == 2

    def test_failed_epoch_fails_batch_but_not_the_service(self):
        """Losing quorum mid-service must fail that batch's sessions cleanly
        and leave the log recoverable (the epoch rolls back), not brick
        every future epoch."""
        params = SystemParams.for_testing(num_hsms=6, cluster_size=3, max_punctures=16)
        deployment = Deployment.create(params, rng=random.Random(31))
        with deployment.recovery_service(
            tick_interval=0.01, lease_timeout=2.0
        ) as service:
            victim = service.new_client("svc-noquorum")
            victim.backup(b"doomed", pin="1111")
            deployment.fail_random_hsms(3, random.Random(1))  # 3/6 < 0.75 quorum
            with pytest.raises(ProviderError):
                victim.recover("1111")
            deployment.restart_all_hsms()
            survivor = service.new_client("svc-afterquorum")
            survivor.backup(b"alive", pin="2222")
            assert survivor.recover("2222") == b"alive"
        stats = service.stats()
        assert stats["epoch_failures"] >= 1
        # provider and fleet digests agree again
        assert deployment.fleet[0].log_digest == deployment.provider.log.digest

    def test_abandoned_session_slot_is_stolen(self, service_deployment):
        """Per-request mode: a client that dies between begin_recovery and
        its share phase must not wedge the service — the next session
        steals the slot after session_timeout."""
        service = service_deployment.recovery_service(
            epoch_mode="per-request", session_timeout=0.1
        )
        service.acquire_session_slot("ghost", 0)  # never released
        service.acquire_session_slot("svc-steal", 0)  # blocks 0.1s, then steals
        assert service.slot_steals == 1
        assert service._slot_owner == ("svc-steal", 0)
        service.release_session_slot("ghost", 0)  # stale release: ignored
        assert service._slot_owner == ("svc-steal", 0)
        service.release_session_slot("svc-steal", 0)
        assert service._slot_owner is None

    def test_facade_reserves_unique_attempts(self, service_deployment):
        service = service_deployment.recovery_service()
        facade = service._facade
        seen = []

        def reserve():
            for _ in range(20):
                seen.append(facade.next_attempt_number("svc-reserve"))

        threads = [threading.Thread(target=reserve) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sorted(seen) == list(range(80))

    def test_facade_backups_cross_the_wire(self, service_deployment):
        service = service_deployment.recovery_service()
        client = service.new_client("svc-wireback")
        sent = []
        original_upload = client.provider.upload_backup

        def spy(username, ciphertext):
            sent.append(ciphertext)  # the client's live object
            return original_upload(username, ciphertext)

        client.provider.upload_backup = spy
        try:
            client.backup(b"round trip", pin="4444")
        finally:
            del client.provider.upload_backup
        # The provider never stored the client's live object: the endpoint
        # reconstructed a value-equal ciphertext from wire bytes.
        assert len(sent) == 1
        assert client.provider.wire_stats()["frames_sent"] >= 1
        stored = service_deployment.provider.fetch_backup("svc-wireback")
        assert stored == sent[0]
        assert stored is not sent[0]


# ---------------------------------------------------------------------------
# Batcher regressions: abandoned leases, lane history, malformed sessions
# ---------------------------------------------------------------------------
class TestBatcherRegressions:
    def test_timed_out_session_takes_no_lease(self, batcher_provider):
        """Regression: a ticket whose ``wait`` timed out used to be resolved
        anyway and granted an epoch lease nobody would ever release,
        stalling the *next* tick for the full lease_timeout."""
        batcher = EpochBatcher(batcher_provider, lease_timeout=30.0)
        ghost = batcher.submit("ghost", 0, b"h-ghost")
        with pytest.raises(ServiceTimeout):
            ghost.wait(timeout=0.05)  # the session walks away
        assert batcher.tick() == 0  # the entry commits, nobody is served
        assert batcher.outstanding_leases() == 0
        assert batcher.abandoned_sessions == 1
        assert batcher.sessions_served == 0

        # The next tick is NOT delayed by a leaked lease: it serves a live
        # session immediately instead of draining for lease_timeout.
        live = batcher.submit("alive", 0, b"h-live")
        start = time.monotonic()
        assert batcher.tick() == 1
        assert time.monotonic() - start < 5.0
        live.wait(timeout=1)

    def test_resolution_beats_abandonment_when_racing(self, batcher_provider):
        """A ticket resolved before ``wait`` re-checks under the lock is
        served normally (the timeout lapsed but the result arrived)."""
        batcher = EpochBatcher(batcher_provider)
        ticket = batcher.submit("racer", 0, b"h-race")
        batcher.tick()  # resolves before wait is even called
        identifier, proof = ticket.wait(timeout=0.0)
        assert identifier
        assert batcher.outstanding_leases() == 1

    def test_all_lanes_failing_appends_no_history_row(self):
        """Regression: a sharded tick where EVERY lane failed used to append
        an epoch_sessions/epoch_digests row even though no epoch committed,
        desynchronizing the history from the single-log path (which appends
        nothing on failure)."""
        deployment = Deployment.create(
            SystemParams.for_testing(num_hsms=8, cluster_size=4),
            rng=random.Random(17),
            shards=2,
        )
        failing = EpochBatcher(
            deployment.provider,
            shard_runner=lambda shards: {
                shard: RuntimeError("lane down") for shard in shards
            },
        )
        tickets = [failing.submit(f"lane-user-{i}", 0, b"h%d" % i) for i in range(4)]
        assert failing.tick() == 0
        assert list(failing.epoch_sessions) == []
        assert list(failing.epoch_digests) == []
        assert failing.epoch_failures >= 1
        assert failing.epochs_run == 0
        for ticket in tickets:
            with pytest.raises(ProviderError):
                ticket.wait(timeout=1)
        # History stays paired — the invariant the desync broke.
        assert len(failing.epoch_sessions) == len(failing.epoch_digests)

    def test_partial_lane_failure_appends_one_row(self):
        """One committed lane out of two still records exactly one paired
        history row for the tick (and fails only its own tickets)."""
        deployment = Deployment.create(
            SystemParams.for_testing(num_hsms=8, cluster_size=4),
            rng=random.Random(18),
            shards=2,
        )
        log = deployment.provider.log

        def half_runner(shards):
            outcomes = {}
            for shard in shards:
                if shard == min(shards):
                    log.run_shard_update(shard, deployment.fleet.hsms)
                    outcomes[shard] = None
                else:
                    outcomes[shard] = RuntimeError("lane down")
            return outcomes

        batcher = EpochBatcher(deployment.provider, shard_runner=half_runner)
        for i in range(12):  # enough sessions to hit both shards
            batcher.submit(f"half-user-{i}", 0, b"h%d" % i)
        served = batcher.tick()
        assert 0 < served < 12
        assert len(batcher.epoch_sessions) == len(batcher.epoch_digests) == 1
        assert batcher.epoch_sessions[0] == served

    def test_malformed_session_fails_its_ticket(self, batcher_provider):
        """Regression: a ValueError from the insertion (reserved '|' in the
        username, negative attempt) used to escape ``submit`` raw instead
        of failing the ticket like the duplicate-identifier KeyError."""
        batcher = EpochBatcher(batcher_provider)
        bad_name = batcher.submit("bad|user", 0, b"h")
        bad_attempt = batcher.submit("fine", -1, b"h")
        good = batcher.submit("fine", 0, b"h")
        assert batcher.tick() == 1
        with pytest.raises(ProviderError, match="[|]"):
            bad_name.wait(timeout=1)
        with pytest.raises(ProviderError):
            bad_attempt.wait(timeout=1)
        good.wait(timeout=1)  # the batch itself is unaffected


# ---------------------------------------------------------------------------
# Per-shard epoch leases: lane independence, timeout accounting
# ---------------------------------------------------------------------------
def _stub_sharded_batcher(num_shards=4, lease_timeout=30.0):
    """A sharded provider whose lanes commit via bare ``prepare_update`` —
    no device fleet, so the tests isolate the batcher's lease bookkeeping."""
    provider = ServiceProvider(LogConfig(audit_count=2, num_shards=num_shards))
    log = provider.log

    def lane_runner(shards):
        outcomes = {}
        for k in shards:
            log.shards[k].prepare_update(num_chunks=1)
            outcomes[k] = None
        return outcomes

    return provider, EpochBatcher(
        provider, lease_timeout=lease_timeout, shard_runner=lane_runner
    )


def _user_on_shard(shard, num_shards, tag):
    """A username whose attempt-0 identifier routes to ``shard`` (the
    routing hashes the full identifier, so this is how tests pin a session
    to a lane)."""
    from repro.core.identifiers import attempt_identifier
    from repro.log.sharded import shard_of

    i = 0
    while True:
        name = f"{tag}-{i}"
        if shard_of(attempt_identifier(name, 0), num_shards) == shard:
            return name
        i += 1


class TestPerShardLeases:
    def test_idle_tick_skips_lease_drain(self, batcher_provider):
        """A tick with nothing submitted and nothing pending returns via
        the O(1) emptiness probe — it must not sit out ``lease_timeout``
        draining leases it has no epoch to break."""
        batcher = EpochBatcher(batcher_provider, lease_timeout=30.0)
        batcher.submit("idler", 0, b"h")
        batcher.tick()
        assert batcher.outstanding_leases() == 1
        start = time.monotonic()
        assert batcher.tick() == 0
        assert time.monotonic() - start < 5.0
        assert batcher.lease_timeouts == 0
        assert batcher.outstanding_leases() == 1  # untouched, not expired

    def test_each_dropped_straggler_counts_one_timeout(self, batcher_provider):
        """Regression: the timeout path used to clear the whole lease set
        but count a single timeout no matter how many stragglers it
        dropped."""
        batcher = EpochBatcher(batcher_provider, lease_timeout=0.05)
        for i in range(3):
            batcher.submit(f"straggler-{i}", 0, b"h%d" % i)
        assert batcher.tick() == 3  # three leases, never released
        batcher.submit("fresh", 0, b"h-fresh")
        assert batcher.tick() == 1  # waits out, then drops all three
        assert batcher.lease_timeouts == 3
        assert batcher.stats()["lease_timeouts_by_shard"] == {0: 3}

    def test_late_release_after_timeout_clear_is_noop(self, batcher_provider):
        """A straggler's ``release`` arriving after its lease was already
        dropped by a timeout-clear must change nothing — in particular it
        must not drop the lease a *new* session now holds."""
        batcher = EpochBatcher(batcher_provider, lease_timeout=0.05)
        batcher.submit("straggler", 0, b"h")
        batcher.tick()
        batcher.submit("healthy", 0, b"h2")
        assert batcher.tick() == 1  # straggler's lease expired and dropped
        assert batcher.lease_timeouts == 1
        assert batcher.outstanding_leases() == 1  # healthy's lease
        batcher.release("straggler", 0)  # finally calls home: no-op
        assert batcher.outstanding_leases() == 1
        assert batcher.lease_timeouts == 1

    def test_late_release_cannot_wake_the_wrong_lane(self):
        """Sharded variant: after a straggler's lane times out, its late
        ``release`` must not notify another lane's drain condition — a
        tick blocked on a *different* lane's leases stays blocked."""
        provider, batcher = _stub_sharded_batcher(lease_timeout=0.5)
        straggler = _user_on_shard(0, 4, "wla")
        holder = _user_on_shard(1, 4, "wlb")
        batcher.submit(straggler, 0, b"h-a")
        batcher.submit(holder, 0, b"h-b")
        assert batcher.tick() == 2  # both lanes leased
        # Expire lane 0: queue work for it alone, so the tick blocks on its
        # drain, waits out the 0.5 s, and drops the straggler lease.
        batcher.submit(_user_on_shard(0, 4, "wlc"), 0, b"h-a1")
        assert batcher.tick() == 1
        assert batcher.lease_timeouts == 1
        assert batcher.stats()["lease_timeouts_by_shard"] == {0: 1}
        # Lane 1's lease and the newly served lane-0 lease survive.
        assert batcher.outstanding_leases(0) == 1
        assert batcher.outstanding_leases(1) == 1
        # A tick needing lane 1 blocks on its drain condition.  The expired
        # straggler's late release must not wake it.
        batcher.submit(_user_on_shard(1, 4, "wld"), 0, b"h-b1")
        tick_done = threading.Event()
        thread = threading.Thread(
            target=lambda: (batcher.tick(), tick_done.set()), daemon=True
        )
        thread.start()
        time.sleep(0.05)
        batcher.release(straggler, 0)  # late: lease long gone
        assert not tick_done.wait(0.1)  # still draining lane 1
        batcher.release(holder, 0)  # the real holder releases
        assert tick_done.wait(2)
        thread.join(timeout=2)

    def test_straggler_lane_does_not_delay_other_lanes(self):
        """One shard's session holds its lease toward a 30 s timeout while
        other shards' ticks commit epochs unimpeded — their latency is
        milliseconds-scale, never ``lease_timeout``-bound."""
        provider, batcher = _stub_sharded_batcher(lease_timeout=30.0)
        straggler = _user_on_shard(0, 4, "sla")
        first = _user_on_shard(1, 4, "slb")
        batcher.submit(straggler, 0, b"h-a")
        batcher.submit(first, 0, b"h-b")
        assert batcher.tick() == 2
        batcher.release(first, 0)  # the straggler never releases: lane 0 busy
        for round_no in range(1, 4):
            # Work lands on the busy lane too: it must defer, not block.
            batcher.submit(_user_on_shard(0, 4, f"sla{round_no}"), 0, b"h-a2")
            fast = _user_on_shard(1, 4, f"slb{round_no}")
            batcher.submit(fast, 0, b"h-b2")
            tick_done = threading.Event()
            served = []
            thread = threading.Thread(
                target=lambda: (served.append(batcher.tick()), tick_done.set()),
                daemon=True,
            )
            start = time.monotonic()
            thread.start()
            assert tick_done.wait(5)  # would be ~30 s if lease-bound
            assert time.monotonic() - start < 5.0
            thread.join(timeout=2)
            assert served == [1]  # lane 1 committed; lane 0 deferred
            batcher.release(fast, 0)
        assert batcher.lease_timeouts == 0  # nobody waited the straggler out
        assert batcher.outstanding_leases(0) == 1
        assert batcher.outstanding_leases(1) == 0
        stats = batcher.stats()
        assert stats["outstanding_leases_by_shard"] == {0: 1}
        assert stats["pending_sessions"] == 3  # lane 0's deferred sessions
