"""The paper's quantitative bounds (§6.2, Theorems 9/10, Lemma 8)."""

import math
from fractions import Fraction

import pytest

from repro.analysis.bounds import (
    audit_failure_probability,
    correctness_failure_bound,
    correctness_failure_exact,
    cover_probability_bound,
    minimum_cluster_size,
    remark5_attack_advantage,
    security_advantage_bound,
    security_loss_bits,
    theorem10_preconditions_ok,
)


class TestAuditBound:
    def test_paper_value(self):
        """§6.2: f=1/16, C=128 gives exp(-7/8 · 128) = e^-112 < 2^-128."""
        p = audit_failure_probability(Fraction(1, 16), 128)
        assert p < 2**-128

    def test_monotone_in_audit_count(self):
        assert audit_failure_probability(0.1, 64) > audit_failure_probability(0.1, 128)

    def test_monotone_in_corruption(self):
        assert audit_failure_probability(0.05, 64) < audit_failure_probability(0.2, 64)

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            audit_failure_probability(0.6, 64)


class TestCorrectness:
    def test_theorem9_bound_at_paper_params(self):
        """n = 40, f_live = 1/64: failure < 2^-n/2 = 2^-20."""
        assert correctness_failure_bound(40, Fraction(1, 64)) < 2**-20

    def test_exact_below_bound(self):
        exact = correctness_failure_exact(40, 20, Fraction(1, 64))
        bound = correctness_failure_bound(40, Fraction(1, 64))
        assert exact <= bound

    def test_exact_is_tiny_at_paper_params(self):
        assert correctness_failure_exact(40, 20, Fraction(1, 64)) < 1e-20

    def test_higher_failure_rate_hurts(self):
        assert correctness_failure_exact(40, 20, 0.3) > correctness_failure_exact(
            40, 20, 0.01
        )

    def test_threshold_one_never_fails_unless_all_do(self):
        assert correctness_failure_exact(4, 1, 0.5) == pytest.approx(0.5**4)


class TestLemma8:
    def test_preconditions_paper(self):
        assert theorem10_preconditions_ok(3100, 40, 10**6)

    def test_preconditions_reject_small_fleet(self):
        assert not theorem10_preconditions_ok(100, 40, 10**6 * 100)

    def test_preconditions_reject_tiny_cluster(self):
        # 6-digit pins with n = 20: |P| > 2^10.
        assert not theorem10_preconditions_ok(3100, 20, 10**6)

    def test_cover_bound_small_when_preconditions_hold(self):
        log2_bound = cover_probability_bound(3100, 40, 10**6)
        assert log2_bound <= -3100 / 4


class TestTheorem10:
    def test_paper_advantage_dominated_by_location_term(self):
        adv = security_advantage_bound(3100, 40, 10**6)
        location_term = 3 * 3100 / (40 * 10**6)
        assert adv == pytest.approx(location_term, rel=0.01)

    def test_advantage_close_to_generic_attack(self):
        """Theorem 10 is tight against Remark 5 up to the constant 3/f."""
        upper = security_advantage_bound(3100, 40, 10**6)
        lower = remark5_attack_advantage(3100, 40, 10**6)
        assert lower < upper < lower * 50

    def test_security_loss_bits_shape(self):
        losses = [security_loss_bits(3100, n) for n in (40, 60, 80, 100)]
        assert losses == sorted(losses, reverse=True)
        # one cluster-size doubling = exactly one bit
        assert security_loss_bits(3100, 40) - security_loss_bits(3100, 80) == pytest.approx(1.0)

    def test_figure11_annotations_at_n1500(self):
        """The figure's printed values match N=1,500 (see EXPERIMENTS.md)."""
        assert security_loss_bits(1500, 40) == pytest.approx(6.81, abs=0.01)
        assert security_loss_bits(1500, 100) == pytest.approx(5.49, abs=0.01)


class TestParameterSelection:
    def test_six_digit_pins_need_n40(self):
        assert minimum_cluster_size(10**6) == 40

    def test_four_digit_pins(self):
        assert minimum_cluster_size(10**4) == 28  # 2*ceil(13.28)

    def test_trivial_pin_space(self):
        assert minimum_cluster_size(1) == 2
