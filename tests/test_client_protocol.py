"""End-to-end protocol integration (Figure 3)."""

import pytest

from repro.core.client import RecoveryError


class TestBackupRecover:
    def test_roundtrip(self, shared_deployment, unique_user):
        client = shared_deployment.new_client(unique_user)
        message = b"full disk image contents" * 20
        index = client.backup(message, pin="1234")
        assert client.recover(pin="1234", backup_index=index) == message

    def test_wrong_pin_fails(self, shared_deployment, unique_user):
        client = shared_deployment.new_client(unique_user)
        client.backup(b"secret", pin="1234")
        with pytest.raises(RecoveryError):
            client.recover(pin="4321")

    def test_invalid_pin_format_rejected_locally(self, shared_deployment, unique_user):
        client = shared_deployment.new_client(unique_user)
        with pytest.raises(ValueError):
            client.backup(b"x", pin="12")
        with pytest.raises(ValueError):
            client.backup(b"x", pin="abcd")

    def test_multiple_backups_latest_default(self, shared_deployment, unique_user):
        client = shared_deployment.new_client(unique_user)
        client.backup(b"version 1", pin="1234")
        client.backup(b"version 2", pin="1234")
        assert client.recover(pin="1234") == b"version 2"

    def test_backup_requires_no_hsm_interaction(self, shared_deployment, unique_user):
        """Scalability property 2: backup is HSM-free (paper §4.1)."""
        before = shared_deployment.fleet.total_op_counts()
        client = shared_deployment.new_client(unique_user)
        client.backup(b"data", pin="1234")
        after = shared_deployment.fleet.total_op_counts()
        assert before == after

    def test_recovery_contacts_only_cluster(self, shared_deployment, unique_user):
        """Scalability: exactly n HSMs do public-key work per recovery."""
        client = shared_deployment.new_client(unique_user)
        client.backup(b"data", pin="1234")
        ct = shared_deployment.provider.fetch_backup(unique_user)
        cluster = set(client.lhe.select(ct.salt, "1234"))
        before = {
            h.index: dict(h.meter.counts) for h in shared_deployment.fleet
        }
        client.recover(pin="1234")
        for hsm in shared_deployment.fleet:
            delta = hsm.meter.counts.get("elgamal_dec", 0) - before[hsm.index].get(
                "elgamal_dec", 0
            )
            if hsm.index in cluster:
                assert delta >= 1
            else:
                assert delta == 0


class TestForwardSecurity:
    def test_recovered_ciphertext_cannot_be_recovered_again(
        self, shared_deployment, unique_user
    ):
        client = shared_deployment.new_client(unique_user)
        client.backup(b"data", pin="1234")
        assert client.recover(pin="1234") == b"data"
        with pytest.raises(RecoveryError):
            client.recover(pin="1234")

    def test_salt_reuse_revokes_whole_series(self, shared_deployment, unique_user):
        """§8 multiple-ciphertexts: same salt -> same cluster -> recovering
        the newest backup punctures every older one too."""
        client = shared_deployment.new_client(unique_user)
        client.backup(b"day 1", pin="1234")
        client.backup(b"day 2", pin="1234", reuse_salt=True)
        client.backup(b"day 3", pin="1234", reuse_salt=True)
        assert client.recover(pin="1234", backup_index=2) == b"day 3"
        for index in (0, 1):
            with pytest.raises(RecoveryError):
                client.recover(pin="1234", backup_index=index)


class TestAttemptLimits:
    def test_guess_budget_enforced(self, shared_deployment, unique_user):
        client = shared_deployment.new_client(unique_user)
        client.backup(b"data", pin="7777")
        max_attempts = shared_deployment.params.max_attempts_per_user
        failures = 0
        for guess in range(max_attempts):
            try:
                client.recover(pin=f"{guess:04d}")
            except RecoveryError:
                failures += 1
        assert failures == max_attempts
        # Even the *correct* PIN is now refused: the budget is spent.
        with pytest.raises(RecoveryError):
            client.recover(pin="7777")

    def test_attempts_visible_in_log(self, shared_deployment, unique_user):
        client = shared_deployment.new_client(unique_user)
        client.backup(b"data", pin="1234")
        assert client.audit_my_recovery_attempts() == []
        try:
            client.recover(pin="0000")
        except RecoveryError:
            pass
        attempts = client.audit_my_recovery_attempts()
        assert len(attempts) == 1  # the victim can see the break-in attempt


class TestFaultTolerance:
    # The cluster samples HSM indices *with replacement* (Hash -> [N]^n), so
    # one dead device can cover several share positions; both tests count
    # surviving positions rather than assuming distinct cluster members
    # (the salt is random, so anything less is a coin-flip, not a test).

    def test_recovery_with_failed_minority(self, fresh_deployment, unique_user):
        from collections import Counter

        client = fresh_deployment.new_client(unique_user)
        client.backup(b"data", pin="1234")
        ct = fresh_deployment.provider.fetch_backup(unique_user)
        cluster = client.lhe.select(ct.salt, "1234")
        # Kill up to t-1 devices while at least t share positions survive.
        positions = Counter(cluster)
        alive, dead = len(cluster), 0
        for index in dict.fromkeys(cluster):
            if dead == client.params.threshold - 1:
                break
            if alive - positions[index] < client.params.threshold:
                continue
            fresh_deployment.fleet[index].fail_stop()
            alive -= positions[index]
            dead += 1
        assert client.recover(pin="1234") == b"data"

    def test_recovery_fails_below_threshold(self, fresh_deployment, unique_user):
        from collections import Counter

        client = fresh_deployment.new_client(unique_user)
        client.backup(b"data", pin="1234")
        ct = fresh_deployment.provider.fetch_backup(unique_user)
        cluster = client.lhe.select(ct.salt, "1234")
        # Kill devices until fewer than t share positions survive.
        alive = len(cluster)
        for index, occupancy in Counter(cluster).most_common():
            if alive < client.params.threshold:
                break
            fresh_deployment.fleet[index].fail_stop()
            alive -= occupancy
        assert alive < client.params.threshold
        with pytest.raises(RecoveryError):
            client.recover(pin="1234")


class TestMpkRefresh:
    def test_backup_after_rotation_uses_new_keys(self, fresh_deployment, unique_user):
        client = fresh_deployment.new_client(unique_user)
        hsm = fresh_deployment.fleet[0]
        hsm.rotate_keys(fresh_deployment.provider.storage_for_hsm(0))
        client.refresh_mpk(fresh_deployment.fleet.master_public_key())
        client.backup(b"post-rotation", pin="1234")
        assert client.recover(pin="1234") == b"post-rotation"
