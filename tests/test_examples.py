"""Every example script must run clean end to end.

Examples are part of the public contract (they are the README's tour), so
the suite executes each one in-process and checks for failures.
"""

import os
import runpy
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "examples")

ALL_EXAMPLES = [
    "quickstart.py",
    "device_lifecycle.py",
    "attack_and_audit.py",
    "capacity_planning.py",
    "transparency_extensions.py",
]


@pytest.mark.parametrize("script", ALL_EXAMPLES)
def test_example_runs(script, capsys):
    path = os.path.abspath(os.path.join(EXAMPLES_DIR, script))
    assert os.path.exists(path), f"missing example {script}"
    runpy.run_path(path, run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip()  # every example narrates what it does
    assert "!!" not in out  # examples flag unexpected outcomes with '!!'


def test_examples_directory_is_complete():
    """Every .py file in examples/ is exercised by this test module."""
    present = {f for f in os.listdir(EXAMPLES_DIR) if f.endswith(".py")}
    assert present == set(ALL_EXAMPLES)
