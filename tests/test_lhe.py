"""Location-hiding encryption (Figure 15) in isolation.

Uses the plain hashed-ElGamal PKE (the exact Appendix A instantiation) so
these tests are independent of the puncturable-encryption machinery.
"""

import random

import pytest

from repro.core.lhe import (
    BfePke,
    ElGamalPke,
    LheCiphertext,
    LheError,
    LocationHidingEncryption,
    lhe_context,
    parse_share_plaintext,
)
from repro.crypto.elgamal import HashedElGamal

N, CLUSTER, T = 12, 4, 2


@pytest.fixture(scope="module")
def keys():
    rng = random.Random(4)
    return [HashedElGamal.keygen(rng) for _ in range(N)]


@pytest.fixture(scope="module")
def lhe():
    return LocationHidingEncryption(N, CLUSTER, T, pke=ElGamalPke())


def decrypt_all(lhe, keys, ct, pin):
    cluster = lhe.select(ct.salt, pin)
    publics = [kp.public for kp in keys]
    context = lhe.context_for(ct, publics, pin)
    shares = []
    for position, index in enumerate(cluster):
        shares.append(lhe.decrypt_share(keys[index].secret, position, ct, context))
    return lhe.reconstruct(ct, shares, context), context


class TestRoundtrip:
    def test_encrypt_decrypt(self, lhe, keys):
        publics = [kp.public for kp in keys]
        ct = lhe.encrypt(publics, "1234", b"disk image", username="alice")
        message, _ = decrypt_all(lhe, keys, ct, "1234")
        assert message == b"disk image"

    def test_threshold_subset_suffices(self, lhe, keys):
        publics = [kp.public for kp in keys]
        ct = lhe.encrypt(publics, "1234", b"msg", username="alice")
        cluster = lhe.select(ct.salt, "1234")
        context = lhe.context_for(ct, publics, "1234")
        shares = [None] * CLUSTER
        for position in range(T):
            shares[position] = lhe.decrypt_share(
                keys[cluster[position]].secret, position, ct, context
            )
        assert lhe.reconstruct(ct, shares, context) == b"msg"

    def test_below_threshold_fails(self, lhe, keys):
        publics = [kp.public for kp in keys]
        ct = lhe.encrypt(publics, "1234", b"msg", username="alice")
        context = lhe.context_for(ct, publics, "1234")
        cluster = lhe.select(ct.salt, "1234")
        shares = [None] * CLUSTER
        shares[0] = lhe.decrypt_share(keys[cluster[0]].secret, 0, ct, context)
        with pytest.raises(LheError):
            lhe.reconstruct(ct, shares, context)

    def test_explicit_salt_reuse_pins_cluster(self, lhe, keys):
        publics = [kp.public for kp in keys]
        ct1 = lhe.encrypt(publics, "1234", b"v1", username="alice")
        ct2 = lhe.encrypt(publics, "1234", b"v2", username="alice", salt=ct1.salt)
        assert lhe.select(ct1.salt, "1234") == lhe.select(ct2.salt, "1234")


class TestSelect:
    def test_deterministic(self, lhe):
        assert lhe.select(b"salt", "0000") == lhe.select(b"salt", "0000")

    def test_pin_changes_cluster(self, lhe):
        assert lhe.select(b"salt", "0000") != lhe.select(b"salt", "1111")

    def test_cluster_size(self, lhe):
        assert len(lhe.select(b"salt", "0000")) == CLUSTER

    def test_wrong_pin_selects_wrong_cluster_whp(self, lhe, keys):
        # A fixed salt keeps this deterministic: with replacement at
        # N=12/n=4, a *random* salt sees an exact-set collision among 500
        # wrong PINs ~30% of the time, which is a coin-flip, not a test.
        # This salt's cluster has 4 distinct members and zero collisions.
        publics = [kp.public for kp in keys]
        ct = lhe.encrypt(
            publics, "1234", b"msg", username="alice", salt=b"lhe-select-salt0"
        )
        right = set(lhe.select(ct.salt, "1234"))
        overlaps = sum(
            len(right & set(lhe.select(ct.salt, f"{p:04d}"))) == CLUSTER
            for p in range(0, 500)
            if f"{p:04d}" != "1234"
        )
        assert overlaps == 0


class TestBinding:
    def test_wrong_pin_shares_unusable(self, lhe, keys):
        """Decrypting with the wrong PIN's cluster fails at the PKE layer
        (context binds the cluster) — the HSMs never see the PIN itself."""
        publics = [kp.public for kp in keys]
        ct = lhe.encrypt(publics, "1234", b"msg", username="alice")
        wrong_cluster = lhe.select(ct.salt, "9999")
        wrong_context = lhe_context(
            "alice", ct.salt, lhe._cluster_key_digest([publics[i] for i in wrong_cluster])
        )
        with pytest.raises(Exception):
            lhe.decrypt_share(keys[wrong_cluster[0]].secret, 0, ct, wrong_context)

    def test_share_plaintext_binds_username(self, lhe, keys):
        publics = [kp.public for kp in keys]
        ct = lhe.encrypt(publics, "1234", b"msg", username="alice")
        cluster = lhe.select(ct.salt, "1234")
        context = lhe.context_for(ct, publics, "1234")
        plaintext = ElGamalPke().decrypt(
            keys[cluster[0]].secret, ct.share_ciphertexts[0], context
        )
        username, share = parse_share_plaintext(plaintext)
        assert username == "alice"
        assert share.x == 1

    def test_corrupt_share_recovered_robustly(self, lhe, keys):
        from repro.crypto.shamir import Share

        publics = [kp.public for kp in keys]
        ct = lhe.encrypt(publics, "1234", b"msg", username="alice")
        cluster = lhe.select(ct.salt, "1234")
        context = lhe.context_for(ct, publics, "1234")
        shares = [
            lhe.decrypt_share(keys[idx].secret, pos, ct, context)
            for pos, idx in enumerate(cluster)
        ]
        shares[0] = Share(x=shares[0].x, y=shares[0].y ^ 1)  # malicious HSM
        assert lhe.reconstruct(ct, shares, context) == b"msg"


class TestCiphertext:
    def test_hash_is_content_sensitive(self, lhe, keys):
        publics = [kp.public for kp in keys]
        ct1 = lhe.encrypt(publics, "1234", b"m1", username="alice")
        ct2 = lhe.encrypt(publics, "1234", b"m2", username="alice")
        assert ct1.ciphertext_hash() != ct2.ciphertext_hash()
        assert ct1.ciphertext_hash() == ct1.ciphertext_hash()

    def test_size_accounting(self, lhe, keys):
        publics = [kp.public for kp in keys]
        ct = lhe.encrypt(publics, "1234", b"m" * 100, username="alice")
        assert ct.size_bytes() > 100
        assert ct.cluster_size == CLUSTER

    def test_wrong_key_count_rejected(self, lhe, keys):
        with pytest.raises(ValueError):
            lhe.encrypt([keys[0].public], "1234", b"m")

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            LocationHidingEncryption(4, 5, 2)
        with pytest.raises(ValueError):
            LocationHidingEncryption(10, 4, 0)


class TestBfePkeVariant:
    def test_roundtrip_with_puncturable_pke(self):
        """The deployment configuration: LHE over Bloom-filter encryption."""
        from repro.crypto.bfe import BloomFilterEncryption
        from repro.crypto.bloom import BloomParams
        from repro.storage.blockstore import InMemoryBlockStore

        params = BloomParams.for_punctures(4, failure_exponent=4)
        pairs = [
            BloomFilterEncryption.keygen(params, InMemoryBlockStore())
            for _ in range(6)
        ]
        publics = [pub for pub, _ in pairs]
        lhe = LocationHidingEncryption(6, 3, 2, pke=BfePke())
        ct = lhe.encrypt(publics, "4321", b"data", username="bob")
        cluster = lhe.select(ct.salt, "4321")
        context = lhe.context_for(ct, publics, "4321")
        shares = [
            lhe.decrypt_share(pairs[idx][1], pos, ct, context)
            for pos, idx in enumerate(cluster)
        ]
        assert lhe.reconstruct(ct, shares, context) == b"data"
