"""Hashed ElGamal: roundtrips, context binding, key privacy shape."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.elgamal import ElGamalCiphertext, HashedElGamal
from repro.crypto.gcm import AuthenticationError


class TestRoundtrip:
    def test_basic(self):
        kp = HashedElGamal.keygen()
        ct = HashedElGamal.encrypt(kp.public, b"plaintext")
        assert HashedElGamal.decrypt(kp.secret, ct) == b"plaintext"

    def test_empty_message(self):
        kp = HashedElGamal.keygen()
        ct = HashedElGamal.encrypt(kp.public, b"")
        assert HashedElGamal.decrypt(kp.secret, ct) == b""

    @given(message=st.binary(max_size=300))
    @settings(max_examples=15, deadline=None)
    def test_roundtrip_property(self, message):
        kp = HashedElGamal.keygen()
        ct = HashedElGamal.encrypt(kp.public, message, context=b"ctx")
        assert HashedElGamal.decrypt(kp.secret, ct, context=b"ctx") == message


class TestBinding:
    def test_wrong_key_fails(self):
        kp1, kp2 = HashedElGamal.keygen(), HashedElGamal.keygen()
        ct = HashedElGamal.encrypt(kp1.public, b"secret")
        with pytest.raises(AuthenticationError):
            HashedElGamal.decrypt(kp2.secret, ct)

    def test_wrong_context_fails(self):
        # Appendix A.4's domain separation: decryption under a different
        # (username, salt, cluster) context must fail, not return plaintext.
        kp = HashedElGamal.keygen()
        ct = HashedElGamal.encrypt(kp.public, b"secret", context=b"user-a")
        with pytest.raises(AuthenticationError):
            HashedElGamal.decrypt(kp.secret, ct, context=b"user-b")

    def test_tampered_body_fails(self):
        kp = HashedElGamal.keygen()
        ct = HashedElGamal.encrypt(kp.public, b"secret")
        tampered = ElGamalCiphertext(ct.ephemeral, bytes([ct.body[0] ^ 1]) + ct.body[1:])
        with pytest.raises(AuthenticationError):
            HashedElGamal.decrypt(kp.secret, tampered)

    def test_swapped_ephemeral_fails(self):
        kp = HashedElGamal.keygen()
        ct1 = HashedElGamal.encrypt(kp.public, b"one")
        ct2 = HashedElGamal.encrypt(kp.public, b"two")
        frankenstein = ElGamalCiphertext(ct1.ephemeral, ct2.body)
        with pytest.raises(AuthenticationError):
            HashedElGamal.decrypt(kp.secret, frankenstein)

    def test_too_short_body(self):
        kp = HashedElGamal.keygen()
        ct = HashedElGamal.encrypt(kp.public, b"x")
        with pytest.raises(AuthenticationError):
            HashedElGamal.decrypt(kp.secret, ElGamalCiphertext(ct.ephemeral, b"ab"))


class TestSerialization:
    def test_roundtrip(self):
        kp = HashedElGamal.keygen()
        ct = HashedElGamal.encrypt(kp.public, b"data")
        restored = ElGamalCiphertext.from_bytes(ct.to_bytes())
        assert restored == ct
        assert HashedElGamal.decrypt(kp.secret, restored) == b"data"

    def test_length(self):
        kp = HashedElGamal.keygen()
        ct = HashedElGamal.encrypt(kp.public, b"12345")
        # 33 (point) + 12 (nonce) + 5 (body) + 16 (tag)
        assert len(ct) == 33 + 12 + 5 + 16

    def test_malformed_rejected(self):
        with pytest.raises(ValueError):
            ElGamalCiphertext.from_bytes(b"short")


class TestKeyPrivacyShape:
    def test_ciphertexts_carry_no_key_reference(self):
        """Key privacy (Bellare et al.): the ciphertext is a random group
        element plus AE bytes; nothing in it equals or encodes the recipient
        key.  (The full indistinguishability argument is Appendix A; here we
        check the structural property the argument relies on.)"""
        kp1, kp2 = HashedElGamal.keygen(), HashedElGamal.keygen()
        ct1 = HashedElGamal.encrypt(kp1.public, b"m")
        ct2 = HashedElGamal.encrypt(kp2.public, b"m")
        for ct, kp in ((ct1, kp1), (ct2, kp2)):
            assert ct.ephemeral != kp.public
            assert kp.public.to_bytes() not in ct.to_bytes()
        # Same-key ciphertexts are also unlinkable at the structural level.
        ct1b = HashedElGamal.encrypt(kp1.public, b"m")
        assert ct1.ephemeral != ct1b.ephemeral
