"""Property-based tests over location-hiding encryption.

Uses the hashed-ElGamal instantiation with a small fixed key universe so
hypothesis can explore messages, PINs, thresholds, and failure patterns
without paying keygen per example.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.lhe import ElGamalPke, LheError, LocationHidingEncryption
from repro.crypto.elgamal import HashedElGamal

N_KEYS = 10
_RNG = random.Random(43)
KEYS = [HashedElGamal.keygen(_RNG) for _ in range(N_KEYS)]
PUBLICS = [k.public for k in KEYS]


def _decrypt(lhe, ct, pin, drop=frozenset()):
    cluster = lhe.select(ct.salt, pin)
    context = lhe.context_for(ct, PUBLICS, pin)
    shares = []
    for position, index in enumerate(cluster):
        if position in drop:
            shares.append(None)
        else:
            shares.append(lhe.decrypt_share(KEYS[index].secret, position, ct, context))
    return lhe.reconstruct(ct, shares, context)


@given(
    message=st.binary(max_size=300),
    pin=st.text(alphabet="0123456789", min_size=4, max_size=4),
    username=st.text(
        alphabet=st.characters(min_codepoint=48, max_codepoint=122), max_size=12
    ),
)
@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_roundtrip_property(message, pin, username):
    lhe = LocationHidingEncryption(N_KEYS, 4, 2, pke=ElGamalPke())
    ct = lhe.encrypt(PUBLICS, pin, message, username=username)
    assert _decrypt(lhe, ct, pin) == message


@given(
    threshold=st.integers(1, 4),
    extra=st.integers(0, 2),
    data=st.data(),
)
@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_any_threshold_subset_reconstructs(threshold, extra, data):
    cluster_size = threshold + extra
    lhe = LocationHidingEncryption(N_KEYS, cluster_size, threshold, pke=ElGamalPke())
    ct = lhe.encrypt(PUBLICS, "7777", b"msg", username="prop")
    # Drop everything except a random size-`threshold` subset of positions.
    keep = set(
        data.draw(
            st.permutations(list(range(cluster_size)))
        )[:threshold]
    )
    drop = frozenset(range(cluster_size)) - keep
    assert _decrypt(lhe, ct, "7777", drop=drop) == b"msg"


@given(data=st.data())
@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_below_threshold_never_reconstructs(data):
    lhe = LocationHidingEncryption(N_KEYS, 4, 3, pke=ElGamalPke())
    ct = lhe.encrypt(PUBLICS, "1212", b"msg", username="prop")
    keep = set(data.draw(st.permutations([0, 1, 2, 3]))[:2])  # t-1 shares
    drop = frozenset(range(4)) - keep
    with pytest.raises(LheError):
        _decrypt(lhe, ct, "1212", drop=drop)


@given(
    pin_a=st.text(alphabet="0123456789", min_size=4, max_size=4),
    pin_b=st.text(alphabet="0123456789", min_size=4, max_size=4),
    salt=st.binary(min_size=8, max_size=16),
)
@settings(max_examples=40)
def test_select_determinism_and_sensitivity(pin_a, pin_b, salt):
    lhe = LocationHidingEncryption(1000, 8, 4)
    sel_a = lhe.select(salt, pin_a)
    assert sel_a == lhe.select(salt, pin_a)
    if pin_a != pin_b:
        # With 1000^8 cluster assignments, distinct PINs virtually never
        # collide; a collision here would indicate a seeding bug.
        assert sel_a != lhe.select(salt, pin_b)
