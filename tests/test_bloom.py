"""Bloom-filter parameterization for puncturable encryption."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.bloom import BloomParams


class TestSizing:
    def test_paper_scale_key_size(self):
        """§7.1: at 2^20 punctures the secret key exceeds 64 MB."""
        params = BloomParams.for_punctures(1 << 20, failure_exponent=16)
        assert params.secret_key_bytes(element_size=32) > 64 * 1024 * 1024

    def test_slots_grow_linearly_with_punctures(self):
        small = BloomParams.for_punctures(100)
        large = BloomParams.for_punctures(1000)
        ratio = large.num_slots / small.num_slots
        assert 9 < ratio < 11

    def test_hash_count_tracks_failure_exponent(self):
        # k = (m/n) ln2 with m = n·λ/ln2² gives k ≈ λ·(1/ln2)·ln2 = λ/... ≈ 1.44λ·ln2
        params = BloomParams.for_punctures(64, failure_exponent=20)
        assert abs(params.num_hashes - round(20 / math.log(2) * math.log(2) ** 2 / math.log(2))) <= 2

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            BloomParams.for_punctures(0)
        with pytest.raises(ValueError):
            BloomParams.for_punctures(4, failure_exponent=0)


class TestSlotSelection:
    def test_deterministic(self):
        params = BloomParams.for_punctures(16, failure_exponent=8)
        assert params.slots_for_tag(b"tag") == params.slots_for_tag(b"tag")

    def test_distinct_slots(self):
        params = BloomParams.for_punctures(16, failure_exponent=8)
        slots = params.slots_for_tag(b"tag")
        assert len(set(slots)) == len(slots) == params.num_hashes

    def test_in_range(self):
        params = BloomParams.for_punctures(16, failure_exponent=8)
        for tag in (b"a", b"b", b"c"):
            assert all(0 <= s < params.num_slots for s in params.slots_for_tag(tag))

    def test_tag_sensitivity(self):
        params = BloomParams.for_punctures(64, failure_exponent=8)
        assert params.slots_for_tag(b"t1") != params.slots_for_tag(b"t2")

    def test_more_hashes_than_slots_rejected(self):
        bad = BloomParams(num_slots=2, num_hashes=5, max_punctures=1, failure_exponent=1)
        with pytest.raises(ValueError):
            bad.slots_for_tag(b"t")

    @given(tag=st.binary(min_size=1, max_size=20))
    @settings(max_examples=40)
    def test_slot_properties(self, tag):
        params = BloomParams.for_punctures(8, failure_exponent=6)
        slots = params.slots_for_tag(tag)
        assert len(slots) == params.num_hashes
        assert len(set(slots)) == len(slots)


class TestFailureProbability:
    def test_zero_before_any_puncture(self):
        params = BloomParams.for_punctures(16)
        assert params.failure_probability(0) == 0.0

    def test_monotone_increasing(self):
        params = BloomParams.for_punctures(16, failure_exponent=8)
        probs = [params.failure_probability(i) for i in range(0, 30, 3)]
        assert probs == sorted(probs)

    def test_design_point(self):
        """At exactly max_punctures the failure rate should be near the
        designed 2^-λ (within a factor from rounding m and k)."""
        params = BloomParams.for_punctures(128, failure_exponent=10)
        p = params.failure_probability(128)
        assert p < 2**-8  # designed for 2^-10; allow rounding slack
