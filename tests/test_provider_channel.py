"""The provider RPC surface: loopback round-trips, typed errors, and the
wire-vs-direct equivalence acceptance property.

The untrusted provider is a *network service*: every interaction of the
client's provider leg (backup storage, attempt logging, proof refresh,
reply escrow) crosses ``core/wire`` frames through a ``ProviderChannel``.
These tests pin three contracts:

- each RPC method round-trips through the in-memory byte loopback;
- failures cross the boundary as typed error frames (``ProviderError`` /
  ``ServiceTimeout`` client-side) — never a raw ``KeyError`` /
  ``IndexError`` or a live exception object;
- a fixed seeded backup+recovery workload is *byte-identical* between the
  wire path and the direct-call reference path: same op-count metering,
  same log digest, same log entries, same plaintexts.
"""

import random
import secrets

import pytest

from repro.core import wire
from repro.core.identifiers import attempt_identifier
from repro.core.lhe import LheCiphertext
from repro.core.params import SystemParams
from repro.core.protocol import Deployment
from repro.core.provider import ProviderError, ServiceProvider
from repro.metering import OpMeter
from repro.service.batcher import ServiceTimeout
from repro.service.channel import (
    DirectProviderChannel,
    ProviderWireEndpoint,
    WireProviderChannel,
)


def _loopback(provider) -> WireProviderChannel:
    return WireProviderChannel(ProviderWireEndpoint(provider))


def _ciphertext(tag: bytes = b"ct") -> LheCiphertext:
    return LheCiphertext(
        salt=b"salt-" + tag,
        username="wire-user",
        share_ciphertexts=(),
        payload=b"payload-" + tag,
        threshold=2,
        num_hsms=4,
    )


class TestLoopbackRoundTrips:
    """Every RPC method crosses bytes and lands on the real provider."""

    def test_backup_storage(self):
        provider = ServiceProvider()
        channel = _loopback(provider)
        assert channel.upload_backup("wire-user", _ciphertext(b"0")) == 0
        assert channel.upload_backup("wire-user", _ciphertext(b"1")) == 1
        assert channel.backup_count("wire-user") == 2
        assert channel.fetch_backup("wire-user", 0) == _ciphertext(b"0")
        assert channel.fetch_backup("wire-user") == _ciphertext(b"1")
        # The stored object is a decoded copy, never the caller's object.
        original = _ciphertext(b"2")
        channel.upload_backup("wire-user", original)
        assert provider.fetch_backup("wire-user") == original
        assert provider.fetch_backup("wire-user") is not original

    def test_incrementals_and_reply_escrow(self):
        channel = _loopback(ServiceProvider())
        channel.upload_incremental("wire-user", b"day1")
        channel.upload_incremental("wire-user", b"day2")
        assert channel.fetch_incrementals("wire-user") == [b"day1", b"day2"]
        channel.store_reply("wire-user", 0, b"reply-blob")
        assert channel.fetch_replies("wire-user", 0) == [b"reply-blob"]
        assert channel.fetch_replies("wire-user", 7) == []

    def test_attempt_numbering_and_logging(self):
        channel = _loopback(ServiceProvider())
        assert channel.next_attempt_number("wire-user") == 0
        assert channel.reserve_attempt_number("wire-user") == 0
        assert channel.reserve_attempt_number("wire-user") == 1
        identifier = channel.log_recovery_attempt("wire-user", 2, b"commit")
        assert identifier == attempt_identifier("wire-user", 2)
        assert channel.next_attempt_number("wire-user") == 3
        channel.share_phase_done("wire-user", 2)  # plain provider: no-op ack

    def test_prove_inclusion_absent_is_none(self):
        channel = _loopback(ServiceProvider())
        assert channel.prove_inclusion(b"never-committed", b"v") is None

    def test_recovery_attempts_empty(self):
        channel = _loopback(ServiceProvider())
        assert channel.recovery_attempts_for("wire-user") == []

    def test_traffic_counters_accumulate(self):
        channel = _loopback(ServiceProvider())
        channel.upload_backup("wire-user", _ciphertext())
        channel.backup_count("wire-user")
        stats = channel.wire_stats()
        assert stats["frames_sent"] == 2
        assert stats["bytes_sent"] > 0 and stats["bytes_received"] > 0


class TestTypedErrors:
    """Failures travel as typed frames, never as raw Python exceptions."""

    def test_out_of_range_fetch_is_provider_error(self):
        provider = ServiceProvider()
        provider.upload_backup("u", _ciphertext())
        for surface in (provider, DirectProviderChannel(provider), _loopback(provider)):
            with pytest.raises(ProviderError, match="out of range"):
                surface.fetch_backup("u", 5)
            with pytest.raises(ProviderError, match="out of range"):
                surface.fetch_backup("u", -2)

    def test_unknown_username_fetch_is_provider_error(self):
        for surface in (ServiceProvider(), _loopback(ServiceProvider())):
            with pytest.raises(ProviderError, match="no backups"):
                surface.fetch_backup("ghost")

    def test_duplicate_log_attempt_is_typed_over_the_wire(self):
        provider = ServiceProvider()
        channel = _loopback(provider)
        channel.log_recovery_attempt("u", 0, b"h0")
        # Directly the provider raises KeyError (the batcher relies on it);
        # across the wire it must become a typed ProviderError frame.
        with pytest.raises(KeyError):
            provider.log_recovery_attempt("u", 0, b"h1")
        with pytest.raises(ProviderError):
            channel.log_recovery_attempt("u", 0, b"h1")

    def test_malformed_request_answers_bad_request_frame(self):
        endpoint = ProviderWireEndpoint(ServiceProvider())
        for junk in (b"", b"\x01", b"\x01\x63", b"\xff" * 40):
            kind, fields = wire.decode_provider_reply(endpoint.handle(junk))
            assert kind == wire.PROV_REPLY_ERROR
            assert fields["status"] == wire.PROV_ERR_BAD_REQUEST

    def test_service_timeout_crosses_as_typed_status(self):
        class TimingOutProvider:
            def log_and_prove(self, username, attempt, commitment):
                raise ServiceTimeout("no epoch committed within 0.1s")

        channel = _loopback(TimingOutProvider())
        with pytest.raises(ServiceTimeout):
            channel.log_and_prove("u", 0, b"c")

    def test_unencodable_reply_answers_typed_error_frame(self):
        class OutOfContractProvider:
            def backup_count(self, username):
                return 1 << 40  # does not fit the COUNT reply's u32

        channel = _loopback(OutOfContractProvider())
        with pytest.raises(ProviderError, match="u32 out of range"):
            channel.backup_count("u")

    def test_unexpected_reply_kind_is_wire_error(self):
        channel = WireProviderChannel(
            lambda request: wire.encode_provider_reply(wire.PROV_REPLY_ACK, {})
        )
        with pytest.raises(wire.WireFormatError):
            channel.backup_count("u")


class TestWireDirectEquivalence:
    """Acceptance: the byte-framed provider leg changes *nothing* about the
    computation — op counts, log digest, log entries, and plaintexts are
    byte-identical to the direct-call reference path."""

    METERED_OPS = ("ec_mult", "ecdsa_verify", "sha256_block", "aes_block")

    def run_seeded_workload(self, transport: str):
        """One fixed backup/recovery workload; all randomness from one PRNG
        so the trace is a pure function of the code path under test."""
        stream = random.Random(0xFEEDFACE)
        originals = (secrets.token_bytes, secrets.randbelow)
        secrets.token_bytes = lambda n=32: stream.getrandbits(8 * n).to_bytes(n, "big")
        secrets.randbelow = lambda bound: stream.randrange(bound)
        try:
            meter = OpMeter()
            with meter.attached():
                params = SystemParams.for_testing(
                    num_hsms=6, cluster_size=3, max_punctures=32
                )
                deployment = Deployment.create(params, rng=random.Random(7))
                client = deployment.new_client("equiv-user", transport=transport)
                client.enable_incremental_backups(pin="1234")
                client.incremental_backup(b"increment-1")
                client.backup(b"equivalence payload", pin="1234")
                increments = client.recover_incrementals(pin="1234")
                recovered = client.recover(pin="1234")
                attempts = client.audit_my_recovery_attempts()
                escrowed = client.provider.fetch_replies("equiv-user", 1)
            provider = deployment.provider
            return {
                "ops": {op: meter.counts[op] for op in self.METERED_OPS},
                "digest": provider.log.digest,
                "entries": list(provider.log.ordered_entries),
                "recovered": recovered,
                "increments": increments,
                "attempts": attempts,
                "escrowed": escrowed,
            }
        finally:
            secrets.token_bytes, secrets.randbelow = originals

    def test_wire_path_is_byte_identical_to_direct(self):
        direct = self.run_seeded_workload("direct")
        wired = self.run_seeded_workload("wire")
        assert direct["recovered"] == b"equivalence payload"
        assert direct["increments"] == [b"increment-1"]
        assert wired["ops"] == direct["ops"]
        assert wired["digest"] == direct["digest"]
        assert wired["entries"] == direct["entries"]
        assert wired == direct
