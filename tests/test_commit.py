"""Recovery commitments: binding, hiding shape, serialization."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.commit import CommitmentOpening, commit_recovery, verify_opening


class TestCommitment:
    def test_opens(self):
        h, opening = commit_recovery("alice", (1, 5, 9), b"\xaa" * 32)
        assert verify_opening(h, opening)

    def test_binding_username(self):
        h, opening = commit_recovery("alice", (1, 5, 9), b"\xaa" * 32)
        forged = CommitmentOpening("bob", opening.cluster, opening.ciphertext_hash, opening.randomness)
        assert not verify_opening(h, forged)

    def test_binding_cluster(self):
        h, opening = commit_recovery("alice", (1, 5, 9), b"\xaa" * 32)
        forged = CommitmentOpening(opening.username, (1, 5, 10), opening.ciphertext_hash, opening.randomness)
        assert not verify_opening(h, forged)

    def test_binding_ciphertext(self):
        h, opening = commit_recovery("alice", (1, 5, 9), b"\xaa" * 32)
        forged = CommitmentOpening(opening.username, opening.cluster, b"\xbb" * 32, opening.randomness)
        assert not verify_opening(h, forged)

    def test_hiding_randomization(self):
        h1, _ = commit_recovery("alice", (1, 2), b"\x00" * 32)
        h2, _ = commit_recovery("alice", (1, 2), b"\x00" * 32)
        assert h1 != h2  # fresh randomness each time

    def test_deterministic_with_rng(self):
        import random

        h1, o1 = commit_recovery("alice", (1, 2), b"\x00" * 32, rng=random.Random(3))
        h2, o2 = commit_recovery("alice", (1, 2), b"\x00" * 32, rng=random.Random(3))
        assert h1 == h2 and o1 == o2


class TestSerialization:
    def test_roundtrip(self):
        _, opening = commit_recovery("alice", (3, 1, 4, 1, 5), b"\xcc" * 32)
        restored = CommitmentOpening.from_bytes(opening.to_bytes())
        assert restored == opening

    def test_truncated_rejected(self):
        _, opening = commit_recovery("alice", (3,), b"\xcc" * 32)
        with pytest.raises(ValueError):
            CommitmentOpening.from_bytes(opening.to_bytes()[:-4])

    @given(
        username=st.text(alphabet=st.characters(min_codepoint=32, max_codepoint=0x2FF), max_size=30),
        cluster=st.lists(st.integers(0, 2**32 - 1), max_size=20),
        ct_hash=st.binary(min_size=32, max_size=32),
    )
    @settings(max_examples=40)
    def test_roundtrip_property(self, username, cluster, ct_hash):
        h, opening = commit_recovery(username, cluster, ct_hash)
        restored = CommitmentOpening.from_bytes(opening.to_bytes())
        assert verify_opening(h, restored)
