"""Recovery-attempt identifier naming."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.identifiers import (
    attempt_identifier,
    parse_attempt_identifier,
    user_prefix,
)


class TestNaming:
    def test_roundtrip(self):
        ident = attempt_identifier("alice", 3)
        assert parse_attempt_identifier(ident) == ("alice", 3)

    def test_prefix_matches(self):
        assert attempt_identifier("alice", 0).startswith(user_prefix("alice"))

    def test_prefix_does_not_cross_users(self):
        # "al" must not prefix-match "alice"'s identifiers at the user level
        assert not attempt_identifier("alice", 0).startswith(user_prefix("al"))

    def test_pipe_in_username_rejected(self):
        with pytest.raises(ValueError):
            attempt_identifier("a|b", 0)

    def test_negative_attempt_rejected(self):
        with pytest.raises(ValueError):
            attempt_identifier("alice", -1)

    def test_malformed_parse_rejected(self):
        for bad in (b"junk", b"rec|", b"rec|user|", b"rec|user|x", b"other|user|1"):
            with pytest.raises(ValueError):
                parse_attempt_identifier(bad)

    def test_usernames_with_pipes_in_attempt_position(self):
        # usernames containing digits parse back correctly
        assert parse_attempt_identifier(attempt_identifier("user42", 7)) == ("user42", 7)

    @given(
        username=st.text(
            alphabet=st.characters(min_codepoint=33, max_codepoint=126, exclude_characters="|"),
            min_size=1,
            max_size=30,
        ),
        attempt=st.integers(0, 10**6),
    )
    @settings(max_examples=50)
    def test_roundtrip_property(self, username, attempt):
        assert parse_attempt_identifier(attempt_identifier(username, attempt)) == (
            username,
            attempt,
        )
