"""Appendix A's experiments, measured and compared to the theorems."""

import math
import random

import pytest

from repro.adversary.games import (
    GameParams,
    Remark5Adversary,
    correctness_experiment,
    estimate_advantage,
    estimate_correctness_failure,
    security_experiment,
)
from repro.analysis.bounds import correctness_failure_exact


class TestExperiment2Correctness:
    def test_no_failures_always_succeeds(self):
        params = GameParams(f_live=0.0)
        rng = random.Random(1)
        assert all(
            correctness_experiment(params, "5", b"m", rng) for _ in range(10)
        )

    def test_all_failed_always_fails(self):
        params = GameParams(f_live=1.0)
        rng = random.Random(2)
        assert not any(
            correctness_experiment(params, "5", b"m", rng) for _ in range(5)
        )

    def test_empirical_failure_matches_binomial(self):
        """Measured Experiment 2 failure rate vs the exact binomial tail.

        The game's failure mechanics are slightly *harsher* than the bound's
        model (cluster sampling is with replacement, so a failed HSM can
        absorb two share slots), so we check agreement within generous
        statistical tolerance, plus the harsher-side ordering.
        """
        params = GameParams(
            num_hsms=16, cluster_size=4, threshold=2, f_live=0.4
        )
        trials = 400
        measured = estimate_correctness_failure(params, trials, seed=3)
        exact = correctness_failure_exact(
            params.cluster_size, params.threshold, params.f_live
        )
        sigma = math.sqrt(exact * (1 - exact) / trials)
        assert measured <= exact + 5 * sigma + 0.08
        assert measured >= exact - 5 * sigma - 0.02

    def test_failure_monotone_in_flive(self):
        low = estimate_correctness_failure(GameParams(f_live=0.1), 150, seed=4)
        high = estimate_correctness_failure(GameParams(f_live=0.6), 150, seed=4)
        assert high > low


class TestExperiment4Security:
    def test_budget_enforced_by_challenger(self):
        class GreedyAdversary:
            def play(self, params, lhe, publics, salt, ct, m0, m1, corrupt, rng):
                for i in range(params.num_hsms):
                    corrupt(i)  # blows the budget
                return 0

        with pytest.raises(RuntimeError):
            security_experiment(GameParams(), GreedyAdversary(), 0, random.Random(5))

    def test_full_budget_adversary_wins_sometimes(self):
        """With f_secret large enough to cover several PINs' clusters, the
        Remark 5 attack must achieve a clearly nonzero advantage — the
        scheme is exactly as strong as the analysis says, no stronger."""
        params = GameParams(
            num_hsms=12, cluster_size=3, threshold=2, pin_digits=1, f_secret=0.75
        )
        advantage = estimate_advantage(params, Remark5Adversary(), trials=60, seed=6)
        assert advantage > 0.15

    def test_small_budget_adversary_near_zero_advantage(self):
        """With a budget below one cluster the adversary can decrypt nothing
        and its advantage is statistical noise around zero."""
        params = GameParams(
            num_hsms=16, cluster_size=5, threshold=3, pin_digits=2, f_secret=0.1
        )
        advantage = estimate_advantage(params, Remark5Adversary(), trials=60, seed=7)
        assert advantage < 0.25  # ~N(0, 1/sqrt(30)) noise band

    def test_advantage_grows_with_budget(self):
        base = GameParams(num_hsms=12, cluster_size=3, threshold=2, pin_digits=1)
        small = estimate_advantage(
            GameParams(**{**base.__dict__, "f_secret": 0.1}),
            Remark5Adversary(),
            trials=60,
            seed=8,
        )
        large = estimate_advantage(
            GameParams(**{**base.__dict__, "f_secret": 0.9}),
            Remark5Adversary(),
            trials=60,
            seed=8,
        )
        assert large >= small
