"""Bloom-filter (puncturable) encryption."""

import pytest

from repro.crypto.bfe import (
    BfePublicKey,
    BloomFilterEncryption as BFE,
    PuncturedKeyError,
)
from repro.crypto.bloom import BloomParams
from repro.storage.blockstore import InMemoryBlockStore


@pytest.fixture(scope="module")
def small_params():
    return BloomParams.for_punctures(8, failure_exponent=4)


@pytest.fixture
def keypair(small_params):
    return BFE.keygen(small_params, InMemoryBlockStore())


class TestRoundtrip:
    def test_encrypt_decrypt(self, keypair):
        pub, sec = keypair
        ct = BFE.encrypt(pub, b"payload", context=b"ctx")
        assert BFE.decrypt(sec, ct, context=b"ctx") == b"payload"

    def test_context_binding(self, keypair):
        pub, sec = keypair
        ct = BFE.encrypt(pub, b"payload", context=b"user-a")
        with pytest.raises(Exception):
            BFE.decrypt(sec, ct, context=b"user-b")

    def test_large_payload(self, keypair):
        pub, sec = keypair
        message = bytes(range(256)) * 40
        ct = BFE.encrypt(pub, message, context=b"c")
        assert BFE.decrypt(sec, ct, context=b"c") == message


class TestPuncturing:
    def test_punctured_ciphertext_is_dead(self, keypair):
        pub, sec = keypair
        ct = BFE.encrypt(pub, b"secret", context=b"c")
        BFE.puncture(sec, ct, context=b"c")
        with pytest.raises(PuncturedKeyError):
            BFE.decrypt(sec, ct, context=b"c")

    def test_other_ciphertexts_survive(self, keypair):
        pub, sec = keypair
        ct1 = BFE.encrypt(pub, b"one", context=b"c")
        ct2 = BFE.encrypt(pub, b"two", context=b"c")
        BFE.puncture(sec, ct1, context=b"c")
        assert BFE.decrypt(sec, ct2, context=b"c") == b"two"

    def test_puncture_is_idempotent(self, keypair):
        pub, sec = keypair
        ct = BFE.encrypt(pub, b"x", context=b"c")
        BFE.puncture(sec, ct, context=b"c")
        BFE.puncture(sec, ct, context=b"c")
        assert sec.punctures_done == 2
        # slots deleted counted once
        assert sec.slots_deleted <= sec.params.num_hashes

    def test_rotation_trigger(self, keypair):
        pub, sec = keypair
        assert not sec.needs_rotation()
        punctures = 0
        while not sec.needs_rotation() and punctures < 50:
            ct = BFE.encrypt(pub, b"x", context=b"c")
            BFE.puncture(sec, ct, context=b"c")
            punctures += 1
        assert sec.needs_rotation()
        assert sec.fraction_deleted() >= 0.5

    def test_forward_security_with_full_state(self, small_params):
        """Even an attacker holding every provider-side block *and* the
        post-puncture HSM root key cannot decrypt a punctured ciphertext."""
        store = InMemoryBlockStore()
        pub, sec = BFE.keygen(small_params, store)
        ct = BFE.encrypt(pub, b"forward secret", context=b"c")
        BFE.puncture(sec, ct, context=b"c")
        # Attacker clones all current storage + HSM state; still dead:
        with pytest.raises(PuncturedKeyError):
            BFE.decrypt(sec, ct, context=b"c")


class TestPublicKey:
    def test_slot_proofs(self, keypair):
        pub, _ = keypair
        for index in (0, 1, pub.params.num_slots - 1):
            proof = pub.slot_proof(index)
            assert pub.verify_slot(index, pub.slot_pubkeys[index], proof)

    def test_wrong_slot_rejected(self, keypair):
        pub, _ = keypair
        proof = pub.slot_proof(0)
        assert not pub.verify_slot(0, pub.slot_pubkeys[1], proof)
        assert not pub.verify_slot(1, pub.slot_pubkeys[0], proof)

    def test_size_accounting(self, keypair):
        pub, _ = keypair
        assert pub.size_bytes() == 33 * pub.params.num_slots

    def test_commitment_differs_between_keys(self, small_params):
        pub1, _ = BFE.keygen(small_params, InMemoryBlockStore())
        pub2, _ = BFE.keygen(small_params, InMemoryBlockStore())
        assert pub1.commitment != pub2.commitment
