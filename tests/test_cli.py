"""CLI smoke tests (each command exercises the real stack)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_demo_defaults(self):
        args = build_parser().parse_args(["demo"])
        assert args.hsms == 16 and args.pin == "4927"


class TestCommands:
    def test_params(self, capsys):
        assert main(["params"]) == 0
        out = capsys.readouterr().out
        assert "N = 3100" in out
        assert "Bloom key" in out
        assert "Thm 10" in out

    def test_plan(self, capsys):
        assert main(["plan", "--users", "1e8", "--pin-digits", "6"]) == 0
        out = capsys.readouterr().out
        assert "n = 40" in out
        assert "SoloKey" in out

    def test_demo_small(self, capsys):
        assert main(
            ["demo", "--hsms", "8", "--cluster", "3", "--pin", "1234",
             "--message", "cli test"]
        ) == 0
        out = capsys.readouterr().out
        assert "recovered successfully" in out
        assert "forward security" in out

    def test_loadtest_small(self, capsys):
        assert main(
            ["loadtest", "--clients", "4", "--hsms", "8", "--cluster", "3",
             "--tick-interval", "0.01"]
        ) == 0
        out = capsys.readouterr().out
        assert "all sessions recovered their backups" in out
        assert "log epochs committed" in out
