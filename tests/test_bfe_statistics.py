"""Statistical behaviour of Bloom-filter encryption under puncturing.

These tests measure the false-positive dynamics that drive the paper's
key-rotation policy: as punctures accumulate, unrelated ciphertexts start
dying at exactly the rate the Bloom analysis predicts.
"""

import random

import pytest

from repro.crypto.bfe import BloomFilterEncryption as BFE, PuncturedKeyError
from repro.crypto.bloom import BloomParams
from repro.storage.blockstore import InMemoryBlockStore


@pytest.fixture(scope="module")
def worn_key():
    """A keypair punctured halfway to its design limit."""
    params = BloomParams.for_punctures(32, failure_exponent=4)
    pub, sec = BFE.keygen(params, InMemoryBlockStore())
    rng = random.Random(29)
    for i in range(16):
        tag = bytes(rng.randrange(256) for _ in range(16))
        BFE.puncture_tag(sec, tag)
    return params, pub, sec


class TestFalsePositiveRate:
    def test_measured_rate_matches_prediction(self, worn_key):
        params, pub, sec = worn_key
        predicted = params.failure_probability(sec.punctures_done)
        trials = 120
        dead = 0
        for i in range(trials):
            ct = BFE.encrypt(pub, b"probe", context=b"trial%d" % i)
            try:
                BFE.decrypt(sec, ct, context=b"trial%d" % i)
            except PuncturedKeyError:
                dead += 1
        measured = dead / trials
        # Binomial noise band around the analytic prediction.
        sigma = (max(predicted, 0.01) * 1.0 / trials) ** 0.5
        assert abs(measured - predicted) < 6 * sigma + 0.12

    def test_slots_deleted_tracks_occupancy_model(self, worn_key):
        params, _, sec = worn_key
        # With k slots per puncture and random tags, deletions ≈ m(1-e^{-kd/m}).
        import math

        expected = params.num_slots * (
            1 - math.exp(-params.num_hashes * sec.punctures_done / params.num_slots)
        )
        assert sec.slots_deleted == pytest.approx(expected, rel=0.35)


class TestRotationPolicy:
    def test_rotation_triggers_before_design_limit(self):
        """The paper rotates at half-deleted, which arrives within ~m/(2k)
        punctures — well before the failure-rate design point."""
        params = BloomParams.for_punctures(32, failure_exponent=4)
        pub, sec = BFE.keygen(params, InMemoryBlockStore())
        rng = random.Random(31)
        punctures = 0
        while not sec.needs_rotation() and punctures < 10 * params.max_punctures:
            BFE.puncture_tag(sec, bytes(rng.randrange(256) for _ in range(16)))
            punctures += 1
        # ln(2)·m/k punctures reach 50% occupancy in expectation.
        import math

        expected = math.log(2) * params.num_slots / params.num_hashes
        assert punctures == pytest.approx(expected, rel=0.5)

    def test_paper_deployment_rotation_point(self):
        params = BloomParams.paper_deployment()
        # At the deterministic worst case (disjoint tags), rotation lands at
        # exactly 2^18 punctures: m/2 slots deleted, 4 per puncture.
        assert params.num_slots // (2 * params.num_hashes) == 1 << 18
        # Failure rate for survivors at that point: (1 - e^-0.5)^4 ≈ 2.4%.
        assert params.failure_probability(1 << 18) == pytest.approx(0.024, abs=0.01)
