"""Authenticated dictionary: the five routines of §6.1 and their soundness."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.log.authdict import (
    AuthenticatedDictionary,
    InsertionProof,
    empty_digest,
    verify_extension,
    verify_includes,
    verify_insertion,
)


def filled(n=20):
    d = AuthenticatedDictionary()
    for i in range(n):
        d.insert(f"id{i}".encode(), f"val{i}".encode())
    return d


class TestBasicOperations:
    def test_empty_digest_stable(self):
        assert AuthenticatedDictionary().digest == empty_digest()

    def test_insert_and_get(self):
        d = AuthenticatedDictionary()
        d.insert(b"k", b"v")
        assert d.get(b"k") == b"v"
        assert b"k" in d
        assert len(d) == 1

    def test_duplicate_rejected(self):
        d = AuthenticatedDictionary()
        d.insert(b"k", b"v")
        with pytest.raises(KeyError):
            d.insert(b"k", b"v2")

    def test_digest_changes_per_insert(self):
        d = AuthenticatedDictionary()
        digests = {d.digest}
        for i in range(10):
            d.insert(bytes([i]), b"v")
            assert d.digest not in digests
            digests.add(d.digest)

    def test_replay_reproduces_digest(self):
        d = filled(15)
        replayed = AuthenticatedDictionary.from_entries(d.items())
        # items() order == insertion order for python dicts
        assert replayed.digest == d.digest


class TestInclusionProofs:
    def test_all_entries_provable(self):
        d = filled(15)
        for i in range(15):
            identifier, value = f"id{i}".encode(), f"val{i}".encode()
            proof = d.prove_includes(identifier, value)
            assert proof is not None
            assert verify_includes(d.digest, identifier, value, proof)

    def test_absent_identifier_unprovable(self):
        d = filled(5)
        assert d.prove_includes(b"ghost", b"v") is None

    def test_wrong_value_unprovable(self):
        d = filled(5)
        assert d.prove_includes(b"id1", b"wrong") is None

    def test_proof_does_not_transfer_to_other_value(self):
        d = filled(5)
        proof = d.prove_includes(b"id1", b"val1")
        assert not verify_includes(d.digest, b"id1", b"valX", proof)

    def test_proof_does_not_transfer_to_other_digest(self):
        d1, d2 = filled(5), filled(6)
        proof = d1.prove_includes(b"id1", b"val1")
        assert not verify_includes(d2.digest, b"id1", b"val1", proof)


class TestInsertionProofs:
    def test_valid_insertion_verifies(self):
        d = filled(8)
        old = d.digest
        proof = d.insert_with_proof(b"new-id", b"new-val")
        assert verify_insertion(old, d.digest, proof)

    def test_first_insertion_into_empty(self):
        d = AuthenticatedDictionary()
        old = d.digest
        proof = d.insert_with_proof(b"k", b"v")
        assert verify_insertion(old, d.digest, proof)

    def test_wrong_new_digest_rejected(self):
        d = filled(8)
        old = d.digest
        proof = d.insert_with_proof(b"new-id", b"new-val")
        assert not verify_insertion(old, old, proof)

    def test_wrong_old_digest_rejected(self):
        d = filled(8)
        other = filled(9).digest
        proof = d.insert_with_proof(b"new-id", b"new-val")
        assert not verify_insertion(other, d.digest, proof)

    def test_value_swap_rejected(self):
        """The append-only core: a proof for (id, v) cannot certify (id, v')."""
        d = filled(8)
        old = d.digest
        proof = d.insert_with_proof(b"new-id", b"real-value")
        forged = InsertionProof(b"new-id", b"forged-value", proof.steps)
        assert not verify_insertion(old, d.digest, forged)

    def test_cannot_prove_reinsertion_of_existing_id(self):
        """Soundness of absence: no valid insertion proof exists for an
        identifier already in the tree (its search path hits the node)."""
        d = filled(8)
        old = d.digest
        # Craft a proof reusing id5's search path; the verifier must notice
        # the target appears on its own path.
        real = d.prove_includes(b"id5", b"val5")
        forged = InsertionProof(b"id5", b"other", real.steps)
        assert not verify_insertion(old, d.digest, forged)


class TestBatchExtension:
    def test_chained_batch_verifies(self):
        d = filled(5)
        old = d.digest
        proofs = [
            d.insert_with_proof(f"batch{i}".encode(), b"v") for i in range(7)
        ]
        assert verify_extension(old, d.digest, proofs)

    def test_reordered_batch_rejected(self):
        d = filled(5)
        old = d.digest
        proofs = [
            d.insert_with_proof(f"batch{i}".encode(), b"v") for i in range(4)
        ]
        assert not verify_extension(old, d.digest, list(reversed(proofs)))

    def test_dropped_insertion_rejected(self):
        d = filled(5)
        old = d.digest
        proofs = [
            d.insert_with_proof(f"batch{i}".encode(), b"v") for i in range(4)
        ]
        assert not verify_extension(old, d.digest, proofs[:-1])

    def test_empty_batch_is_identity(self):
        d = filled(5)
        assert verify_extension(d.digest, d.digest, [])
        assert not verify_extension(d.digest, empty_digest(), [])


@given(
    entries=st.lists(
        st.tuples(st.binary(min_size=1, max_size=12), st.binary(max_size=12)),
        min_size=1,
        max_size=30,
        unique_by=lambda kv: kv[0],
    )
)
@settings(max_examples=30, deadline=None)
def test_insert_prove_verify_property(entries):
    d = AuthenticatedDictionary()
    digests = [d.digest]
    proofs = []
    for identifier, value in entries:
        proofs.append(d.insert_with_proof(identifier, value))
        digests.append(d.digest)
    # every step verifies, and the chain verifies end to end
    for i, proof in enumerate(proofs):
        assert verify_insertion(digests[i], digests[i + 1], proof)
    assert verify_extension(digests[0], digests[-1], proofs)
    # every entry has a working inclusion proof
    for identifier, value in entries:
        proof = d.prove_includes(identifier, value)
        assert verify_includes(d.digest, identifier, value, proof)
