"""The deterministic chaos harness: scheduler, entropy, engine, replay.

The load-bearing property is that a chaos run is a pure function of
``(scenario, seed)``: same seed twice gives byte-identical event traces,
log digests, and HSM op-count snapshots; different seeds diverge.  On top
of that: quick scenarios must finish with zero invariant violations, the
deliberately-seeded demo fault must fire and round-trip through a replay
file to the identical step, and the entropy hijack must restore every
patched source on exit.
"""

import os
import random
import secrets

import pytest

from repro.chaos import (
    DEMO_SCENARIO,
    QUICK_SCENARIOS,
    SCENARIOS,
    DeterministicEntropy,
    DeterministicScheduler,
    Scenario,
    run_scenario,
    write_replay,
)
from repro.chaos.replay import ReplayMismatch, load_replay, replay_file


def tiny(name="tiny", **overrides) -> Scenario:
    """A seconds-fast scenario exercising live sessions and maintenance."""
    base = dict(
        name=name,
        description="test scenario",
        horizon=3600.0,
        num_hsms=8,
        cluster_size=4,
        waves=4,
        live_every=60,
        max_live_sessions=3,
        check_points=2,
        rotation_points=1,
    )
    base.update(overrides)
    return Scenario(**base)


# ---------------------------------------------------------------------------
# Scheduler
# ---------------------------------------------------------------------------
class TestScheduler:
    def test_events_run_in_time_order_with_deterministic_ties(self):
        sched = DeterministicScheduler(1)
        seen = []
        sched.at(5.0, "b", lambda: seen.append("b"))
        sched.at(1.0, "a", lambda: seen.append("a"))
        sched.at(5.0, "c", lambda: seen.append("c"))  # tie: scheduling order
        assert sched.run() == 3
        assert seen == ["a", "b", "c"]
        assert sched.now == 5.0
        assert sched.step == 3

    def test_events_can_schedule_events_and_clamp_to_now(self):
        sched = DeterministicScheduler(1)

        def first():
            sched.at(0.0, "late", lambda: "ran")  # in the past: clamps to now
            return "spawned"

        sched.at(2.0, "first", first)
        assert sched.run() == 2
        assert sched.now == 2.0

    def test_trace_digest_is_seed_stable_and_detail_sensitive(self):
        def build(seed, detail):
            sched = DeterministicScheduler(seed)
            sched.at(1.0, "evt", lambda: detail)
            sched.run()
            return sched.trace_digest()

        assert build(7, "x") == build(7, "x")
        assert build(7, "x") != build(7, "y")

    def test_substreams_are_independent_and_labelled(self):
        sched = DeterministicScheduler(3)
        a1 = sched.substream("alpha").random()
        a2 = sched.substream("alpha").random()
        b = sched.substream("beta").random()
        assert a1 == a2
        assert a1 != b

    def test_max_steps_bounds_execution(self):
        sched = DeterministicScheduler(1)
        for i in range(10):
            sched.at(float(i), "tick", lambda: None)
        assert sched.run(max_steps=4) == 4
        assert sched.step == 4


# ---------------------------------------------------------------------------
# Entropy hijack
# ---------------------------------------------------------------------------
class TestDeterministicEntropy:
    def test_seeded_sources_are_reproducible(self):
        with DeterministicEntropy(11):
            draws_a = (
                os.urandom(8),
                secrets.token_bytes(16),
                secrets.token_hex(4),
                random.SystemRandom().getrandbits(64),
            )
        with DeterministicEntropy(11):
            draws_b = (
                os.urandom(8),
                secrets.token_bytes(16),
                secrets.token_hex(4),
                random.SystemRandom().getrandbits(64),
            )
        with DeterministicEntropy(12):
            draws_c = (
                os.urandom(8),
                secrets.token_bytes(16),
                secrets.token_hex(4),
                random.SystemRandom().getrandbits(64),
            )
        assert draws_a == draws_b
        assert draws_a != draws_c

    def test_everything_restored_on_exit(self):
        originals = (os.urandom, secrets.token_bytes, secrets.token_hex)
        state = random.getstate()
        with DeterministicEntropy(1):
            assert os.urandom is not originals[0]
        assert (os.urandom, secrets.token_bytes, secrets.token_hex) == originals
        assert random.getstate() == state

    def test_restores_even_when_the_body_raises(self):
        original = os.urandom
        with pytest.raises(RuntimeError, match="boom"):
            with DeterministicEntropy(1):
                raise RuntimeError("boom")
        assert os.urandom is original

    def test_nesting_refused(self):
        with DeterministicEntropy(1):
            with pytest.raises(RuntimeError, match="nest"):
                with DeterministicEntropy(2):
                    pass  # pragma: no cover


# ---------------------------------------------------------------------------
# Scenario catalog
# ---------------------------------------------------------------------------
class TestScenarios:
    def test_catalog_invariants(self):
        assert set(QUICK_SCENARIOS) <= set(SCENARIOS)
        assert DEMO_SCENARIO.name not in SCENARIOS
        for scenario in SCENARIOS.values():
            assert scenario.description

    def test_quick_preserves_deliberate_zero_rotations(self):
        assert SCENARIOS["kill_mid_epoch"].rotation_points == 0
        assert SCENARIOS["kill_mid_epoch"].quick().rotation_points == 0
        assert SCENARIOS["baseline_diurnal"].quick().rotation_points >= 2

    def test_crash_points_require_durability(self):
        with pytest.raises(ValueError, match="durable"):
            tiny(crash_at=(0.5,))
        with pytest.raises(ValueError, match="crashing_store"):
            tiny(durable=True, mid_epoch_crash_at=0.5)


# ---------------------------------------------------------------------------
# Engine: determinism (the tentpole property)
# ---------------------------------------------------------------------------
class TestDeterminism:
    def test_same_seed_is_bit_identical_different_seed_diverges(self):
        scenario = tiny(device_loss=((0.4, 2, 0.3),))
        a = run_scenario(scenario, 21)
        b = run_scenario(scenario, 21)
        c = run_scenario(scenario, 22)
        # Byte-identical event trace, not just matching digests.
        assert a.trace == b.trace
        assert a.trace_digest == b.trace_digest
        assert a.final_log_digest == b.final_log_digest
        assert a.op_counts == b.op_counts
        assert a.counters == b.counters
        assert c.trace_digest != a.trace_digest

    def test_run_is_isolated_from_ambient_rng_state(self):
        scenario = tiny()
        a = run_scenario(scenario, 9)
        random.seed(424242)  # perturb global state between runs
        os.environ["PYTHONHASHSEED"] = os.environ.get("PYTHONHASHSEED", "")
        b = run_scenario(scenario, 9)
        assert a.trace == b.trace


# ---------------------------------------------------------------------------
# Engine: behaviour under faults
# ---------------------------------------------------------------------------
class TestEngineBehaviour:
    def test_quick_baseline_runs_clean_and_recovers(self):
        report = run_scenario(SCENARIOS["baseline_diurnal"], 7, quick=True)
        assert report.ok
        assert report.counters.get("recovered", 0) > 0
        assert report.modeled_arrivals > 500
        assert report.modeled_p50 <= report.modeled_p99

    def test_total_partition_fails_clean_and_drops_modeled_jobs(self):
        scenario = tiny(partitions=((0.0, 1.0, 1.0),), rotation_points=0)
        report = run_scenario(scenario, 5)
        assert report.ok  # liveness loss is NOT a safety violation
        assert report.counters.get("recovered", 0) == 0
        assert report.counters.get("modeled-dropped", 0) > 0

    def test_mid_epoch_crash_restores_and_keeps_serving(self):
        report = run_scenario(SCENARIOS["kill_mid_epoch"], 7, quick=True)
        assert report.ok
        assert report.counters.get("crash-restores", 0) >= 1
        assert report.counters.get("recovered", 0) > 0

    def test_adversary_is_blocked(self):
        scenario = tiny(adversary_at=(0.5,), max_live_sessions=1)
        report = run_scenario(scenario, 13)
        assert report.ok
        assert report.counters.get("adversaries-blocked") == 1


# ---------------------------------------------------------------------------
# Demo fault -> replay file -> exact re-execution
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def demo_report():
    """One demo run shared by the replay tests (each re-execution inside
    them is itself a fresh run, so sharing the original loses nothing)."""
    return run_scenario(DEMO_SCENARIO, 5)


class TestReplay:
    def test_demo_violation_round_trips_exactly(self, demo_report, tmp_path):
        report = demo_report
        assert not report.ok
        assert report.violations[0].invariant == "log-digest-chain"
        path = str(tmp_path / "replay.json")
        record = write_replay(report, path)
        assert load_replay(path) == record
        replayed = replay_file(path)
        assert replayed.violations[0].step == report.violations[0].step
        assert replayed.trace_digest == report.trace_digest

    def test_tampered_replay_file_is_caught(self, demo_report, tmp_path):
        path = str(tmp_path / "replay.json")
        record = write_replay(demo_report, path)
        import json

        record["violation_step"] += 1  # claim the wrong step
        with open(path, "w") as fh:
            json.dump(record, fh)
        with pytest.raises(ReplayMismatch, match="diverged"):
            replay_file(path)

    def test_clean_report_refuses_to_write_a_replay(self, tmp_path):
        report = run_scenario(tiny(), 3)
        assert report.ok
        with pytest.raises(ValueError, match="no violations"):
            write_replay(report, str(tmp_path / "nope.json"))


# ---------------------------------------------------------------------------
# Promoted fault injectors (satellite: conftest -> repro.sim.faults)
# ---------------------------------------------------------------------------
class TestFaultsPromotion:
    def test_faults_live_in_the_package_and_conftest_reexports(self):
        import conftest

        from repro.sim import faults

        for name in ("FlakyTransport", "FlakyChannel", "FlakyProviderChannel",
                     "FrameDropped"):
            assert getattr(conftest, name) is getattr(faults, name)

    def test_flaky_transport_schedule_is_seed_pinned(self):
        from repro.sim.faults import FlakyTransport

        def schedule(seed):
            transport = FlakyTransport(lambda b: b, seed=seed, ok_weight=2)
            modes = []
            for _ in range(30):
                try:
                    transport(b"payload")
                    modes.append("ok-ish")
                except Exception as exc:  # noqa: BLE001 - recording fault types
                    modes.append(type(exc).__name__)
            return modes

        assert schedule(99) == schedule(99)
        assert schedule(99) != schedule(100)
