"""Throughput / cost planning (Figure 12, Table 14)."""

import pytest

from repro.crypto.bloom import BloomParams
from repro.hsm.devices import SAFENET_A700, SOLOKEY, YUBIHSM2
from repro.sim.capacity import (
    build_throughput_model,
    fig12_series,
    plan_deployment,
    recoveries_per_year,
    storage_cost_per_year,
)


@pytest.fixture(scope="module")
def solokey_model():
    return build_throughput_model(SOLOKEY)


class TestThroughputModel:
    def test_decrypt_puncture_order_of_magnitude(self, solokey_model):
        """Figure 10: puncturable decryption dominates the 1.01 s recovery;
        our modeled per-HSM decrypt+puncture must land in the same regime
        (hundreds of milliseconds, not tens of seconds or microseconds)."""
        assert 0.1 < solokey_model.decrypt_puncture_seconds < 3.0

    def test_rotation_is_hours(self, solokey_model):
        """§9.1: key rotation takes roughly 75 hours on a SoloKey."""
        hours = solokey_model.rotation_seconds / 3600
        assert 20 < hours < 200

    def test_rotation_duty_near_half(self, solokey_model):
        """§9.1: each HSM spends roughly 56% of its cycles rotating keys."""
        assert 0.3 < solokey_model.rotation_duty_fraction < 0.8

    def test_recoveries_per_hour_near_paper(self, solokey_model):
        """§9.1: 1,503.9 decrypt-and-puncture operations per hour."""
        assert 500 < solokey_model.recoveries_per_hour < 4500

    def test_faster_device_higher_throughput(self):
        solo = build_throughput_model(SOLOKEY)
        safenet = build_throughput_model(SAFENET_A700)
        assert safenet.recoveries_per_hour > solo.recoveries_per_hour


class TestFleetThroughput:
    def test_paper_fleet_supports_a_billion(self, solokey_model):
        """§9.2: N = 3,100 SoloKeys support ~1B recoveries/year at n=40."""
        annual = recoveries_per_year(3100, 40, solokey_model)
        assert 0.3e9 < annual < 3e9

    def test_scaling_is_linear_in_fleet(self, solokey_model):
        one = recoveries_per_year(1000, 40, solokey_model)
        two = recoveries_per_year(2000, 40, solokey_model)
        assert two == pytest.approx(2 * one)

    def test_larger_cluster_costs_throughput(self, solokey_model):
        at40 = recoveries_per_year(1000, 40, solokey_model)
        at80 = recoveries_per_year(1000, 80, solokey_model)
        assert at80 == pytest.approx(at40 / 2)


class TestDeploymentPlanning:
    def test_solokey_plan_near_table14(self, solokey_model):
        """Table 14: 3,037 SoloKeys, 189 tolerated-evil, ≈$60.7K."""
        plan = plan_deployment(SOLOKEY, 1e9, throughput=solokey_model)
        assert 1000 < plan.quantity < 10000
        assert plan.tolerated_evil == plan.quantity // 16
        assert plan.hardware_cost_usd == plan.quantity * 20.0
        assert plan.recoveries_per_year >= 1e9

    def test_yubihsm_plan_costlier(self, solokey_model):
        solo = plan_deployment(SOLOKEY, 1e9, throughput=solokey_model)
        yubi = plan_deployment(YUBIHSM2, 1e9)
        assert yubi.hardware_cost_usd > solo.hardware_cost_usd

    def test_safenet_needs_few_units(self):
        """Table 14: a cluster of ~40 SafeNet A700s meets 1B/year."""
        plan = plan_deployment(SAFENET_A700, 1e9)
        assert plan.quantity < 200

    def test_min_quantity_respected(self):
        plan = plan_deployment(SAFENET_A700, 1e9, min_quantity=800)
        assert plan.quantity == 800

    def test_describe_renders(self, solokey_model):
        text = plan_deployment(SOLOKEY, 1e9, throughput=solokey_model).describe()
        assert "SoloKey" in text and "N_evil" in text


class TestFig12:
    def test_series_monotone_and_ordered(self):
        budgets = [0.5e6, 1e6, 2e6, 5e6]
        series = fig12_series([SOLOKEY, YUBIHSM2, SAFENET_A700], budgets)
        for device, points in series.items():
            values = [annual for _, annual in points]
            assert values == sorted(values)
        # the paper's headline: per dollar, SoloKeys beat the big iron
        solo_at_1m = dict(series[SOLOKEY.name])[1e6]
        yubi_at_1m = dict(series[YUBIHSM2.name])[1e6]
        assert solo_at_1m > yubi_at_1m


class TestStorageCost:
    def test_table14_footnote(self):
        """'Estimated cost of storing 4 GB × 10^9 users per year: $600M'."""
        assert storage_cost_per_year(1e9, 4.0) == pytest.approx(600e6)
