"""GF(p) arithmetic and Lagrange interpolation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.field import FieldElement, PrimeField

SMALL_PRIME = 101
P256_ORDER = 0xFFFFFFFF00000000FFFFFFFFFFFFFFFFBCE6FAADA7179E84F3B9CAC2FC632551


@pytest.fixture
def field():
    return PrimeField(SMALL_PRIME)


class TestBasicArithmetic:
    def test_addition_wraps(self, field):
        assert field(100) + field(5) == field(4)

    def test_subtraction_wraps(self, field):
        assert field(3) - field(10) == field(94)

    def test_multiplication(self, field):
        assert field(20) * field(6) == field(19)  # 120 mod 101

    def test_division_is_multiplication_by_inverse(self, field):
        a, b = field(17), field(23)
        assert (a / b) * b == a

    def test_negation(self, field):
        assert -field(1) == field(100)

    def test_power(self, field):
        assert field(2) ** 10 == field(1024 % SMALL_PRIME)

    def test_fermat_little_theorem(self, field):
        assert field(7) ** (SMALL_PRIME - 1) == field(1)

    def test_int_coercion_both_sides(self, field):
        assert 1 + field(2) == field(3)
        assert field(2) + 1 == field(3)
        assert 5 - field(2) == field(3)
        assert 2 * field(4) == field(8)

    def test_zero_inverse_raises(self, field):
        with pytest.raises(ZeroDivisionError):
            field(0).inverse()

    def test_mixing_fields_raises(self, field):
        other = PrimeField(103)
        with pytest.raises(ValueError):
            field(1) + other(1)

    def test_modulus_validation(self):
        with pytest.raises(ValueError):
            PrimeField(1)


class TestSerialization:
    def test_roundtrip(self, field):
        element = field(77)
        assert field.from_bytes(element.to_bytes()) == element

    def test_byte_length_large_field(self):
        field = PrimeField(P256_ORDER)
        assert field.byte_length == 32
        assert len(field(1).to_bytes()) == 32


class TestPolynomials:
    def test_eval_poly_horner(self, field):
        # p(x) = 3 + 2x + x^2 at x = 5 -> 38
        coeffs = [field(3), field(2), field(1)]
        assert field.eval_poly(coeffs, field(5)) == field(38 % SMALL_PRIME)

    def test_eval_constant(self, field):
        assert field.eval_poly([field(9)], field(50)) == field(9)

    def test_interpolation_recovers_constant_term(self, field):
        coeffs = [field(42), field(7), field(13)]
        points = [
            (field(x), field.eval_poly(coeffs, field(x))) for x in (1, 2, 3)
        ]
        assert field.lagrange_interpolate_at_zero(points) == field(42)

    def test_interpolation_duplicate_x_raises(self, field):
        with pytest.raises(ValueError):
            field.lagrange_interpolate_at_zero(
                [(field(1), field(2)), (field(1), field(3))]
            )


@given(a=st.integers(0, P256_ORDER - 1), b=st.integers(0, P256_ORDER - 1))
@settings(max_examples=50)
def test_field_ring_axioms_large(a, b):
    field = PrimeField(P256_ORDER)
    fa, fb = field(a), field(b)
    assert fa + fb == fb + fa
    assert fa * fb == fb * fa
    assert fa + field(0) == fa
    assert fa * field(1) == fa
    assert fa - fa == field(0)


@given(a=st.integers(1, P256_ORDER - 1))
@settings(max_examples=50)
def test_inverse_property(a):
    field = PrimeField(P256_ORDER)
    assert field(a) * field(a).inverse() == field(1)


@given(
    secret=st.integers(0, P256_ORDER - 1),
    c1=st.integers(0, P256_ORDER - 1),
    c2=st.integers(0, P256_ORDER - 1),
)
@settings(max_examples=25)
def test_interpolation_inverts_evaluation(secret, c1, c2):
    field = PrimeField(P256_ORDER)
    coeffs = [field(secret), field(c1), field(c2)]
    points = [(field(x), field.eval_poly(coeffs, field(x))) for x in (5, 9, 11)]
    assert field.lagrange_interpolate_at_zero(points) == field(secret)
