"""Full protocol run with the paper's BLS aggregate signatures.

Pure-Python pairings cost ~1s each, so this file runs exactly one
deployment with a small fleet.  (The pairing cache collapses the N
identical aggregate verifications per epoch to one computation.)
"""

import random

import pytest

from repro.core.params import SystemParams
from repro.core.protocol import Deployment
from repro.log.distributed import BlsMultiSig, LogUpdateRejected


@pytest.fixture(scope="module")
def bls_deployment():
    params = SystemParams.for_testing(
        num_hsms=4, cluster_size=2, threshold=1, audit_count=2, quorum_fraction=0.75
    )
    return Deployment.create(params, multisig=BlsMultiSig(), rng=random.Random(31))


class TestBlsEndToEnd:
    def test_backup_and_recover(self, bls_deployment):
        client = bls_deployment.new_client("bls-user")
        client.backup(b"bls-protected data", pin="1234")
        assert client.recover(pin="1234") == b"bls-protected data"

    def test_aggregate_is_constant_size(self, bls_deployment):
        """The reason the paper uses BLS: one 97-byte aggregate regardless
        of fleet size (vs len(fleet) ECDSA signatures)."""
        log = bls_deployment.provider.log
        assert log.certified_transitions
        aggregate = log.certified_transitions[-1].aggregate
        assert len(aggregate.to_bytes()) == 97

    def test_forged_aggregate_rejected(self, bls_deployment):
        from repro.crypto import blssig

        log = bls_deployment.provider.log
        fleet = bls_deployment.fleet
        log.insert(b"forge-target", b"h")
        round_ = log.prepare_update(num_chunks=1)
        # A provider-made signature under a rogue key:
        rogue = blssig.keygen(random.Random(1))
        forged = blssig.sign(rogue.secret, b"whatever")
        with pytest.raises(LogUpdateRejected):
            fleet[0].accept_log_digest(
                round_, forged, tuple(h.index for h in fleet.online())
            )
        # let the honest update finish so the module fixture stays usable
        log.certify_round(round_, fleet.hsms)
