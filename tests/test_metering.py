"""The operation meter and its nesting semantics."""

from repro.metering import OpMeter, active_meter, count, metered


class TestOpMeter:
    def test_counts_and_reset(self):
        meter = OpMeter()
        meter.add("ec_mult")
        meter.add("io_bytes", 64)
        assert meter.snapshot() == {"ec_mult": 1, "io_bytes": 64}
        meter.reset()
        assert meter.snapshot() == {}

    def test_merge(self):
        a, b = OpMeter(), OpMeter()
        a.add("x", 1)
        b.add("x", 2)
        b.add("y", 3)
        a.merge(b)
        assert a.counts["x"] == 3 and a.counts["y"] == 3

    def test_unattached_count_is_noop(self):
        count("anything")  # must not raise
        assert active_meter() is None

    def test_attached_counting(self):
        with metered() as meter:
            count("op", 2)
            count("op")
        assert meter.counts["op"] == 3

    def test_nested_meters_both_observe(self):
        outer = OpMeter()
        with outer.attached():
            with metered() as inner:
                count("op")
        assert outer.counts["op"] == 1
        assert inner.counts["op"] == 1

    def test_detach_stops_counting(self):
        with metered() as meter:
            count("op")
        count("op")
        assert meter.counts["op"] == 1

    def test_threads_meter_independently(self):
        """Concurrent sessions must never observe each other's operations
        (the service layer runs one worker thread per HSM)."""
        import threading

        meters = [OpMeter() for _ in range(4)]
        barrier = threading.Barrier(4)

        def session(i):
            with meters[i].attached():
                barrier.wait()  # everyone attached before anyone counts
                for _ in range(50):
                    count(f"op{i}")

        threads = [threading.Thread(target=session, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for i, meter in enumerate(meters):
            assert meter.snapshot() == {f"op{i}": 50}
