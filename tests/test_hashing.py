"""KDF, hash-to-indices, and commitment hashing."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.hashing import (
    constant_time_equal,
    hash_to_indices,
    hash_to_int,
    hmac_sha256,
    kdf,
    sha256,
)


class TestSha256Wrapper:
    def test_length_prefix_disambiguates(self):
        # ("ab", "c") and ("a", "bc") must hash differently.
        assert sha256(b"ab", b"c") != sha256(b"a", b"bc")

    def test_deterministic(self):
        assert sha256(b"x") == sha256(b"x")


class TestKdf:
    def test_label_separation(self):
        assert kdf("label-a", b"ikm") != kdf("label-b", b"ikm")

    def test_length_control(self):
        assert len(kdf("l", b"x", length=16)) == 16
        assert len(kdf("l", b"x", length=100)) == 100

    def test_prefix_consistency(self):
        assert kdf("l", b"x", length=64)[:32] == kdf("l", b"x", length=32)


class TestHashToIndices:
    def test_deterministic(self):
        assert hash_to_indices(b"s", "1234", 100, 40) == hash_to_indices(b"s", "1234", 100, 40)

    def test_pin_sensitivity(self):
        assert hash_to_indices(b"s", "1234", 100, 40) != hash_to_indices(b"s", "1235", 100, 40)

    def test_salt_sensitivity(self):
        assert hash_to_indices(b"s1", "1234", 100, 40) != hash_to_indices(b"s2", "1234", 100, 40)

    def test_range(self):
        for index in hash_to_indices(b"s", "0000", 7, 100):
            assert 0 <= index < 7

    def test_count(self):
        assert len(hash_to_indices(b"s", "1", 1000, 0)) == 0
        assert len(hash_to_indices(b"s", "1", 1000, 55)) == 55

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            hash_to_indices(b"s", "1", 0, 5)
        with pytest.raises(ValueError):
            hash_to_indices(b"s", "1", 5, -1)

    def test_roughly_uniform(self):
        # Chi-square-ish sanity: over many draws each bucket gets its share.
        total, buckets = 10, 5000
        counts = [0] * total
        for index in hash_to_indices(b"seed", "pin", total, buckets):
            counts[index] += 1
        expected = buckets / total
        for count in counts:
            assert abs(count - expected) < 6 * math.sqrt(expected)

    @given(total=st.integers(1, 10_000), count=st.integers(0, 60))
    @settings(max_examples=30)
    def test_range_property(self, total, count):
        indices = hash_to_indices(b"s", "99", total, count)
        assert len(indices) == count
        assert all(0 <= i < total for i in indices)


class TestHashToInt:
    def test_range(self):
        for m in (1, 2, 7, 1 << 64, 10**30):
            assert 0 <= hash_to_int(b"data", m) < m

    def test_invalid_modulus(self):
        with pytest.raises(ValueError):
            hash_to_int(b"data", 0)


class TestHelpers:
    def test_hmac_known_relationship(self):
        assert hmac_sha256(b"k", b"m") == hmac_sha256(b"k", b"m")
        assert hmac_sha256(b"k", b"m") != hmac_sha256(b"k2", b"m")

    def test_constant_time_equal(self):
        assert constant_time_equal(b"abc", b"abc")
        assert not constant_time_equal(b"abc", b"abd")
        assert not constant_time_equal(b"abc", b"ab")
