"""Crash recovery: kill the provider mid-epoch, restart, lose nothing.

The headline scenario the durability layer exists for: the provider
process dies *between* a shard lane committing its epoch and the combined
cross-shard root being published.  On restart:

- no certified digest is lost — any epoch a committee device adopted is
  repaired to COMMIT (the fleet is ground truth; devices only accept a
  digest after verifying a quorum aggregate);
- no half-committed epoch survives — an intent no device adopted is
  repaired to ROLLBACK, its entries vanish, and the sessions (which never
  received inclusion proofs) simply retry;
- everything escrowed before the crash (backups, replies, HSM key blocks,
  attempt counters) is rebuilt from the journal.

``CrashingBlockStore`` models the kill: the (N+1)-th block put raises and
the test restarts from exactly the blocks that landed before it.
"""

import random

import pytest

from repro.core.params import SystemParams
from repro.core.protocol import Deployment
from repro.core.provider import ProviderError
from repro.log.sharded import shard_of
from repro.storage.blockstore import CrashError, CrashingBlockStore, InMemoryBlockStore
from repro.storage.journal import ProviderJournal

SHARDS = 2


def durable_params(**kwargs) -> SystemParams:
    defaults = dict(num_hsms=8, cluster_size=4)
    defaults.update(kwargs)
    return SystemParams.for_testing(**defaults)


def identifier_on_shard(shard: int, tag: str = "crash") -> bytes:
    """A recovery identifier that routes to ``shard`` under SHARDS lanes."""
    return next(
        b"rec|%s-%d|0" % (tag.encode("ascii"), i)
        for i in range(256)
        if shard_of(b"rec|%s-%d|0" % (tag.encode("ascii"), i), SHARDS) == shard
    )


# ---------------------------------------------------------------------------
# Round trips (no crash): restore rebuilds the full deployment
# ---------------------------------------------------------------------------
class TestRestoreRoundTrip:
    def test_restore_preserves_digest_escrow_and_counters(self):
        store = InMemoryBlockStore()
        params = durable_params()
        dep = Deployment.create(params, rng=random.Random(11), shards=SHARDS, store=store)
        alice = dep.new_client("alice", transport="direct")
        alice.backup(b"alice-secret", "1234")
        assert alice.recover("1234") == b"alice-secret"
        digest = dep.provider.log.digest

        restored = Deployment.restore(params, store, dep.fleet, shards=SHARDS)
        assert restored.provider.log.digest == digest
        # Attempt counters were re-derived from the committed entries.
        assert restored.provider.next_attempt_number(
            "alice"
        ) == restored.provider.scan_attempt_number("alice")
        # The restored deployment serves new work end to end (the old
        # backup's BFE tag was punctured by the pre-crash recovery, so a
        # fresh backup proves liveness).
        alice2 = restored.new_client("alice", transport="direct")
        alice2.backup(b"alice-next", "1234")
        assert alice2.recover("1234") == b"alice-next"

    def test_snapshot_compaction_then_restore(self):
        store = InMemoryBlockStore()
        params = durable_params()
        dep = Deployment.create(params, rng=random.Random(12), shards=SHARDS, store=store)
        bob = dep.new_client("bob", transport="direct")
        bob.backup(b"bob-secret", "9999")
        blocks_before = len(store)
        dep.provider.snapshot()
        assert len(store) < blocks_before  # history actually reclaimed
        restored = Deployment.restore(params, store, dep.fleet, shards=SHARDS)
        assert restored.provider.log.digest == dep.provider.log.digest
        assert restored.new_client("bob", transport="direct").recover("9999") == b"bob-secret"

    def test_gc_survives_restart(self):
        store = InMemoryBlockStore()
        params = durable_params()
        dep = Deployment.create(params, rng=random.Random(13), shards=SHARDS, store=store)
        dep.provider.log.insert(b"rec|gc-user|0", b"h")
        dep.run_log_update()
        dep.garbage_collect_log()
        restored = Deployment.restore(params, store, dep.fleet, shards=SHARDS)
        assert restored.provider.log.garbage_collections == 1
        assert restored.provider.log.digest == dep.provider.log.digest
        assert restored.provider.log.ordered_entries == []

    def test_snapshot_requires_a_journal(self):
        dep = Deployment.create(durable_params(), rng=random.Random(14))
        with pytest.raises(ProviderError):
            dep.provider.snapshot()

    def test_resharding_a_durable_deployment_is_rejected(self):
        dep = Deployment.create(
            durable_params(), rng=random.Random(15), store=InMemoryBlockStore()
        )
        with pytest.raises(ValueError, match="durable"):
            dep.reshard_log(2)


# ---------------------------------------------------------------------------
# The headline: kill mid-epoch, restart, reconcile
# ---------------------------------------------------------------------------
class TestKillMidEpoch:
    def test_lane_commit_survives_crash_before_publish(self):
        """The headline: shard 0's lane commits its epoch, then the process
        dies while shard 1's commit record is being written — before the
        combined cross-shard root is published.  Restart must keep shard
        0's certified digest intact and resolve shard 1 atomically: its
        commit record never landed, so no device ever heard of its epoch
        (acceptance fans out only after the commit is durable) and the
        intent rolls back cleanly — complete or roll back, never half."""
        store = CrashingBlockStore()
        params = durable_params()
        dep = Deployment.create(params, rng=random.Random(21), shards=SHARDS, store=store)
        log = dep.provider.log
        log.insert(identifier_on_shard(0), b"h-shard0")
        log.insert(identifier_on_shard(1), b"h-shard1")

        log.run_shard_update(0, dep.fleet.hsms)  # lane 0 commits cleanly
        digest0 = log.shards[0].digest
        digest1_before = next(
            h.shard_digest(1) for h in dep.fleet.hsms if h.index % SHARDS == 1
        )

        # Lane 1: the intent record lands (put 1), then the process dies on
        # the commit record's put — after the quorum signed, before any
        # device was asked to accept.
        store.crash_after(1)
        with pytest.raises(CrashError):
            log.run_shard_update(1, dep.fleet.hsms)
        # Acceptance is gated on the durable commit: no device moved.
        assert all(
            h.shard_digest(1) == digest1_before
            for h in dep.fleet.hsms
            if h.index % SHARDS == 1
        )

        # The durable image ends mid-transaction: one open intent.
        survivor = store.blocks
        assert list(ProviderJournal(survivor).replay_state().open_intents) == [1]

        restored = Deployment.restore(params, survivor, dep.fleet, shards=SHARDS)
        rlog = restored.provider.log
        # Lane 0's certified digest survived; lane 1 rolled back atomically.
        assert rlog.shards[0].digest == digest0
        assert rlog.shards[1].digest == digest1_before
        assert ProviderJournal(survivor).replay_state().open_intents == {}
        assert (identifier_on_shard(0), b"h-shard0") in rlog.ordered_entries
        committed_ids = [i for i, _ in rlog.ordered_entries]
        assert identifier_on_shard(1) not in committed_ids
        # The rolled-back session retries on the restored deployment and the
        # whole fleet converges on the published root.
        rlog.insert(identifier_on_shard(1), b"h-shard1")
        restored.run_log_update()
        assert (identifier_on_shard(1), b"h-shard1") in rlog.ordered_entries
        assert dep.fleet[0].log_digest == rlog.digest

    def test_committed_epochs_survive_a_crash_before_publish(self):
        """Both lanes commit durably; the process dies before the batcher
        publishes the combined root.  Restart loses nothing: both certified
        digests restore with their quorum aggregates replayable."""
        store = CrashingBlockStore()
        params = durable_params()
        dep = Deployment.create(params, rng=random.Random(23), shards=SHARDS, store=store)
        log = dep.provider.log
        log.insert(identifier_on_shard(0, tag="pub"), b"h0")
        log.insert(identifier_on_shard(1, tag="pub"), b"h1")
        log.run_shard_update(0, dep.fleet.hsms)
        log.run_shard_update(1, dep.fleet.hsms)
        # The process dies here: no EPOCH_PUBLISH record for this tick.
        restored = Deployment.restore(params, store.blocks, dep.fleet, shards=SHARDS)
        rlog = restored.provider.log
        assert rlog.digest == log.digest
        for shard in range(SHARDS):
            assert rlog.shards[shard].digest == log.shards[shard].digest
            # The restored transition chain kept its quorum aggregates, so
            # it can serve catch_up / healing to lagging devices.
            assert all(
                t.aggregate is not None
                for t in rlog.shards[shard].certified_transitions
            )

    def test_crash_before_certification_rolls_back(self):
        """The process dies after writing the intent but its committee never
        reached quorum (and the rollback record was lost with the process):
        restart must roll the epoch back atomically — the entries vanish and
        the session can retry."""
        store = CrashingBlockStore()
        params = durable_params()
        dep = Deployment.create(params, rng=random.Random(22), shards=SHARDS, store=store)
        log = dep.provider.log
        identifier = identifier_on_shard(1, tag="doomed")
        log.insert(identifier, b"h-doomed")
        digest_before = log.shards[1].digest

        # Fail half of shard 1's committee (quorum 0.75 * 4 needs 3 signers)
        # and die on the very next record write after the intent.
        committee = [h for h in dep.fleet.hsms if h.index % SHARDS == 1]
        for hsm in committee[:2]:
            hsm.fail_stop()
        store.crash_after(1)
        with pytest.raises(CrashError):
            log.run_shard_update(1, dep.fleet.hsms)
        # No device moved: quorum loss is detected before any acceptance.
        assert all(h.shard_digest(1) == digest_before for h in committee[2:])

        survivor = store.blocks
        assert list(ProviderJournal(survivor).replay_state().open_intents) == [1]
        dep.fleet.restart_all()
        restored = Deployment.restore(params, survivor, dep.fleet, shards=SHARDS)
        rlog = restored.provider.log
        # Rolled back atomically: digest unchanged, the entry is gone, and
        # the journal holds no open transaction.
        assert rlog.shards[1].digest == digest_before
        assert identifier not in [i for i, _ in rlog.ordered_entries]
        assert ProviderJournal(survivor).replay_state().open_intents == {}
        # The write-once identifier was never committed, so the session's
        # retry goes through on the restored deployment.
        rlog.insert(identifier, b"h-doomed")
        restored.run_log_update()
        assert (identifier, b"h-doomed") in rlog.ordered_entries


# ---------------------------------------------------------------------------
# Service-level restart (RecoveryService.restart)
# ---------------------------------------------------------------------------
class TestServiceRestart:
    def test_restart_revives_the_service(self):
        store = InMemoryBlockStore()
        params = durable_params()
        dep = Deployment.create(params, rng=random.Random(31), shards=SHARDS, store=store)
        service = dep.recovery_service(transport="direct", tick_interval=0.01)
        with service:
            alice = service.new_client("alice")
            alice.backup(b"pre-crash", "1234")
            assert alice.recover("1234") == b"pre-crash"
        revived = service.restart()
        with revived:
            alice2 = revived.new_client("alice")
            alice2.backup(b"post-crash", "1234")
            assert alice2.recover("1234") == b"post-crash"
        # Sessions served after restart start from re-derived counters.
        provider = revived.provider
        assert provider.next_attempt_number("alice") == provider.scan_attempt_number(
            "alice"
        )

    def test_restart_requires_durability(self):
        dep = Deployment.create(durable_params(), rng=random.Random(32))
        service = dep.recovery_service(transport="direct")
        with pytest.raises(ProviderError, match="durable"):
            service.restart()


# ---------------------------------------------------------------------------
# Durability x transport faults: crash while the provider leg is flaky
# ---------------------------------------------------------------------------
class TestCrashRestoreUnderFlakyChannel:
    """The durable provider crashes while client traffic rides a seeded
    FlakyProviderChannel — the two fault layers the chaos campaign mixes.
    Frame drops and corruption must never corrupt what the journal holds:
    restore from the survivor image must agree with an independent replay
    and serve fresh traffic."""

    # A recovery makes ~a dozen provider RPCs; ok_weight=60 keeps the
    # per-call fault rate ~10% so a visible fraction of sessions complete
    # while the rest die to injected faults (the schedule is seed-pinned).
    def _flaky_client(self, dep, params, username, seed, ok_weight=60):
        from repro.core.client import Client
        from repro.service.channel import ProviderWireEndpoint, direct_channels
        from repro.sim.faults import FlakyProviderChannel

        return Client(
            username=username,
            params=params,
            provider=FlakyProviderChannel(
                ProviderWireEndpoint(dep.provider), seed=seed, ok_weight=ok_weight
            ),
            channels=direct_channels(dep.fleet),
            mpk=dep.fleet.master_public_key(),
        )

    def test_crash_mid_traffic_on_flaky_leg_then_restore(self):
        from repro.core.client import RecoveryError
        from repro.core.wire import WireFormatError
        from repro.sim.faults import FrameDropped

        clean = (ProviderError, RecoveryError, WireFormatError, FrameDropped)
        store = CrashingBlockStore()
        params = durable_params()
        dep = Deployment.create(params, rng=random.Random(41), shards=SHARDS, store=store)

        # Phase 1: flaky traffic against the healthy store — some sessions
        # complete, some die to injected frame faults (all typed).
        recovered = []
        for i in range(10):
            client = self._flaky_client(dep, params, f"flaky-{i}", seed=100 + i)
            secret = b"secret-%d" % i
            try:
                client.backup(secret, "4242")
                assert client.recover("4242") == secret
                recovered.append(f"flaky-{i}")
            except clean:
                continue
        assert recovered, "fault schedule starved every session; adjust seeds"

        # Phase 2: arm the store and keep driving flaky traffic until the
        # provider process dies mid-write.
        store.crash_after(5)
        crashed = False
        for i in range(40):
            client = self._flaky_client(dep, params, f"kill-{i}", seed=500 + i)
            try:
                client.backup(b"doomed", "1111")
                client.recover("1111")
            except CrashError:
                crashed = True
                break
            except clean:
                continue
        assert crashed, "armed crash never fired"

        # Phase 3: restart from exactly the durably-written blocks.
        survivor = store.blocks
        restored = Deployment.restore(params, survivor, dep.fleet, shards=SHARDS)

        # An independent journal replay agrees with the restored provider
        # (digest chain, counters, escrow) and no open intent survived.
        from repro.chaos.invariants import run_invariant_checks

        usernames = recovered + [f"kill-{i}" for i in range(3)]
        assert run_invariant_checks(
            restored.provider, usernames, {}, include_journal=True
        ) == []
        for username in usernames:
            assert restored.provider.next_attempt_number(
                username
            ) == restored.provider.scan_attempt_number(username)

        # Liveness: the restored deployment serves a fresh (healthy-channel)
        # client end to end.
        fresh = restored.new_client("post-crash", transport="direct")
        fresh.backup(b"post-crash-secret", "2468")
        assert fresh.recover("2468") == b"post-crash-secret"
