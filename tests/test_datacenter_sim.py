"""Discrete-event data-center simulator vs the analytic models."""

import random

import pytest

from repro.sim.capacity import HsmThroughputModel
from repro.hsm.devices import SOLOKEY
from repro.sim.datacenter import DataCenterSimulator
from repro.sim.queueing import MM1Queue


def fast_model(service_seconds=0.1, rotation_seconds=50.0, punctures=1000):
    return HsmThroughputModel(
        device=SOLOKEY,
        decrypt_puncture_seconds=service_seconds,
        rotation_seconds=rotation_seconds,
        punctures_before_rotation=punctures,
    )


class TestPercentileConvention:
    """Pins the ceil-rank percentile convention (regression: the old
    ``int(p * n)`` index over-shot by one rank, so p99 of 100 samples
    returned the max instead of the 99th-smallest)."""

    def test_known_list_pins_p50_p99(self):
        from repro.sim.workload import percentile

        samples = list(range(1, 101))  # 1..100, already a permutation-proof set
        assert percentile(samples, 0.50) == 50
        assert percentile(samples, 0.99) == 99  # NOT 100: ceil-rank, not index
        assert percentile(samples, 1.00) == 100
        assert percentile(samples, 0.01) == 1

    def test_small_list_and_edges(self):
        import math

        from repro.sim.workload import percentile

        assert percentile([40.0, 10.0, 30.0, 20.0], 0.50) == 20.0
        assert percentile([40.0, 10.0, 30.0, 20.0], 0.99) == 40.0
        assert percentile([7.0], 0.99) == 7.0
        assert math.isnan(percentile([], 0.5))

    def test_simresult_delegates_to_shared_convention(self):
        from repro.sim.datacenter import SimResult

        result = SimResult(
            completed_jobs=100,
            latencies=[float(v) for v in range(1, 101)],
            busy_fraction=0.0,
            rotating_fraction=0.0,
            rotations=0,
        )
        assert result.percentile(0.99) == 99.0
        assert result.percentile(0.50) == 50.0


class TestBasics:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            DataCenterSimulator(4, 5, 2, fast_model())
        with pytest.raises(ValueError):
            DataCenterSimulator(4, 3, 4, fast_model())

    def test_all_jobs_complete(self):
        sim = DataCenterSimulator(8, 3, 2, fast_model(), rng=random.Random(1))
        result = sim.run(arrival_rate=1.0, num_jobs=500)
        assert result.completed_jobs == 500
        assert len(result.latencies) == 500
        assert all(l > 0 for l in result.latencies)

    def test_latency_floor_is_service_time(self):
        """Even an idle fleet needs ~one service time per share."""
        sim = DataCenterSimulator(16, 3, 2, fast_model(0.1), rng=random.Random(2))
        result = sim.run(arrival_rate=0.01, num_jobs=200)
        assert result.mean_latency >= 0.05

    def test_percentiles_ordered(self):
        sim = DataCenterSimulator(8, 3, 2, fast_model(), rng=random.Random(3))
        result = sim.run(arrival_rate=2.0, num_jobs=1000)
        assert result.percentile(0.5) <= result.percentile(0.9) <= result.percentile(0.99)


class TestAgainstAnalyticModels:
    def test_light_load_matches_mm1(self):
        """At light load with t=n=1 the fleet is N independent M/M/1 queues;
        mean latency must match the closed form within noise."""
        service = 0.2
        sim = DataCenterSimulator(
            4, 1, 1, fast_model(service, rotation_seconds=0.0, punctures=10**9),
            rng=random.Random(4),
        )
        total_rate = 4 * 2.0  # per-queue λ=2, μ=5 -> mean sojourn 1/3 s
        result = sim.run(arrival_rate=total_rate, num_jobs=20_000)
        analytic = MM1Queue(1 / service, 2.0).mean_latency()
        assert result.mean_latency == pytest.approx(analytic, rel=0.2)

    def test_threshold_beats_waiting_for_all(self):
        """t-of-n completion is faster than waiting for all n shares —
        the fault-tolerance design also buys tail latency."""
        kwargs = dict(rng=random.Random(5))
        need_half = DataCenterSimulator(16, 4, 2, fast_model(), **kwargs)
        r_half = need_half.run(arrival_rate=4.0, num_jobs=3000)
        kwargs = dict(rng=random.Random(5))
        need_all = DataCenterSimulator(16, 4, 4, fast_model(), **kwargs)
        r_all = need_all.run(arrival_rate=4.0, num_jobs=3000)
        assert r_half.mean_latency < r_all.mean_latency

    def test_rotation_consumes_duty_cycle(self):
        """With wear-triggered rotation enabled, devices spend a visible
        fraction of time rotating, approaching the capacity model's duty."""
        model = fast_model(service_seconds=0.05, rotation_seconds=20.0, punctures=100)
        sim = DataCenterSimulator(4, 2, 1, model, rng=random.Random(6))
        result = sim.run(arrival_rate=8.0, num_jobs=5000)
        assert result.rotations > 0
        assert result.rotating_fraction > 0.05

    def test_overload_latency_explodes(self):
        sim_ok = DataCenterSimulator(8, 2, 1, fast_model(0.1), rng=random.Random(7))
        stable = sim_ok.run(arrival_rate=0.5 * sim_ok.max_stable_rate(), num_jobs=2000)
        sim_bad = DataCenterSimulator(8, 2, 1, fast_model(0.1), rng=random.Random(7))
        overloaded = sim_bad.run(arrival_rate=3.0 * sim_bad.max_stable_rate(), num_jobs=2000)
        assert overloaded.percentile(0.99) > 5 * stable.percentile(0.99)
