"""M/M/1 queueing model and its empirical validation (Figure 13)."""

import math
import random

import pytest

from repro.sim.queueing import (
    EpochBatchModel,
    EpochShardModel,
    MM1Queue,
    fig13_series,
    min_fleet_for_latency,
)
from repro.sim.workload import simulate_fleet_p99, simulate_queue_p99


class TestMM1:
    def test_utilization_and_stability(self):
        q = MM1Queue(service_rate=2.0, arrival_rate=1.0)
        assert q.utilization == 0.5
        assert q.stable

    def test_unstable_queue_infinite_latency(self):
        q = MM1Queue(service_rate=1.0, arrival_rate=2.0)
        assert not q.stable
        assert math.isinf(q.latency_percentile(0.99))
        assert math.isinf(q.mean_latency())

    def test_p99_formula(self):
        q = MM1Queue(service_rate=2.0, arrival_rate=1.0)
        assert q.latency_percentile(0.99) == pytest.approx(-math.log(0.01) / 1.0)

    def test_mean_latency(self):
        q = MM1Queue(service_rate=3.0, arrival_rate=1.0)
        assert q.mean_latency() == pytest.approx(0.5)

    def test_percentile_validation(self):
        q = MM1Queue(service_rate=1.0, arrival_rate=0.5)
        with pytest.raises(ValueError):
            q.latency_percentile(1.5)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            MM1Queue(service_rate=0, arrival_rate=1)
        with pytest.raises(ValueError):
            MM1Queue(service_rate=1, arrival_rate=-1)


class TestFleetSizing:
    def test_latency_constraint_met(self):
        mu = 0.4177  # the paper's 1,503.9 recoveries/hour
        n = min_fleet_for_latency(100.0, mu, 30.0)
        per_queue = 100.0 / n
        assert MM1Queue(mu, per_queue).latency_percentile(0.99) <= 30.0
        # minimality: one fewer HSM violates the constraint
        if n > 1:
            per_queue = 100.0 / (n - 1)
            assert MM1Queue(mu, per_queue).latency_percentile(0.99) > 30.0

    def test_tighter_constraint_needs_more_hsms(self):
        mu = 0.4
        sizes = [min_fleet_for_latency(50.0, mu, c) for c in (300.0, 60.0, 30.0)]
        assert sizes == sorted(sizes)

    def test_infinite_constraint_is_stability(self):
        n = min_fleet_for_latency(10.0, 1.0, None)
        assert n == 11  # just above λ/μ

    def test_unreachable_constraint(self):
        with pytest.raises(ValueError):
            min_fleet_for_latency(1.0, 0.1, 1.0)  # p99 of service alone > 1s

    def test_zero_load(self):
        assert min_fleet_for_latency(0.0, 1.0, 30.0) == 1


class TestFig13Series:
    def test_shape(self):
        series = fig13_series(
            per_hsm_service_rate=0.4177,
            jobs_per_recovery=40,
            requests_per_year=[0.5e9, 1e9, 1.5e9],
        )
        assert len(series) == 4  # 30s / 1m / 5m / infinite
        for _, points in series:
            sizes = [n for _, n in points]
            assert sizes == sorted(sizes)  # more load, more HSMs
        # stricter constraints sit above looser ones at equal load
        strict = dict(series[0][1])
        loose = dict(series[2][1])
        infinite = dict(series[3][1])
        for load in strict:
            assert strict[load] >= loose[load] >= infinite[load]


class TestEpochBatchModel:
    def test_paper_scale_amortization(self):
        # 3 sessions/s against the paper's 10-minute epoch: 1800 sessions
        # share each run_update.
        model = EpochBatchModel(
            arrival_rate=3.0, epoch_interval=600.0, epoch_seconds=20.0
        )
        assert model.sessions_per_epoch == pytest.approx(1800.0)
        assert model.speedup_vs_per_request() == pytest.approx(1800.0)
        assert model.epoch_cost_per_session() == pytest.approx(20.0 / 1800.0)
        assert model.mean_wait() == pytest.approx(300.0)
        assert model.wait_percentile(0.99) == pytest.approx(594.0)

    def test_empty_epochs_never_beat_per_request(self):
        # Below one session per epoch the amortization floor is 1x: the
        # lone session still pays the whole epoch.
        model = EpochBatchModel(
            arrival_rate=0.001, epoch_interval=10.0, epoch_seconds=5.0
        )
        assert model.speedup_vs_per_request() == 1.0
        assert model.epoch_cost_per_session() == pytest.approx(5.0)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            EpochBatchModel(arrival_rate=-1.0, epoch_interval=1.0, epoch_seconds=1.0)
        with pytest.raises(ValueError):
            EpochBatchModel(arrival_rate=1.0, epoch_interval=0.0, epoch_seconds=1.0)
        with pytest.raises(ValueError):
            EpochBatchModel(
                arrival_rate=1.0, epoch_interval=1.0, epoch_seconds=1.0
            ).wait_percentile(1.5)


class TestEpochShardModel:
    def test_one_shard_matches_unsharded_epoch(self):
        model = EpochShardModel(
            arrival_rate=10.0, epoch_interval=2.0, epoch_seconds=1.0, num_shards=1
        )
        assert model.lane_seconds() == pytest.approx(1.0)
        assert model.speedup() == pytest.approx(1.0)

    def test_speedup_grows_with_lanes_but_amdahl_bounds_it(self):
        base = dict(
            arrival_rate=10.0,
            epoch_interval=2.0,
            epoch_seconds=1.0,
            serial_fraction=0.1,
        )
        speedups = [
            EpochShardModel(num_shards=s, **base).speedup() for s in (1, 2, 4, 8)
        ]
        assert speedups == sorted(speedups)
        assert speedups[2] >= 1.5  # the benchmark's 4-lane gate, analytically
        # Amdahl ceiling: never beyond 1/serial_fraction.
        assert all(s <= 1.0 / 0.1 + 1e-9 for s in speedups)

    def test_per_shard_overhead_can_make_lanes_a_loss(self):
        model = EpochShardModel(
            arrival_rate=1.0,
            epoch_interval=2.0,
            epoch_seconds=0.1,
            num_shards=8,
            serial_fraction=0.0,
            per_shard_overhead=0.05,
        )
        assert model.speedup() < 1.0  # sharding a tiny epoch is a loss

    def test_amortized_cost_and_stability(self):
        model = EpochShardModel(
            arrival_rate=8.0,
            epoch_interval=1.0,
            epoch_seconds=0.8,
            num_shards=4,
            serial_fraction=0.25,
        )
        assert model.epoch_cost_per_session() == pytest.approx(
            model.lane_seconds() / 8.0
        )
        assert model.max_stable_arrival_rate() == math.inf
        saturated = EpochShardModel(
            arrival_rate=8.0, epoch_interval=1.0, epoch_seconds=1.2, num_shards=1
        )
        assert saturated.max_stable_arrival_rate() == 0.0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            EpochShardModel(
                arrival_rate=1.0, epoch_interval=1.0, epoch_seconds=1.0, num_shards=0
            )
        with pytest.raises(ValueError):
            EpochShardModel(
                arrival_rate=1.0,
                epoch_interval=1.0,
                epoch_seconds=1.0,
                serial_fraction=1.5,
            )
        with pytest.raises(ValueError):
            EpochShardModel(
                arrival_rate=1.0,
                epoch_interval=1.0,
                epoch_seconds=1.0,
                per_shard_overhead=-0.1,
            )


class TestEmpiricalValidation:
    def test_simulation_matches_analytic_p99(self):
        """Discrete-event M/M/1 agrees with the closed form within noise."""
        mu, lam = 1.0, 0.5
        analytic = MM1Queue(mu, lam).latency_percentile(0.99)
        simulated = simulate_queue_p99(lam, mu, num_jobs=40000, rng=random.Random(3))
        assert simulated == pytest.approx(analytic, rel=0.15)

    def test_fleet_simulation_close_to_single_queue_model(self):
        mu = 1.0
        total = 4.0
        n = 8
        analytic = MM1Queue(mu, total / n).latency_percentile(0.99)
        simulated = simulate_fleet_p99(total, mu, n, num_jobs=40000, rng=random.Random(4))
        assert simulated == pytest.approx(analytic, rel=0.25)
