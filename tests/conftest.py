"""Shared fixtures and fault-injection re-exports.

Protocol-level tests share one session-scoped deployment where possible
(HSM keygen is the expensive part); tests that fail-stop or compromise HSMs
build their own so they cannot poison neighbours.

The deterministic ``Flaky*`` fault-injection toolkit now lives in
``repro.sim.faults`` (shared with the chaos layer); the names below are
thin re-export shims so existing ``from conftest import ...`` sites keep
working.
"""

from __future__ import annotations

import random

import pytest

from repro.core.params import SystemParams
from repro.core.protocol import Deployment
from repro.sim.faults import (  # noqa: F401 - re-exported for the test suite
    FlakyChannel,
    FlakyProviderChannel,
    FlakyTransport,
    FrameDropped,
)


@pytest.fixture
def rng():
    return random.Random(0xC0FFEE)


@pytest.fixture(scope="session")
def shared_params() -> SystemParams:
    # A generous puncture budget: the shared deployment serves dozens of
    # recoveries across the whole test session.
    return SystemParams.for_testing(
        num_hsms=16, cluster_size=4, pin_length=4, max_punctures=32
    )


@pytest.fixture(scope="session")
def shared_deployment(shared_params) -> Deployment:
    """A 16-HSM deployment shared by non-destructive integration tests.

    Tests using it must create fresh usernames and must not fail-stop or
    compromise HSMs (use ``fresh_deployment`` for that).
    """
    return Deployment.create(shared_params, rng=random.Random(7))


@pytest.fixture
def fresh_deployment(shared_params) -> Deployment:
    """A private deployment for destructive tests."""
    return Deployment.create(shared_params, rng=random.Random(11))


_COUNTER = {"n": 0}


@pytest.fixture
def unique_user() -> str:
    """A username never used before in this session."""
    _COUNTER["n"] += 1
    return f"user-{_COUNTER['n']}"


