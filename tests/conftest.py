"""Shared fixtures and fault-injection helpers.

Protocol-level tests share one session-scoped deployment where possible
(HSM keygen is the expensive part); tests that fail-stop or compromise HSMs
build their own so they cannot poison neighbours.

The ``Flaky*`` wrappers inject deterministic byte-level transport faults
(drops, duplicates, bit-flips, truncation, trailing garbage) from a seed,
so the suite can prove that a hostile or lossy network surfaces *typed*
errors — never a raw crash, never corrupted provider state.
"""

from __future__ import annotations

import random
from collections import Counter

import pytest

from repro.core import wire
from repro.core.params import SystemParams
from repro.core.protocol import Deployment
from repro.service.channel import (
    Channel,
    HsmWireEndpoint,
    ProviderWireEndpoint,
    WireProviderChannel,
    _STATUS_EXCEPTIONS,
)


@pytest.fixture
def rng():
    return random.Random(0xC0FFEE)


@pytest.fixture(scope="session")
def shared_params() -> SystemParams:
    # A generous puncture budget: the shared deployment serves dozens of
    # recoveries across the whole test session.
    return SystemParams.for_testing(
        num_hsms=16, cluster_size=4, pin_length=4, max_punctures=32
    )


@pytest.fixture(scope="session")
def shared_deployment(shared_params) -> Deployment:
    """A 16-HSM deployment shared by non-destructive integration tests.

    Tests using it must create fresh usernames and must not fail-stop or
    compromise HSMs (use ``fresh_deployment`` for that).
    """
    return Deployment.create(shared_params, rng=random.Random(7))


@pytest.fixture
def fresh_deployment(shared_params) -> Deployment:
    """A private deployment for destructive tests."""
    return Deployment.create(shared_params, rng=random.Random(11))


_COUNTER = {"n": 0}


@pytest.fixture
def unique_user() -> str:
    """A username never used before in this session."""
    _COUNTER["n"] += 1
    return f"user-{_COUNTER['n']}"


# ---------------------------------------------------------------------------
# Deterministic byte-level fault injection
# ---------------------------------------------------------------------------
class FrameDropped(Exception):
    """The fault injector dropped a frame (models a transport timeout)."""


class FlakyTransport:
    """Wrap a ``bytes -> bytes`` handler with seeded frame faults.

    Per call, a mode is drawn from a PRNG seeded at construction (so runs
    are reproducible): pass-through (weighted by ``ok_weight``), a request
    bit-flip, a reply bit-flip, reply truncation, trailing garbage on the
    reply, duplicate delivery (the handler runs twice — a retransmission),
    or a drop (raises :class:`FrameDropped` before the handler runs).
    ``faults_injected`` counts what actually happened.
    """

    FAULTS = (
        "corrupt_request",
        "corrupt_reply",
        "truncate_reply",
        "garbage_reply",
        "duplicate",
        "drop",
    )

    def __init__(self, handle, seed: int, ok_weight: int = 4) -> None:
        self._handle = handle
        self._rng = random.Random(seed)
        self._modes = ("ok",) * ok_weight + self.FAULTS
        self.faults_injected: Counter = Counter()

    def __call__(self, request: bytes) -> bytes:
        mode = self._rng.choice(self._modes)
        self.faults_injected[mode] += 1
        if mode == "drop":
            raise FrameDropped("frame dropped by fault injector")
        if mode == "corrupt_request":
            request = self._flip_bit(request)
        reply = self._handle(request)
        if mode == "duplicate":
            reply = self._handle(request)
        elif mode == "corrupt_reply":
            reply = self._flip_bit(reply)
        elif mode == "truncate_reply":
            reply = reply[: self._rng.randrange(len(reply))] if reply else reply
        elif mode == "garbage_reply":
            reply = reply + bytes([self._rng.randrange(256)])
        return reply

    def _flip_bit(self, data: bytes) -> bytes:
        if not data:
            return data
        index = self._rng.randrange(len(data))
        flipped = data[index] ^ (1 << self._rng.randrange(8))
        return data[:index] + bytes([flipped]) + data[index + 1 :]


class FlakyProviderChannel(WireProviderChannel):
    """A wire provider channel whose transport injects seeded faults."""

    def __init__(self, endpoint: ProviderWireEndpoint, seed: int, ok_weight: int = 4):
        self.faults = FlakyTransport(endpoint.handle, seed, ok_weight)
        super().__init__(self.faults)


class FlakyChannel(Channel):
    """A client->HSM wire channel whose transport injects seeded faults."""

    def __init__(self, device, seed: int, ok_weight: int = 4) -> None:
        endpoint = HsmWireEndpoint(device)
        self.faults = FlakyTransport(endpoint.handle_decrypt_share, seed, ok_weight)

    def decrypt_share(self, request):
        """Round-trip through the flaky transport; re-raise error statuses."""
        reply_bytes = self.faults(wire.encode_decrypt_request(request))
        status, payload = wire.decode_decrypt_reply(reply_bytes)
        if status == wire.REPLY_OK:
            return payload
        raise _STATUS_EXCEPTIONS[status](payload)
