"""Secure-deletion key tree (Appendix C): reads, deletion, tampering."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.gcm import AuthenticationError
from repro.storage.blockstore import InMemoryBlockStore, TamperingBlockStore
from repro.storage.securedel import (
    DeletedBlockError,
    NaiveSecureStore,
    SecureDeletionTree,
)


def make_tree(count=10, store=None):
    store = store if store is not None else InMemoryBlockStore()
    blocks = [bytes([i]) * 32 for i in range(count)]
    return SecureDeletionTree.setup(store, blocks), blocks, store


class TestReads:
    def test_all_blocks_readable(self):
        tree, blocks, _ = make_tree(10)
        for i, block in enumerate(blocks):
            assert tree.read(i) == block

    def test_non_power_of_two_count(self):
        tree, blocks, _ = make_tree(7)
        for i, block in enumerate(blocks):
            assert tree.read(i) == block

    def test_single_block(self):
        tree, blocks, _ = make_tree(1)
        assert tree.read(0) == blocks[0]

    def test_out_of_range(self):
        tree, _, _ = make_tree(4)
        with pytest.raises(IndexError):
            tree.read(99)

    def test_root_key_is_only_secret(self):
        tree, _, _ = make_tree(4)
        assert len(tree.root_key) == 16


class TestDeletion:
    def test_deleted_block_unreadable(self):
        tree, _, _ = make_tree(8)
        tree.delete(3)
        with pytest.raises(DeletedBlockError):
            tree.read(3)

    def test_neighbours_survive(self):
        tree, blocks, _ = make_tree(8)
        tree.delete(3)
        assert tree.read(2) == blocks[2]
        assert tree.read(4) == blocks[4]

    def test_double_delete_raises(self):
        tree, _, _ = make_tree(8)
        tree.delete(3)
        with pytest.raises(DeletedBlockError):
            tree.delete(3)

    def test_root_key_rotates_on_delete(self):
        tree, _, _ = make_tree(8)
        before = tree.root_key
        tree.delete(0)
        assert tree.root_key != before

    def test_delete_all(self):
        tree, blocks, _ = make_tree(4)
        for i in range(4):
            tree.delete(i)
        for i in range(4):
            with pytest.raises(DeletedBlockError):
                tree.read(i)


class TestSecureDeletionProperty:
    def test_full_rollback_cannot_resurrect(self):
        """The defining property: a provider that snapshots *every* block
        version ever written, then rolls all of them back after a deletion,
        still cannot make the (new) root key decrypt the deleted block."""
        store = TamperingBlockStore()
        blocks = [bytes([i]) * 32 for i in range(8)]
        tree = SecureDeletionTree.setup(store, blocks)
        tree.delete(5)
        for addr in list(store.history):
            store._blocks[addr] = store.history[addr][0]
        with pytest.raises((AuthenticationError, DeletedBlockError)):
            tree.read(5)

    def test_partial_replay_cannot_resurrect(self):
        store = TamperingBlockStore()
        blocks = [bytes([i]) * 32 for i in range(8)]
        tree = SecureDeletionTree.setup(store, blocks)
        tree.delete(2)
        # Replay only the path nodes the deletion rewrote.
        for addr in tree._path_addrs(2)[:-1]:
            if len(store.history[addr]) > 1:
                store.replay(addr, 0)
        with pytest.raises((AuthenticationError, DeletedBlockError)):
            tree.read(2)


class TestIntegrity:
    def test_corrupted_leaf_detected(self):
        store = TamperingBlockStore()
        tree, _, _ = make_tree(8, store)
        store.corrupt((1 << tree.height) + 3)
        with pytest.raises(AuthenticationError):
            tree.read(3)

    def test_corrupted_internal_node_detected(self):
        store = TamperingBlockStore()
        tree, _, _ = make_tree(8, store)
        store.corrupt(1)  # the root node
        with pytest.raises(AuthenticationError):
            tree.read(0)

    def test_swapped_blocks_detected(self):
        """Address binding: serving leaf j's ciphertext for leaf i fails."""
        store = TamperingBlockStore()
        tree, _, _ = make_tree(8, store)
        base = 1 << tree.height
        store.swap(base + 0, base + 1)
        with pytest.raises(AuthenticationError):
            tree.read(0)


class TestNaiveStore:
    def test_roundtrip_and_delete(self):
        store = InMemoryBlockStore()
        blocks = [bytes([i]) * 16 for i in range(1, 6)]
        naive = NaiveSecureStore.setup(store, blocks)
        assert naive.read(2) == blocks[2]
        naive.delete(2)
        with pytest.raises(DeletedBlockError):
            naive.read(2)
        assert naive.read(3) == blocks[3]

    def test_key_rotates_on_delete(self):
        store = InMemoryBlockStore()
        naive = NaiveSecureStore.setup(store, [b"A" * 16, b"B" * 16])
        before = naive._key
        naive.delete(0)
        assert naive._key != before

    def test_unequal_blocks_rejected(self):
        with pytest.raises(ValueError):
            NaiveSecureStore.setup(InMemoryBlockStore(), [b"a", b"bb"])

    def test_out_of_range(self):
        naive = NaiveSecureStore.setup(InMemoryBlockStore(), [b"A" * 16])
        with pytest.raises(IndexError):
            naive.read(5)


@given(
    count=st.integers(1, 20),
    deletions=st.lists(st.integers(0, 19), max_size=8, unique=True),
)
@settings(max_examples=20, deadline=None)
def test_delete_read_consistency_property(count, deletions):
    """After any sequence of deletions, exactly the deleted indices fail."""
    tree, blocks, _ = make_tree(count)
    deleted = set()
    for index in deletions:
        if index >= count:
            continue
        tree.delete(index)
        deleted.add(index)
    for i in range(count):
        if i in deleted:
            with pytest.raises(DeletedBlockError):
                tree.read(i)
        else:
            assert tree.read(i) == blocks[i]
