"""Wire formats: roundtrips and strict rejection of malformed input."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import wire
from repro.core.lhe import BfePke, LocationHidingEncryption
from repro.crypto.bfe import BloomFilterEncryption
from repro.crypto.bloom import BloomParams
from repro.log.authdict import AuthenticatedDictionary
from repro.storage.blockstore import InMemoryBlockStore


@pytest.fixture(scope="module")
def bfe_setup():
    params = BloomParams.for_punctures(4, failure_exponent=4)
    pairs = [BloomFilterEncryption.keygen(params, InMemoryBlockStore()) for _ in range(6)]
    lhe = LocationHidingEncryption(6, 3, 2, pke=BfePke())
    return pairs, lhe


class TestBfeCiphertext:
    def test_roundtrip(self, bfe_setup):
        pairs, _ = bfe_setup
        ct = BloomFilterEncryption.encrypt(pairs[0][0], b"payload", context=b"c")
        decoded = wire.decode_bfe_ciphertext(wire.encode_bfe_ciphertext(ct))
        assert decoded == ct
        assert BloomFilterEncryption.decrypt(pairs[0][1], decoded, context=b"c") == b"payload"

    def test_truncation_rejected(self, bfe_setup):
        pairs, _ = bfe_setup
        ct = BloomFilterEncryption.encrypt(pairs[0][0], b"payload", context=b"c")
        blob = wire.encode_bfe_ciphertext(ct)
        for cut in (1, len(blob) // 2, len(blob) - 1):
            with pytest.raises(wire.WireFormatError):
                wire.decode_bfe_ciphertext(blob[:cut])

    def test_trailing_bytes_rejected(self, bfe_setup):
        pairs, _ = bfe_setup
        ct = BloomFilterEncryption.encrypt(pairs[0][0], b"p", context=b"c")
        with pytest.raises(wire.WireFormatError):
            wire.decode_bfe_ciphertext(wire.encode_bfe_ciphertext(ct) + b"x")


class TestRecoveryCiphertext:
    def test_roundtrip(self, bfe_setup):
        pairs, lhe = bfe_setup
        publics = [pub for pub, _ in pairs]
        ct = lhe.encrypt(publics, "1234", b"disk image", username="alice")
        blob = wire.encode_recovery_ciphertext(ct)
        decoded = wire.decode_recovery_ciphertext(blob)
        assert decoded == ct
        assert decoded.ciphertext_hash() == ct.ciphertext_hash()

    def test_decoded_ciphertext_still_decrypts(self, bfe_setup):
        pairs, lhe = bfe_setup
        publics = [pub for pub, _ in pairs]
        ct = wire.decode_recovery_ciphertext(
            wire.encode_recovery_ciphertext(
                lhe.encrypt(publics, "1234", b"msg", username="alice")
            )
        )
        cluster = lhe.select(ct.salt, "1234")
        context = lhe.context_for(ct, publics, "1234")
        shares = [
            lhe.decrypt_share(pairs[idx][1], pos, ct, context)
            for pos, idx in enumerate(cluster)
        ]
        assert lhe.reconstruct(ct, shares, context) == b"msg"

    def test_bad_version_rejected(self, bfe_setup):
        pairs, lhe = bfe_setup
        publics = [pub for pub, _ in pairs]
        blob = wire.encode_recovery_ciphertext(
            lhe.encrypt(publics, "1234", b"msg", username="alice")
        )
        with pytest.raises(wire.WireFormatError):
            wire.decode_recovery_ciphertext(b"\x77" + blob[1:])

    def test_elgamal_variant(self):
        from repro.core.lhe import ElGamalPke
        from repro.crypto.elgamal import HashedElGamal

        keys = [HashedElGamal.keygen() for _ in range(5)]
        lhe = LocationHidingEncryption(5, 2, 1, pke=ElGamalPke())
        ct = lhe.encrypt([k.public for k in keys], "9999", b"m", username="bob")
        decoded = wire.decode_recovery_ciphertext(wire.encode_recovery_ciphertext(ct))
        assert decoded == ct


class TestInclusionProof:
    def test_roundtrip_and_verify(self):
        from repro.log.authdict import verify_includes

        d = AuthenticatedDictionary()
        for i in range(20):
            d.insert(b"id%d" % i, b"v%d" % i)
        proof = d.prove_includes(b"id7", b"v7")
        decoded = wire.decode_inclusion_proof(wire.encode_inclusion_proof(proof))
        assert decoded == proof
        assert verify_includes(d.digest, b"id7", b"v7", decoded)

    @given(junk=st.binary(max_size=64))
    @settings(max_examples=50)
    def test_junk_never_crashes(self, junk):
        try:
            wire.decode_inclusion_proof(junk)
        except wire.WireFormatError:
            pass  # the only acceptable failure mode


class TestDecryptRequest:
    def test_roundtrip_and_hsm_accepts(self, fresh_deployment, unique_user):
        """A request surviving an encode/decode cycle must still be served."""
        client = fresh_deployment.new_client(unique_user)
        client.backup(b"data", pin="1234")
        session = client.begin_recovery("1234", backup_recovery_key=False)
        from repro.hsm.device import DecryptShareRequest

        request = DecryptShareRequest(
            username=session.username,
            log_identifier=session.log_identifier,
            commitment=session.commitment,
            opening=session.opening,
            inclusion_proof=session.inclusion_proof,
            share_ciphertext=session.ciphertext.share_ciphertexts[0],
            context=session.context,
            response_key=session.response_keypair.public,
        )
        decoded = wire.decode_decrypt_request(wire.encode_decrypt_request(request))
        assert decoded.username == request.username
        assert decoded.opening == request.opening
        reply = fresh_deployment.fleet[session.cluster[0]].decrypt_share(decoded)
        assert reply is not None

    @given(junk=st.binary(max_size=80))
    @settings(max_examples=50)
    def test_junk_never_crashes(self, junk):
        try:
            wire.decode_decrypt_request(junk)
        except wire.WireFormatError:
            pass
