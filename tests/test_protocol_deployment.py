"""Deployment-level glue: wiring, maintenance, op accounting."""

import random

import pytest

from repro.core.params import SystemParams
from repro.core.protocol import Deployment


class TestWiring:
    def test_hsm_stores_live_at_provider(self, fresh_deployment):
        """The paper's outsourcing story: every HSM's Bloom-key blocks are
        hosted by the (untrusted) provider, not inside the device."""
        dep = fresh_deployment
        for hsm in dep.fleet:
            store = dep.provider.storage_for_hsm(hsm.index)
            assert hsm._store is store
            assert len(store) > 0  # the encrypted key tree lives there

    def test_membership_bootstrap_logged(self, fresh_deployment):
        entries = list(fresh_deployment.provider.log.dict.items())
        membership_entries = [i for i, _ in entries if i.startswith(b"mbr|")]
        assert len(membership_entries) == len(fresh_deployment.fleet)

    def test_clients_share_one_provider(self, fresh_deployment):
        a = fresh_deployment.new_client("a")
        b = fresh_deployment.new_client("b")
        # Clients hold ProviderChannels (never the live provider object);
        # both channels must front the same deployment provider state.
        assert a.provider is not fresh_deployment.provider
        a.backup(b"shared", pin="1234")
        assert b.provider.backup_count("a") == 1
        assert fresh_deployment.provider.backup_count("a") == 1

    def test_update_runner_installed(self, fresh_deployment):
        fresh_deployment.provider.run_log_update()  # must not raise


class TestMaintenance:
    def test_fail_and_restart(self, fresh_deployment):
        victims = fresh_deployment.fail_random_hsms(3, random.Random(5))
        assert len(victims) == 3
        assert len(fresh_deployment.fleet.online()) == len(fresh_deployment.fleet) - 3
        fresh_deployment.restart_all_hsms()
        assert len(fresh_deployment.fleet.online()) == len(fresh_deployment.fleet)

    def test_rotate_if_needed_noop_when_fresh(self, fresh_deployment):
        assert fresh_deployment.rotate_keys_if_needed() == []

    def test_rotation_refreshes_registered_clients(self):
        params = SystemParams.for_testing(
            num_hsms=8, cluster_size=3, max_punctures=2, bloom_failure_exponent=3
        )
        dep = Deployment.create(params, rng=random.Random(41))
        client = dep.new_client("wear")
        # Wear one cluster down until some HSM wants rotation.
        for i in range(6):
            client.backup(b"x", pin="1234")
            try:
                client.recover(pin="1234")
            except Exception:
                pass
            rotated = dep.rotate_keys_if_needed()
            if rotated:
                break
        assert rotated
        # The registered client's mpk reflects the new epoch automatically.
        assert client._config_epoch() >= 1
        dep.verify_published_keys()  # rotations were logged


class TestClientOpAccounting:
    def test_backup_op_counts_match_formula(self, shared_deployment, unique_user):
        """Figure 10's model rests on backup = n·(k+1) point mults; the real
        client must perform exactly that many."""
        client = shared_deployment.new_client(unique_user)
        before = client.meter.counts.get("ec_mult", 0)
        client.backup(b"data", pin="1234")
        mults = client.meter.counts.get("ec_mult", 0) - before
        n = shared_deployment.params.cluster_size
        k = shared_deployment.params.bloom_params().num_hashes
        assert mults == n * (k + 1)

    def test_recovery_is_metered(self, shared_deployment, unique_user):
        client = shared_deployment.new_client(unique_user)
        client.backup(b"data", pin="1234")
        before = dict(client.meter.counts)
        client.recover(pin="1234")
        after = client.meter.counts
        assert after.get("ec_mult", 0) > before.get("ec_mult", 0)
