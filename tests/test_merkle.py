"""Merkle tree commitments and inclusion proofs."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.merkle import IncrementalMerkleTree, MerkleProof, MerkleTree


class TestBasics:
    def test_single_leaf(self):
        tree = MerkleTree([b"only"])
        assert MerkleTree.verify(tree.root, b"only", tree.prove(0))

    def test_all_leaves_verify(self):
        leaves = [bytes([i]) * 4 for i in range(13)]
        tree = MerkleTree(leaves)
        for i, leaf in enumerate(leaves):
            assert MerkleTree.verify(tree.root, leaf, tree.prove(i))

    def test_wrong_leaf_rejected(self):
        tree = MerkleTree([b"a", b"b", b"c"])
        assert not MerkleTree.verify(tree.root, b"x", tree.prove(1))

    def test_wrong_root_rejected(self):
        tree = MerkleTree([b"a", b"b", b"c"])
        other = MerkleTree([b"a", b"b", b"d"])
        assert not MerkleTree.verify(other.root, b"b", tree.prove(1))

    def test_proof_for_wrong_index_rejected(self):
        tree = MerkleTree([b"a", b"b", b"c", b"d"])
        assert not MerkleTree.verify(tree.root, b"a", tree.prove(1))

    def test_out_of_range_raises(self):
        tree = MerkleTree([b"a"])
        with pytest.raises(IndexError):
            tree.prove(1)

    def test_empty_tree_root_is_stable(self):
        assert MerkleTree([]).root == MerkleTree.empty_root()

    def test_leaf_order_matters(self):
        assert MerkleTree([b"a", b"b"]).root != MerkleTree([b"b", b"a"]).root

    def test_leaf_node_domain_separation(self):
        # A leaf equal to an interior node's encoding must not verify as the
        # parent: tag separation makes the trees differ.
        t1 = MerkleTree([b"a", b"b"])
        t2 = MerkleTree([t1.root])
        assert t1.root != t2.root


class TestProofSerialization:
    def test_roundtrip(self):
        tree = MerkleTree([bytes([i]) for i in range(9)])
        proof = tree.prove(5)
        restored = MerkleProof.from_bytes(proof.to_bytes())
        assert restored == proof
        assert MerkleTree.verify(tree.root, bytes([5]), restored)

    def test_truncated_rejected(self):
        tree = MerkleTree([b"a", b"b"])
        blob = tree.prove(0).to_bytes()
        with pytest.raises(ValueError):
            MerkleProof.from_bytes(blob[:-5])


@given(leaves=st.lists(st.binary(max_size=40), min_size=1, max_size=40), data=st.data())
@settings(max_examples=40)
def test_inclusion_property(leaves, data):
    tree = MerkleTree(leaves)
    index = data.draw(st.integers(0, len(leaves) - 1))
    assert MerkleTree.verify(tree.root, leaves[index], tree.prove(index))


@given(leaves=st.lists(st.binary(min_size=1, max_size=20), min_size=2, max_size=20, unique=True))
@settings(max_examples=30)
def test_noninclusion_property(leaves):
    tree = MerkleTree(leaves)
    proof = tree.prove(0)
    assert not MerkleTree.verify(tree.root, leaves[1], proof)


class TestIncremental:
    """IncrementalMerkleTree must stay byte-identical to a rebuild."""

    def test_update_matches_rebuild(self):
        leaves = [bytes([i]) * 3 for i in range(11)]
        tree = IncrementalMerkleTree(leaves)
        for index, new in ((4, b"x"), (0, b"y"), (10, b"z"), (4, b"w")):
            leaves[index] = new
            tree.update(index, new)
            rebuilt = MerkleTree(leaves)
            assert tree.root == rebuilt.root
            for i in range(len(leaves)):
                assert tree.prove(i) == rebuilt.prove(i)

    def test_single_leaf_update(self):
        tree = IncrementalMerkleTree([b"a"])
        tree.update(0, b"b")
        assert tree.root == MerkleTree([b"b"]).root
        assert MerkleTree.verify(tree.root, b"b", tree.prove(0))

    def test_out_of_range_raises(self):
        tree = IncrementalMerkleTree([b"a", b"b"])
        with pytest.raises(IndexError):
            tree.update(2, b"c")
        with pytest.raises(IndexError):
            tree.update(-1, b"c")

    @given(
        leaves=st.lists(st.binary(max_size=24), min_size=1, max_size=40),
        data=st.data(),
    )
    @settings(max_examples=40)
    def test_any_update_sequence_matches_rebuild(self, leaves, data):
        """After *any* sequence of updates — including odd leaf counts,
        where the tree duplicates the last node up each level — root and
        every proof path equal a from-scratch build."""
        tree = IncrementalMerkleTree(leaves)
        updates = data.draw(
            st.lists(
                st.tuples(
                    st.integers(0, len(leaves) - 1), st.binary(max_size=24)
                ),
                max_size=8,
            )
        )
        for index, new in updates:
            leaves[index] = new
            tree.update(index, new)
        rebuilt = MerkleTree(leaves)
        assert tree.root == rebuilt.root
        index = data.draw(st.integers(0, len(leaves) - 1))
        assert tree.prove(index) == rebuilt.prove(index)
        assert MerkleTree.verify(tree.root, leaves[index], tree.prove(index))
