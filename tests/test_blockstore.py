"""Block stores and the tampering adversary's toolkit."""

import pytest

from repro.metering import metered
from repro.storage.blockstore import InMemoryBlockStore, TamperingBlockStore


class TestInMemory:
    def test_put_get(self):
        store = InMemoryBlockStore()
        store.put(5, b"hello")
        assert store.get(5) == b"hello"
        assert 5 in store
        assert 6 not in store

    def test_overwrite(self):
        store = InMemoryBlockStore()
        store.put(1, b"a")
        store.put(1, b"b")
        assert store.get(1) == b"b"

    def test_missing_raises(self):
        with pytest.raises(KeyError):
            InMemoryBlockStore().get(0)

    def test_io_metering(self):
        store = InMemoryBlockStore()
        with metered() as meter:
            store.put(0, b"12345678")
            store.get(0)
        assert meter.counts["io_bytes"] == 16

    def test_size_accounting(self):
        store = InMemoryBlockStore()
        store.put(0, b"abc")
        store.put(1, b"de")
        assert len(store) == 2
        assert store.total_bytes() == 5


class TestTampering:
    def test_history_recorded(self):
        store = TamperingBlockStore()
        store.put(0, b"v1")
        store.put(0, b"v2")
        assert store.history[0] == [b"v1", b"v2"]

    def test_corrupt_flips_bit(self):
        store = TamperingBlockStore()
        store.put(0, bytes(4))
        store.corrupt(0, bit=9)
        assert store.get(0) == bytes([0, 2, 0, 0])

    def test_replay_serves_stale_once(self):
        store = TamperingBlockStore()
        store.put(0, b"old")
        store.put(0, b"new")
        store.replay(0, version=0)
        assert store.get(0) == b"old"
        assert store.get(0) == b"new"

    def test_swap(self):
        store = TamperingBlockStore()
        store.put(0, b"a")
        store.put(1, b"b")
        store.swap(0, 1)
        assert store.get(0) == b"b" and store.get(1) == b"a"

    def test_intercept_hook(self):
        store = TamperingBlockStore()
        store.put(0, b"abc")
        store.intercept = lambda addr, block: block[::-1]
        assert store.get(0) == b"cba"
