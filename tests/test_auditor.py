"""External auditors: full replay and recovery-attempt monitoring (§6.3)."""

import pytest

from repro.log.auditor import AuditFailure, ExternalAuditor
from repro.log.authdict import AuthenticatedDictionary


def make_log(n=10):
    entries = [(f"id{i}".encode(), f"v{i}".encode()) for i in range(n)]
    return entries, AuthenticatedDictionary.from_entries(entries).digest


class TestSnapshotAudit:
    def test_honest_log_passes(self):
        entries, digest = make_log()
        ExternalAuditor().audit_snapshot(entries, digest)

    def test_tampered_value_fails(self):
        entries, digest = make_log()
        entries[3] = (entries[3][0], b"forged")
        with pytest.raises(AuditFailure):
            ExternalAuditor().audit_snapshot(entries, digest)

    def test_dropped_entry_fails(self):
        entries, digest = make_log()
        with pytest.raises(AuditFailure):
            ExternalAuditor().audit_snapshot(entries[:-1], digest)

    def test_duplicate_identifier_fails(self):
        entries, digest = make_log()
        with pytest.raises(AuditFailure):
            ExternalAuditor().audit_snapshot(entries + [entries[0]], digest)

    def test_reordered_entries_fail(self):
        # insertion order is part of the committed structure
        entries, digest = make_log()
        with pytest.raises(AuditFailure):
            ExternalAuditor().audit_snapshot(list(reversed(entries)), digest)


class TestExtensionAudit:
    def test_honest_extension_passes(self):
        old, old_digest = make_log(5)
        new = old + [(b"new", b"v")]
        new_digest = AuthenticatedDictionary.from_entries(new).digest
        ExternalAuditor().audit_extension(old, new, old_digest, new_digest)

    def test_prefix_violation_fails(self):
        old, old_digest = make_log(5)
        new = old[:-1] + [(b"swapped", b"v"), old[-1]]
        new_digest = AuthenticatedDictionary.from_entries(new).digest
        with pytest.raises(AuditFailure):
            ExternalAuditor().audit_extension(old, new, old_digest, new_digest)

    def test_redefined_identifier_fails(self):
        old, old_digest = make_log(5)
        new = old + [(old[0][0], b"redefined")]
        # The provider claims *some* digest for the duplicate-bearing log;
        # the duplicate check must fire before any replay.
        with pytest.raises(AuditFailure):
            ExternalAuditor().audit_extension(old, new, old_digest, b"\x00" * 32)


class TestMonitoring:
    def test_attempts_filtered_by_prefix(self):
        entries = [
            (b"rec|alice|0", b"h1"),
            (b"rec|bob|0", b"h2"),
            (b"rec|alice|1", b"h3"),
        ]
        found = ExternalAuditor.recovery_attempts_for(entries, b"rec|alice|")
        assert [i for i, _ in found] == [b"rec|alice|0", b"rec|alice|1"]

    def test_no_attempts(self):
        assert ExternalAuditor.recovery_attempts_for([], b"rec|alice|") == []


class TestDeploymentIntegration:
    def test_auditor_replays_live_deployment_log(self, shared_deployment, unique_user):
        client = shared_deployment.new_client(unique_user)
        client.backup(b"data", pin="1234")
        client.recover(pin="1234")
        log = shared_deployment.provider.log
        ExternalAuditor().audit_snapshot(log.ordered_entries, log.digest)

    def test_auditor_catches_live_rewrite(self, fresh_deployment, unique_user):
        client = fresh_deployment.new_client(unique_user)
        client.backup(b"data", pin="1234")
        client.recover(pin="1234")
        log = fresh_deployment.provider.log
        tampered = [(i, b"forged") for i, _ in log.ordered_entries]
        with pytest.raises(AuditFailure):
            ExternalAuditor().audit_snapshot(tampered, log.digest)
