"""The crypto fast-path layer: fixed-base comb, cached windows, multi-scalar.

Every fast path must agree bit-for-bit with plain double-and-add (an
independent reference built here from point additions only), and none of
them may change what the ambient meter sees — the paper's cost accounting
(`ec_mult`, `ecdsa_verify`, `sha256_block`) prices operations, not
implementations.
"""

import random
import secrets

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.params import SystemParams
from repro.core.protocol import Deployment
from repro.crypto.ec import N, P256, ECPoint, multi_mult, naive_mult
from repro.crypto.field import PrimeField, batch_inverse_mod
from repro.log.distributed import EcdsaMultiSig
from repro.metering import OpMeter, metered

G = P256.generator

# Scalars where window/comb algorithms historically go wrong: zero, the
# identity, all-ones digits, values at and just past the group order.
EDGE_SCALARS = [0, 1, 2, 15, 16, 0xFFFF, N - 1, N, N + 1, (1 << 256) - 1]


def double_and_add(point: ECPoint, scalar: int) -> ECPoint:
    """Textbook double-and-add from point additions only — shares no code
    with any multiplication path in ``repro.crypto.ec``."""
    scalar %= N
    result = ECPoint(None, None)
    addend = point
    while scalar:
        if scalar & 1:
            result = result + addend
        addend = addend + addend
        scalar >>= 1
    return result


@pytest.fixture(scope="module")
def named_points():
    rng = random.Random(0xEC)
    return {
        "generator": G,
        "random": G * rng.randrange(1, N),
        "small": G * 3,
    }


class TestAgainstDoubleAndAdd:
    @pytest.mark.parametrize("scalar", EDGE_SCALARS)
    def test_fixed_base_edge_scalars(self, scalar):
        assert G * scalar == double_and_add(G, scalar)

    @pytest.mark.parametrize("scalar", EDGE_SCALARS)
    def test_cached_window_edge_scalars(self, scalar, named_points):
        point = named_points["random"]
        assert point * scalar == double_and_add(point, scalar)

    @pytest.mark.parametrize("scalar", EDGE_SCALARS)
    def test_naive_reference_edge_scalars(self, scalar, named_points):
        point = named_points["random"]
        assert naive_mult(point, scalar) == double_and_add(point, scalar)

    @given(scalar=st.integers(0, N + 7))
    @settings(max_examples=20, deadline=None)
    def test_fixed_base_random_scalars(self, scalar):
        assert G * scalar == double_and_add(G, scalar)

    @given(scalar=st.integers(0, N + 7), seed=st.integers(1, 2**32))
    @settings(max_examples=15, deadline=None)
    def test_cached_window_random_points(self, scalar, seed):
        point = G * random.Random(seed).randrange(1, N)
        expected = double_and_add(point, scalar)
        assert point * scalar == expected
        # Second multiply hits the cached table and must agree.
        assert point * scalar == expected

    @given(
        scalars=st.lists(st.integers(0, N + 7), min_size=1, max_size=6),
        seed=st.integers(1, 2**32),
    )
    @settings(max_examples=15, deadline=None)
    def test_multi_mult_matches_sum(self, scalars, seed):
        rng = random.Random(seed)
        pairs = []
        for i, scalar in enumerate(scalars):
            point = G if i % 3 == 0 else G * rng.randrange(1, N)
            pairs.append((scalar, point))
        expected = ECPoint(None, None)
        for scalar, point in pairs:
            expected = expected + double_and_add(point, scalar)
        assert multi_mult(pairs) == expected

    def test_multi_mult_empty_and_zero(self):
        assert multi_mult([]).is_infinity
        assert multi_mult([(0, G), (N, G * 5)]).is_infinity
        assert multi_mult([(0, G), (7, G)]) == double_and_add(G, 7)

    def test_multi_mult_infinity_point(self):
        assert multi_mult([(5, ECPoint(None, None)), (3, G)]) == double_and_add(G, 3)


class TestBatchInverse:
    @given(
        values=st.lists(st.integers(1, N - 1), min_size=1, max_size=12),
    )
    @settings(max_examples=25, deadline=None)
    def test_matches_pow(self, values):
        assert batch_inverse_mod(values, N) == [pow(v, -1, N) for v in values]

    def test_zero_rejected(self):
        with pytest.raises(ZeroDivisionError):
            batch_inverse_mod([3, 0, 5], N)

    def test_empty(self):
        assert batch_inverse_mod([], N) == []

    def test_field_wrapper(self):
        field = PrimeField(97)
        elements = [field(v) for v in (1, 5, 42, 96)]
        assert field.batch_inverse(elements) == [e.inverse() for e in elements]


class TestBatchVerify:
    @pytest.fixture(scope="class")
    def signed(self):
        scheme = EcdsaMultiSig()
        keypairs = [scheme.keygen(random.Random(seed)) for seed in range(6)]
        message = b"epoch transition"
        sigs = [scheme.sign(kp.secret, message) for kp in keypairs]
        return scheme, keypairs, message, sigs

    def test_batch_matches_sequential(self, signed):
        scheme, keypairs, message, sigs = signed
        items = [(kp.public, message, sig) for kp, sig in zip(keypairs, sigs)]
        # Corrupt a couple of entries in characteristic ways.
        items[2] = (keypairs[2].public, b"wrong message", sigs[2])
        items[4] = (keypairs[4].public, message, (0, 1))  # out-of-range r
        sequential = [P256.ecdsa_verify(*item) for item in items]
        assert P256.ecdsa_verify_batch(items) == sequential
        assert sequential == [True, True, False, True, False, True]

    def test_verify_aggregate_accepts_and_rejects(self, signed):
        scheme, keypairs, message, sigs = signed
        aggregate = scheme.aggregate(sigs)
        assert scheme.verify_aggregate(keypairs, message, aggregate)
        bad = scheme.aggregate([sigs[1]] + sigs[1:])  # first sig swapped
        assert not scheme.verify_aggregate(keypairs, message, bad)
        assert not scheme.verify_aggregate(keypairs[:-1], message, aggregate)

    def test_infinity_public_key_rejected_not_crashed(self, signed):
        """An attacker-supplied identity point as a signer key must land on
        the returns-False path, as the pre-fast-path verifier did."""
        scheme, keypairs, message, sigs = signed
        infinity = ECPoint(None, None)
        assert not P256.ecdsa_verify(infinity, message, sigs[0])
        assert P256.ecdsa_verify_batch([(infinity, message, sigs[0])]) == [False]
        publics = [infinity] + [kp.public for kp in keypairs[1:]]
        assert not scheme.verify_aggregate(publics, message, scheme.aggregate(sigs))

    def test_verify_all_short_circuits_computation(self, signed):
        """ecdsa_verify_all must stop at the first failing chunk: a bad
        aggregate costs one chunk of work, not all N verifications."""
        from repro.crypto import ec as ec_module

        scheme, keypairs, message, sigs = signed
        items = [(kp.public, message, sig) for kp, sig in zip(keypairs, sigs)]
        assert P256.ecdsa_verify_all(items)
        assert not P256.ecdsa_verify_all([(keypairs[0].public, b"bad", sigs[0])] + items)
        calls = []
        original = ec_module._Curve._verify_chunk

        def counting(self, chunk):
            calls.append(len(chunk))
            return original(self, chunk)

        ec_module._Curve._verify_chunk = counting
        try:
            many = [(keypairs[0].public, b"wrong", sigs[0])] + items * 4
            assert not P256.ecdsa_verify_all(many)
        finally:
            ec_module._Curve._verify_chunk = original
        assert sum(calls) <= ec_module._VERIFY_CHUNK  # only the first chunk ran

    def test_aggregate_metering_matches_short_circuit(self, signed):
        """The sequential loop metered one ecdsa_verify per signature up to
        and including the first failure; the batch path must report the
        same counts or the modeled device costs drift."""
        scheme, keypairs, message, sigs = signed
        aggregate = scheme.aggregate(sigs)
        with metered() as meter:
            scheme.verify_aggregate(keypairs, message, aggregate)
        assert meter.counts["ecdsa_verify"] == len(sigs)
        bad = scheme.aggregate(sigs[:3] + [(1, 1)] + sigs[4:])
        with metered() as meter:
            scheme.verify_aggregate(keypairs, message, bad)
        assert meter.counts["ecdsa_verify"] == 4  # stops at first bad signature


class TestMeteringInvariance:
    METERED_OPS = ("ec_mult", "ecdsa_verify", "sha256_block")
    # Captured by running this exact workload on the pre-fast-path seed
    # implementation (PR 2 tree).  The acceleration layer must not move any
    # of these: it changes wall-clock, not the paper's cost model.
    SEED_COUNTS = {"ec_mult": 339, "ecdsa_verify": 72, "sha256_block": 2585}

    def run_fixed_workload(self):
        """One seeded backup+recovery; all randomness from one PRNG so the
        operation trace is a pure function of the code, not the run."""
        stream = random.Random(0xC0FFEE)
        originals = (secrets.token_bytes, secrets.randbelow)
        secrets.token_bytes = lambda n=32: stream.getrandbits(8 * n).to_bytes(n, "big")
        secrets.randbelow = lambda bound: stream.randrange(bound)
        try:
            meter = OpMeter()
            with meter.attached():
                params = SystemParams.for_testing(num_hsms=6, cluster_size=3)
                deployment = Deployment.create(params, rng=random.Random(7))
                client = deployment.new_client("meter-invariance-user")
                client.backup(b"fixed workload payload", pin="1234")
                recovered = client.recover(pin="1234")
            assert recovered == b"fixed workload payload"
            return {op: meter.counts[op] for op in self.METERED_OPS}
        finally:
            secrets.token_bytes, secrets.randbelow = originals

    def test_fixed_workload_counts_unchanged(self):
        assert self.run_fixed_workload() == self.SEED_COUNTS

    def test_single_mult_still_counts_one(self):
        point = G * 7
        with metered() as meter:
            _ = G * 12345          # fixed-base comb path
            _ = point * 54321      # cached-window path
            _ = naive_mult(point, 99)  # baseline path
        assert meter.counts["ec_mult"] == 3
