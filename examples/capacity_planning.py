#!/usr/bin/env python3
"""Deployment planning: size a SafetyPin fleet for a real user population.

Uses the same models as the paper's §9.2: the Table 7-calibrated cost model
for per-HSM service times, key-rotation duty cycles, M/M/1 tail-latency
sizing (Figure 13), and dollar costing (Figure 12 / Table 14).

Run:  python examples/capacity_planning.py
"""

from repro.analysis.bounds import (
    correctness_failure_exact,
    minimum_cluster_size,
    security_loss_bits,
)
from repro.hsm.devices import SAFENET_A700, SOLOKEY, YUBIHSM2
from repro.sim.capacity import (
    build_throughput_model,
    plan_deployment,
    recoveries_per_year,
    storage_cost_per_year,
)
from repro.sim.queueing import min_fleet_for_latency

USERS = 1_000_000_000  # one billion users, one recovery each per year
PIN_DIGITS = 6


def main() -> None:
    print(f"Planning for {USERS:,} users, {PIN_DIGITS}-digit PINs\n")

    n = minimum_cluster_size(10**PIN_DIGITS)
    print(f"Cluster size from the security analysis: n = {n} "
          f"(smallest n with |P| <= 2^(n/2))")
    print(f"Recovery threshold t = n/2 = {n // 2}; "
          f"failure prob at f_live=1/64: "
          f"{correctness_failure_exact(n, n // 2, 1 / 64):.2e}\n")

    print(f"{'Device':<16}{'qty':>8}{'cost':>14}{'rec/hr/HSM':>12}"
          f"{'rotation duty':>15}")
    for device in (SOLOKEY, YUBIHSM2, SAFENET_A700):
        throughput = build_throughput_model(device)
        plan = plan_deployment(device, USERS, cluster_size=n, throughput=throughput)
        print(
            f"{device.name:<16}{plan.quantity:>8,}"
            f"{plan.hardware_cost_usd:>14,.0f}"
            f"{throughput.recoveries_per_hour:>12,.0f}"
            f"{throughput.rotation_duty_fraction:>14.0%}"
        )

    solo = build_throughput_model(SOLOKEY)
    base_plan = plan_deployment(SOLOKEY, USERS, cluster_size=n, throughput=solo)
    print(f"\nChosen: {base_plan.quantity:,} SoloKeys "
          f"(tolerates {base_plan.tolerated_evil} stolen devices; "
          f"security loss vs pure PIN guessing: "
          f"{security_loss_bits(base_plan.quantity, n):.2f} bits)")

    print("\nTail-latency overprovisioning (p99, M/M/1 per HSM):")
    job_rate = USERS * n / (3600 * 24 * 365)
    for constraint, label in ((30.0, "30 s"), (60.0, "1 min"), (300.0, "5 min"), (None, "any finite")):
        fleet = min_fleet_for_latency(job_rate, solo.service_rate, constraint)
        print(f"  p99 <= {label:<10}: N = {fleet:,}")

    print(f"\nContext: storing the disk images themselves "
          f"(4 GB/user on S3-IA) costs ~${storage_cost_per_year(USERS) / 1e6:,.0f}M/year"
          f" — the HSM fleet is a rounding error, as the paper concludes.")


if __name__ == "__main__":
    main()
