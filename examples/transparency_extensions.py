#!/usr/bin/env python3
"""The paper's transparency extensions, end to end.

Two mechanisms §6.3/§8 describe (but the authors' artifact does not
implement) are exercised here:

1. **Salt protection & safe PIN re-use** — the recovery salt is stored under
   a second, null-PIN layer of location-hiding encryption.  Anyone fetching
   it leaves an indelible log entry and destroys it, so after recovering,
   the user can *prove to herself* whether her PIN was ever exposed to an
   offline attack — and keep it if not.
2. **HSM membership management** — every add/rotate of an HSM key is logged
   before clients will accept it, so a provider substituting hardware (the
   targeted-attack vector of §2) is caught by a client-side check, and bulk
   fleet replacement is visible as an anomaly.

Run:  python examples/transparency_extensions.py
"""

from repro import Deployment, SystemParams
from repro.core.saltprotect import SaltProtectedClient
from repro.log.membership import MembershipVerifier, MembershipViolation


def salt_protection_demo(deployment: Deployment) -> None:
    print("== Salt protection and safe PIN re-use ==")
    user = SaltProtectedClient(deployment.new_client("nadia"))
    user.backup(b"contact list + photos", pin="5912")
    print("backup stored; salt held only under null-PIN LHE")

    recovered = user.recover(pin="5912")
    print(f"recovered: {recovered!r}")

    verdict = user.pin_reuse_verdict(own_fetches_expected=1)
    print(f"safe to re-use PIN? {verdict.safe_to_reuse} — {verdict.reason}")

    print("\nnow the attack case: a snoop fetches another user's salt first")
    victim = SaltProtectedClient(deployment.new_client("omar"))
    victim.backup(b"omar's data", pin="7788")
    snoop = SaltProtectedClient(deployment.new_client("omar"))
    snoop.fetch_salt()  # logged forever, salt destroyed
    verdict = victim.pin_reuse_verdict(own_fetches_expected=0)
    print(f"omar's verdict: safe={verdict.safe_to_reuse} — {verdict.reason}")


def membership_demo(deployment: Deployment) -> None:
    print("\n== HSM membership management ==")
    deployment.verify_published_keys()
    print("initial fleet verified against the logged membership history")

    hsm = deployment.fleet[2]
    info = hsm.rotate_keys(deployment.provider.storage_for_hsm(2))
    deployment.membership.record_rotation(info)
    deployment.run_log_update()
    deployment.verify_published_keys()
    print("logged key rotation for HSM 2: still verifies")

    rogue = deployment.fleet[5]
    rogue.rotate_keys(deployment.provider.storage_for_hsm(5))  # NOT logged
    try:
        deployment.verify_published_keys()
        print("!! silent key substitution went unnoticed")
    except MembershipViolation as exc:
        print(f"silent key substitution caught: {exc}")

    events = MembershipVerifier.events_from_log(
        list(deployment.provider.log.dict.items())
    )
    fraction = MembershipVerifier.replacement_fraction(
        events, len(deployment.fleet), window=4
    )
    print(f"fleet churn over the last 4 events: {fraction:.0%} "
          "(a monitoring client alarms on bulk replacement)")


def main() -> None:
    params = SystemParams.for_testing(
        num_hsms=16, cluster_size=4, pin_length=4, max_punctures=16
    )
    deployment = Deployment.create(params)
    salt_protection_demo(deployment)
    membership_demo(deployment)


if __name__ == "__main__":
    main()
