#!/usr/bin/env python3
"""Attacks from the paper's threat model, run against the live system.

Demonstrates, in order:

1. a brute-force PIN guesser being stopped by the global attempt limit and
   leaving a public audit trail;
2. the adaptive HSM-corruption attacker of Theorem 10 / Remark 5 failing to
   find the hidden cluster;
3. forward security: compromising *every* HSM after the user recovered
   reveals nothing;
4. a cheating provider's log rewrite being caught both by the HSM fleet and
   by an external auditor;
5. the same single-HSM theft that is fatal to today's fixed-cluster systems
   (the baseline) being harmless to SafetyPin.

Run:  python examples/attack_and_audit.py
"""

import random

from repro import Deployment, SystemParams
from repro.adversary.attacks import (
    AdaptiveCorruptionAttacker,
    CheatingProvider,
    decrypt_with_stolen_secrets,
)
from repro.baseline.system import BaselineSystem
from repro.core.client import RecoveryError
from repro.crypto.elgamal import HashedElGamal
from repro.log.auditor import AuditFailure, ExternalAuditor
from repro.log.distributed import LogConfig, LogUpdateRejected


def brute_force_demo(deployment: Deployment) -> None:
    print("== 1. Brute-force PIN guessing through the protocol ==")
    victim = deployment.new_client("victim")
    victim.backup(b"bank credentials", pin="8362")

    attacker = deployment.new_client("victim")  # attacker knows the username
    guesses = 0
    for pin in (f"{p:04d}" for p in range(10_000)):
        try:
            attacker.recover(pin)
            print("  !! attacker got in")
            return
        except RecoveryError as exc:
            guesses += 1
            if "exhausted" in str(exc):
                break
    print(f"  attacker stopped after {guesses} guesses "
          f"(limit: {deployment.params.max_attempts_per_user} per user)")
    print(f"  victim's audit view shows {len(victim.audit_my_recovery_attempts())} "
          "logged break-in attempts — the attack is public")


def adaptive_corruption_demo(deployment: Deployment) -> None:
    print("\n== 2. Adaptive HSM corruption (Theorem 10 attacker) ==")
    client = deployment.new_client("diplomat")
    client.backup(b"cables", pin="4410")
    ciphertext = deployment.provider.fetch_backup("diplomat")

    budget = max(2, deployment.params.tolerated_compromises)
    attacker = AdaptiveCorruptionAttacker(deployment.fleet, client.lhe, budget)
    candidate_pins = [f"{p:04d}" for p in range(40) if f"{p:04d}" != "4410"]
    result = attacker.run(ciphertext, candidate_pins, client.mpk)
    print(f"  attacker corrupted HSMs {attacker.corrupted} "
          f"(budget {budget} = f_secret*N) and tested {len(candidate_pins)} PINs")
    print(f"  plaintext recovered: {result!r}  — location hiding held")


def forward_security_demo(deployment: Deployment) -> None:
    print("\n== 3. Total compromise after recovery ==")
    client = deployment.new_client("journalist")
    client.backup(b"sources", pin="9102")
    ciphertext = deployment.provider.fetch_backup("journalist")
    client.recover(pin="9102")
    stolen = deployment.fleet.compromise(range(len(deployment.fleet)))
    result = decrypt_with_stolen_secrets(
        client.lhe, ciphertext, stolen, "9102", client.mpk
    )
    print(f"  ALL {len(stolen)} HSMs compromised post-recovery; "
          f"attacker decrypts: {result!r}  — puncturable keys held")


def cheating_provider_demo() -> None:
    print("\n== 4. Cheating service provider vs the distributed log ==")
    from repro.crypto.bloom import BloomParams
    from repro.hsm.fleet import HsmFleet

    cfg = LogConfig(audit_count=3, quorum_fraction=0.75)
    fleet = HsmFleet(
        8, BloomParams.for_punctures(4, failure_exponent=4),
        log_config=cfg, rng=random.Random(9),
    )
    log = CheatingProvider(cfg)
    log.insert(b"rec|victim|0", b"honest-commitment")
    log.run_update(fleet.hsms)
    print("  honest round certified; provider now rewrites the entry...")

    log.rewrite_entry(b"rec|victim|0", b"forged-commitment")
    try:
        log.insert(b"rec|other|0", b"x")
        log.run_update(fleet.hsms)
        print("  !! fleet certified a forked log")
    except LogUpdateRejected as exc:
        print(f"  fleet refused the forked log: {exc}")

    auditor = ExternalAuditor("lets-encrypt")
    try:
        auditor.audit_snapshot(log.ordered_entries, fleet[0].log_digest)
        print("  !! auditor missed the rewrite")
    except AuditFailure:
        print("  external auditor also caught the rewrite on full replay")


def single_theft_demo(deployment: Deployment) -> None:
    print("\n== 5. One stolen HSM: baseline vs SafetyPin ==")
    baseline = BaselineSystem()
    for i in range(3):
        baseline.new_client(f"user{i}").backup(bytes([i]) * 16, pin="123456")
    stolen_key = baseline.clusters[0][0].extract_secrets()
    broken = 0
    for i in range(3):
        ct = baseline.fetch(f"user{i}")
        plaintext = HashedElGamal.decrypt(stolen_key, ct.body, context=b"baseline")
        broken += plaintext[32:] == bytes([i]) * 16
    print(f"  baseline: stealing ONE HSM broke {broken}/3 users' backups")

    client = deployment.new_client("sp-user")
    client.backup(b"safe data", pin="5050")
    ciphertext = deployment.provider.fetch_backup("sp-user")
    stolen = deployment.fleet.compromise([0])
    result = decrypt_with_stolen_secrets(client.lhe, ciphertext, stolen, "5050", client.mpk)
    print(f"  SafetyPin: stealing one HSM (even with the right PIN known) "
          f"recovers: {result!r}")


def main() -> None:
    params = SystemParams.for_testing(
        num_hsms=16, cluster_size=4, pin_length=4, max_punctures=16
    )
    deployment = Deployment.create(params)
    brute_force_demo(deployment)
    adaptive_corruption_demo(deployment)
    forward_security_demo(deployment)
    cheating_provider_demo()
    single_theft_demo(deployment)
    print("\nAll five attacks behaved exactly as the paper's analysis predicts.")


if __name__ == "__main__":
    main()
