#!/usr/bin/env python3
"""Quickstart: back up and recover a disk image with SafetyPin.

Creates a small simulated deployment (16 HSMs), backs up a message under a
4-digit PIN, and recovers it — exercising the full Figure 3 protocol: the
location-hiding ciphertext, the logged recovery attempt, the audited log
update, per-HSM share decryption with puncturing, and Shamir reconstruction.

Run:  python examples/quickstart.py
"""

import time

from repro import Deployment, SystemParams
from repro.core.client import RecoveryError


def main() -> None:
    print("Provisioning a deployment of 16 simulated HSMs...")
    params = SystemParams.for_testing(num_hsms=16, cluster_size=4, pin_length=4)
    deployment = Deployment.create(params)
    print(
        f"  N={params.num_hsms} HSMs, clusters of n={params.cluster_size}, "
        f"threshold t={params.threshold}, PIN space 10^{params.pin_length}"
    )

    alice = deployment.new_client("alice")
    disk_image = b"camera roll, messages, app data ... " * 100
    pin = "4927"

    t0 = time.time()
    alice.backup(disk_image, pin=pin)
    print(f"\nBackup of {len(disk_image)} bytes completed in {time.time() - t0:.2f}s")
    print("  (entirely client-side: no HSM was contacted)")

    ciphertext = deployment.provider.fetch_backup("alice")
    print(f"  recovery ciphertext: {ciphertext.size_bytes()} bytes, "
          f"{ciphertext.cluster_size} hidden share ciphertexts")

    t0 = time.time()
    recovered = alice.recover(pin=pin)
    print(f"\nRecovery completed in {time.time() - t0:.2f}s")
    assert recovered == disk_image
    print("  recovered plaintext matches the original ✔")

    print("\nForward security: the same ciphertext cannot be recovered twice")
    try:
        alice.recover(pin=pin)
        raise SystemExit("unexpected: second recovery succeeded")
    except RecoveryError:
        print("  second recovery refused (HSMs punctured their keys) ✔")

    print("\nEvery recovery attempt is publicly logged:")
    for identifier, commitment in alice.audit_my_recovery_attempts():
        print(f"  {identifier.decode()} -> commitment {commitment.hex()[:16]}…")


if __name__ == "__main__":
    main()
