#!/usr/bin/env python3
"""A realistic device lifecycle: the workloads the paper's intro motivates.

Walks one user through:

1. enabling incremental backups (a SafetyPin-protected master key plus cheap
   AE-encrypted daily increments, §8);
2. nightly backups sharing one salt, so the whole series is revoked by a
   single recovery (§8 "multiple recovery ciphertexts");
3. losing the phone and recovering onto a new device while some of the data
   center's HSMs are down (fault tolerance, f_live);
4. the *new* device dying mid-recovery, and a third device resuming from the
   provider-escrowed replies via the nested per-recovery key (§8 "failure
   during recovery").

Run:  python examples/device_lifecycle.py
"""

import random

from repro import Deployment, SystemParams


def main() -> None:
    params = SystemParams.for_testing(
        num_hsms=16, cluster_size=4, pin_length=6, max_punctures=16
    )
    deployment = Deployment.create(params)
    pin = "308471"

    # --- Day 0: a new phone enables backups -------------------------------
    phone1 = deployment.new_client("maria")
    phone1.enable_incremental_backups(pin)
    print("Day 0: master key SafetyPin-protected; incremental backups enabled")

    for day, payload in enumerate(
        [b"photos: 214 new", b"messages: 1,082 new", b"app data: 3 apps"], start=1
    ):
        phone1.incremental_backup(payload)
        print(f"Day {day}: incremental backup ({len(payload)} bytes, zero HSM work)")

    # Nightly full snapshots share one salt -> one hidden cluster.
    phone1.backup(b"full snapshot, day 1", pin)
    phone1.backup(b"full snapshot, day 2", pin, reuse_salt=True)
    phone1.backup(b"full snapshot, day 3", pin, reuse_salt=True)
    print("Nightly full snapshots uploaded (salt shared across the series)")

    # --- Day 4: the phone falls in a lake ----------------------------------
    print("\nDay 4: phone lost. A few HSMs are also down for maintenance.")
    rng = random.Random(4)
    failed = deployment.fail_random_hsms(params.tolerated_failures or 1, rng)
    print(f"  failed HSMs: {failed}")

    phone2 = deployment.new_client("maria")
    snapshot = phone2.recover(pin, backup_index=-1)
    print(f"  new device recovered the latest snapshot: {snapshot!r}")

    increments = phone2.recover_incrementals(pin) if False else None
    # (recover_incrementals needs the master-key backup index from phone1's
    # state; a replacement device recovers the master key by index instead:)
    master_key = phone2.recover(pin, backup_index=0)
    print(f"  master key recovered ({len(master_key)} bytes); "
          "incremental blobs now decryptable")

    # The whole day-1..3 series is now revoked: the HSMs punctured the tag.
    from repro.core.client import RecoveryError

    try:
        phone2.recover(pin, backup_index=1)
    except RecoveryError:
        print("  older snapshots in the series are revoked after recovery ✔")

    # --- Day 5: disaster strikes twice --------------------------------------
    print("\nDay 5: the replacement phone dies mid-recovery of a fresh backup.")
    deployment.restart_all_hsms()
    phone2.backup(b"rebuilt library, day 5", pin)
    session = phone2.begin_recovery(pin)
    phone2.request_shares(session, pin)
    print("  phone2 obtained HSM replies (escrowed at the provider), then died")

    phone3 = deployment.new_client("maria")
    data = phone3.resume_recovery(pin, attempt=session.attempt)
    print(f"  phone3 resumed and finished the recovery: {data!r}")

    # --- Epilogue: Maria checks the public log ------------------------------
    attempts = phone3.audit_my_recovery_attempts()
    print(f"\nThe public log shows {len(attempts)} recovery attempts for 'maria'"
          " — all hers. No one else has touched her backups.")


if __name__ == "__main__":
    main()
