"""Sharded epoch lanes: epoch-preparation throughput at 4 shards vs 1.

Drives the same insertion workload through an unsharded deployment and a
4-shard deployment (committee certification + parallel lanes) and measures
epoch-preparation throughput (insertions committed per second of epoch
work) two ways:

- **cpu mode** — in-process devices, no simulated latency.  Isolates the
  *algorithmic* win of committee certification: each shard's epoch is
  audited and signed by its own N/S-device committee, so per-round
  aggregate-verification work falls from N·N to N·N/S signatures (plus
  smaller per-shard chunk trees), while off-committee devices adopt
  foreign transitions lazily.
- **device mode** — every epoch-protocol device call pays a fixed service
  latency (SoloKey-class hardware is *slow*: the paper's Table 2 puts one
  P-256 multiplication at ~1.2 s, so tens of milliseconds per protocol
  call is generous).  The unsharded epoch visits all N devices serially
  from one thread; the sharded tick fans one lane per shard across
  disjoint committees through the service's lane workers, overlapping the
  waits.  This isolates the *parallelism* win.

A third lane pushes the shard count into the hundreds (S=64 and S=256,
HSM-free lane stubs) and measures the two costs that used to cap S:

- **idle-lane tick cost** — a tick with nothing submitted and nothing
  pending must return via the O(1) ``has_pending`` probe, even while a
  straggler session holds an epoch lease (the old global drain would sit
  out the full ``lease_timeout``);
- **busy-lane independence** — with one shard's session holding its lease,
  every other lane's tick must commit unimpeded: tick latency stays
  milliseconds-scale and independent of S, never ``lease_timeout``-bound;
- **root maintenance** — after one shard commits, re-reading the
  cross-shard root must hash only the dirty O(log S) path, stay
  byte-identical to a from-scratch ``cross_shard_root`` recompute, and
  cost a small fraction of it.

Acceptance gates (exit code 1 on regression):

- cpu-mode speedup at 4 shards >= 1.5x, and device-mode speedup >= 1.5x;
- the fixed seeded workload at shards=1 meters *exactly* the seed's
  operation counts and digest (sharding must cost nothing when off);
- at S=64 and S=256 with one lane held busy: idle ticks < 10 ms, busy-lane
  tick latency < 5% of ``lease_timeout`` and S-independent (S=256/S=64
  median ratio <= 8), incremental root byte-identical to the from-scratch
  recompute with >= 8x fewer hash blocks (O(log S) path vs O(S) rebuild).

Results go to ``benchmarks/out/sharded_epochs.txt`` and machine-readable
``benchmarks/out/BENCH_sharded_epochs.json`` (schema 1, see
``docs/BENCH_SCHEMA.md``).

Run standalone:  ``PYTHONPATH=src python benchmarks/bench_sharded_epochs.py [--quick]``
"""

from __future__ import annotations

import argparse
import math
import random
import statistics
import sys
import time

from repro.core.params import SystemParams
from repro.core.protocol import Deployment
from repro.core.provider import ServiceProvider
from repro.log.distributed import LogConfig
from repro.log.sharded import cross_shard_root
from repro.metering import OpMeter
from repro.service.batcher import EpochBatcher
from repro.sim.queueing import EpochShardModel

try:
    from reporting import emit, table
except ImportError:  # running as a module from the repo root
    from benchmarks.reporting import emit, table

SHARDS = 4
HSMS = 8
CLUSTER = 3

GATES = {"cpu_speedup": 1.5, "device_speedup": 1.5}

#: Hundreds-of-shards lane: S values, the (generous) lease timeout one lane
#: is held busy against, and the gate bounds derived from it.
SCALE_SHARDS = (64, 256)
SCALE_LEASE_TIMEOUT = 30.0
SCALE_IDLE_TICK_BOUND = 0.010  # seconds; real cost is microseconds
SCALE_BUSY_TICK_FRACTION = 0.05  # of SCALE_LEASE_TIMEOUT
SCALE_LATENCY_RATIO_BOUND = 8.0  # S=256 vs S=64 median busy-tick ratio
SCALE_ROOT_RATIO_BOUND = 8.0  # from-scratch vs incremental hash blocks

#: The shards=1 invariance constants, captured on the pre-sharding tree
#: (commit 0a64ddd) by running exactly ``_invariance_counts``'s workload.
SEED_AMBIENT = {"sha256_block": 8242, "ec_mult": 24, "ecdsa_verify": 192, "hmac": 24}
SEED_DEVICE = {"sha256_block": 8499, "ec_mult": 416, "ecdsa_verify": 256}
SEED_DIGEST = "c0dc9c0d982ec92dda58e216f616687823120537da44e64da9d32170452f8e2b"

_SLOW_METHODS = (
    "audit_log_update",
    "audit_specific_chunks",
    "accept_log_digest",
    "accept_certified_transition",
)


class SlowDevice:
    """An HSM whose epoch-protocol calls pay a fixed service latency.

    Models the serial-link device of the paper's deployment; the sleep
    releases the GIL, so waits overlap across devices exactly as real
    hardware would.  (Offers stay free: they are an asynchronous enqueue.)
    """

    def __init__(self, device, delay: float) -> None:
        self._device = device
        self._delay = delay

    def __getattr__(self, name):
        attr = getattr(self._device, name)
        if name in _SLOW_METHODS:
            def slow_call(*args, **kwargs):
                time.sleep(self._delay)
                return attr(*args, **kwargs)

            return slow_call
        return attr


def _params() -> SystemParams:
    return SystemParams.for_testing(num_hsms=HSMS, cluster_size=CLUSTER, audit_count=2)


def _deployment(shards: int) -> Deployment:
    return Deployment.create(
        _params(), rng=random.Random(17), shards=shards if shards > 1 else None
    )


def _workload(round_no: int, size: int):
    return [
        (b"bench|r%d-%d|0" % (round_no, i), b"h%d-%d" % (round_no, i))
        for i in range(size)
    ]


def _run_cpu_mode(shards: int, rounds: int, batch: int) -> float:
    """Seconds of epoch work per round, in-process devices (pure CPU)."""
    dep = _deployment(shards)
    log = dep.provider.log
    for identifier, value in _workload(999, batch):  # warm round
        log.insert(identifier, value)
    log.run_update(dep.fleet.hsms)
    start = time.perf_counter()
    for round_no in range(rounds):
        for identifier, value in _workload(round_no, batch):
            log.insert(identifier, value)
        log.run_update(dep.fleet.hsms)
    return (time.perf_counter() - start) / rounds


def _run_device_mode(shards: int, rounds: int, batch: int, delay: float) -> float:
    """Seconds per round with per-call device latency, through the service
    epoch path (FIFO per device; one parallel lane per shard)."""
    dep = _deployment(shards)
    dep.fleet.hsms = [SlowDevice(hsm, delay) for hsm in dep.fleet.hsms]
    service = dep.recovery_service(tick_interval=3600.0)  # manual epochs only
    log = dep.provider.log
    service.pool.start()
    try:
        for identifier, value in _workload(999, batch):  # warm round
            log.insert(identifier, value)
        if shards > 1:
            service.run_shard_epochs(log.shards_with_pending())
        else:
            service.run_epoch()
        start = time.perf_counter()
        for round_no in range(rounds):
            for identifier, value in _workload(round_no, batch):
                log.insert(identifier, value)
            if shards > 1:
                outcomes = service.run_shard_epochs(log.shards_with_pending())
                failed = {k: e for k, e in outcomes.items() if e is not None}
                assert not failed, failed
            else:
                service.run_epoch()
        elapsed = (time.perf_counter() - start) / rounds
    finally:
        service.pool.stop()
        if service._lane_pool is not None:
            service._lane_pool.stop()
    assert not log.pending
    return elapsed


def _run_scale_lane(num_shards: int, waves: int, wave_size: int) -> dict:
    """Lease independence + root maintenance at S shards (HSM-free lanes).

    Builds a real sharded provider + batcher, but commits each lane's
    epoch with a bare ``prepare_update`` instead of a device fleet — the
    costs under test (lease bookkeeping, tick dispatch, cross-shard root
    maintenance) live entirely on the provider side.

    One session is served and never releases its lease, holding its shard's
    lane busy for the whole run.  The measured ticks then show (a) idle
    ticks returning in O(1) despite the straggler, and (b) other lanes
    committing at millisecond latency while the busy lane defers.
    """
    provider = ServiceProvider(LogConfig(audit_count=2, num_shards=num_shards))
    log = provider.log

    def lane_runner(shards):
        outcomes = {}
        for k in shards:
            try:
                log.shards[k].prepare_update(num_chunks=1)
                outcomes[k] = None
            except BaseException as exc:  # noqa: BLE001 - reported per lane
                outcomes[k] = exc
        return outcomes

    batcher = EpochBatcher(
        provider,
        lease_timeout=SCALE_LEASE_TIMEOUT,
        shard_runner=lane_runner,
    )

    # Serve a first wave, then release every lease but one: that session's
    # shard is the busy lane for the rest of the run.
    seed_users = [f"scale{num_shards}-seed-{i}" for i in range(8)]
    for username in seed_users:
        batcher.submit(username, 0, b"commit-seed")
    assert batcher.tick() == len(seed_users)
    for username in seed_users[1:]:
        batcher.release(username, 0)
    assert batcher.outstanding_leases() == 1
    (busy_shard,) = batcher.stats()["outstanding_leases_by_shard"]

    # Idle ticks: nothing submitted, nothing pending, one lease outstanding.
    # The old global drain would block each of these for lease_timeout.
    idle_samples = []
    for _ in range(50):
        start = time.perf_counter()
        assert batcher.tick() == 0
        idle_samples.append(time.perf_counter() - start)

    # Busy ticks: fresh sessions each wave; lanes other than the busy one
    # must commit without waiting on its lease.  Releases are issued for
    # the whole wave — for sessions deferred behind the busy lane the
    # release is the documented late/unknown no-op.
    busy_samples = []
    served_total = 0
    for wave in range(waves):
        wave_users = [
            f"scale{num_shards}-w{wave}-{i}" for i in range(wave_size)
        ]
        for username in wave_users:
            batcher.submit(username, 0, b"commit-wave")
        start = time.perf_counter()
        served = batcher.tick()
        busy_samples.append(time.perf_counter() - start)
        assert served >= 1
        served_total += served
        for username in wave_users:
            batcher.release(username, 0)
    assert batcher.outstanding_leases(busy_shard) == 1  # straggler untouched
    assert batcher.lease_timeouts == 0  # nobody waited it out

    # Root maintenance: dirty exactly one shard, then meter the incremental
    # re-read against a from-scratch recompute of the same value.
    clean_shard = (busy_shard + 1) % num_shards
    log.shards[clean_shard].insert(b"root-maint|probe|0", b"probe")
    log.shards[clean_shard].prepare_update(num_chunks=1)
    meter = OpMeter()
    with meter.attached():
        incremental_root = log.digest
    incremental_blocks = meter.snapshot().get("sha256_block", 0)
    meter = OpMeter()
    with meter.attached():
        scratch_root = cross_shard_root([s.digest for s in log.shards])
    scratch_blocks = meter.snapshot().get("sha256_block", 0)

    return {
        "num_shards": num_shards,
        "busy_shard": busy_shard,
        "idle_tick_seconds_median": statistics.median(idle_samples),
        "busy_tick_seconds_median": statistics.median(busy_samples),
        "busy_tick_seconds_max": max(busy_samples),
        "sessions_served": served_total,
        "root_incremental_sha256_blocks": incremental_blocks,
        "root_scratch_sha256_blocks": scratch_blocks,
        "root_identical": incremental_root == scratch_root,
    }


def _invariance_counts():
    """The fixed seeded shards=1 workload; must meter the seed's counts."""
    params = SystemParams.for_testing(num_hsms=8, cluster_size=3, audit_count=2)
    dep = Deployment.create(params, rng=random.Random(1234))
    meter = OpMeter()
    with meter.attached():
        for epoch in range(3):
            for i in range(16):
                dep.provider.log.insert(
                    b"bench|u%d-%d|0" % (epoch, i), b"commitment-%d-%d" % (epoch, i)
                )
            dep.provider.log.run_update(dep.fleet.hsms)
    device = {}
    for hsm in dep.fleet.hsms:
        for key, value in hsm.meter.snapshot().items():
            device[key] = device.get(key, 0) + value
    return meter.snapshot(), device, dep.provider.log.digest.hex()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke: fewer rounds and a smaller device latency",
    )
    parser.add_argument("--rounds", type=int, default=None)
    parser.add_argument("--batch", type=int, default=None, help="insertions per round")
    parser.add_argument(
        "--device-ms", type=float, default=None,
        help="simulated per-call device service latency (milliseconds)",
    )
    args = parser.parse_args(argv)
    rounds = args.rounds or (2 if args.quick else 4)
    batch = args.batch or (24 if args.quick else 32)
    delay = (args.device_ms or (10.0 if args.quick else 25.0)) / 1000.0

    # -- shards=1 must cost nothing: exact seed counts -----------------------
    ambient, device, digest = _invariance_counts()
    invariance_ok = (
        all(ambient.get(k, 0) == v for k, v in SEED_AMBIENT.items())
        and all(device.get(k, 0) == v for k, v in SEED_DEVICE.items())
        and digest == SEED_DIGEST
    )

    rows = []
    metrics = {}
    for mode, runner, extra in (
        ("cpu", _run_cpu_mode, ()),
        ("device", _run_device_mode, (delay,)),
    ):
        base = runner(1, rounds, batch, *extra)
        sharded = runner(SHARDS, rounds, batch, *extra)
        speedup = base / sharded
        metrics[f"{mode}_base_seconds_per_round"] = base
        metrics[f"{mode}_sharded_seconds_per_round"] = sharded
        metrics[f"{mode}_base_insertions_per_sec"] = batch / base
        metrics[f"{mode}_sharded_insertions_per_sec"] = batch / sharded
        metrics[f"{mode}_speedup"] = speedup
        rows.append((mode, 1, batch, f"{base * 1000:.0f}", f"{batch / base:.0f}", ""))
        rows.append(
            (mode, SHARDS, batch, f"{sharded * 1000:.0f}",
             f"{batch / sharded:.0f}", f"{speedup:.2f}x")
        )

    # -- hundreds of shards: lease independence + root maintenance -----------
    scale_waves = 5 if args.quick else 8
    scale_results = [_run_scale_lane(s, scale_waves, 16) for s in SCALE_SHARDS]
    scale_failures = []
    for res in scale_results:
        s = res["num_shards"]
        for key in (
            "idle_tick_seconds_median",
            "busy_tick_seconds_median",
            "busy_tick_seconds_max",
            "root_incremental_sha256_blocks",
            "root_scratch_sha256_blocks",
            "root_identical",
        ):
            metrics[f"scale{s}_{key}"] = res[key]
        if res["idle_tick_seconds_median"] >= SCALE_IDLE_TICK_BOUND:
            scale_failures.append(f"scale{s}_idle_tick")
        if res["busy_tick_seconds_max"] >= (
            SCALE_LEASE_TIMEOUT * SCALE_BUSY_TICK_FRACTION
        ):
            scale_failures.append(f"scale{s}_busy_tick")
        if not res["root_identical"]:
            scale_failures.append(f"scale{s}_root_identical")
        if res["root_scratch_sha256_blocks"] < (
            SCALE_ROOT_RATIO_BOUND * res["root_incremental_sha256_blocks"]
        ):
            scale_failures.append(f"scale{s}_root_ratio")
        if res["root_incremental_sha256_blocks"] > 6 * math.log2(s) + 12:
            scale_failures.append(f"scale{s}_root_not_logS")
    latency_ratio = (
        scale_results[-1]["busy_tick_seconds_median"]
        / max(scale_results[0]["busy_tick_seconds_median"], 1e-9)
    )
    metrics["scale_busy_tick_latency_ratio"] = latency_ratio
    if latency_ratio > SCALE_LATENCY_RATIO_BOUND:
        scale_failures.append("scale_latency_ratio")

    model = EpochShardModel(
        arrival_rate=1000.0,
        epoch_interval=600.0,
        epoch_seconds=metrics["device_base_seconds_per_round"],
        num_shards=SHARDS,
        serial_fraction=0.1,
    )

    lines = table(
        ("mode", "shards", "insertions", "ms/round", "ins/s", "speedup"),
        rows,
        (8, 8, 12, 10, 8, 9),
    )
    lines.append("")
    lines.append(
        f"committee certification: each of the {SHARDS} lanes is audited by "
        f"{HSMS // SHARDS} of {HSMS} devices; off-committee devices adopt "
        "quorum-signed transitions lazily"
    )
    lines.append(
        f"device mode simulates {delay * 1000:.0f} ms per epoch-protocol call "
        "(SoloKey-class hardware; paper Table 2)"
    )
    lines.append(
        f"EpochShardModel (serial_fraction=0.1) projects {model.speedup():.1f}x "
        "for the same lane count"
    )
    lines.append(
        "shards=1 invariance (exact seed op counts + digest): "
        + ("PASS" if invariance_ok else "FAIL")
    )
    lines.append("")
    for res in scale_results:
        s = res["num_shards"]
        lines.append(
            f"S={s}: one lane held busy on shard {res['busy_shard']}; idle tick "
            f"{res['idle_tick_seconds_median'] * 1e6:.0f} us, busy-lane tick "
            f"median {res['busy_tick_seconds_median'] * 1e3:.1f} ms (max "
            f"{res['busy_tick_seconds_max'] * 1e3:.1f} ms, lease_timeout "
            f"{SCALE_LEASE_TIMEOUT:.0f} s), root maintenance "
            f"{res['root_incremental_sha256_blocks']} vs "
            f"{res['root_scratch_sha256_blocks']} hash blocks from scratch, "
            "roots " + ("identical" if res["root_identical"] else "DIVERGED")
        )
    lines.append(
        f"busy-tick latency ratio S={SCALE_SHARDS[-1]}/S={SCALE_SHARDS[0]}: "
        f"{latency_ratio:.2f}x (gate <= {SCALE_LATENCY_RATIO_BOUND:.0f}x)"
    )

    failed_gates = [
        name for name, bound in GATES.items() if metrics[name] < bound
    ] + scale_failures
    lines.append(
        f"gates: cpu >= {GATES['cpu_speedup']}x, device >= "
        f"{GATES['device_speedup']}x, idle tick < "
        f"{SCALE_IDLE_TICK_BOUND * 1e3:.0f} ms, busy tick < "
        f"{SCALE_LEASE_TIMEOUT * SCALE_BUSY_TICK_FRACTION:.1f} s, root "
        f"incremental <= 6*log2(S)+12 blocks and >= "
        f"{SCALE_ROOT_RATIO_BOUND:.0f}x under from-scratch -> "
        + ("PASS" if not failed_gates and invariance_ok else "FAIL")
    )

    emit(
        "sharded_epochs",
        f"Sharded epoch lanes: {SHARDS} shards vs 1 (same workload)",
        lines,
        data={
            "results": [
                {
                    "mode": mode,
                    "shards": shards,
                    "insertions_per_round": ins,
                    "ms_per_round": float(ms),
                    "insertions_per_sec": float(rate),
                }
                for mode, shards, ins, ms, rate, _ in rows
            ],
            "metrics": dict(
                metrics,
                invariance_ok=invariance_ok,
                modeled_speedup=model.speedup(),
            ),
            "scale": scale_results,
            "op_counts": {k: ambient.get(k, 0) for k in SEED_AMBIENT},
        },
    )

    if not invariance_ok:
        print("FAIL: shards=1 moved the seed's metered counts or digest", file=sys.stderr)
        return 1
    if failed_gates:
        print(f"FAIL: gates not met: {failed_gates}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
