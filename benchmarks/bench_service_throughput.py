"""Service throughput: batched log epochs vs one epoch per recovery.

The paper's deployment batches all client log insertions into one update
epoch every ~10 minutes; the seed reproduction instead ran a full epoch
inside every recovery (``ServiceProvider.log_and_prove``), so nothing could
be served concurrently.  This benchmark drives the new ``RecoveryService``
both ways over the same deployment shape and measures:

- throughput vs concurrency for batched epochs (sessions overlap freely;
  the per-HSM FIFO queues are the only serialization), and
- the same workload with per-request epochs (each session runs its own
  epoch, which invalidates every other in-flight inclusion proof, so
  sessions serialize — the seed's behaviour).

It also checks the acceptance property: a batched run of >= 8 concurrent
recoveries commits exactly one log epoch per batch tick, and batched
throughput beats per-request throughput.  A final pass runs the same
batched workload over the byte-framed provider RPC channel vs the
direct-call reference path and reports the wire overhead (ratio, frames,
bytes per session) into the emitted ``BENCH_*.json``.

Run with:  PYTHONPATH=src python -m pytest benchmarks/bench_service_throughput.py -s
      or:  PYTHONPATH=src python benchmarks/bench_service_throughput.py
"""

import random
import threading
import time

from repro.core.params import SystemParams
from repro.core.protocol import Deployment
from repro.sim.queueing import EpochBatchModel

try:
    from reporting import emit, table
except ImportError:  # running as a script from the repo root
    from benchmarks.reporting import emit, table

CONCURRENCY_LEVELS = (2, 8, 16)
SESSIONS = 16  # recoveries per measured run
HSMS = 12
CLUSTER = 3


def _fresh_service(epoch_mode: str, seed: int = 23, transport: str = "wire"):
    params = SystemParams.for_testing(
        num_hsms=HSMS, cluster_size=CLUSTER, max_punctures=4 * SESSIONS
    )
    deployment = Deployment.create(params, rng=random.Random(seed))
    service = deployment.recovery_service(
        epoch_mode=epoch_mode, transport=transport,
        tick_interval=0.01, lease_timeout=5.0,
    )
    return deployment, service


def _run_sessions(service, concurrency: int, sessions: int):
    """Run ``sessions`` backup+recovery pairs over ``concurrency`` threads;
    returns (elapsed seconds, error list)."""
    clients = [service.new_client(f"bench-{service.epoch_mode}-{concurrency}-{i}")
               for i in range(sessions)]
    errors = []
    queue = list(range(sessions))
    lock = threading.Lock()

    def worker() -> None:
        while True:
            with lock:
                if not queue:
                    return
                i = queue.pop()
            try:
                message = b"payload-%d" % i
                clients[i].backup(message, pin="4242")
                if clients[i].recover("4242") != message:
                    errors.append(f"session {i}: wrong plaintext")
            except Exception as exc:  # noqa: BLE001 - benchmarks report, not crash
                errors.append(f"session {i}: {exc!r}")

    start = time.perf_counter()
    threads = [threading.Thread(target=worker) for _ in range(concurrency)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return time.perf_counter() - start, errors


def test_service_throughput():
    rows = []
    batched_best = 0.0
    per_request_rate = None
    acceptance = {}

    for mode in ("per-request", "batched"):
        levels = (SESSIONS,) if mode == "per-request" else CONCURRENCY_LEVELS
        for concurrency in levels:
            deployment, service = _fresh_service(mode)
            epochs_before = deployment.provider.log.epoch
            with service:
                elapsed, errors = _run_sessions(service, concurrency, SESSIONS)
            assert not errors, errors
            epochs = deployment.provider.log.epoch - epochs_before
            rate = SESSIONS / elapsed
            rows.append(
                (mode, concurrency, SESSIONS, f"{elapsed:.2f}", epochs, f"{rate:.1f}")
            )
            if mode == "batched":
                batched_best = max(batched_best, rate)
                if concurrency >= 8:
                    acceptance = {
                        "stats": service.stats(),
                        "epochs": epochs,
                        "concurrency": concurrency,
                    }
            else:
                per_request_rate = rate

    # Acceptance: >= 8 concurrent recoveries, exactly one epoch per tick that
    # served sessions, and batched beats per-request throughput.
    stats = acceptance["stats"]
    assert stats["sessions_served"] >= 8
    assert stats["epochs_run"] == len(stats["epoch_sessions"])  # one epoch per tick
    assert stats["epochs_run"] < stats["sessions_served"]  # epochs are shared
    assert per_request_rate is not None and batched_best > per_request_rate

    # Wire overhead of the provider RPC leg: the same batched workload over
    # the byte-framed channel vs the direct-call reference path, plus the
    # frames/bytes the wire channel actually moved.
    wire_elapsed = direct_elapsed = None
    wire_traffic = {}
    for transport in ("wire", "direct"):
        _, service = _fresh_service("batched", seed=29, transport=transport)
        with service:
            elapsed, errors = _run_sessions(service, max(CONCURRENCY_LEVELS), SESSIONS)
        assert not errors, errors
        if transport == "wire":
            wire_elapsed = elapsed
            wire_traffic = service.stats()["provider_wire"]
        else:
            direct_elapsed = elapsed
    wire_overhead = wire_elapsed / direct_elapsed
    wire_bytes = wire_traffic["bytes_sent"] + wire_traffic["bytes_received"]

    # Project the measured arrival rate onto the paper's 10-minute epoch.
    model = EpochBatchModel(
        arrival_rate=batched_best, epoch_interval=600.0, epoch_seconds=20.0
    )
    lines = table(
        ("mode", "threads", "sessions", "seconds", "epochs", "sess/s"),
        rows,
        (14, 9, 10, 9, 8, 8),
    )
    lines.append("")
    lines.append(
        f"batched {batched_best:.1f} sess/s vs per-request "
        f"{per_request_rate:.1f} sess/s "
        f"({batched_best / per_request_rate:.1f}x)"
    )
    lines.append(
        "at this rate with the paper's 10-min epoch: "
        f"{model.sessions_per_epoch:.0f} sessions share each epoch "
        f"({model.speedup_vs_per_request():.0f}x less log-update work), "
        f"mean added wait {model.mean_wait() / 60:.0f} min"
    )
    lines.append(
        f"provider RPC wire overhead: {wire_overhead:.2f}x vs direct "
        f"({wire_traffic['frames_sent']} frames, "
        f"{wire_bytes / SESSIONS:.0f} B/session)"
    )
    lines.append("paper: one batch epoch every ~10 min serves every pending insertion")
    emit(
        "service_throughput",
        "Service throughput: batched epochs vs per-request epochs",
        lines,
        data={
            "results": [
                {
                    "mode": mode,
                    "threads": concurrency,
                    "sessions": sessions,
                    "seconds": float(seconds),
                    "epochs": epochs,
                    "sessions_per_sec": float(rate),
                }
                for mode, concurrency, sessions, seconds, epochs, rate in rows
            ],
            "metrics": {
                "batched_sessions_per_sec": batched_best,
                "per_request_sessions_per_sec": per_request_rate,
                "batching_speedup": batched_best / per_request_rate,
                "modeled_sessions_per_epoch": model.sessions_per_epoch,
                "provider_wire_overhead_vs_direct": wire_overhead,
                "provider_wire_frames": wire_traffic["frames_sent"],
                "provider_wire_request_bytes": wire_traffic["bytes_sent"],
                "provider_wire_reply_bytes": wire_traffic["bytes_received"],
                "provider_wire_bytes_per_session": wire_bytes / SESSIONS,
            },
        },
    )


if __name__ == "__main__":
    test_service_throughput()
