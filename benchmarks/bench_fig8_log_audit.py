"""Figure 8: log-audit time vs data-center size.

The paper inserts 10K recovery attempts into a ~100M-entry log and measures
how long one HSM spends auditing as the fleet grows: work per HSM is
C · (I/N) insertions, so audit time falls from ~50 s toward ~20 s as N goes
from 100 to 10K (the floor is the per-epoch fixed cost).

We regenerate the curve by (1) metering the *real* verifier
(``verify_insertion``) on a live authenticated dictionary to get exact
operation counts per insertion, (2) scaling the path length to a 100M-entry
tree, and (3) pricing on the SoloKey cost model.  The ablation at the end
shows why the randomized-audit design exists: having every HSM check every
insertion would not scale at all.
"""

import math

from repro.crypto.hashing import sha256
from repro.hsm.costmodel import CostModel
from repro.hsm.devices import SOLOKEY
from repro.log.authdict import AuthenticatedDictionary, verify_insertion
from repro.metering import metered

from reporting import emit, table

INSERTIONS = 10_000  # I: the batch size measured in the paper
LOG_ENTRIES = 100_000_000  # steady-state log size (~one month of recoveries)
AUDIT_COUNT = 128  # C = λ
MODEL = CostModel(SOLOKEY)


def _measured_per_insertion_counts():
    """Meter real insertion-proof verification; return per-depth-step and
    fixed operation counts."""
    d = AuthenticatedDictionary()
    for i in range(512):
        d.insert(b"seed%d" % i, b"v")
    old = d.digest
    proof = d.insert_with_proof(b"probe", b"v")
    depth = len(proof.steps)
    with metered() as meter:
        assert verify_insertion(old, d.digest, proof)
    blocks = meter.counts.get("sha256_block", 0)
    return blocks / max(1, depth), depth


def _per_insertion_seconds(log_entries: int) -> float:
    blocks_per_step, _ = _measured_per_insertion_counts()
    depth = math.log2(log_entries)
    # Hash work for the two root recomputations plus the proof bytes a chunk
    # transfer moves per insertion (~3 hashes of 32 B per path step).
    counts = {
        "sha256_block": blocks_per_step * depth,
        "io_bytes": depth * 96,
    }
    return MODEL.seconds(counts)


def audit_seconds(num_hsms: int) -> float:
    """Modeled per-HSM audit time for one 10K-insertion epoch."""
    per_insert = _per_insertion_seconds(LOG_ENTRIES)
    chunks_audited = min(AUDIT_COUNT, num_hsms)
    insertions_audited = chunks_audited * math.ceil(INSERTIONS / num_hsms)
    # Fixed per-epoch costs: sign the transition, verify the BLS aggregate.
    fixed = MODEL.seconds({"bls_sign": 1, "pairing": 2, "sha256_block": 64})
    return insertions_audited * per_insert + fixed


def test_fig8_log_audit_time(benchmark):
    # Benchmark the real primitive being modeled: one insertion verification.
    d = AuthenticatedDictionary()
    for i in range(1024):
        d.insert(b"x%d" % i, b"v")
    old = d.digest
    proof = d.insert_with_proof(b"bench", b"v")
    new = d.digest
    benchmark(lambda: verify_insertion(old, new, proof))

    sizes = [100, 500, 1000, 2500, 5000, 10_000]
    times = {n: audit_seconds(n) for n in sizes}
    rows = [(n, f"{times[n]:.1f} s") for n in sizes]
    lines = table(("N (HSMs)", "audit time"), rows, (10, 14))
    lines.append("")
    lines.append("paper: ~50 s at small N falling to ~20 s at N=10K (Fig. 8)")
    lines.append(
        f"shape check: t(100)/t(10K) = {times[100] / times[10_000]:.1f}x "
        "(paper: ~2.5x)"
    )
    emit(
        "fig8_log_audit",
        "Figure 8: log-audit time vs data-center size",
        lines,
        data={
            "results": [
                {"num_hsms": n, "audit_seconds": times[n]} for n in sizes
            ],
            "metrics": {"shape_ratio_100_vs_10k": times[100] / times[10_000]},
        },
    )

    # The paper's qualitative claims must hold:
    assert all(times[a] >= times[b] for a, b in zip(sizes, sizes[1:]))
    assert times[100] / times[10_000] > 1.5


def test_fig8_ablation_audit_everything(benchmark):
    """Ablation: if every HSM verified every insertion (the strawman the
    paper rejects), per-HSM time would be flat in N — adding hardware would
    buy zero throughput."""
    per_insert = _per_insertion_seconds(LOG_ENTRIES)
    benchmark(lambda: _per_insertion_seconds(LOG_ENTRIES))
    full_check = INSERTIONS * per_insert
    sampled = audit_seconds(3100)
    emit(
        "fig8_ablation",
        "Ablation: randomized chunk audit vs verify-everything",
        [
            f"verify everything: {full_check:8.1f} s per HSM per epoch (any N)",
            f"randomized audit:  {sampled:8.1f} s per HSM per epoch at N=3,100",
            f"speedup: {full_check / sampled:.1f}x, growing linearly with N",
        ],
        data={
            "metrics": {
                "verify_everything_s": full_check,
                "randomized_audit_s": sampled,
                "speedup": full_check / sampled,
            }
        },
    )
    assert full_check > 2 * sampled
