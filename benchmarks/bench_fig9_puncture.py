"""Figure 9: decrypt-and-puncture time vs punctures-before-rotation.

The paper sweeps the supported puncture count from 10 to 100K (secret keys
from 3 KB to 30 MB) and shows (a) total time growing logarithmically in the
key size and (b) the cost dominated by I/O and symmetric operations from
the outsourced-storage scheme, not by public-key work.

We reproduce both claims: operation counts come from metering the *real*
BFE decrypt+puncture at a small size, the tree-depth-dependent terms scale
as log2(m), and everything is priced on the SoloKey model.
"""

import math

from repro.crypto.bfe import BloomFilterEncryption as BFE
from repro.crypto.bloom import BloomParams
from repro.hsm.costmodel import CostModel
from repro.hsm.devices import SOLOKEY
from repro.metering import metered
from repro.storage.blockstore import InMemoryBlockStore

from reporting import emit, table

MODEL = CostModel(SOLOKEY)


def _metered_real_counts(max_punctures=8):
    """Meter a real decrypt+puncture; return (counts, tree depth)."""
    params = BloomParams.for_punctures(max_punctures, failure_exponent=4)
    pub, sec = BFE.keygen(params, InMemoryBlockStore())
    ct = BFE.encrypt(pub, b"share", context=b"bench")
    with metered() as meter:
        BFE.decrypt(sec, ct, context=b"bench")
        BFE.puncture(sec, ct, context=b"bench")
    return dict(meter.counts), sec.tree.height, params.num_hashes


def modeled_breakdown(max_punctures: int):
    """Scale the metered small-size counts to a given puncture budget."""
    real_counts, real_depth, real_k = _metered_real_counts()
    params = BloomParams.for_punctures(max_punctures, failure_exponent=16)
    depth = max(1, math.ceil(math.log2(params.num_slots)))
    k = params.num_hashes
    # Depth- and k-dependent ops scale linearly in (k · depth); public-key
    # work (one ElGamal decryption) is constant.
    scale = (k * depth) / (real_k * real_depth)
    counts = {
        "elgamal_dec": 1,
        "aes_block": real_counts.get("aes_block", 0) * scale,
        "io_bytes": real_counts.get("io_bytes", 0) * scale,
        "flash_read_bytes": real_counts.get("flash_read_bytes", 0) * scale,
        "sha256_block": real_counts.get("sha256_block", 0) * scale,
        "hmac": real_counts.get("hmac", 0) * scale,
    }
    return MODEL.breakdown(counts), params


def test_fig9_decrypt_puncture_sweep(benchmark):
    # Benchmark the real operation at small scale.
    params = BloomParams.for_punctures(8, failure_exponent=4)
    pub, sec = BFE.keygen(params, InMemoryBlockStore())

    def decrypt_and_puncture():
        ct = BFE.encrypt(pub, b"share", context=b"bench")
        BFE.decrypt(sec, ct, context=b"bench")

    benchmark(decrypt_and_puncture)

    rows = []
    results = {}
    for punctures in (10, 100, 1000, 10_000, 100_000):
        breakdown, params = modeled_breakdown(punctures)
        results[punctures] = breakdown
        rows.append(
            (
                f"{punctures:,}",
                f"{params.secret_key_bytes() / 1024:,.0f} KB",
                f"{breakdown.io * 1000:,.0f}",
                f"{(breakdown.symmetric + breakdown.flash) * 1000:,.0f}",
                f"{breakdown.public_key * 1000:,.0f}",
                f"{breakdown.total:,.2f} s",
            )
        )
    lines = table(
        ("punctures", "key size", "io ms", "sym ms", "pk ms", "total"),
        rows,
        (12, 12, 10, 10, 10, 10),
    )
    lines.append("")
    lines.append("paper: 0.25 s -> ~1 s over the same sweep; I/O + symmetric dominate")
    emit(
        "fig9_puncture",
        "Figure 9: decrypt+puncture vs puncture budget",
        lines,
        data={
            "results": [
                {
                    "punctures": p,
                    "io_s": results[p].io,
                    "symmetric_s": results[p].symmetric + results[p].flash,
                    "public_key_s": results[p].public_key,
                    "total_s": results[p].total,
                }
                for p in (10, 100, 1000, 10_000, 100_000)
            ]
        },
    )

    # Shape assertions from the paper:
    totals = [results[p].total for p in (10, 100, 1000, 10_000, 100_000)]
    assert totals == sorted(totals)  # grows with key size
    # logarithmic growth: 4 decades of punctures < 16x time
    assert totals[-1] / totals[0] < 16
    big = results[100_000]
    assert big.io + big.symmetric + big.flash > big.public_key  # I/O+sym dominate


def test_fig9_io_dominates_at_paper_scale(benchmark):
    breakdown, _ = modeled_breakdown(1 << 20)
    benchmark(lambda: modeled_breakdown(1 << 20))
    emit(
        "fig9_paper_scale",
        "Decrypt+puncture at the deployed 2^20-puncture configuration",
        [
            f"io:        {breakdown.io:.3f} s",
            f"symmetric: {breakdown.symmetric + breakdown.flash:.3f} s",
            f"public key:{breakdown.public_key:.3f} s",
            f"total:     {breakdown.total:.3f} s   (paper: ~0.68 s within the 1.01 s recovery)",
        ],
        data={
            "metrics": {
                "io_s": breakdown.io,
                "symmetric_s": breakdown.symmetric + breakdown.flash,
                "public_key_s": breakdown.public_key,
                "total_s": breakdown.total,
            }
        },
    )
    assert 0.05 < breakdown.total < 5.0
