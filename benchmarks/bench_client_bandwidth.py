"""§9.2 client overhead: keying-material bandwidth.

The paper's numbers for N=3,100 HSMs serving 1B recoveries/year:

- initial download of all HSM public keys: 11.5 MB (~3.7 KB per HSM);
- daily download of rotated keys: 1.97 MB (~2 MB/day);
- persistent client storage for its own cluster of 40: 9.02 KB.

Our pairing-free Bloom-filter keys expose a design dial the paper mentions
(public keys grow with the puncture budget): the raw slot-key array is
64 MB per HSM, so clients must NOT download raw keys.  Instead each HSM
publishes a 32-byte Merkle commitment and clients fetch only the k slot
keys (plus proofs) each encryption touches.  This bench quantifies both
representations against the paper's figures.
"""

import math

from repro.crypto.bloom import BloomParams
from repro.hsm.devices import SOLOKEY
from repro.sim.capacity import build_throughput_model

from reporting import emit, table

N = 3100
CLUSTER = 40
PARAMS = BloomParams.paper_deployment()
POINT = 33  # compressed P-256 point
HASH = 32


def per_hsm_on_demand_bytes() -> int:
    """Commitment + the k slot keys and Merkle proofs one backup needs."""
    depth = math.ceil(math.log2(PARAMS.num_slots))
    per_slot = POINT + depth * (HASH + 1) + 12  # key + proof + framing
    return HASH + PARAMS.num_hashes * per_slot


def rotations_per_day() -> float:
    throughput = build_throughput_model(SOLOKEY)
    cycle_s = (
        throughput.rotation_seconds + throughput.processing_seconds_between_rotations
    )
    return N * 86_400.0 / cycle_s


def test_client_bandwidth(benchmark):
    benchmark(per_hsm_on_demand_bytes)
    on_demand = per_hsm_on_demand_bytes()
    initial_commitments = N * (HASH + 8)
    initial_with_slots = N * on_demand
    raw_array = PARAMS.secret_key_bytes(POINT)
    daily = rotations_per_day() * on_demand
    cluster_storage = CLUSTER * on_demand

    rows = [
        ("initial mpk (commitments only)", f"{initial_commitments / 1024:,.0f} KB", "-"),
        ("initial mpk (+ slot keys/backup)", f"{initial_with_slots / 1e6:,.1f} MB", "11.5 MB"),
        ("daily rotated-key traffic", f"{daily / 1e6:,.2f} MB", "1.97 MB"),
        ("per-cluster client storage", f"{cluster_storage / 1024:,.1f} KB", "9.02 KB"),
        ("raw slot array per HSM (never shipped)", f"{raw_array / 1e6:,.0f} MB", "(64 MB key)"),
    ]
    lines = table(("quantity", "ours", "paper"), rows, (42, 14, 12))
    lines.append("")
    lines.append(
        "shape: per-HSM on-demand material is KBs (vs the MB raw key), daily "
        "traffic ~MBs — both in the paper's regime; the Merkle-commitment "
        "indirection is what keeps client bandwidth feasible"
    )
    emit(
        "client_bandwidth",
        "§9.2 client keying-material bandwidth",
        lines,
        data={
            "metrics": {
                "initial_mpk_commitments_bytes": initial_commitments,
                "initial_mpk_with_slots_bytes": initial_with_slots,
                "daily_rotated_key_bytes": daily,
                "per_cluster_storage_bytes": cluster_storage,
                "raw_slot_array_bytes": raw_array,
                "per_hsm_on_demand_bytes": on_demand,
            }
        },
    )

    assert on_demand < 16 * 1024  # KBs per HSM, not MBs
    assert raw_array > 1000 * on_demand  # the dial the design turns
    assert 0.1e6 < daily < 20e6  # same regime as the paper's 1.97 MB/day


def test_datacenter_simulation_cross_check(benchmark):
    """Cross-validate the Figure 12/13 analytic throughput against the
    discrete-event simulator at a scaled-down fleet."""
    import random

    from repro.sim.capacity import HsmThroughputModel
    from repro.sim.datacenter import DataCenterSimulator

    model = HsmThroughputModel(
        device=SOLOKEY,
        decrypt_puncture_seconds=0.3,
        rotation_seconds=60.0,
        punctures_before_rotation=500,
    )
    sim = DataCenterSimulator(20, 4, 2, model, rng=random.Random(12))
    rate = 0.6 * sim.max_stable_rate()
    result = benchmark.pedantic(
        lambda: sim.run(arrival_rate=rate, num_jobs=4000), rounds=1, iterations=1
    )
    emit(
        "datacenter_crosscheck",
        "Discrete-event fleet vs analytic capacity model (60% load)",
        [
            f"p50 latency: {result.percentile(0.5):.2f} s",
            f"p99 latency: {result.percentile(0.99):.2f} s",
            f"busy fraction: {result.busy_fraction:.0%}",
            f"rotating fraction: {result.rotating_fraction:.0%} "
            f"(capacity model duty: {model.rotation_duty_fraction:.0%})",
        ],
        data={
            "metrics": {
                "p50_latency_s": result.percentile(0.5),
                "p99_latency_s": result.percentile(0.99),
                "busy_fraction": result.busy_fraction,
                "rotating_fraction": result.rotating_fraction,
                "model_rotation_duty_fraction": model.rotation_duty_fraction,
            }
        },
    )
    assert result.percentile(0.99) < 60.0  # stable under the analytic cap
    assert result.rotations > 0
