"""Table 7: per-operation microbenchmarks on the (modeled) SoloKey.

For every row of Table 7 we report the paper's measured rate, the cost
model's rate (these agree by construction — the model is calibrated to the
table), and, where the operation exists in our pure-Python substrate, the
rate actually achieved by this host running that substrate.  The CDC-vs-HID
I/O ablation (the paper's 32x firmware win) is included.
"""

import time

from repro.crypto.aes import Aes128
from repro.crypto.ec import P256
from repro.crypto.hashing import hmac_sha256
from repro.hsm.costmodel import CostModel, Transport
from repro.hsm.devices import SOLOKEY

from reporting import emit, table

PAPER_RATES = [
    ("pairing", 0.43),
    ("ecdsa_verify", 5.85),
    ("elgamal_dec", 6.67),
    ("ec_mult", 7.69),
    ("hmac", 2173.91),
    ("aes_block", 3703.70),
]


def _host_rate(fn, min_seconds=0.2) -> float:
    count = 0
    start = time.perf_counter()
    while time.perf_counter() - start < min_seconds:
        fn()
        count += 1
    return count / (time.perf_counter() - start)


def test_table7_microbenchmarks(benchmark):
    model = CostModel(SOLOKEY, Transport.USB_CDC)
    aes = Aes128(bytes(16))
    host = {
        "ec_mult": _host_rate(lambda: P256.generator * 0x1234567890ABCDEF),
        "hmac": _host_rate(lambda: hmac_sha256(b"k" * 16, b"m" * 32)),
        "aes_block": _host_rate(lambda: aes.encrypt_block(b"0123456789abcdef")),
    }
    benchmark(lambda: aes.encrypt_block(b"0123456789abcdef"))

    rows = []
    for op, paper_rate in PAPER_RATES:
        modeled = 1.0 / model.seconds_per_op(op)
        rows.append(
            (
                op,
                f"{paper_rate:,.2f}",
                f"{modeled:,.2f}",
                f"{host[op]:,.0f}" if op in host else "-",
            )
        )
    lines = table(
        ("operation", "paper/s", "model/s", "this host/s"), rows, (16, 12, 12, 14)
    )

    # I/O ablation: USB CDC vs HID (the paper's firmware rewrite).
    cdc = CostModel(SOLOKEY, Transport.USB_CDC).seconds_per_op("io_bytes")
    hid = CostModel(SOLOKEY, Transport.USB_HID).seconds_per_op("io_bytes")
    lines.append("")
    lines.append(f"I/O ablation: HID/CDC throughput ratio = {hid / cdc:.1f}x "
                 "(paper: ~32x from 71.43 -> 2,277.9 RTT/s)")
    lines.append("flash read: modeled 166,000 x 32 B/s (paper value, by construction)")
    emit(
        "table7_microbench",
        "Table 7: SoloKey microbenchmarks",
        lines,
        data={
            "results": [
                {
                    "operation": op,
                    "paper_per_sec": paper_rate,
                    "model_per_sec": 1.0 / model.seconds_per_op(op),
                    "host_per_sec": host.get(op),
                }
                for op, paper_rate in PAPER_RATES
            ],
            "metrics": {"hid_cdc_ratio": hid / cdc},
        },
    )

    assert abs(1.0 / model.seconds_per_op("ec_mult") - 7.69) < 1e-6  # calibration


def test_cdc_vs_hid_recovery_impact(benchmark):
    """The paper: transport-layer choice changes recovery I/O cost ~32x."""
    model_cdc = CostModel(SOLOKEY, Transport.USB_CDC)
    model_hid = CostModel(SOLOKEY, Transport.USB_HID)
    counts = {"io_bytes": 17_000}  # one decrypt+puncture's node traffic
    benchmark(lambda: model_cdc.seconds(counts))
    cdc_s = model_cdc.seconds(counts)
    hid_s = model_hid.seconds(counts)
    emit(
        "table7_io_ablation",
        "USB class ablation on one decrypt+puncture's I/O",
        [
            f"CDC: {cdc_s * 1000:8.1f} ms",
            f"HID: {hid_s * 1000:8.1f} ms   ({hid_s / cdc_s:.1f}x slower)",
        ],
        data={
            "metrics": {
                "cdc_s": cdc_s,
                "hid_s": hid_s,
                "hid_over_cdc": hid_s / cdc_s,
            }
        },
    )
    assert hid_s > 10 * cdc_s
