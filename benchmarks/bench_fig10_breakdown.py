"""Figure 10: save / recovery time breakdown, SafetyPin vs baseline.

The paper's measurements (Pixel 4 client, SoloKey HSMs, n=40, N=3,100):

    save:     baseline 0.003 s | SafetyPin 0.37 s (0.34 public-key + LHE)
    recovery: baseline 0.17 s  | SafetyPin 1.01 s
              = log 0.15 + location-hiding 0.18 + puncturable 0.68

We regenerate both bars: operation counts per protocol step are derived
from the real implementation (metered at test scale, with the
cluster-size- and key-size-dependent terms scaled to paper parameters) and
priced on the Pixel 4 / SoloKey cost models.  The pytest benchmark times a
real end-to-end backup+recovery at test scale.
"""

import math
import random

import pytest

from repro.core.params import SystemParams
from repro.core.protocol import Deployment
from repro.crypto.bloom import BloomParams
from repro.hsm.costmodel import CostModel
from repro.hsm.devices import PIXEL4, SOLOKEY

from bench_fig9_puncture import modeled_breakdown
from reporting import emit, table

N, CLUSTER, K_HASHES = 3100, 40, BloomParams.paper_deployment().num_hashes
PHONE = CostModel(PIXEL4)
HSM = CostModel(SOLOKEY)
LOG_DEPTH = math.log2(100e6)


def safetypin_save_seconds() -> dict:
    """Client-side backup: n BFE share encryptions + payload AES."""
    pk_counts = {"ec_mult": CLUSTER * (K_HASHES + 1)}
    lhe_counts = {"aes_block": 4096 / 16 + CLUSTER * 8, "sha256_block": CLUSTER * 6}
    return {
        "public_key": PHONE.seconds(pk_counts),
        "lhe_other": PHONE.seconds(lhe_counts),
    }


def safetypin_recovery_seconds() -> dict:
    """Per-component recovery latency (cluster works in parallel, so HSM
    terms are one device's work; client terms add)."""
    log_counts = {
        "sha256_block": 3 * LOG_DEPTH + 32,  # inclusion proof + commitment
        "io_bytes": LOG_DEPTH * 96 + 2048,  # proof + opening transfer
    }
    log_s = HSM.seconds(log_counts)
    puncturable_s = modeled_breakdown(1 << 20)[0].total
    # Location-hiding: HSM encrypts its reply to the per-recovery key; the
    # client decrypts n replies and reconstructs.
    lhe_s = HSM.seconds({"elgamal_enc": 1}) + PHONE.seconds(
        {"ec_mult": CLUSTER, "aes_block": 64}
    )
    return {
        "log": log_s,
        "location_hiding": lhe_s,
        "puncturable": puncturable_s,
        "total": log_s + lhe_s + puncturable_s,
    }


def baseline_save_seconds() -> float:
    return PHONE.seconds({"elgamal_enc": 1})


def baseline_recovery_seconds() -> float:
    return HSM.seconds({"elgamal_dec": 1, "io_bytes": 200, "sha256_block": 4})


@pytest.fixture(scope="module")
def small_deployment():
    params = SystemParams.for_testing(num_hsms=8, cluster_size=3, max_punctures=64)
    return Deployment.create(params, rng=random.Random(17))


def test_fig10_save_breakdown(benchmark, small_deployment):
    counter = iter(range(10_000))

    def do_backup():
        client = small_deployment.new_client(f"save-bench-{next(counter)}")
        client.backup(b"disk" * 256, pin="1234")

    benchmark(do_backup)

    ours = safetypin_save_seconds()
    total = sum(ours.values())
    base = baseline_save_seconds()
    lines = [
        f"SafetyPin save:  public-key {ours['public_key']:.3f} s + "
        f"other {ours['lhe_other']:.3f} s = {total:.3f} s   (paper: 0.34 + 0.03 = 0.37 s)",
        f"baseline save:   {base:.4f} s                        (paper: 0.003 s)",
        f"ratio: {total / base:.0f}x   (paper: ~120x)",
    ]
    emit(
        "fig10_save",
        "Figure 10 (left): time to save",
        lines,
        data={
            "metrics": {
                "save_public_key_s": ours["public_key"],
                "save_lhe_other_s": ours["lhe_other"],
                "save_total_s": total,
                "baseline_save_s": base,
                "save_ratio": total / base,
            }
        },
    )
    assert 0.1 < total < 1.5
    assert base < 0.02
    assert total / base > 20


def test_fig10_recovery_breakdown(benchmark, small_deployment):
    counter = iter(range(10_000))

    def do_roundtrip():
        client = small_deployment.new_client(f"rec-bench-{next(counter)}")
        client.backup(b"disk" * 64, pin="1234")
        assert client.recover(pin="1234") == b"disk" * 64

    benchmark.pedantic(do_roundtrip, rounds=3, iterations=1)

    ours = safetypin_recovery_seconds()
    base = baseline_recovery_seconds()
    rows = [
        ("log", f"{ours['log']:.2f} s", "0.15 s"),
        ("location-hiding", f"{ours['location_hiding']:.2f} s", "0.18 s"),
        ("puncturable", f"{ours['puncturable']:.2f} s", "0.68 s"),
        ("total", f"{ours['total']:.2f} s", "1.01 s"),
        ("baseline", f"{base:.2f} s", "0.17 s"),
    ]
    lines = table(("component", "modeled", "paper"), rows, (18, 12, 10))
    emit(
        "fig10_recovery",
        "Figure 10 (right): time to recover",
        lines,
        data={
            "metrics": {
                "recovery_log_s": ours["log"],
                "recovery_location_hiding_s": ours["location_hiding"],
                "recovery_puncturable_s": ours["puncturable"],
                "recovery_total_s": ours["total"],
                "baseline_recovery_s": base,
            }
        },
    )

    # Shape: puncturable encryption dominates; SafetyPin is single-digit
    # seconds and several-fold slower than the baseline.  (Our modeled
    # constant sits ~2-3x above the paper's 1.01 s because the pure-Python
    # GCM/KDF layers do more block operations per tree node than the
    # hand-written C firmware; see EXPERIMENTS.md.)
    assert ours["puncturable"] > ours["log"]
    assert ours["puncturable"] > ours["location_hiding"]
    assert 0.3 < ours["total"] < 5.0
    assert 2 < ours["total"] / base < 40


def test_fig10_ciphertext_sizes(benchmark, small_deployment):
    """§9.2: SafetyPin recovery ciphertexts are 16.5 KB vs 130 B baseline."""
    client = small_deployment.new_client("size-probe")
    client.backup(b"x" * 16, pin="1234")
    small_ct = small_deployment.provider.fetch_backup("size-probe")
    benchmark(lambda: small_ct.size_bytes())

    per_share = small_ct.size_bytes() / small_ct.cluster_size
    paper_scale = per_share * CLUSTER
    from repro.baseline.system import BaselineSystem

    baseline_ct = BaselineSystem().new_client("b").backup(b"k" * 16, pin="123456")
    lines = [
        f"SafetyPin at n=40 (extrapolated): {paper_scale / 1024:.1f} KB (paper: 16.5 KB)",
        f"baseline: {baseline_ct.size_bytes()} B (paper: ~130 B)",
    ]
    emit(
        "fig10_sizes",
        "Recovery-ciphertext sizes",
        lines,
        data={
            "metrics": {
                "safetypin_ct_bytes_at_n40": paper_scale,
                "baseline_ct_bytes": baseline_ct.size_bytes(),
            }
        },
    )
    assert 4 < paper_scale / 1024 < 40
    assert baseline_ct.size_bytes() < 250
