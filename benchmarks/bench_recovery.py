"""Crash-recovery restore cost: replay time vs journal size.

Grows a durable deployment (append-only journal on an in-memory block
store) through an increasing number of committed epochs, then measures
what a restart actually costs:

- **replay** — ``ProviderJournal.replay_state``: walk the hash-chained
  WAL and fold every record into the restored state image;
- **restore** — ``Deployment.restore``: replay plus rebuilding the
  provider (logs, escrow, attempt counters) and rehosting every device's
  key block;
- **snapshot** — ``ServiceProvider.snapshot``: collapse history into one
  SNAPSHOT record + anchor, then restore again from the compacted store.

Restore cost scales with journal length; the snapshot path is the
mitigation (restore-from-snapshot pays only for live state — entries and
escrow — never for replay history).  Two correctness gates (exit code 1
on failure):

- every restore — full-replay and post-snapshot — reproduces the exact
  pre-crash log digest at every scale;
- snapshot compaction actually reclaims blocks at every scale.

Results go to ``benchmarks/out/recovery.txt`` and machine-readable
``benchmarks/out/BENCH_recovery.json`` (schema 1, see
``docs/BENCH_SCHEMA.md``).

Run standalone:  ``PYTHONPATH=src python benchmarks/bench_recovery.py [--quick]``
"""

from __future__ import annotations

import argparse
import random
import sys
import time

from repro.core.params import SystemParams
from repro.core.protocol import Deployment
from repro.storage.blockstore import InMemoryBlockStore
from repro.storage.journal import ProviderJournal

try:
    from reporting import emit, table
except ImportError:  # running as a module from the repo root
    from benchmarks.reporting import emit, table

HSMS = 4
CLUSTER = 3
ENTRIES_PER_EPOCH = 8
EPOCHS_PER_BACKUP = 2  # escrow traffic grows with the journal, like a real run


def _params() -> SystemParams:
    return SystemParams.for_testing(
        num_hsms=HSMS, cluster_size=CLUSTER, audit_count=2
    )


def _grow(params: SystemParams, epochs: int):
    """A durable deployment with ``epochs`` committed epochs journalled."""
    store = InMemoryBlockStore()
    dep = Deployment.create(params, rng=random.Random(97), store=store)
    for i in range(max(1, epochs // EPOCHS_PER_BACKUP)):
        client = dep.new_client(f"bench-user-{i}", transport="direct")
        client.backup(b"recovery-bench-%d" % i, pin=f"{i:04d}")
    for epoch in range(epochs):
        for i in range(ENTRIES_PER_EPOCH):
            dep.provider.log.insert(
                b"bench|u%d-%d|0" % (epoch, i), b"commitment-%d-%d" % (epoch, i)
            )
        dep.run_log_update()
    return dep, store


def _timed(fn, repeats: int) -> float:
    """Best-of-``repeats`` wall-clock seconds (restore is idempotent)."""
    best = None
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke: fewer scales, single timing repeat",
    )
    parser.add_argument(
        "--epochs", type=int, nargs="*", default=None,
        help="journal scales to measure (committed epochs)",
    )
    args = parser.parse_args(argv)
    scales = args.epochs or ([2, 8] if args.quick else [4, 16, 64])
    repeats = 1 if args.quick else 3

    rows = []
    results = []
    metrics = {}
    digest_ok = True
    compaction_ok = True
    for epochs in scales:
        params = _params()
        dep, store = _grow(params, epochs)
        digest = dep.provider.log.digest
        blocks = len(store)

        replay_s = _timed(lambda: ProviderJournal(store).replay_state(), repeats)
        restored = {}

        def full_restore():
            restored["dep"] = Deployment.restore(params, store, dep.fleet)

        restore_s = _timed(full_restore, repeats)
        digest_ok &= restored["dep"].provider.log.digest == digest

        snapshot_start = time.perf_counter()
        dep.provider.snapshot()
        snapshot_s = time.perf_counter() - snapshot_start
        compacted = len(store)
        compaction_ok &= compacted < blocks

        def snap_restore():
            restored["snap"] = Deployment.restore(params, store, dep.fleet)

        snap_restore_s = _timed(snap_restore, repeats)
        digest_ok &= restored["snap"].provider.log.digest == digest

        rows.append(
            (
                epochs,
                epochs * ENTRIES_PER_EPOCH,
                blocks,
                f"{replay_s * 1000:.1f}",
                f"{restore_s * 1000:.1f}",
                compacted,
                f"{snap_restore_s * 1000:.1f}",
            )
        )
        results.append(
            {
                "epochs": epochs,
                "entries": epochs * ENTRIES_PER_EPOCH,
                "wal_blocks": blocks,
                "replay_ms": replay_s * 1000,
                "restore_ms": restore_s * 1000,
                "snapshot_ms": snapshot_s * 1000,
                "compacted_blocks": compacted,
                "restore_after_snapshot_ms": snap_restore_s * 1000,
            }
        )

    last = results[-1]
    metrics["max_epochs"] = last["epochs"]
    metrics["wal_blocks_at_max"] = last["wal_blocks"]
    metrics["replay_ms_at_max"] = last["replay_ms"]
    metrics["restore_ms_at_max"] = last["restore_ms"]
    metrics["restore_after_snapshot_ms_at_max"] = last["restore_after_snapshot_ms"]
    metrics["compaction_ratio_at_max"] = (
        last["wal_blocks"] / last["compacted_blocks"]
    )
    metrics["restore_blocks_per_sec_at_max"] = (
        last["wal_blocks"] / (last["restore_ms"] / 1000)
    )

    lines = table(
        ("epochs", "entries", "blocks", "replay ms", "restore ms",
         "snap blocks", "snap-restore ms"),
        rows,
        (7, 9, 8, 11, 12, 13, 17),
    )
    lines.append("")
    lines.append(
        f"journal = hash-chained WAL on a block store; one escrowed backup "
        f"per {EPOCHS_PER_BACKUP} epochs + {ENTRIES_PER_EPOCH} log entries "
        "per epoch"
    )
    lines.append(
        f"compaction at the largest scale reclaims "
        f"{metrics['compaction_ratio_at_max']:.0f}x "
        "(snapshot record + anchor replace the replay history)"
    )
    lines.append(
        "gates: every restore reproduces the pre-crash digest, and "
        "compaction shrinks the store -> "
        + ("PASS" if digest_ok and compaction_ok else "FAIL")
    )

    emit(
        "recovery",
        "Crash recovery: restore time vs journal size",
        lines,
        data={"results": results, "metrics": metrics},
    )
    if not digest_ok or not compaction_ok:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
