"""Table 2: the HSM device catalog.

Regenerates the capability table (price, g^x/sec, storage, FIPS) and
benchmarks this host's own P-256 point-multiplication rate — the paper's
"Intel i7 (CPU)" row exists precisely to show the HSM/CPU gap.
"""

from repro.crypto.ec import P256
from repro.hsm.devices import CATALOG

from reporting import emit, table


def test_table2_device_catalog(benchmark):
    result = benchmark(lambda: P256.generator * 0xDEADBEEFCAFE)
    assert not result.is_infinity

    rows = []
    for device in CATALOG:
        rows.append(
            (
                device.name,
                f"${device.price_usd:,.0f}",
                f"{device.gx_per_sec:,.0f}",
                f"{device.storage_kb} KB" if device.storage_kb else "n/a",
                "yes" if device.fips_140_2 else "no",
            )
        )
    lines = table(
        ("device", "price", "g^x/sec", "storage", "FIPS"),
        rows,
        (24, 10, 10, 12, 6),
    )
    lines.append("")
    lines.append(
        "paper anchors: SoloKey 8/s @ $20; SafeNet 2,000/s @ $18,468; CPU 22,338/s"
    )
    emit(
        "table2_devices",
        "Table 2: hardware security modules",
        lines,
        data={
            "results": [
                {
                    "device": device.name,
                    "price_usd": device.price_usd,
                    "gx_per_sec": device.gx_per_sec,
                    "storage_kb": device.storage_kb,
                    "fips_140_2": device.fips_140_2,
                }
                for device in CATALOG
            ]
        },
    )
