"""Figure 13: data-center size vs request rate under p99 latency targets.

The paper models Poisson arrivals into per-HSM M/M/1 queues and asks: how
many HSMs are needed to hold 99th-percentile recovery latency under 30 s /
1 min / 5 min / "any finite", as the annual request rate sweeps 0..1.5B?

We regenerate the four curves with the same model (service rates from the
Table 7-calibrated throughput model) and validate the closed form against a
discrete-event simulation.
"""

import random

from repro.hsm.devices import SOLOKEY
from repro.sim.capacity import build_throughput_model
from repro.sim.queueing import MM1Queue, fig13_series
from repro.sim.workload import simulate_fleet_p99

from reporting import emit, table

REQUEST_RATES = [0.25e9, 0.5e9, 0.75e9, 1.0e9, 1.25e9, 1.5e9]
CLUSTER = 40


def test_fig13_fleet_sizing(benchmark):
    throughput = build_throughput_model(SOLOKEY)
    mu = throughput.recoveries_per_hour / 3600.0  # jobs/s, all taxes included

    series = benchmark(
        lambda: fig13_series(mu, CLUSTER, REQUEST_RATES)
    )
    by_constraint = {c: dict(points) for c, points in series}

    rows = []
    for rate in REQUEST_RATES:
        rows.append(
            (
                f"{rate / 1e9:.2f}B",
                by_constraint[30.0][rate],
                by_constraint[60.0][rate],
                by_constraint[300.0][rate],
                by_constraint[None][rate],
            )
        )
    lines = table(
        ("req/yr", "p99<=30s", "p99<=1min", "p99<=5min", "any finite"),
        rows,
        (10, 10, 11, 11, 12),
    )
    lines.append("")
    lines.append("paper: ~3-4K HSMs at 1B/yr, tighter constraints slightly above")
    emit(
        "fig13_tail_latency",
        "Figure 13: fleet size vs request rate",
        lines,
        data={
            "results": [
                {
                    "requests_per_year": rate,
                    "hsms_p99_30s": by_constraint[30.0][rate],
                    "hsms_p99_60s": by_constraint[60.0][rate],
                    "hsms_p99_300s": by_constraint[300.0][rate],
                    "hsms_any_finite": by_constraint[None][rate],
                }
                for rate in REQUEST_RATES
            ]
        },
    )

    # Shape: every curve monotone in load; stricter constraint >= looser.
    for constraint, points in series:
        sizes = [n for _, n in points]
        assert sizes == sorted(sizes)
    for rate in REQUEST_RATES:
        assert (
            by_constraint[30.0][rate]
            >= by_constraint[60.0][rate]
            >= by_constraint[300.0][rate]
            >= by_constraint[None][rate]
        )
    # Anchor: ~1B/yr needs a few thousand SoloKeys.
    assert 500 < by_constraint[None][1.0e9] < 10_000


def test_fig13_model_vs_simulation(benchmark):
    """Empirical check: the analytic p99 matches discrete-event simulation."""
    mu, total_rate, fleet = 1.0, 4.0, 8
    analytic = MM1Queue(mu, total_rate / fleet).latency_percentile(0.99)
    simulated = benchmark.pedantic(
        lambda: simulate_fleet_p99(total_rate, mu, fleet, num_jobs=20000, rng=random.Random(8)),
        rounds=1,
        iterations=1,
    )
    emit(
        "fig13_validation",
        "M/M/1 closed form vs discrete-event simulation (p99)",
        [f"analytic: {analytic:.2f} s   simulated: {simulated:.2f} s"],
        data={
            "metrics": {"analytic_p99_s": analytic, "simulated_p99_s": simulated}
        },
    )
    assert abs(simulated - analytic) / analytic < 0.35
