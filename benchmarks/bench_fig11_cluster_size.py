"""Figure 11: recovery time and security loss vs cluster size n.

The paper sweeps n from 40 to 100: recovery time grows slowly (1.01 s to
~1.25 s — only the client-side location-hiding work scales with n; the
per-HSM puncturable work is parallel) while the bits of security lost
relative to ideal PIN guessing *shrink* as log2(3N/n) (6.81 -> 5.49 bits in
the figure, which corresponds to N=1,500; we print N=3,100 and N=1,500).

The companion ablation prices the design the paper rejects in §1: threshold
decryption across a fixed 6% of the whole fleet, whose per-recovery work
grows linearly with N instead of staying constant.
"""

from repro.analysis.bounds import security_loss_bits
from repro.hsm.costmodel import CostModel
from repro.hsm.devices import PIXEL4, SOLOKEY

from bench_fig10_breakdown import safetypin_recovery_seconds
from reporting import emit, table

PHONE = CostModel(PIXEL4)
HSM = CostModel(SOLOKEY)


def recovery_seconds(cluster_size: int) -> float:
    base = safetypin_recovery_seconds()
    # Only the client's reply handling scales with n.
    scaling = PHONE.seconds({"ec_mult": cluster_size, "aes_block": 2 * cluster_size})
    fixed = base["log"] + base["puncturable"] + HSM.seconds({"elgamal_enc": 1})
    return fixed + scaling


def test_fig11_cluster_size_sweep(benchmark):
    benchmark(lambda: recovery_seconds(40))

    sizes = list(range(40, 101, 10))
    rows = []
    for n in sizes:
        rows.append(
            (
                n,
                f"{recovery_seconds(n):.2f} s",
                f"{security_loss_bits(3100, n):.2f}",
                f"{security_loss_bits(1500, n):.2f}",
            )
        )
    lines = table(
        ("n", "recovery", "loss bits (N=3100)", "loss bits (N=1500)"),
        rows,
        (6, 12, 20, 20),
    )
    lines.append("")
    lines.append("paper: 1.01 s at n=40 growing slowly; annotations 6.81..5.49 bits")
    lines.append("(the paper's printed bit-loss values match N=1,500; see EXPERIMENTS.md)")
    emit(
        "fig11_cluster_size",
        "Figure 11: recovery time vs cluster size",
        lines,
        data={
            "results": [
                {
                    "cluster_size": n,
                    "recovery_s": recovery_seconds(n),
                    "loss_bits_n3100": security_loss_bits(3100, n),
                    "loss_bits_n1500": security_loss_bits(1500, n),
                }
                for n in sizes
            ]
        },
    )

    times = [recovery_seconds(n) for n in sizes]
    assert times == sorted(times)  # grows with n ...
    assert times[-1] / times[0] < 1.6  # ... but slowly (paper: ~1.24x)
    losses = [security_loss_bits(3100, n) for n in sizes]
    assert losses == sorted(losses, reverse=True)


def test_fig11_ablation_threshold_whole_fleet(benchmark):
    """§1's rejected design: threshold-encrypt to 6% of the entire fleet.

    Per-recovery HSM work then grows with N — adding HSMs adds security but
    zero throughput, which is exactly why location-hiding clusters exist.
    """
    # Meter the *real* rejected design (repro.crypto.threshold) at a small
    # size to get exact per-participant op counts, then scale the
    # participant count with N.
    import random

    from repro.crypto import threshold as tel
    from repro.metering import metered

    public, shares = tel.keygen(4, 8, random.Random(2))
    ct = tel.encrypt(public, b"key")
    with metered() as meter:
        partials = [tel.partial_decrypt(s, ct) for s in shares[:4]]
        tel.combine(public, ct, partials)
    per_participant_ops = meter.counts["elgamal_dec"] / 4

    def rejected_design_seconds(num_hsms: int) -> float:
        participants = max(1, int(num_hsms * 0.06))
        return participants * per_participant_ops * HSM.seconds({"elgamal_dec": 1})

    benchmark(lambda: rejected_design_seconds(3100))
    rows = []
    for n_fleet in (500, 1000, 3100, 10_000):
        safetypin = recovery_seconds(40)
        rejected = rejected_design_seconds(n_fleet)
        rows.append((n_fleet, f"{safetypin:.2f} s", f"{rejected:.1f} s"))
    lines = table(("N", "SafetyPin (n=40)", "threshold-6% design"), rows, (8, 18, 22))
    lines.append("")
    lines.append("SafetyPin is flat in N; the rejected design degrades linearly")
    emit(
        "fig11_ablation",
        "Ablation: hidden clusters vs fleet-wide threshold",
        lines,
        data={
            "results": [
                {
                    "fleet_size": n_fleet,
                    "safetypin_s": recovery_seconds(40),
                    "rejected_threshold_s": rejected_design_seconds(n_fleet),
                }
                for n_fleet in (500, 1000, 3100, 10_000)
            ]
        },
    )
    assert rejected_design_seconds(10_000) > 10 * recovery_seconds(40)
