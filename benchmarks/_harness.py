"""Machine-readable benchmark output: the ``BENCH_<name>.json`` contract.

Every benchmark in this directory emits a human-readable table via
``reporting.emit`` — and, through this module, a JSON record at
``benchmarks/out/BENCH_<name>.json`` so the perf trajectory can be tracked
by tooling instead of eyeballs.

The contract below is documented in full, with a worked example and the
list of CI-gated benchmarks, in ``docs/BENCH_SCHEMA.md``.

JSON contract (``schema`` = 1):

```
{
  "schema": 1,
  "bench": "<name>",                  # the emit() name
  "title": "<human title>",
  "metrics": {"<label>": <number>},   # flat scalars: seconds, ops/sec, speedups
  "results": [{...}, ...],            # structured per-row records (bench-specific)
  "op_counts": {"ec_mult": 100, ...}, # ambient OpMeter counts, when metered
  "lines": ["...", ...]               # the rendered text table, verbatim
}
```

``metrics`` is the stable surface — regression tooling compares labels
across runs.  ``results`` mirrors the text table row-for-row with raw
(unformatted) numbers.  Timing helpers :func:`timed` and
:func:`metered_timed` produce ready-to-embed records with op counts,
wall-clock seconds, and ops/sec.
"""

from __future__ import annotations

import json
import os
import time
from typing import Callable, Dict, Optional

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")
SCHEMA_VERSION = 1


def _jsonable(value):
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return str(value)


def write_json(name: str, title: str, payload: Optional[Dict] = None) -> str:
    """Write ``BENCH_<name>.json`` and return its path.

    ``payload`` keys join the record as-is (``metrics``/``results``/
    ``op_counts``/``lines`` per the contract above); ``schema``, ``bench``
    and ``title`` are stamped by this function.
    """
    record = {"schema": SCHEMA_VERSION, "bench": name, "title": title}
    record.update(_jsonable(payload or {}))
    # Stamped fields win over payload keys: the record's identity must match
    # the emit() call or the regression-tooling contract breaks.
    record.update({"schema": SCHEMA_VERSION, "bench": name, "title": title})
    os.makedirs(OUT_DIR, exist_ok=True)
    path = os.path.join(OUT_DIR, f"BENCH_{name}.json")
    with open(path, "w") as handle:
        json.dump(record, handle, indent=2, sort_keys=False)
        handle.write("\n")
    return path


def timed(fn: Callable[[], object], min_seconds: float = 0.2, min_ops: int = 1) -> Dict:
    """Run ``fn`` until ``min_seconds`` of wall-clock has elapsed.

    Returns ``{"ops": N, "seconds": s, "ops_per_sec": rate}`` — the record
    shape ``results`` entries and ``metrics`` derive from.
    """
    ops = 0
    start = time.perf_counter()
    while True:
        fn()
        ops += 1
        elapsed = time.perf_counter() - start
        if elapsed >= min_seconds and ops >= min_ops:
            break
    return {"ops": ops, "seconds": elapsed, "ops_per_sec": ops / elapsed}


def metered_timed(fn: Callable[[], object], min_seconds: float = 0.2, min_ops: int = 1) -> Dict:
    """Like :func:`timed`, plus the ambient operation counts the run
    reported (``op_counts``), so the JSON record carries the paper's cost
    units next to host wall-clock."""
    from repro.metering import OpMeter

    meter = OpMeter()
    with meter.attached():
        record = timed(fn, min_seconds=min_seconds, min_ops=min_ops)
    record["op_counts"] = meter.snapshot()
    return record
