"""Shared table emission for the benchmark harness.

Each benchmark regenerates one of the paper's tables or figures and emits
its rows both to stdout (visible with ``pytest -s``) and to
``benchmarks/out/<name>.txt`` so the reproduction record survives pytest's
output capturing.
"""

from __future__ import annotations

import os
from typing import Iterable, Sequence

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")


def emit(name: str, title: str, lines: Iterable[str]) -> None:
    os.makedirs(OUT_DIR, exist_ok=True)
    rendered = [f"== {title} =="]
    rendered.extend(lines)
    text = "\n".join(rendered) + "\n"
    print("\n" + text)
    with open(os.path.join(OUT_DIR, f"{name}.txt"), "w") as handle:
        handle.write(text)


def table(headers: Sequence[str], rows: Iterable[Sequence], widths: Sequence[int]) -> list:
    def fmt(cells):
        return "".join(str(c).rjust(w) for c, w in zip(cells, widths))

    lines = [fmt(headers)]
    lines.extend(fmt(row) for row in rows)
    return lines
