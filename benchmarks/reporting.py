"""Shared table emission for the benchmark harness.

Each benchmark regenerates one of the paper's tables or figures and emits
its rows both to stdout (visible with ``pytest -s``) and to
``benchmarks/out/<name>.txt`` so the reproduction record survives pytest's
output capturing.  Every emit also writes a machine-readable
``benchmarks/out/BENCH_<name>.json`` (see ``_harness`` for the contract);
benchmarks pass structured numbers via ``data`` so the JSON carries raw
values, not formatted strings.
"""

from __future__ import annotations

import os
from typing import Iterable, Optional, Sequence

import _harness

OUT_DIR = _harness.OUT_DIR


def emit(name: str, title: str, lines: Iterable[str], data: Optional[dict] = None) -> None:
    os.makedirs(OUT_DIR, exist_ok=True)
    rendered = [f"== {title} =="]
    body = list(lines)
    rendered.extend(body)
    text = "\n".join(rendered) + "\n"
    print("\n" + text)
    with open(os.path.join(OUT_DIR, f"{name}.txt"), "w") as handle:
        handle.write(text)
    payload = dict(data or {})
    payload.setdefault("lines", body)
    _harness.write_json(name, title, payload)


def table(headers: Sequence[str], rows: Iterable[Sequence], widths: Sequence[int]) -> list:
    def fmt(cells):
        return "".join(str(c).rjust(w) for c, w in zip(cells, widths))

    lines = [fmt(headers)]
    lines.extend(fmt(row) for row in rows)
    return lines
