"""Figure 12: recoveries/year supported vs hardware outlay per device type.

The paper plots, for SoloKey / YubiHSM 2 / SafeNet A700, how many
SafetyPin-protected recoveries per year a given dollar outlay supports,
scaling throughput by the g^x column of Table 2 and accounting for
key-rotation duty cycles.  Headline shape: the $20 SoloKey line dominates
per dollar; ~$60K of SoloKeys already serves 1B recoveries/year.
"""

from repro.hsm.devices import SAFENET_A700, SOLOKEY, YUBIHSM2
from repro.sim.capacity import build_throughput_model, fig12_series

from reporting import emit, table

BUDGETS = [0.25e6, 0.5e6, 1e6, 2e6, 3e6, 4e6, 5e6]


def test_fig12_throughput_vs_cost(benchmark):
    series = benchmark(lambda: fig12_series([SOLOKEY, YUBIHSM2, SAFENET_A700], BUDGETS))

    rows = []
    for i, budget in enumerate(BUDGETS):
        rows.append(
            (
                f"${budget / 1e6:.2f}M",
                f"{series[SOLOKEY.name][i][1] / 1e9:8.1f}B",
                f"{series[YUBIHSM2.name][i][1] / 1e9:8.2f}B",
                f"{series[SAFENET_A700.name][i][1] / 1e9:8.2f}B",
            )
        )
    lines = table(
        ("budget", "SoloKey", "YubiHSM2", "SafeNet"), rows, (10, 12, 12, 12)
    )
    lines.append("")
    lines.append("paper: SoloKey steepest line; 1B rec/yr within ~$60.7K of SoloKeys")
    emit(
        "fig12_throughput_cost",
        "Figure 12: recoveries/year vs HSM outlay",
        lines,
        data={
            "results": [
                {
                    "budget_usd": budget,
                    "solokey_recoveries_yr": series[SOLOKEY.name][i][1],
                    "yubihsm2_recoveries_yr": series[YUBIHSM2.name][i][1],
                    "safenet_recoveries_yr": series[SAFENET_A700.name][i][1],
                }
                for i, budget in enumerate(BUDGETS)
            ]
        },
    )

    # Paper's ordering: per dollar, SoloKey > YubiHSM2; SoloKey > SafeNet.
    at_5m = {name: dict(points)[5e6] for name, points in series.items()}
    assert at_5m[SOLOKEY.name] > at_5m[YUBIHSM2.name]
    assert at_5m[SOLOKEY.name] > at_5m[SAFENET_A700.name]
    # Lines through the origin: throughput linear in budget.
    solo = dict(series[SOLOKEY.name])
    assert solo[2e6] / solo[1e6] == 2.0


def test_fig12_billion_recovery_budget(benchmark):
    """Anchor: the dollar outlay at which SoloKeys reach 1B/year."""
    throughput = build_throughput_model(SOLOKEY)
    benchmark(lambda: build_throughput_model(SOLOKEY))
    per_hsm_annual = throughput.recoveries_per_hour * 24 * 365 / 40
    needed = 1e9 / per_hsm_annual
    budget = needed * SOLOKEY.price_usd
    emit(
        "fig12_anchor",
        "SoloKey outlay for 1B recoveries/year",
        [
            f"{needed:,.0f} SoloKeys = ${budget / 1e3:,.1f}K   (paper: 3,037 = $60.7K)"
        ],
        data={
            "metrics": {"solokeys_needed": needed, "budget_usd": budget}
        },
    )
    assert 1000 < needed < 10_000
    assert 20e3 < budget < 200e3
