"""Crypto hot-path acceleration: fast paths vs the naive baseline.

Measures the three fast paths the acceleration layer added to
``repro.crypto.ec`` against the pre-fast-path algorithm (kept verbatim as
``naive_mult``: per-call window table, no precomputation):

- **fixed-base** ``g^x`` via the constant comb table (the most-multiplied
  point in the system: keygen, hashed ElGamal, ECDSA sign, HSM decrypt);
- **cached-window** repeated mults of one long-lived public key;
- **multi-scalar** Straus ``Σ sᵢ·Pᵢ`` vs independent mults;
- **batched** ``EcdsaMultiSig.verify_aggregate`` (16 signers) vs the
  sequential per-signature verification loop it replaced.

Acceptance gates (exit code 1 on regression):

- full run: fixed-base ≥ 2.0x and 16-signer verify_aggregate ≥ 1.5x;
- ``--quick`` (the CI perf-smoke lane): fixed-base ≥ 1.5x.

Results go to ``benchmarks/out/crypto_hotpath.txt`` and machine-readable
``benchmarks/out/BENCH_crypto_hotpath.json`` (see ``_harness``).

Run standalone:  ``PYTHONPATH=src python benchmarks/bench_crypto_hotpath.py [--quick]``
"""

from __future__ import annotations

import argparse
import random
import sys

from _harness import metered_timed
from reporting import emit, table

FULL_GATES = {"fixed_base_speedup": 2.0, "verify_aggregate_speedup": 1.5}
QUICK_GATES = {"fixed_base_speedup": 1.5}

SIGNERS = 16
MULTI_TERMS = 8


def _naive_ecdsa_verify_loop(scheme_publics, message, aggregate):
    """The pre-fast-path ``verify_aggregate``: one naive verification per
    signature — two uncached scalar mults and one field inversion each."""
    from repro.crypto.ec import P256, _jac_add, _jac_mult, _jac_to_affine
    from repro.crypto.hashing import sha256

    n = P256.n
    for public, (r, s) in zip(scheme_publics, aggregate):
        if not (1 <= r < n and 1 <= s < n):
            return False
        z = int.from_bytes(sha256(b"ecdsa", message), "big") % n
        w = pow(s, -1, n)
        pt = _jac_add(
            _jac_mult(P256.generator._jac(), (z * w) % n),
            _jac_mult(public._jac(), (r * w) % n),
        )
        affine = _jac_to_affine(pt)
        if affine is None or affine[0] % n != r:
            return False
    return True


def run(min_seconds: float) -> dict:
    from repro.crypto.ec import N, P256, ECPoint, multi_mult, naive_mult
    from repro.log.distributed import EcdsaMultiSig

    rng = random.Random(0xFA57)
    G = P256.generator
    fixed_key = G * rng.randrange(1, N)  # one long-lived public key
    scalars = [rng.randrange(1, N) for _ in range(64)]

    def next_scalar():
        return scalars[rng.randrange(len(scalars))]

    records = {}
    records["fixed_base"] = metered_timed(lambda: G * next_scalar(), min_seconds)
    records["fixed_base_naive"] = metered_timed(
        lambda: naive_mult(G, next_scalar()), min_seconds
    )
    records["cached_window"] = metered_timed(
        lambda: fixed_key * next_scalar(), min_seconds
    )
    records["cached_window_naive"] = metered_timed(
        lambda: naive_mult(fixed_key, next_scalar()), min_seconds
    )

    points = [G * rng.randrange(1, N) for _ in range(MULTI_TERMS - 1)] + [G]
    pairs = [(next_scalar(), pt) for pt in points]
    records["multi_scalar"] = metered_timed(lambda: multi_mult(pairs), min_seconds)

    def independent_sum():
        acc = ECPoint(None, None)
        for scalar, pt in pairs:
            acc = acc + naive_mult(pt, scalar)
        return acc

    records["multi_scalar_naive"] = metered_timed(independent_sum, min_seconds)

    scheme = EcdsaMultiSig()
    keypairs = [scheme.keygen(random.Random(seed)) for seed in range(SIGNERS)]
    message = b"log-transition-digest"
    aggregate = scheme.aggregate([scheme.sign(kp.secret, message) for kp in keypairs])
    publics = [kp.public for kp in keypairs]
    assert scheme.verify_aggregate(keypairs, message, aggregate)
    records["verify_aggregate"] = metered_timed(
        lambda: scheme.verify_aggregate(keypairs, message, aggregate), min_seconds
    )
    records["verify_aggregate_naive"] = metered_timed(
        lambda: _naive_ecdsa_verify_loop(publics, message, aggregate), min_seconds
    )
    records["ecdsa_sign"] = metered_timed(
        lambda: P256.ecdsa_sign(keypairs[0].secret, message), min_seconds
    )
    return records


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI perf-smoke mode: shorter timings, fixed-base >= 1.5x gate only",
    )
    parser.add_argument("--min-seconds", type=float, default=None)
    args = parser.parse_args(argv)
    min_seconds = args.min_seconds or (0.15 if args.quick else 0.6)

    records = run(min_seconds)
    speedups = {
        f"{label}_speedup": (
            records[label]["ops_per_sec"] / records[f"{label}_naive"]["ops_per_sec"]
        )
        for label in ("fixed_base", "cached_window", "multi_scalar", "verify_aggregate")
    }

    rows = []
    for label, record in records.items():
        rows.append(
            (
                label,
                record["ops"],
                f"{record['ops_per_sec']:,.1f}",
                f"{record['seconds'] / record['ops'] * 1000:,.2f}",
            )
        )
    lines = table(("path", "ops", "ops/sec", "ms/op"), rows, (24, 8, 12, 10))
    lines.append("")
    for label, value in speedups.items():
        lines.append(f"{label}: {value:.2f}x")

    gates = QUICK_GATES if args.quick else FULL_GATES
    failures = [
        f"{metric} = {speedups[metric]:.2f}x < required {floor:.1f}x"
        for metric, floor in gates.items()
        if speedups[metric] < floor
    ]
    lines.append("")
    lines.append(
        f"gates ({'quick' if args.quick else 'full'}): "
        + ("FAIL: " + "; ".join(failures) if failures else "ok — "
           + ", ".join(f"{m} >= {f:.1f}x" for m, f in gates.items()))
    )

    metrics = dict(speedups)
    for label, record in records.items():
        metrics[f"{label}_ops_per_sec"] = record["ops_per_sec"]
    emit(
        "crypto_hotpath",
        "Crypto hot-path acceleration vs naive baseline",
        lines,
        data={
            "metrics": metrics,
            "results": [dict(path=label, **record) for label, record in records.items()],
            "mode": "quick" if args.quick else "full",
            "gates": gates,
            "gate_failures": failures,
        },
    )
    if failures:
        print("PERF REGRESSION: " + "; ".join(failures), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
