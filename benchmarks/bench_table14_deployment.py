"""Table 14: hardware cost of a billion-user SafetyPin deployment.

Regenerates each row (device, quantity, f_secret, tolerated evil HSMs,
hardware cost) plus the storage-cost footnote, using the throughput model
calibrated on Tables 2/7.
"""

from fractions import Fraction

from repro.hsm.devices import SAFENET_A700, SOLOKEY, YUBIHSM2
from repro.sim.capacity import plan_deployment, storage_cost_per_year

from reporting import emit, table

ANNUAL = 1e9

PAPER_ROWS = {
    "SoloKey": (3037, "1/16", 189, "$60.7K"),
    "YubiHSM 2": (1732, "1/16", 108, "$1.1M"),
    "SafeNet A700": (40, "1/20", 2, "$738.7K"),
}


def test_table14_deployment_costs(benchmark):
    plans = benchmark(
        lambda: [
            plan_deployment(SOLOKEY, ANNUAL),
            plan_deployment(YUBIHSM2, ANNUAL),
            plan_deployment(SAFENET_A700, ANNUAL, f_secret=Fraction(1, 20)),
            # The paper's enlarged SafeNet rows: buy more units than the
            # throughput minimum to tolerate more theft.
            plan_deployment(
                SAFENET_A700, ANNUAL, f_secret=Fraction(1, 32), min_quantity=320
            ),
            plan_deployment(
                SAFENET_A700, ANNUAL, f_secret=Fraction(1, 16), min_quantity=800
            ),
        ]
    )

    rows = []
    for plan in plans:
        paper = PAPER_ROWS.get(plan.device.name)
        rows.append(
            (
                plan.device.name,
                f"{plan.quantity:,}",
                f"1/{int(1 / plan.f_secret)}",
                plan.tolerated_evil,
                f"${plan.hardware_cost_usd / 1e3:,.1f}K",
                f"{paper[0]:,} / {paper[3]}" if paper else "(extension row)",
            )
        )
    lines = table(
        ("device", "qty", "f_secret", "N_evil", "cost", "paper qty/cost"),
        rows,
        (16, 9, 10, 8, 12, 20),
    )
    storage = storage_cost_per_year(1e9, 4.0)
    lines.append("")
    lines.append(
        f"storage footnote: 4 GB x 1e9 users/yr on S3-IA = ${storage / 1e6:,.0f}M "
        "(paper: $600M) — HSM cost is negligible beside it"
    )
    emit(
        "table14_deployment",
        "Table 14: deployment cost for 1B users/year",
        lines,
        data={
            "results": [
                {
                    "device": plan.device.name,
                    "quantity": plan.quantity,
                    "f_secret": float(plan.f_secret),
                    "tolerated_evil": plan.tolerated_evil,
                    "hardware_cost_usd": plan.hardware_cost_usd,
                }
                for plan in plans
            ],
            "metrics": {"storage_cost_usd_per_year": storage},
        },
    )

    solo, yubi, safenet = plans[0], plans[1], plans[2]
    # Same-order quantities and the paper's orderings:
    assert 1000 < solo.quantity < 10_000  # paper: 3,037
    assert yubi.quantity < solo.quantity  # faster device, fewer units
    assert safenet.quantity < 200  # paper: 40
    assert solo.hardware_cost_usd < yubi.hardware_cost_usd  # cheapest fleet
    assert solo.hardware_cost_usd < safenet.hardware_cost_usd
    assert storage > 100 * yubi.hardware_cost_usd
