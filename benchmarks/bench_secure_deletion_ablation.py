"""§9.1 ablation: key-tree secure deletion vs whole-array re-encryption.

The paper: deleting one item from a 64 MB outsourced array by re-encrypting
the whole array takes 48 minutes on a SoloKey; the Di Crescenzo key tree
does it in logarithmic time, improving throughput ~4,423x.

We reproduce the comparison two ways: (1) modeled at the full 64 MB scale on
the SoloKey cost model, and (2) measured wall-clock on this host at a small
scale with both real implementations.
"""

import math

from repro.hsm.costmodel import CostModel
from repro.hsm.devices import SOLOKEY
from repro.metering import metered
from repro.storage.blockstore import InMemoryBlockStore
from repro.storage.securedel import NaiveSecureStore, SecureDeletionTree

from reporting import emit

MODEL = CostModel(SOLOKEY)
ARRAY_BYTES = 64 * 1024 * 1024


def modeled_naive_delete_seconds() -> float:
    """Read, decrypt, re-encrypt, write the whole 64 MB array."""
    blocks = ARRAY_BYTES / 16
    return MODEL.seconds(
        {"aes_block": 2 * blocks, "io_bytes": 2 * ARRAY_BYTES}
    )


def modeled_tree_delete_seconds() -> float:
    """Metered real tree deletion, with depth scaled to a 64 MB array."""
    store = InMemoryBlockStore()
    tree = SecureDeletionTree.setup(store, [bytes(32)] * 64)
    with metered() as meter:
        tree.delete(7)
    real_depth = tree.height
    depth = math.ceil(math.log2(ARRAY_BYTES / 32))
    scale = depth / real_depth
    counts = {op: units * scale for op, units in meter.counts.items()}
    return MODEL.seconds(counts)


def test_secure_deletion_ablation_modeled(benchmark):
    benchmark(modeled_tree_delete_seconds)
    naive = modeled_naive_delete_seconds()
    tree = modeled_tree_delete_seconds()
    emit(
        "secure_deletion_ablation",
        "Ablation: one deletion from a 64 MB outsourced key (SoloKey model)",
        [
            f"naive re-encryption: {naive / 60:8.1f} min   (paper: 48 min)",
            f"key-tree deletion:   {tree:8.3f} s",
            f"throughput gain:     {naive / tree:8,.0f}x   (paper: ~4,423x)",
        ],
        data={
            "metrics": {
                "naive_reencrypt_s": naive,
                "tree_delete_s": tree,
                "throughput_gain": naive / tree,
            }
        },
    )
    assert 10 * 60 < naive < 120 * 60
    assert tree < 5.0
    assert naive / tree > 500


def test_secure_deletion_wallclock(benchmark):
    """Real wall-clock comparison at 1,024 blocks on this host."""
    blocks = [bytes(32)] * 1024

    tree_store = InMemoryBlockStore()
    tree = SecureDeletionTree.setup(tree_store, blocks)
    naive_store = InMemoryBlockStore()
    naive = NaiveSecureStore.setup(naive_store, blocks)

    deleted = iter(range(1024))
    benchmark(lambda: tree.delete(next(deleted)))

    import time

    start = time.perf_counter()
    naive.delete(0)
    naive_seconds = time.perf_counter() - start
    start = time.perf_counter()
    tree.delete(1000)
    tree_seconds = time.perf_counter() - start
    emit(
        "secure_deletion_wallclock",
        "Wall-clock deletion at 1,024 blocks (this host, real code)",
        [
            f"naive: {naive_seconds * 1000:8.1f} ms",
            f"tree:  {tree_seconds * 1000:8.1f} ms   ({naive_seconds / tree_seconds:.0f}x)",
        ],
        data={
            "metrics": {
                "naive_delete_s": naive_seconds,
                "tree_delete_s": tree_seconds,
                "speedup": naive_seconds / tree_seconds,
            }
        },
    )
    assert tree_seconds < naive_seconds
