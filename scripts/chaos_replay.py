#!/usr/bin/env python3
"""chaos_replay: re-execute a recorded chaos violation exactly.

A replay file (written by ``scripts/chaos_campaign.py`` or
``repro.chaos.replay.write_replay``) pins a violation to
``(scenario, seed, step)``.  This CLI re-runs the scenario at that seed
and verifies the same invariant fires at the same step with the same
event-trace digest — turning "the chaos campaign failed last night" into
a deterministic, single-command reproduction.

Usage::

    PYTHONPATH=src python scripts/chaos_replay.py benchmarks/out/chaos_replay_demo.json

Exit codes: 0 = reproduced exactly; 1 = replay diverged (nondeterminism
or a since-fixed bug); 2 = unreadable replay file.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.chaos.replay import ReplayMismatch, load_replay, replay_file  # noqa: E402


def main(argv=None) -> int:
    """CLI entry point: replay each file given on the command line."""
    parser = argparse.ArgumentParser(
        prog="chaos_replay", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("files", nargs="+", help="replay file(s) to re-execute")
    args = parser.parse_args(argv)
    status = 0
    for path in args.files:
        try:
            record = load_replay(path)
        except (OSError, ValueError) as exc:
            print(f"{path}: unreadable replay file: {exc}", file=sys.stderr)
            return 2
        print(f"{path}: replaying {record['scenario']} @ seed {record['seed']}"
              f" (expect {record['invariant']} at step {record['violation_step']})")
        try:
            report = replay_file(path)
        except ReplayMismatch as exc:
            print(f"{path}: REPLAY DIVERGED: {exc}", file=sys.stderr)
            status = 1
            continue
        violation = report.violations[0]
        print(f"{path}: reproduced {violation.invariant} at step"
              f" {violation.step} ({report.steps} steps executed,"
              f" trace digest {report.trace_digest[:16]}…)")
        print(f"  message: {violation.message}")
    return status


if __name__ == "__main__":
    raise SystemExit(main())
