#!/usr/bin/env python3
"""chaos_campaign: run the deterministic chaos scenario catalog.

Every scenario is executed at a fixed seed under the seeded scheduler and
entropy hijack, so a campaign run is exactly reproducible; the run emits
``benchmarks/out/BENCH_chaos_campaign.json`` (schema 1) with per-scenario
tail latency and invariant-violation counts (target: zero), and any
violation additionally dumps a replay file that ``scripts/chaos_replay.py``
re-executes to the identical step.  Exits nonzero if any scenario records
a violation.

Usage::

    PYTHONPATH=src python scripts/chaos_campaign.py --quick       # CI fast lane
    PYTHONPATH=src python scripts/chaos_campaign.py               # full catalog
    PYTHONPATH=src python scripts/chaos_campaign.py --demo        # deliberate
        # fault: runs demo_log_tamper, writes its replay file, exits 0 iff
        # the violation fired and was captured (CI round-trips it)

Options:
    --quick            run the QUICK_SCENARIOS subset in .quick() form
    --scenarios a,b    run a named subset of the catalog
    --seed N           base seed (default 20260808)
    --out-dir DIR      where replay files go (default benchmarks/out)
    --demo             run the deliberately-violating demo scenario instead
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

_REPO = Path(__file__).resolve().parent.parent
_SRC = _REPO / "src"
for entry in (str(_SRC), str(_REPO / "benchmarks")):
    if entry not in sys.path:
        sys.path.insert(0, entry)

from repro.chaos import (  # noqa: E402
    DEMO_SCENARIO,
    QUICK_SCENARIOS,
    SCENARIOS,
    run_scenario,
    write_replay,
)
from repro.chaos.entropy import derive_seed  # noqa: E402

try:  # pragma: no cover - import shape depends on invocation directory
    from reporting import emit, table
except ImportError:  # pragma: no cover
    from benchmarks.reporting import emit, table

DEFAULT_SEED = 20260808


def _fmt_s(value) -> str:
    """Milliseconds-precision seconds column (blank for missing)."""
    return f"{value:.3f}" if value is not None else "-"


def run_campaign(args) -> int:
    """Run the selected scenarios; emit the BENCH record; return exit code."""
    if args.scenarios:
        names = [n.strip() for n in args.scenarios.split(",") if n.strip()]
        unknown = [n for n in names if n not in SCENARIOS]
        if unknown:
            print(f"unknown scenarios: {', '.join(unknown)}", file=sys.stderr)
            print(f"catalog: {', '.join(SCENARIOS)}", file=sys.stderr)
            return 2
    elif args.quick:
        names = list(QUICK_SCENARIOS)
    else:
        names = list(SCENARIOS)

    os.makedirs(args.out_dir, exist_ok=True)
    rows, results, replays = [], [], []
    total_violations = 0
    for name in names:
        seed = derive_seed(args.seed, f"campaign|{name}")
        report = run_scenario(SCENARIOS[name], seed, quick=args.quick)
        total_violations += len(report.violations)
        if report.violations:
            replay_path = os.path.join(args.out_dir, f"chaos_replay_{name}.json")
            write_replay(report, replay_path, quick=args.quick)
            replays.append(replay_path)
            print(f"!! {name}: violation; replay file at {replay_path}",
                  file=sys.stderr)
        rows.append((
            name, report.steps, report.modeled_arrivals, report.live_sessions,
            report.counters.get("recovered", 0),
            _fmt_s(report.modeled_p50), _fmt_s(report.modeled_p99),
            _fmt_s(report.live_p99), len(report.violations),
            f"{report.wall_seconds:.1f}",
        ))
        results.append({
            "scenario": name,
            "seed": report.seed,
            "quick": args.quick,
            "steps": report.steps,
            "trace_digest": report.trace_digest,
            "final_log_digest": report.final_log_digest,
            "modeled_arrivals": report.modeled_arrivals,
            "live_sessions": report.live_sessions,
            "modeled_p50_s": report.modeled_p50,
            "modeled_p99_s": report.modeled_p99,
            "live_p50_s": report.live_p50,
            "live_p99_s": report.live_p99,
            "counters": report.counters,
            "violations": [v.as_dict() for v in report.violations],
            "wall_seconds": report.wall_seconds,
        })

    lines = table(
        ["scenario", "steps", "modeled", "live", "ok",
         "mp50(s)", "mp99(s)", "lp99(s)", "viol", "wall(s)"],
        rows,
        [18, 7, 9, 6, 5, 9, 9, 9, 6, 9],
    )
    lines.append("")
    lines.append(
        f"campaign: {len(names)} scenarios, {total_violations} invariant"
        f" violations (target 0); mode={'quick' if args.quick else 'full'}"
    )
    emit(
        "chaos_campaign",
        "Deterministic chaos campaign (scenario x seed reproducible)",
        lines,
        data={
            "metrics": {
                "scenarios": len(names),
                "invariant_violations": total_violations,
                "modeled_arrivals_total": sum(r["modeled_arrivals"] for r in results),
                "live_sessions_total": sum(r["live_sessions"] for r in results),
            },
            "results": results,
            "replay_files": replays,
        },
    )
    return 1 if total_violations else 0


def run_demo(args) -> int:
    """Run the deliberately-violating demo and capture its replay file."""
    seed = derive_seed(args.seed, "campaign|demo")
    report = run_scenario(DEMO_SCENARIO, seed)
    if not report.violations:
        print("demo scenario recorded no violation — the seeded fault or the"
              " digest-chain checker is broken", file=sys.stderr)
        return 1
    os.makedirs(args.out_dir, exist_ok=True)
    path = os.path.join(args.out_dir, "chaos_replay_demo.json")
    record = write_replay(report, path)
    print(f"demo violation: {record['invariant']} at step"
          f" {record['violation_step']}; replay file at {path}")
    print(json.dumps(record, indent=2, sort_keys=True))
    return 0


def main(argv=None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        prog="chaos_campaign", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("--quick", action="store_true",
                        help="run the quick subset in scaled-down form")
    parser.add_argument("--scenarios", default="",
                        help="comma-separated subset of the catalog")
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED,
                        help=f"base seed (default {DEFAULT_SEED})")
    parser.add_argument("--out-dir", default=str(_REPO / "benchmarks" / "out"),
                        help="directory for replay files")
    parser.add_argument("--demo", action="store_true",
                        help="run the deliberately-violating demo scenario")
    args = parser.parse_args(argv)
    if args.demo:
        return run_demo(args)
    return run_campaign(args)


if __name__ == "__main__":
    raise SystemExit(main())
