#!/usr/bin/env python3
"""Docstring lint for the packages the docs satellites promise are documented.

Zero-dependency (AST-based) replacement for pydocstyle, tuned to this
repo's contract:

- every module has a module docstring of at least ``MIN_MODULE`` characters
  (long enough to state the module's role and its thread-safety contract);
- every public class, function, and method has a docstring (single-line is
  fine; ``_private`` names, dunders, and ``@overload``/property *setters*
  are exempt).

Usage:  python scripts/docs_lint.py src/repro/service src/repro/log src/repro/core/wire.py
Exit status 1 (with a per-finding listing) if anything is missing.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

MIN_MODULE = 120  # characters — a one-liner is not a module contract


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def _decorator_names(node: ast.AST):
    for decorator in getattr(node, "decorator_list", []):
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        if isinstance(target, ast.Attribute):
            yield target.attr
        elif isinstance(target, ast.Name):
            yield target.id


def _check_callable(node, qualname: str, findings, path: Path) -> None:
    if "setter" in _decorator_names(node) or "deleter" in _decorator_names(node):
        return  # the getter carries the docstring
    if ast.get_docstring(node) is None:
        findings.append(f"{path}:{node.lineno}: missing docstring on `{qualname}`")


def lint_file(path: Path, findings: list) -> None:
    tree = ast.parse(path.read_text(), filename=str(path))
    module_doc = ast.get_docstring(tree)
    if module_doc is None:
        findings.append(f"{path}:1: missing module docstring")
    elif len(module_doc) < MIN_MODULE:
        findings.append(
            f"{path}:1: module docstring too thin ({len(module_doc)} chars; "
            f"state the module's role and thread-safety contract, >= {MIN_MODULE})"
        )
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and _is_public(node.name):
            _check_callable(node, node.name, findings, path)
        elif isinstance(node, ast.ClassDef) and _is_public(node.name):
            if ast.get_docstring(node) is None:
                findings.append(
                    f"{path}:{node.lineno}: missing docstring on class `{node.name}`"
                )
            for member in node.body:
                if isinstance(
                    member, (ast.FunctionDef, ast.AsyncFunctionDef)
                ) and _is_public(member.name):
                    _check_callable(member, f"{node.name}.{member.name}", findings, path)


def main(argv) -> int:
    roots = [Path(arg) for arg in argv] or [
        Path("src/repro/service"),
        Path("src/repro/log"),
        Path("src/repro/core/wire.py"),
    ]
    findings: list = []
    checked = 0
    for root in roots:
        files = sorted(root.rglob("*.py")) if root.is_dir() else [root]
        for file in files:
            lint_file(file, findings)
            checked += 1
    if findings:
        print("\n".join(findings))
        print(f"\ndocs lint: {len(findings)} finding(s) in {checked} file(s)")
        return 1
    print(f"docs lint: {checked} file(s) clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
