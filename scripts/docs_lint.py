#!/usr/bin/env python3
"""Docstring lint — thin shim over ``repro.lintkit``'s docstring pass.

The docstring contract (module docstrings >= 120 chars, public API
documented) now lives in :mod:`repro.lintkit.docs` and runs as part of
``scripts/repro_lint.py`` in CI.  This script keeps the old entry point
and output format working for anything that still invokes it directly.

Usage:  python scripts/docs_lint.py src/repro/service src/repro/log src/repro/core/wire.py
Exit status 1 (with a per-finding listing) if anything is missing.
"""

from __future__ import annotations

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.lintkit.docs import MIN_MODULE, DocstringPass  # noqa: E402,F401
from repro.lintkit.engine import ScanContext, collect_files, run_passes  # noqa: E402


def main(argv) -> int:
    roots = [Path(arg) for arg in argv] or [
        Path("src/repro/service"),
        Path("src/repro/log"),
        Path("src/repro/core/wire.py"),
    ]
    root = Path.cwd()
    files = collect_files(root, roots)
    ctx = ScanContext(root, files)
    # include=("",) matches every scanned file: the caller chose the roots.
    report = run_passes(ctx, [DocstringPass(include=("",))])
    checked = report.files_scanned
    if report.findings:
        for finding in report.findings:
            print(f"{finding.path}:{finding.line}: {finding.message}")
        print(f"\ndocs lint: {len(report.findings)} finding(s) in {checked} file(s)")
        return 1
    print(f"docs lint: {checked} file(s) clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
