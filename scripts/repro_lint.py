#!/usr/bin/env python3
"""repro_lint: the repo's static-analysis CLI (see docs/STATIC_ANALYSIS.md).

Runs the five lintkit passes — secret-hygiene taint, lock discipline,
wire-schema consistency, metering discipline, and the docstring contract —
over the given paths and exits nonzero on any unsuppressed finding.  This
is the CI fast-lane gate::

    PYTHONPATH=src python scripts/repro_lint.py src/repro

Options:
    --json                 machine-readable report on stdout
    --passes a,b,c         run a subset (secrets,locks,wire,metering,docs)
    --baseline FILE        filter findings recorded in FILE (check mode)
    --write-baseline FILE  record the current findings and exit 0
    --root DIR             repo root for cross-file checks (default: cwd)
    --list-rules           print the rule catalog and exit
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

# Make `python scripts/repro_lint.py` work without PYTHONPATH: the package
# lives in <repo>/src, one level up from this script.
_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.lintkit import default_passes  # noqa: E402
from repro.lintkit.engine import (  # noqa: E402
    RULE_ALIASES,
    ScanContext,
    collect_files,
    read_baseline,
    run_passes,
    write_baseline,
)

_RULE_CATALOG = [
    ("secret-taint", "secret", "secret-named value flows into printable output"),
    ("unguarded-write", "unguarded", "_GUARDED_BY attribute written outside its lock"),
    ("wire-schema", "wire", "frame tag missing a codec/dispatch/strategy/doc row"),
    ("unmetered-op", "unmetered", "crypto entry point skips metering.count"),
    ("docstring-missing", "docs", "public API without a docstring"),
    ("docstring-thin", "docs", "module docstring below the contract minimum"),
    ("bad-suppression", "-", "suppression comment with an empty justification"),
    ("parse-error", "-", "file does not parse"),
]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro_lint", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("paths", nargs="*", default=["src/repro"],
                        help="files or directories to scan (default: src/repro)")
    parser.add_argument("--json", action="store_true", help="JSON report on stdout")
    parser.add_argument("--passes", default=None,
                        help="comma-separated pass names (default: all)")
    parser.add_argument("--baseline", default=None, metavar="FILE",
                        help="filter findings whose fingerprint is in FILE")
    parser.add_argument("--write-baseline", default=None, metavar="FILE",
                        help="record current findings as the baseline, exit 0")
    parser.add_argument("--root", default=".", metavar="DIR",
                        help="repo root for cross-file checks (default: cwd)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule, alias, blurb in _RULE_CATALOG:
            print(f"{rule:18s} alias={alias:10s} {blurb}")
        return 0

    root = Path(args.root).resolve()
    passes = default_passes()
    if args.passes:
        wanted = {name.strip() for name in args.passes.split(",") if name.strip()}
        known = {p.name for p in passes}
        unknown = wanted - known
        if unknown:
            parser.error(
                f"unknown pass(es): {', '.join(sorted(unknown))}"
                f" (available: {', '.join(sorted(known))})"
            )
        passes = [p for p in passes if p.name in wanted]

    files = collect_files(root, [Path(p) for p in args.paths])
    if not files:
        print("repro_lint: no Python files under the given paths", file=sys.stderr)
        return 2
    ctx = ScanContext(root, files)

    baseline = None
    if args.baseline:
        baseline_path = Path(args.baseline)
        if not baseline_path.is_file():
            print(f"repro_lint: baseline {baseline_path} not found", file=sys.stderr)
            return 2
        baseline = read_baseline(baseline_path)

    report = run_passes(ctx, passes, baseline=baseline)

    if args.write_baseline:
        write_baseline(Path(args.write_baseline), report.findings)
        print(
            f"repro_lint: wrote baseline with {len(report.findings)} finding(s)"
            f" to {args.write_baseline}"
        )
        return 0

    if args.json:
        print(report.to_json())
    else:
        for finding in report.findings:
            print(finding.render())
        summary = (
            f"repro_lint: {len(report.findings)} finding(s),"
            f" {len(report.suppressed)} suppressed,"
            f" {len(report.baselined)} baselined,"
            f" {report.files_scanned} file(s) scanned"
        )
        print(summary if report.findings else f"{summary} — clean")
    return 0 if report.clean else 1


if __name__ == "__main__":
    sys.exit(main())


# Re-exported so tests can reference the catalog without re-parsing --help.
RULES = tuple(rule for rule, _, _ in _RULE_CATALOG)
ALIASES = RULE_ALIASES
