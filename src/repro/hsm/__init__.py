"""Simulated HSM fleet and the operation-metering cost model.

``HsmDevice`` reproduces the firmware API of the paper's modified SoloKeys:
decrypt-and-puncture, log auditing and signing, key rotation, and garbage
collection, with all secret state held behind the device object.  The cost
model converts metered operation counts into modeled seconds using the
paper's measured per-operation rates (Tables 2 and 7), which is how the
performance figures are reproduced without physical hardware.
"""

from repro.hsm.devices import DeviceSpec, SOLOKEY, YUBIHSM2, SAFENET_A700, INTEL_I7, PIXEL4
from repro.hsm.costmodel import CostModel, CostBreakdown, Transport
from repro.hsm.device import HsmDevice, HsmUnavailableError, HsmRefusedError
from repro.hsm.fleet import HsmFleet

__all__ = [
    "DeviceSpec",
    "SOLOKEY",
    "YUBIHSM2",
    "SAFENET_A700",
    "INTEL_I7",
    "PIXEL4",
    "CostModel",
    "CostBreakdown",
    "Transport",
    "HsmDevice",
    "HsmUnavailableError",
    "HsmRefusedError",
    "HsmFleet",
]
