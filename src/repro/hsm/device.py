"""The simulated hardware security module.

``HsmDevice`` mirrors the firmware the paper adds to SoloKeys (~2,500 lines
of C): everything the device can be asked to do is a public method; every
secret lives in private attributes reachable only through those methods (or
the explicit :meth:`extract_secrets` escape hatch that models physical
compromise in tests).

Firmware surface:

- ``audit_log_update`` / ``accept_log_digest`` — the HSM side of the
  Figure 5 protocol.
- ``decrypt_share`` — the recovery step: check the logged commitment,
  Bloom-filter-decrypt the client's key share, *puncture*, and reply
  encrypted under the client's per-recovery public key.
- ``rotate_keys`` — generate a fresh puncturable keypair once enough slots
  have been deleted (§9.1: rotation is triggered at half-deleted).
- ``accept_garbage_collection`` — bounded-count log reset (§6.2).
- ``fail_stop`` / ``restart`` — fault injection for the f_live experiments.

Every method runs under the device's own :class:`OpMeter`, so benchmarks can
price exactly what each HSM did on the Table 7 cost model.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro import metering
from repro.crypto.bfe import (
    BfeCiphertext,
    BfePublicKey,
    BfeSecretKey,
    BloomFilterEncryption,
    PuncturedKeyError,
)
from repro.crypto.bloom import BloomParams
from repro.crypto.commit import CommitmentOpening, verify_opening
from repro.core.identifiers import parse_attempt_identifier
from repro.crypto.ec import ECPoint
from repro.crypto.elgamal import ElGamalCiphertext, HashedElGamal
from repro.crypto.gcm import AuthenticationError
from repro.crypto.merkle import IncrementalMerkleTree, MerkleTree
from repro.log.authdict import InclusionProof, empty_digest, verify_extension, verify_includes
from repro.log.distributed import (
    LogConfig,
    LogUpdateRejected,
    MultiSigScheme,
    UpdateRound,
    audit_chunk_indices,
    shard_transition_message,
)
from repro.log.sharded import ShardedInclusionProof, shard_leaf, shard_of
from repro.metering import OpMeter
from repro.storage.blockstore import BlockStore, InMemoryBlockStore


class HsmUnavailableError(Exception):
    """The HSM has fail-stopped (benign hardware failure)."""


class HsmRefusedError(Exception):
    """The HSM refused a request that violates its policy."""


class HsmStaleProofError(HsmRefusedError):
    """The inclusion proof does not verify against the device's current
    digest.  Proofs are digest-exact, so this usually means a later update
    epoch advanced the log mid-recovery — the client should fetch a fresh
    proof and retry, rather than write the share off as ⊥."""


@dataclass(frozen=True)
class HsmPublicInfo:
    """What an HSM publishes: identity, keys, epoch."""

    index: int
    bfe_public: BfePublicKey
    sig_public: object
    key_epoch: int


@dataclass(frozen=True)
class DecryptShareRequest:
    """The client's message to one HSM during recovery (step Ï of Fig. 3)."""

    username: str
    log_identifier: bytes
    commitment: bytes  # the logged value h
    opening: CommitmentOpening
    inclusion_proof: InclusionProof
    share_ciphertext: BfeCiphertext
    context: bytes  # BFE domain separation: username || salt || cluster
    response_key: ECPoint  # fresh per-recovery public key (§8)


@dataclass(frozen=True)
class StolenSecrets:
    """What a physical attacker extracts from a compromised HSM."""

    index: int
    bfe_secret: BfeSecretKey
    sig_secret: int
    log_digest: bytes


class HsmDevice:
    """One hardware security module in the fleet."""

    #: Lock contract, checked by `repro.lintkit`'s lock-discipline pass:
    #: the foreign-transition inbox is the only cross-thread state (epoch
    #: lanes push offers while this device's worker drains them).
    _GUARDED_BY = {
        "_pending_foreign": "_offer_lock",
    }

    def __init__(
        self,
        index: int,
        bloom_params: BloomParams,
        multisig_scheme: MultiSigScheme,
        log_config: Optional[LogConfig] = None,
        store: Optional[BlockStore] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.index = index
        self.bloom_params = bloom_params
        self.multisig_scheme = multisig_scheme
        self.log_config = log_config or LogConfig()
        self.meter = OpMeter()
        self.is_failed = False
        self.key_epoch = 0
        self.rotations = 0
        self.garbage_collections_seen = 0
        self._rng = rng
        self._store = store if store is not None else InMemoryBlockStore()

        with self.meter.attached():
            self._bfe_public, self._bfe_secret = BloomFilterEncryption.keygen(
                bloom_params, self._store, rng
            )
            self._sig_keypair = multisig_scheme.keygen(rng)
        # One digest per shard lane of the log (a 1-element list for the
        # legacy unsharded log).  The shard count is trusted configuration:
        # it is bound into every signed transition, and write-once relies on
        # identifier->shard routing being fixed.
        self._shard_digests = [empty_digest()] * max(1, self.log_config.num_shards)
        # Quorum-signed transitions for *foreign* shards (lanes whose
        # committee this device is not on), offered by the provider and
        # verified lazily on first use — see offer_certified_transition.
        # The lock makes offers a cheap cross-thread push (epoch lanes
        # enqueue directly; this device's worker drains at sync time).
        self._pending_foreign: Dict[int, List] = {}
        self._offer_lock = threading.Lock()
        # Incremental cross-shard root over _shard_digests: adopting one
        # lane's transition re-anchors in O(log S) hashes instead of the
        # O(S) rebuild cross_shard_root pays.  Dirty lanes are detected by
        # comparing against the cached leaves on read, so every digest
        # mutation path (accept, sync, GC, reshard) is covered without
        # hooks.  No lock: all _shard_digests access is already serialized
        # by the device's FIFO worker discipline.
        self._root_tree: Optional[IncrementalMerkleTree] = None
        self._root_leaves: List[bytes] = []
        # Directory of fleet signing keys, installed at provisioning time so
        # the device can verify aggregate signatures (the paper's aggregate
        # public key).  index -> public key object.
        self._sig_directory: Dict[int, object] = {}

    # -- provisioning -------------------------------------------------------
    def public_info(self) -> HsmPublicInfo:
        return HsmPublicInfo(
            index=self.index,
            bfe_public=self._bfe_public,
            sig_public=self._sig_keypair.public,
            key_epoch=self.key_epoch,
        )

    def install_signer_directory(self, directory: Dict[int, object]) -> None:
        """Install the fleet's signature public keys (run once at setup)."""
        self._sig_directory = dict(directory)

    def rehost_store(self, store: BlockStore) -> None:
        """Re-point this device at a (restored) provider-hosted block store.

        The device's root AES key never leaves its tamper boundary, so
        after a provider restart it can keep using its outsourced key array
        as long as the provider re-hosts the same blocks — integrity of
        every block read is still checked by the secure-deletion tree's
        authenticated encryption, exactly as before the crash.
        """
        self._store = store
        self._bfe_secret.tree._store = store

    @property
    def num_shards(self) -> int:
        """How many shard lanes this device tracks (1 = unsharded)."""
        return len(self._shard_digests)

    @property
    def log_digest(self) -> bytes:
        """The device's single log anchor.

        Unsharded: the one digest it tracks.  Sharded: the cross-shard
        root over its per-shard digests — the same value
        ``ShardedLog.digest`` publishes once every lane has committed.
        Reading the anchor first verifies and applies any offered foreign
        transitions (a trust-critical read must be current).
        """
        if len(self._shard_digests) == 1:
            return self._shard_digests[0]
        with self._offer_lock:
            pending = sorted(self._pending_foreign)
        if pending:
            with self.meter.attached():
                for shard in pending:
                    self._sync_shard(shard)
        return self._incremental_root()

    def _incremental_root(self) -> bytes:
        """The cross-shard root over this device's per-shard digests,
        rehashing only the lanes that moved since the last read
        (byte-identical to :func:`cross_shard_root`)."""
        if self._root_tree is None or len(self._root_leaves) != len(
            self._shard_digests
        ):
            # First sharded read, or the arity changed (reshard): rebuild.
            self._root_leaves = list(self._shard_digests)
            self._root_tree = IncrementalMerkleTree(
                [shard_leaf(i, d) for i, d in enumerate(self._root_leaves)]
            )
            return self._root_tree.root
        for index, digest in enumerate(self._shard_digests):
            if digest != self._root_leaves[index]:
                self._root_tree.update(index, shard_leaf(index, digest))
                self._root_leaves[index] = digest
        return self._root_tree.root

    @property
    def _log_digest(self) -> bytes:
        # Legacy seam (tests re-sync unsharded devices through it).
        return self._shard_digests[0]

    @_log_digest.setter
    def _log_digest(self, digest: bytes) -> None:
        if len(self._shard_digests) != 1:
            raise ValueError("sharded devices have no single writable digest")
        self._shard_digests[0] = digest

    def shard_digest(self, shard: int) -> bytes:
        """The device's digest for one shard lane."""
        return self._shard_digests[shard]

    # -- failure injection -----------------------------------------------------
    def fail_stop(self) -> None:
        self.is_failed = True

    def restart(self) -> None:
        self.is_failed = False

    def _check_alive(self) -> None:
        if self.is_failed:
            raise HsmUnavailableError(f"HSM {self.index} has fail-stopped")

    # -- log update protocol (HSM side of Figure 5) ------------------------------
    def _round_shard(self, round_: UpdateRound) -> int:
        """Validate a round's shard stamp against this device's arity."""
        shard = getattr(round_, "shard", 0)
        num_shards = getattr(round_, "num_shards", 1)
        if num_shards != len(self._shard_digests) or not (0 <= shard < num_shards):
            raise LogUpdateRejected(
                f"HSM {self.index}: round claims shard {shard}/{num_shards}, "
                f"I track {len(self._shard_digests)} shard(s)"
            )
        return shard

    def audit_log_update(self, round_: UpdateRound):
        """Audit C chunks of the proposed update; sign (d, d', R) if clean."""
        self._check_alive()
        with self.meter.attached():
            shard = self._round_shard(round_)
            if round_.old_digest != self._shard_digests[shard]:
                raise LogUpdateRejected(
                    f"HSM {self.index}: update does not build on my digest"
                )
            indices = audit_chunk_indices(
                round_.root, self.index, round_.num_chunks, self.log_config.audit_count
            )
            for idx in indices:
                self._audit_one_chunk(round_, idx)
            return self.multisig_scheme.sign(
                self._sig_keypair.secret,
                shard_transition_message(
                    shard,
                    len(self._shard_digests),
                    round_.old_digest,
                    round_.new_digest,
                    round_.root,
                ),
            )

    def audit_specific_chunks(self, round_: UpdateRound, indices: Sequence[int]) -> None:
        """Appendix B.3 coverage: audit chunks on behalf of a failed peer.

        The caller (the provider) cannot be trusted to pick which chunks to
        skip — but asking for *extra* audits can only increase scrutiny, so
        serving this request is safe.
        """
        self._check_alive()
        with self.meter.attached():
            shard = self._round_shard(round_)
            if round_.old_digest != self._shard_digests[shard]:
                raise LogUpdateRejected(
                    f"HSM {self.index}: coverage request for a foreign digest"
                )
            for idx in indices:
                self._audit_one_chunk(round_, idx)

    def _audit_one_chunk(self, round_: UpdateRound, idx: int) -> None:
        package, proof = round_.chunk_with_proof(idx)
        metering.count("io_bytes", package.wire_size())
        header = package.header
        if header.index != idx:
            raise LogUpdateRejected(f"HSM {self.index}: chunk {idx} header index mismatch")
        if not MerkleTree.verify(round_.root, header.leaf_bytes(), proof) or proof.index != idx:
            raise LogUpdateRejected(f"HSM {self.index}: chunk {idx} not committed under R")
        if not package.proofs_consistent():
            raise LogUpdateRejected(f"HSM {self.index}: chunk {idx} proofs do not match header")
        if not verify_extension(header.start_digest, header.end_digest, package.proofs):
            raise LogUpdateRejected(f"HSM {self.index}: chunk {idx} extension proof invalid")
        if idx == 0:
            if header.start_digest != round_.old_digest:
                raise LogUpdateRejected(f"HSM {self.index}: first chunk does not start at d")
        else:
            prev_header, prev_proof = round_.header_with_proof(idx - 1)
            metering.count("io_bytes", len(prev_header.leaf_bytes()))
            if (
                not MerkleTree.verify(round_.root, prev_header.leaf_bytes(), prev_proof)
                or prev_proof.index != idx - 1
            ):
                raise LogUpdateRejected(
                    f"HSM {self.index}: chunk {idx - 1} header not committed under R"
                )
            if prev_header.end_digest != header.start_digest:
                raise LogUpdateRejected(
                    f"HSM {self.index}: chunk {idx} does not continue chunk {idx - 1}"
                )
        if idx == round_.num_chunks - 1 and header.end_digest != round_.new_digest:
            raise LogUpdateRejected(f"HSM {self.index}: last chunk does not end at d'")

    def accept_log_digest(
        self, round_: UpdateRound, aggregate, signer_ids: Tuple[int, ...]
    ) -> None:
        """Adopt d' after verifying the aggregate signature and quorum."""
        self._accept_transition(
            round_.old_digest,
            round_.new_digest,
            round_.root,
            aggregate,
            signer_ids,
            shard=getattr(round_, "shard", 0),
            num_shards=getattr(round_, "num_shards", 1),
        )

    def accept_certified_transition(self, transition) -> None:
        """Catch-up path: replay a quorum-signed transition after downtime."""
        self._accept_transition(
            transition.old_digest,
            transition.new_digest,
            transition.root,
            transition.aggregate,
            transition.signer_ids,
            shard=getattr(transition, "shard", 0),
            num_shards=getattr(transition, "num_shards", 1),
        )

    def committee_for(self, shard: int) -> List[int]:
        """The shard's certifying committee: directory indices ≡ shard (mod S).

        With ``num_shards == 1`` every device is on the (single) committee,
        reproducing the legacy full-fleet quorum.  Committees are a *cost*
        partition, not a trust boundary: any honest device's signature
        attests a real audit, and the quorum threshold is sized to the
        committee, so ``f_secret`` tolerance applies per committee —
        deployments choose ``S`` so ``N/S`` keeps that bound acceptable.
        """
        num_shards = len(self._shard_digests)
        if num_shards == 1:
            return sorted(self._sig_directory)
        return sorted(i for i in self._sig_directory if i % num_shards == shard)

    def _accept_transition(
        self,
        old_digest: bytes,
        new_digest: bytes,
        root: bytes,
        aggregate,
        signer_ids: Tuple[int, ...],
        shard: int = 0,
        num_shards: int = 1,
    ) -> None:
        self._check_alive()
        with self.meter.attached():
            self._apply_transition(
                old_digest, new_digest, root, aggregate, signer_ids, shard, num_shards
            )

    def _apply_transition(
        self,
        old_digest: bytes,
        new_digest: bytes,
        root: bytes,
        aggregate,
        signer_ids: Tuple[int, ...],
        shard: int,
        num_shards: int,
    ) -> None:
        """Verify + adopt one transition (caller provides metering context)."""
        if num_shards != len(self._shard_digests) or not (0 <= shard < num_shards):
            raise LogUpdateRejected(
                f"HSM {self.index}: transition claims shard {shard}/{num_shards}, "
                f"I track {len(self._shard_digests)} shard(s)"
            )
        if old_digest != self._shard_digests[shard]:
            raise LogUpdateRejected(
                f"HSM {self.index}: aggregate is for a different base digest"
            )
        unknown = [i for i in signer_ids if i not in self._sig_directory]
        if unknown:
            raise LogUpdateRejected(f"HSM {self.index}: unknown signers {unknown}")
        if len(set(signer_ids)) != len(signer_ids):
            raise LogUpdateRejected(f"HSM {self.index}: duplicate signers")
        # Only the shard's own committee counts toward its quorum: otherwise
        # quorum-many compromised devices from *any* committee could certify
        # transitions for *every* shard, voiding the per-committee f_secret
        # bound.  (Off-committee signatures may ride along — extra audits —
        # but they never substitute for committee consent.)
        committee = set(self.committee_for(shard))
        committee_signers = [i for i in signer_ids if i in committee]
        quorum = self.log_config.quorum_fraction * len(committee)
        if len(committee_signers) < quorum:
            raise LogUpdateRejected(
                f"HSM {self.index}: only {len(committee_signers)} committee "
                f"signers, need {quorum:.1f}"
            )
        publics = [self._sig_directory[i] for i in signer_ids]
        message = shard_transition_message(
            shard, num_shards, old_digest, new_digest, root
        )
        if not self.multisig_scheme.verify_aggregate(publics, message, aggregate):
            raise LogUpdateRejected(f"HSM {self.index}: aggregate signature invalid")
        self._shard_digests[shard] = new_digest

    # -- lazy adoption of foreign shard lanes ---------------------------------------
    def offer_certified_transition(self, transition) -> None:
        """Queue a foreign shard's quorum-signed transition for lazy adoption.

        Devices off a shard's committee do not audit that shard's epochs;
        the provider *offers* them each certified transition instead.  The
        offer itself is unverified (a cheap thread-safe enqueue, so the
        epoch's wall clock never pays N aggregate verifications); the
        device verifies the chain on first use — a decrypt anchored to that
        shard, or a read of :attr:`log_digest` — charging its own meter
        then.  A bogus offer can only cost the device one failed
        verification: adoption requires the committee quorum's signature,
        so safety never rests on the offer queue.  If the queue overflows,
        newest offers are shed; the provider re-offers the missing suffix
        next epoch by checking :meth:`offered_frontier`, so a shed offer is
        lag, never a permanent gap.
        """
        if self.is_failed:
            return
        shard = getattr(transition, "shard", 0)
        with self._offer_lock:
            queue = self._pending_foreign.setdefault(shard, [])
            if len(queue) < 4096:  # bound provider-driven memory
                queue.append(transition)

    def offered_frontier(self, shard: int) -> bytes:
        """Where this device's view of a foreign shard will be after a sync:
        the last queued offer's end digest, or the adopted digest if the
        queue is empty.  The provider reads this (cheap, no crypto) to
        offer exactly the chain suffix the device is missing."""
        with self._offer_lock:
            queue = self._pending_foreign.get(shard)
            if queue:
                return queue[-1].new_digest
        return self._shard_digests[shard]

    def _sync_shard(self, shard: int) -> None:
        """Verify + apply offered transitions for one shard, in chain order.

        Offers that do not extend the current digest (stale, duplicate, or
        forged) are dropped; a verification failure drops only the bad
        offer — the rest of the queue survives for the next sync — and
        propagates, because an invalid aggregate that *claims* to extend
        the chain is an attack, not noise.  Caller provides the metering
        context.
        """
        while True:
            with self._offer_lock:
                queue = self._pending_foreign.get(shard)
                if not queue:
                    self._pending_foreign.pop(shard, None)
                    return
                transition = queue.pop(0)
            if transition.old_digest != self._shard_digests[shard]:
                continue
            self._apply_transition(
                transition.old_digest,
                transition.new_digest,
                transition.root,
                transition.aggregate,
                transition.signer_ids,
                getattr(transition, "shard", 0),
                getattr(transition, "num_shards", 1),
            )

    # -- recovery (step Ð of Figure 3) ---------------------------------------------
    def decrypt_share(self, request: DecryptShareRequest) -> ElGamalCiphertext:
        """Verify the logged recovery attempt, decrypt + puncture, reply.

        Raises :class:`HsmRefusedError` if any check fails; raises
        :class:`PuncturedKeyError` if the share was already recovered.
        """
        self._check_alive()
        with self.meter.attached():
            # (0) the identifier names this user and an allowed attempt slot
            try:
                id_user, attempt_no = parse_attempt_identifier(request.log_identifier)
            except ValueError as exc:
                raise HsmRefusedError(f"HSM {self.index}: {exc}") from exc
            if id_user != request.username:
                raise HsmRefusedError(
                    f"HSM {self.index}: log identifier names a different user"
                )
            if attempt_no >= self.log_config.max_attempts_per_user:
                raise HsmRefusedError(
                    f"HSM {self.index}: attempt {attempt_no} exceeds the per-user limit"
                )
            # (1) the recovery attempt is in the log the HSM trusts.  The
            # device verifies against the digest *it* tracks for the
            # identifier's shard — never against digests the proof claims —
            # and recomputes the shard routing itself, so a proof can never
            # shop an identifier into a foreign lane.
            proof = request.inclusion_proof
            num_shards = len(self._shard_digests)
            if isinstance(proof, ShardedInclusionProof):
                if proof.num_shards != num_shards:
                    raise HsmStaleProofError(
                        f"HSM {self.index}: proof is for a {proof.num_shards}-shard "
                        f"log, I track {num_shards} shard(s) (refresh the proof)"
                    )
                if proof.shard != shard_of(request.log_identifier, num_shards):
                    raise HsmRefusedError(
                        f"HSM {self.index}: identifier does not route to shard "
                        f"{proof.shard}"
                    )
                # Off-committee lanes are adopted lazily: verify any offered
                # quorum-signed transitions for this shard before judging
                # the proof against it.
                if proof.shard in self._pending_foreign:
                    try:
                        self._sync_shard(proof.shard)
                    except LogUpdateRejected as exc:
                        raise HsmRefusedError(
                            f"HSM {self.index}: offered log transition invalid: {exc}"
                        ) from exc
                trusted_digest = self._shard_digests[proof.shard]
                inner_proof = proof.inclusion
            else:
                if num_shards != 1:
                    raise HsmStaleProofError(
                        f"HSM {self.index}: unsharded proof against a "
                        f"{num_shards}-shard log (refresh the proof)"
                    )
                trusted_digest = self._shard_digests[0]
                inner_proof = proof
            if not verify_includes(
                trusted_digest,
                request.log_identifier,
                request.commitment,
                inner_proof,
            ):
                raise HsmStaleProofError(
                    f"HSM {self.index}: recovery attempt not proven against my"
                    " current log digest"
                )
            # (2) the opening matches the logged commitment
            if not verify_opening(request.commitment, request.opening):
                raise HsmRefusedError(f"HSM {self.index}: bad commitment opening")
            if request.opening.username != request.username:
                raise HsmRefusedError(f"HSM {self.index}: username mismatch in opening")
            # (3) this HSM is actually in the committed recovery cluster
            if self.index not in request.opening.cluster:
                raise HsmRefusedError(
                    f"HSM {self.index}: not a member of the committed cluster"
                )
            # (4) decrypt the share; the plaintext must be bound to the user
            try:
                plaintext = BloomFilterEncryption.decrypt(
                    self._bfe_secret, request.share_ciphertext, context=request.context
                )
            except AuthenticationError as exc:
                # Decryption under this HSM's keys/context fails: the client
                # presented a share that was not encrypted to this device
                # (e.g. a wrong-PIN cluster that happens to overlap).
                raise HsmRefusedError(
                    f"HSM {self.index}: share does not decrypt under my keys"
                ) from exc
            username_bytes = request.username.encode("utf-8")
            prefix = len(username_bytes).to_bytes(2, "big") + username_bytes
            if not plaintext.startswith(prefix):
                raise HsmRefusedError(
                    f"HSM {self.index}: decrypted share is bound to another user"
                )
            share_bytes = plaintext[len(prefix):]
            # (5) forward security: puncture before replying
            BloomFilterEncryption.puncture(
                self._bfe_secret, request.share_ciphertext, context=request.context
            )
            # (6) reply under the client's fresh per-recovery key (§8)
            return HashedElGamal.encrypt(
                request.response_key,
                share_bytes,
                context=b"recovery-reply" + username_bytes,
            )

    # -- key rotation (§9.1) ----------------------------------------------------------
    def needs_rotation(self, threshold: float = 0.5) -> bool:
        return self._bfe_secret.needs_rotation(threshold)

    def rotate_keys(self, store: Optional[BlockStore] = None) -> HsmPublicInfo:
        """Generate a fresh puncturable keypair; bump the key epoch."""
        self._check_alive()
        with self.meter.attached():
            self._store = store if store is not None else InMemoryBlockStore()
            self._bfe_public, self._bfe_secret = BloomFilterEncryption.keygen(
                self.bloom_params, self._store, self._rng
            )
            self.key_epoch += 1
            self.rotations += 1
        return self.public_info()

    # -- garbage collection (§6.2) --------------------------------------------------------
    def accept_garbage_collection(self) -> None:
        self._check_alive()
        if self.garbage_collections_seen >= self.log_config.max_garbage_collections:
            raise HsmRefusedError(
                f"HSM {self.index}: garbage-collection budget exhausted"
            )
        self.garbage_collections_seen += 1
        self._shard_digests = [empty_digest()] * len(self._shard_digests)
        with self._offer_lock:
            self._pending_foreign = {}

    # -- resharding (one-way provisioning step) -------------------------------------------
    def accept_reshard(self, num_shards: int) -> None:
        """Consent to the log migrating onto ``num_shards`` parallel lanes.

        Strictly one-way and single-shot: only an unsharded device may
        accept, so the provider cannot repeatedly reshuffle identifiers
        between lanes (re-routing is what would reopen write-once).  The
        device restarts every lane at the empty digest and then audits the
        migrated content through ordinary epochs; completeness of the
        migration (nothing dropped) is an external-auditor check, the same
        trust class as garbage collection.
        """
        self._check_alive()
        if num_shards < 2:
            raise HsmRefusedError(
                f"HSM {self.index}: resharding needs >= 2 shards, got {num_shards}"
            )
        if len(self._shard_digests) != 1:
            raise HsmRefusedError(
                f"HSM {self.index}: already tracking {len(self._shard_digests)} "
                "shards; resharding is one-way"
            )
        self._shard_digests = [empty_digest()] * num_shards
        with self._offer_lock:
            self._pending_foreign = {}

    # -- compromise (tests only) --------------------------------------------------------------
    def extract_secrets(self) -> StolenSecrets:
        """Model physical compromise: hand out all device secrets.

        This is *not* part of the firmware API; it exists so the security
        test suite can play the adaptive-corruption adversary of Theorem 10.
        """
        return StolenSecrets(
            index=self.index,
            bfe_secret=self._bfe_secret,
            sig_secret=self._sig_keypair.secret,
            log_digest=self.log_digest,
        )
