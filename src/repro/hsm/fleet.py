"""Fleet management: provisioning and operating N HSMs.

The fleet object owns device construction, installs the signer directory on
every device (the paper's "aggregate public key" distribution at setup),
publishes the master public key ``mpk = (pk_1, ..., pk_N)``, and provides
fault-injection and compromise helpers used by the evaluation.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Sequence

from repro.crypto.bloom import BloomParams
from repro.hsm.device import HsmDevice, HsmPublicInfo
from repro.log.distributed import EcdsaMultiSig, LogConfig, MultiSigScheme
from repro.storage.blockstore import BlockStore


class HsmFleet:
    """All HSMs in one data center."""

    def __init__(
        self,
        num_hsms: int,
        bloom_params: BloomParams,
        multisig_scheme: Optional[MultiSigScheme] = None,
        log_config: Optional[LogConfig] = None,
        rng: Optional[random.Random] = None,
        store_factory: Optional[Callable[[int], BlockStore]] = None,
    ) -> None:
        if num_hsms < 1:
            raise ValueError("fleet needs at least one HSM")
        self.multisig_scheme = multisig_scheme or EcdsaMultiSig()
        self.log_config = log_config or LogConfig()
        self.hsms: List[HsmDevice] = [
            HsmDevice(
                index=i,
                bloom_params=bloom_params,
                multisig_scheme=self.multisig_scheme,
                log_config=self.log_config,
                rng=rng,
                store=store_factory(i) if store_factory is not None else None,
            )
            for i in range(num_hsms)
        ]
        directory: Dict[int, object] = {
            h.index: h.public_info().sig_public for h in self.hsms
        }
        for hsm in self.hsms:
            hsm.install_signer_directory(directory)

    # -- public key material -------------------------------------------------
    def __len__(self) -> int:
        return len(self.hsms)

    def __getitem__(self, index: int) -> HsmDevice:
        return self.hsms[index]

    def __iter__(self):
        return iter(self.hsms)

    def master_public_key(self) -> List[HsmPublicInfo]:
        """The paper's mpk: every HSM's public info, in index order.

        Clients must obtain this authentically (the paper suggests logging
        membership changes and hardware attestation); here the deployment
        hands it over at client creation.
        """
        return [h.public_info() for h in self.hsms]

    def online(self) -> List[HsmDevice]:
        return [h for h in self.hsms if not h.is_failed]

    # -- fault / compromise injection -------------------------------------------
    def fail_random(self, count: int, rng: Optional[random.Random] = None) -> List[int]:
        """Fail-stop ``count`` random live HSMs; return their indices."""
        rng = rng or random.Random()
        online = [h.index for h in self.online()]
        if count < 0:
            raise ValueError(f"cannot fail a negative number of HSMs ({count})")
        if count > len(online):
            raise ValueError(
                f"cannot fail {count} HSMs: only {len(online)} of {len(self.hsms)}"
                " are online"
            )
        victims = rng.sample(online, count)
        for index in victims:
            self.hsms[index].fail_stop()
        return victims

    def restart_all(self) -> None:
        for hsm in self.hsms:
            hsm.restart()

    def restart(self, indices: Sequence[int]) -> None:
        """Bring specific failed HSMs back online (a replacement wave:
        chaos scenarios fail a batch via :meth:`fail_random` and later
        restart exactly that batch, modeling device replacement)."""
        for index in indices:
            self.hsms[index].restart()

    def compromise(self, indices: Sequence[int]):
        """Extract secrets from the given HSMs (the adaptive attacker)."""
        return [self.hsms[i].extract_secrets() for i in indices]

    # -- aggregate metering ------------------------------------------------------
    def total_op_counts(self) -> Dict[str, float]:
        totals: Dict[str, float] = {}
        for hsm in self.hsms:
            for op, units in hsm.meter.counts.items():
                totals[op] = totals.get(op, 0) + units
        return totals

    def reset_meters(self) -> None:
        for hsm in self.hsms:
            hsm.meter.reset()
