"""Operation-count → modeled-seconds conversion (paper Table 7).

Every crypto primitive in this package reports abstract operations to the
ambient :class:`~repro.metering.OpMeter`.  This module prices an operation
trace on a chosen device, using the paper's measured SoloKey rates:

==================  ============  =====================================
Operation           SoloKey rate  Source
==================  ============  =====================================
pairing             0.43 /s       Table 7 (BLS12-381, JEDI library)
ecdsa_verify        5.85 /s       Table 7
elgamal_dec         6.67 /s       Table 7
ec_mult (g^x)       7.69 /s       Table 7
hmac                2,173.91 /s   Table 7 (HMAC-SHA256)
aes_block           3,703.70 /s   Table 7 (AES-128)
io RTT, HID 32 B    71.43 /s      Table 7
io RTT, CDC 32 B    2,277.90 /s   Table 7
flash read 32 B     166,000 /s    Table 7
==================  ============  =====================================

Derived rates (documented assumptions):

- ``elgamal_enc`` = 2 × ``ec_mult`` (two point multiplications + cheap AE).
- ``bls_sign``    = 2 × ``ec_mult`` (one G1 multiplication over the larger
  381-bit field ≈ twice a P-256 multiplication).
- ``sha256_block`` = 17,000/s, calibrated against the Figure 8 log-audit
  measurements (the Table 7 HMAC row is call-overhead-bound and would
  underestimate raw compression throughput by ~8x).
- ``io_bytes`` is priced at bulk throughput (HID 64 KB/s, CDC 32x that),
  matching §9's prose; Table 7's per-RTT rows measure latency-bound
  32-byte exchanges.

Compute ops scale across devices by the ``gx_per_sec`` ratio (the paper's
own method for Figure 12); transport and flash are device properties that
do not scale with compute.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Union

from repro.hsm.devices import SAFENET_A700, SOLOKEY, DeviceSpec
from repro.metering import OpMeter


class Transport(enum.Enum):
    """Host<->HSM transport (the paper rewrote SoloKey firmware for CDC)."""

    USB_HID = "usb-hid"
    USB_CDC = "usb-cdc"
    NETWORK = "network"  # rack HSMs (SafeNet) attach via GigE

    def bytes_per_second(self) -> float:
        # Bulk throughput, not 32-byte round-trip latency: the paper states
        # USB HID maxes at 64 KB/s and the CDC rewrite gave "roughly a 32x
        # increase in I/O throughput" (§9).  Table 7's RTT rows (71.43/s and
        # 2,277.9/s for 32-byte messages) measure latency-bound exchanges
        # and keep the same 32x ratio.
        if self is Transport.USB_HID:
            return 64e3
        if self is Transport.USB_CDC:
            return 32 * 64e3
        return 100e6 / 8  # ~100 Mb/s effective for a GigE appliance


# SoloKey base rates, ops per second.
_SOLOKEY_RATES: Dict[str, float] = {
    "pairing": 0.43,
    "ecdsa_verify": 5.85,
    "elgamal_dec": 6.67,
    "ec_mult": 7.69,
    "elgamal_enc": 7.69 / 2.0,
    "bls_sign": 7.69 / 2.0,
    "hmac": 2173.91,
    "aes_block": 3703.70,
    # Raw SHA-256 compressions per second.  Table 7's HMAC row (2,173.91/s
    # for short messages) is dominated by call overhead, not compression:
    # the paper's Figure 8 log-audit measurements imply ~3 ms to check one
    # ~54-hash insertion proof, i.e. ~17K compressions/s on the SoloKey's
    # Cortex-M4.  We calibrate to that; see EXPERIMENTS.md.
    "sha256_block": 17_000.0,
}

_FLASH_BYTES_PER_SEC = 166000.0 * 32

# Operation categories for stacked-breakdown figures (Figs. 9-11).
CATEGORY: Dict[str, str] = {
    "pairing": "public_key",
    "ecdsa_verify": "public_key",
    "elgamal_dec": "public_key",
    "elgamal_enc": "public_key",
    "ec_mult": "public_key",
    "bls_sign": "public_key",
    "hmac": "symmetric",
    "aes_block": "symmetric",
    "sha256_block": "symmetric",
    "io_bytes": "io",
    "flash_read_bytes": "flash",
}


@dataclass
class CostBreakdown:
    """Modeled seconds split by category."""

    public_key: float = 0.0
    symmetric: float = 0.0
    io: float = 0.0
    flash: float = 0.0

    @property
    def total(self) -> float:
        return self.public_key + self.symmetric + self.io + self.flash

    def __add__(self, other: "CostBreakdown") -> "CostBreakdown":
        return CostBreakdown(
            public_key=self.public_key + other.public_key,
            symmetric=self.symmetric + other.symmetric,
            io=self.io + other.io,
            flash=self.flash + other.flash,
        )

    def scaled(self, factor: float) -> "CostBreakdown":
        return CostBreakdown(
            public_key=self.public_key * factor,
            symmetric=self.symmetric * factor,
            io=self.io * factor,
            flash=self.flash * factor,
        )

    def as_dict(self) -> Dict[str, float]:
        return {
            "public_key": self.public_key,
            "symmetric": self.symmetric,
            "io": self.io,
            "flash": self.flash,
            "total": self.total,
        }


class CostModel:
    """Prices operation traces on a device + transport combination."""

    def __init__(
        self,
        device: DeviceSpec = SOLOKEY,
        transport: Optional[Transport] = None,
    ) -> None:
        self.device = device
        if transport is None:
            transport = Transport.NETWORK if device is SAFENET_A700 else Transport.USB_CDC
        self.transport = transport

    # -- rate lookups -----------------------------------------------------------
    def seconds_per_op(self, op: str) -> float:
        if op == "io_bytes":
            return 1.0 / self.transport.bytes_per_second()
        if op == "flash_read_bytes":
            return 1.0 / _FLASH_BYTES_PER_SEC
        base_rate = _SOLOKEY_RATES.get(op)
        if base_rate is None:
            raise KeyError(f"unknown operation {op!r}")
        return 1.0 / (base_rate * self.device.scale_factor())

    # -- pricing -----------------------------------------------------------------
    def breakdown(self, counts: Union[OpMeter, Mapping[str, float]]) -> CostBreakdown:
        if isinstance(counts, OpMeter):
            counts = counts.counts
        result = CostBreakdown()
        for op, units in counts.items():
            if units == 0:
                continue
            seconds = units * self.seconds_per_op(op)
            category = CATEGORY.get(op)
            if category == "public_key":
                result.public_key += seconds
            elif category == "symmetric":
                result.symmetric += seconds
            elif category == "io":
                result.io += seconds
            elif category == "flash":
                result.flash += seconds
            else:  # pragma: no cover - every known op is categorized
                raise KeyError(f"operation {op!r} has no category")
        return result

    def seconds(self, counts: Union[OpMeter, Mapping[str, float]]) -> float:
        return self.breakdown(counts).total

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"CostModel({self.device.name}, {self.transport.value})"
