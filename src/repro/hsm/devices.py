"""Device catalog (paper Table 2).

Hardware security modules are physically hardened but computationally weak;
the paper's entire design is shaped by this (Table 2: a $20 SoloKey performs
8 P-256 point multiplications per second while a laptop CPU does 22,338).
``DeviceSpec`` records the catalog rows; the cost model scales the SoloKey's
measured per-operation rates (Table 7) to other devices by the ratio of
their ``gx_per_sec`` columns, exactly as the paper does for Figure 12.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class DeviceSpec:
    """One row of Table 2."""

    name: str
    price_usd: float
    gx_per_sec: float  # NIST P-256 point multiplications per second
    storage_kb: Optional[int]  # None = effectively unbounded (host CPU)
    fips_140_2: bool
    notes: str = ""

    def scale_factor(self) -> float:
        """Compute-speed multiple relative to the measured SoloKey."""
        return self.gx_per_sec / SOLOKEY.gx_per_sec


# Table 2 rows.  The SoloKey's gx rate here is the Table 7 measured value
# (7.69/s); Table 2 rounds it to 8.
SOLOKEY = DeviceSpec(
    name="SoloKey",
    price_usd=20.0,
    gx_per_sec=7.69,
    storage_kb=256,
    fips_140_2=False,
    notes="open-source FIDO2 key; 256 KB shared between code and data",
)

YUBIHSM2 = DeviceSpec(
    name="YubiHSM 2",
    price_usd=650.0,
    gx_per_sec=14.0,
    storage_kb=126,
    fips_140_2=False,
)

SAFENET_A700 = DeviceSpec(
    name="SafeNet A700",
    price_usd=18468.0,
    gx_per_sec=2000.0,
    storage_kb=2048,
    fips_140_2=True,
    notes="rack-mounted network HSM",
)

INTEL_I7 = DeviceSpec(
    name="Intel i7-8569U (CPU)",
    price_usd=431.0,
    gx_per_sec=22338.0,
    storage_kb=None,
    fips_140_2=False,
    notes="no physical security; reference point only",
)

# The client device of the evaluation (Google Pixel 4).  Not in Table 2; its
# rate is calibrated so that the modeled client backup time matches the
# paper's measured 0.34 s of public-key work (Figure 10): a backup performs
# n·(k+1) = 40·5 = 200 point multiplications, giving 200/0.34 ≈ 590/s.
PIXEL4 = DeviceSpec(
    name="Google Pixel 4",
    price_usd=799.0,
    gx_per_sec=590.0,
    storage_kb=None,
    fips_140_2=False,
    notes="client phone; rate calibrated to the paper's save-time measurement",
)

ALL_HSMS = (SOLOKEY, YUBIHSM2, SAFENET_A700)
CATALOG = (SOLOKEY, YUBIHSM2, SAFENET_A700, INTEL_I7)
