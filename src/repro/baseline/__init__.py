"""The status-quo baseline (paper §9.2).

Models today's PIN-based backup systems (Apple's Cloud Key Vault, Google's
Cloud Key Vault, Signal SVR): a *fixed* cluster of five HSMs shares one
keypair; the client encrypts (recovery key, salted PIN hash) to it; any
cluster member decrypts after checking the PIN hash and its local attempt
counter.  Every HSM in the cluster is a single point of security failure
for all users assigned to it — the weakness SafetyPin removes.
"""

from repro.baseline.system import (
    BaselineSystem,
    BaselineClient,
    BaselineHsm,
    BaselineRecoveryError,
    PinAttemptsExhausted,
)

__all__ = [
    "BaselineSystem",
    "BaselineClient",
    "BaselineHsm",
    "BaselineRecoveryError",
    "PinAttemptsExhausted",
]
