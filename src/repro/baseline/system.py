"""Fixed-cluster encrypted-backup baseline (paper §9.2 "Baseline").

Protocol, as the paper describes it:

- *Backup*: the client selects a fixed cluster of five HSMs and encrypts her
  recovery key together with a (salted) hash of her PIN under the cluster's
  public key.  The baseline recovery ciphertext is ~130 bytes.
- *Recovery*: the client sends the ciphertext plus the PIN hash to the
  cluster; any one HSM decrypts, compares hashes, and returns the key.
- *Brute-force defence*: each HSM independently limits the number of
  recovery attempts per ciphertext.  (Independently! — a determined
  attacker gets the limit times five, which the tests demonstrate.)

Security failure mode reproduced here: compromising any single cluster HSM
exposes every backup encrypted to that cluster (``tests/adversary`` shows
one stolen baseline HSM breaks all its users, while SafetyPin survives the
same event).
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro import metering
from repro.crypto.ec import ECKeyPair, P256
from repro.crypto.elgamal import ElGamalCiphertext, HashedElGamal
from repro.crypto.gcm import AuthenticationError
from repro.crypto.hashing import constant_time_equal, sha256
from repro.metering import OpMeter

CLUSTER_SIZE = 5  # "a device typically encrypts its backup key to ... five HSMs"


class BaselineRecoveryError(Exception):
    """Wrong PIN or undecryptable ciphertext."""


class PinAttemptsExhausted(Exception):
    """The HSM's per-ciphertext attempt counter ran out."""


def _pin_hash(pin: str, salt: bytes) -> bytes:
    return sha256(b"baseline-pin", salt, pin.encode("utf-8"))


@dataclass(frozen=True)
class BaselineCiphertext:
    """~130 bytes: salt + one ElGamal ciphertext over (key || pin-hash)."""

    salt: bytes
    body: ElGamalCiphertext

    def size_bytes(self) -> int:
        return len(self.salt) + len(self.body)

    def attempt_id(self) -> bytes:
        return sha256(b"baseline-attempt-id", self.salt, self.body.to_bytes())


class BaselineHsm:
    """One member of a fixed five-HSM cluster.

    All members hold the *same* decryption key (that is how the baseline
    gets fault tolerance), and each keeps its own local attempt counters.
    """

    def __init__(self, index: int, keypair: ECKeyPair, max_attempts: int = 10) -> None:
        self.index = index
        self._keypair = keypair
        self.max_attempts = max_attempts
        self._attempts: Dict[bytes, int] = {}
        self.meter = OpMeter()
        self.is_failed = False

    @property
    def public_key(self):
        return self._keypair.public

    def recover(self, ciphertext: BaselineCiphertext, pin_hash: bytes) -> bytes:
        """Decrypt, check the PIN hash, count the attempt."""
        if self.is_failed:
            raise BaselineRecoveryError(f"baseline HSM {self.index} is down")
        with self.meter.attached():
            attempt_key = ciphertext.attempt_id()
            used = self._attempts.get(attempt_key, 0)
            if used >= self.max_attempts:
                raise PinAttemptsExhausted(
                    f"baseline HSM {self.index}: attempt limit reached"
                )
            self._attempts[attempt_key] = used + 1
            try:
                plaintext = HashedElGamal.decrypt(
                    self._keypair.secret, ciphertext.body, context=b"baseline"
                )
            except AuthenticationError as exc:
                raise BaselineRecoveryError("undecryptable ciphertext") from exc
            stored_hash, recovery_key = plaintext[:32], plaintext[32:]
            if not constant_time_equal(stored_hash, pin_hash):
                raise BaselineRecoveryError("PIN hash mismatch")
            return recovery_key

    def fail_stop(self) -> None:
        self.is_failed = True

    def extract_secrets(self) -> int:
        """Physical compromise: the cluster secret key (breaks every user)."""
        return self._keypair.secret


class BaselineSystem:
    """A data center of fixed five-HSM clusters."""

    def __init__(self, num_clusters: int = 1, max_attempts: int = 10) -> None:
        self.clusters: List[List[BaselineHsm]] = []
        for c in range(num_clusters):
            keypair = P256.keygen()
            self.clusters.append(
                [
                    BaselineHsm(index=c * CLUSTER_SIZE + i, keypair=keypair, max_attempts=max_attempts)
                    for i in range(CLUSTER_SIZE)
                ]
            )
        self._backups: Dict[str, BaselineCiphertext] = {}
        self._assignment: Dict[str, int] = {}

    def new_client(self, username: str) -> "BaselineClient":
        cluster_index = len(self._assignment) % len(self.clusters)
        self._assignment[username] = cluster_index
        return BaselineClient(username, self, cluster_index)

    def cluster_for(self, username: str) -> List[BaselineHsm]:
        return self.clusters[self._assignment[username]]

    def upload(self, username: str, ciphertext: BaselineCiphertext) -> None:
        self._backups[username] = ciphertext

    def fetch(self, username: str) -> BaselineCiphertext:
        return self._backups[username]


class BaselineClient:
    """Client of the baseline system."""

    def __init__(self, username: str, system: BaselineSystem, cluster_index: int) -> None:
        self.username = username
        self.system = system
        self.cluster_index = cluster_index
        self.meter = OpMeter()

    def backup(self, recovery_key: bytes, pin: str) -> BaselineCiphertext:
        """Encrypt (pin-hash || key) to the fixed cluster's public key."""
        with self.meter.attached():
            salt = secrets.token_bytes(16)
            cluster = self.system.clusters[self.cluster_index]
            body = HashedElGamal.encrypt(
                cluster[0].public_key,
                _pin_hash(pin, salt) + recovery_key,
                context=b"baseline",
            )
            ciphertext = BaselineCiphertext(salt=salt, body=body)
        self.system.upload(self.username, ciphertext)
        return ciphertext

    def recover(self, pin: str) -> bytes:
        """Ask cluster members in order until one is alive."""
        ciphertext = self.system.fetch(self.username)
        with self.meter.attached():
            pin_hash = _pin_hash(pin, ciphertext.salt)
        last_error: Optional[Exception] = None
        for hsm in self.system.cluster_for(self.username):
            try:
                return hsm.recover(ciphertext, pin_hash)
            except BaselineRecoveryError as exc:
                if "is down" in str(exc):
                    last_error = exc
                    continue  # fail over to the next replica
                raise
        raise BaselineRecoveryError("entire baseline cluster is down") from last_error
