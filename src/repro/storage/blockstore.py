"""Untrusted external block stores.

The paper models the service provider as an oracle ``S`` with
``S.Get(addr)`` and ``S.Put(addr, block)`` (Appendix C).  The provider is
untrusted: it may return stale, corrupted, or swapped blocks.  The secure-
deletion layer must *detect* all such tampering (integrity) and guarantee
that deleted plaintext is unrecoverable even given every block the provider
ever saw plus the HSM's post-deletion state (secure deletion).

``TamperingBlockStore`` implements that adversary for the test suite: it
remembers every version of every block ever written and can be instructed to
corrupt, replay, or swap blocks on future reads.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Dict, List, Optional

from repro import metering


class BlockStore:
    """Abstract provider-side block oracle."""

    def get(self, addr: int) -> bytes:
        raise NotImplementedError

    def put(self, addr: int, block: bytes) -> None:
        raise NotImplementedError

    def __contains__(self, addr: int) -> bool:
        raise NotImplementedError


class InMemoryBlockStore(BlockStore):
    """An honest provider: a dict of address -> block.

    Reads and writes report ``io_bytes`` to the ambient meter — in the real
    system every block crosses the USB transport between host and HSM, and
    that I/O dominates puncturable-decryption cost (Figure 9).
    """

    def __init__(self) -> None:
        self._blocks: Dict[int, bytes] = {}

    def get(self, addr: int) -> bytes:
        block = self._blocks[addr]
        metering.count("io_bytes", len(block))
        return block

    def put(self, addr: int, block: bytes) -> None:
        metering.count("io_bytes", len(block))
        self._blocks[addr] = block

    def __contains__(self, addr: int) -> bool:
        return addr in self._blocks

    def __len__(self) -> int:
        return len(self._blocks)

    def total_bytes(self) -> int:
        return sum(len(b) for b in self._blocks.values())


class TamperingBlockStore(InMemoryBlockStore):
    """A malicious provider for integrity / secure-deletion tests.

    - keeps a full history of every version of every block (an attacker
      snapshotting its own storage),
    - ``corrupt(addr)`` flips a bit of a stored block,
    - ``replay(addr, version)`` serves a stale version on the next read,
    - ``swap(a, b)`` swaps two blocks,
    - ``intercept`` lets tests install an arbitrary read transformer.
    """

    def __init__(self) -> None:
        super().__init__()
        self.history: Dict[int, List[bytes]] = defaultdict(list)
        self._replay_next: Dict[int, bytes] = {}
        self.intercept: Optional[Callable[[int, bytes], bytes]] = None

    def put(self, addr: int, block: bytes) -> None:
        self.history[addr].append(block)
        super().put(addr, block)

    def get(self, addr: int) -> bytes:
        if addr in self._replay_next:
            stale = self._replay_next.pop(addr)
            metering.count("io_bytes", len(stale))
            return stale
        block = super().get(addr)
        if self.intercept is not None:
            block = self.intercept(addr, block)
        return block

    def corrupt(self, addr: int, bit: int = 0) -> None:
        block = bytearray(self._blocks[addr])
        block[bit // 8] ^= 1 << (bit % 8)
        self._blocks[addr] = bytes(block)

    def replay(self, addr: int, version: int = 0) -> None:
        self._replay_next[addr] = self.history[addr][version]

    def swap(self, addr_a: int, addr_b: int) -> None:
        self._blocks[addr_a], self._blocks[addr_b] = (
            self._blocks[addr_b],
            self._blocks[addr_a],
        )
