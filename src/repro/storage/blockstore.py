"""Untrusted external block stores.

The paper models the service provider as an oracle ``S`` with
``S.Get(addr)`` and ``S.Put(addr, block)`` (Appendix C).  The provider is
untrusted: it may return stale, corrupted, or swapped blocks.  The secure-
deletion layer must *detect* all such tampering (integrity) and guarantee
that deleted plaintext is unrecoverable even given every block the provider
ever saw plus the HSM's post-deletion state (secure deletion).

``TamperingBlockStore`` implements that adversary for the test suite: it
remembers every version of every block ever written and can be instructed to
corrupt, replay, or swap blocks on future reads.

The same oracle abstraction now also carries the service's *durability*
layer (``repro.storage.wal`` / ``repro.storage.journal``): block puts are
the unit of atomicity, so ``CrashingBlockStore`` models a process dying
mid-write-sequence by raising :class:`CrashError` after a configured number
of puts — everything already written stays readable, everything after is
lost, exactly the contract crash-recovery tests need.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Dict, List, Optional

from repro import metering


class BlockStore:
    """Abstract provider-side block oracle."""

    def get(self, addr: int) -> bytes:
        """Return the block stored at ``addr`` (KeyError if absent)."""
        raise NotImplementedError

    def put(self, addr: int, block: bytes) -> None:
        """Store ``block`` at ``addr``, overwriting any previous version."""
        raise NotImplementedError

    def __contains__(self, addr: int) -> bool:
        raise NotImplementedError

    def delete(self, addr: int) -> None:
        """Drop a block (WAL compaction).  Optional; default is a no-op —
        an honest-but-lazy provider may keep history forever."""


class InMemoryBlockStore(BlockStore):
    """An honest provider: a dict of address -> block.

    Reads and writes report ``io_bytes`` to the ambient meter — in the real
    system every block crosses the USB transport between host and HSM, and
    that I/O dominates puncturable-decryption cost (Figure 9).
    """

    def __init__(self) -> None:
        self._blocks: Dict[int, bytes] = {}

    def get(self, addr: int) -> bytes:
        """Return the block at ``addr``, metering its size as I/O."""
        block = self._blocks[addr]
        metering.count("io_bytes", len(block))
        return block

    def put(self, addr: int, block: bytes) -> None:
        """Store ``block`` at ``addr``, metering its size as I/O."""
        metering.count("io_bytes", len(block))
        self._blocks[addr] = block

    def __contains__(self, addr: int) -> bool:
        return addr in self._blocks

    def delete(self, addr: int) -> None:
        """Remove a block if present (WAL compaction reclaims addresses)."""
        self._blocks.pop(addr, None)

    def __len__(self) -> int:
        return len(self._blocks)

    def total_bytes(self) -> int:
        """Total bytes across all stored blocks (storage-footprint stats)."""
        return sum(len(b) for b in self._blocks.values())


class TamperingBlockStore(InMemoryBlockStore):
    """A malicious provider for integrity / secure-deletion tests.

    - keeps a full history of every version of every block (an attacker
      snapshotting its own storage),
    - ``corrupt(addr)`` flips a bit of a stored block,
    - ``replay(addr, version)`` serves a stale version on the next read,
    - ``swap(a, b)`` swaps two blocks,
    - ``intercept`` lets tests install an arbitrary read transformer.
    """

    def __init__(self) -> None:
        super().__init__()
        self.history: Dict[int, List[bytes]] = defaultdict(list)
        self._replay_next: Dict[int, bytes] = {}
        self.intercept: Optional[Callable[[int, bytes], bytes]] = None

    def put(self, addr: int, block: bytes) -> None:
        """Store the block, also archiving it in the attacker's history."""
        self.history[addr].append(block)
        super().put(addr, block)

    def get(self, addr: int) -> bytes:
        """Serve the block — or a stale/intercepted one if so instructed."""
        if addr in self._replay_next:
            stale = self._replay_next.pop(addr)
            metering.count("io_bytes", len(stale))
            return stale
        block = super().get(addr)
        if self.intercept is not None:
            block = self.intercept(addr, block)
        return block

    def corrupt(self, addr: int, bit: int = 0) -> None:
        """Flip one bit of the stored block at ``addr``."""
        block = bytearray(self._blocks[addr])
        block[bit // 8] ^= 1 << (bit % 8)
        self._blocks[addr] = bytes(block)

    def replay(self, addr: int, version: int = 0) -> None:
        """Serve a stale historical ``version`` on the next read of ``addr``."""
        self._replay_next[addr] = self.history[addr][version]

    def swap(self, addr_a: int, addr_b: int) -> None:
        """Exchange the blocks stored at two addresses."""
        self._blocks[addr_a], self._blocks[addr_b] = (
            self._blocks[addr_b],
            self._blocks[addr_a],
        )


class CrashError(RuntimeError):
    """The simulated process died mid-write (see ``CrashingBlockStore``)."""


class CrashingBlockStore(InMemoryBlockStore):
    """An honest store whose *process* dies after N more successful puts.

    Crash-recovery tests wrap the service's durable store in one of these,
    arm it with :meth:`crash_after`, drive the workload until
    :class:`CrashError` fires, then "restart" by handing ``self.blocks`` —
    everything durably written before the crash — to a fresh deployment.
    Block writes are atomic: a put either lands whole before the crash or
    not at all (the failing put is *not* applied).
    """

    def __init__(self) -> None:
        super().__init__()
        self._puts_until_crash: Optional[int] = None
        self.crashed = False

    def crash_after(self, puts: int) -> None:
        """Arm the store: the (puts+1)-th future put raises ``CrashError``."""
        self._puts_until_crash = puts
        self.crashed = False

    def put(self, addr: int, block: bytes) -> None:
        """Store the block, or raise :class:`CrashError` if the armed
        crash countdown has expired (the failing put is not applied)."""
        if self._puts_until_crash is not None:
            if self._puts_until_crash <= 0:
                self.crashed = True
                raise CrashError("simulated process crash during block put")
            self._puts_until_crash -= 1
        super().put(addr, block)

    @property
    def blocks(self) -> "InMemoryBlockStore":
        """The durable image a restarted process would see (same blocks,
        crash trigger disarmed)."""
        survivor = InMemoryBlockStore()
        survivor._blocks = dict(self._blocks)
        return survivor
