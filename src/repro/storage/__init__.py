"""Outsourced storage with secure deletion (paper §7.2–7.3, Appendix C).

HSMs have kilobytes of storage but Bloom-filter-encryption secret keys are
megabytes.  The HSM therefore outsources the key array to the *untrusted*
service provider and keeps only a single root AES key.  The Di Crescenzo
key tree gives logarithmic-time reads and secure deletion: deleting a block
re-keys the root-to-leaf path, after which no provider snapshot plus current
HSM state can recover the deleted block.
"""

from repro.storage.blockstore import (
    BlockStore,
    CrashError,
    CrashingBlockStore,
    InMemoryBlockStore,
    TamperingBlockStore,
)
from repro.storage.securedel import SecureDeletionTree, NaiveSecureStore, DeletedBlockError
from repro.storage.wal import WalCorruptionError, WriteAheadLog

__all__ = [
    "BlockStore",
    "CrashError",
    "CrashingBlockStore",
    "InMemoryBlockStore",
    "TamperingBlockStore",
    "SecureDeletionTree",
    "NaiveSecureStore",
    "DeletedBlockError",
    "WalCorruptionError",
    "WriteAheadLog",
]
