"""The provider's durability journal: what survives a process crash.

Everything the paper's provider stores for years — recovery ciphertexts,
incremental backups, the reply escrow, outsourced HSM key blocks, and the
transparency log's committed digest chains — is journaled here as typed
records on a :class:`~repro.storage.wal.WriteAheadLog`, so a restarted
process (``Deployment.restore`` / ``RecoveryService.restart``) rebuilds the
service from the block store alone.

**Durable:** backups, incrementals, reply escrow, HSM key blocks, committed
epoch transitions (entries + quorum signature), garbage collections, and
published cross-shard roots.  **Explicitly not durable:** pending log
batches (sessions that never got an inclusion proof re-submit), epoch
leases, and attempt counters (re-derived from the restored entries).

Epochs are write-ahead transactional, mirroring ``run_update``'s in-memory
rollback:

1. ``EPOCH_INTENT`` (shard, digests, root, the entries being applied) lands
   after ``prepare_update`` but *before* any HSM is asked to certify;
2. ``EPOCH_COMMIT`` (binding the intent's sequence number, plus the quorum
   aggregate) lands once a quorum has signed but *before* the acceptance
   fan-out — the decision is durable before any device is exposed to it —
   and ``EPOCH_ROLLBACK`` lands after a live certification failure.

A crash can therefore leave at most one unresolved intent per shard lane,
and an unresolved intent proves no device adopted the new digest (devices
only hear about an epoch after its commit record landed).
:func:`reconcile_open_intents` settles each against the *trusted* fleet:
if every online committee device still holds the old digest the intent is
repaired to ``ROLLBACK`` and the half-prepared epoch vanishes (its
sessions never received proofs); if — defensively — a committee device is
found at the new digest, a quorum certified it and a repair ``COMMIT`` is
appended, so no certified digest is ever lost.  Either way the WAL
completes or rolls back the epoch atomically and no half-committed state
survives a restart.

Integrity: the WAL chain-hashes every record, so corrupted / swapped /
replayed blocks from a :class:`~repro.storage.blockstore.TamperingBlockStore`
are detected during replay, never silently restored.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.lhe import LheCiphertext
from repro.core.wire import (
    WireFormatError,
    _blob,
    _Reader,
    _text,
    _u32,
    decode_recovery_ciphertext,
    encode_recovery_ciphertext,
)
from repro.log.distributed import CertifiedTransition
from repro.storage.blockstore import BlockStore, InMemoryBlockStore
from repro.storage.wal import WriteAheadLog

# Record kinds (one byte on the WAL).
K_BACKUP = 1
K_INCREMENTAL = 2
K_REPLY = 3
K_HSM_BLOCK = 4
K_EPOCH_INTENT = 5
K_EPOCH_COMMIT = 6
K_EPOCH_ROLLBACK = 7
K_EPOCH_PUBLISH = 8
K_GC = 9
K_SNAPSHOT = 10


class JournalReplayError(Exception):
    """The journal's records violate the write-ahead protocol (a record
    sequence no crash of the instrumented code paths can produce)."""


def _u64(value: int) -> bytes:
    """Big-endian 8-byte unsigned int (WAL sequence numbers, addresses)."""
    if not (0 <= value < 1 << 64):
        raise WireFormatError("u64 out of range")
    return value.to_bytes(8, "big")


def _read_u64(reader: _Reader) -> int:
    """Inverse of :func:`_u64`."""
    return int.from_bytes(reader.take(8), "big")


# ---------------------------------------------------------------------------
# Aggregate-signature (de)serialization
# ---------------------------------------------------------------------------
def encode_aggregate_auto(aggregate: object) -> Tuple[Optional[str], Optional[bytes]]:
    """Serialize a multisig aggregate, inferring the scheme from its shape.

    Returns ``(scheme_name, bytes)`` — or ``(None, None)`` for aggregates
    of schemes the journal cannot serialize (test doubles): the commit is
    still durable, only the replayable signature material is dropped, so a
    restored log can serve ``catch_up`` for every *decodable* transition.
    """
    if isinstance(aggregate, tuple) and all(
        isinstance(sig, tuple) and len(sig) == 2 for sig in aggregate
    ):
        return "ecdsa-list", b"".join(
            r.to_bytes(32, "big") + s.to_bytes(32, "big") for r, s in aggregate
        )
    to_bytes = getattr(aggregate, "to_bytes", None)
    if callable(to_bytes):
        return "bls", to_bytes()
    return None, None


def decode_aggregate(scheme: str, data: bytes) -> object:
    """Inverse of :func:`encode_aggregate_auto` for a known scheme name."""
    if scheme == "ecdsa-list":
        if len(data) % 64:
            raise WireFormatError("ecdsa-list aggregate not a multiple of 64B")
        return tuple(
            (
                int.from_bytes(data[i : i + 32], "big"),
                int.from_bytes(data[i + 32 : i + 64], "big"),
            )
            for i in range(0, len(data), 64)
        )
    if scheme == "bls":
        from repro.crypto.blssig import BlsSignature

        return BlsSignature.from_bytes(data)
    raise WireFormatError(f"unknown multisig scheme {scheme!r}")


# ---------------------------------------------------------------------------
# Restored state
# ---------------------------------------------------------------------------
@dataclass
class StoredTransition:
    """One committed digest transition as the journal preserves it.

    ``scheme``/``aggregate`` are None for transitions whose quorum
    signature could not be serialized (exotic test schemes) or was lost to
    a crash between certification and the commit record (the reconciled
    path) — the transition itself is still part of the restored chain.
    """

    old_digest: bytes
    new_digest: bytes
    root: bytes
    signer_ids: Tuple[int, ...] = ()
    scheme: Optional[str] = None
    aggregate: Optional[bytes] = None

    def to_certified(self, shard: int, num_shards: int) -> CertifiedTransition:
        """Rebuild the live :class:`CertifiedTransition` object."""
        aggregate = (
            decode_aggregate(self.scheme, self.aggregate)
            if self.scheme is not None and self.aggregate is not None
            else None
        )
        return CertifiedTransition(
            old_digest=self.old_digest,
            new_digest=self.new_digest,
            root=self.root,
            aggregate=aggregate,
            signer_ids=self.signer_ids,
            shard=shard,
            num_shards=num_shards,
        )


@dataclass
class OpenIntent:
    """An epoch intent with no commit/rollback yet (a crash mid-epoch)."""

    seq: int  # WAL sequence number of the intent record
    shard: int
    num_shards: int
    old_digest: bytes
    new_digest: bytes
    root: bytes
    entries: List[Tuple[bytes, bytes]]


@dataclass
class RestoredState:
    """Everything a replayed journal reconstructs (and a snapshot stores)."""

    num_shards: int = 1
    shard_entries: Dict[int, List[Tuple[bytes, bytes]]] = field(default_factory=dict)
    shard_epochs: Dict[int, int] = field(default_factory=dict)
    shard_transitions: Dict[int, List[StoredTransition]] = field(default_factory=dict)
    garbage_collections: int = 0
    backups: Dict[str, List[LheCiphertext]] = field(default_factory=dict)
    incrementals: Dict[str, List[bytes]] = field(default_factory=dict)
    replies: Dict[Tuple[str, int], List[bytes]] = field(default_factory=dict)
    hsm_blocks: Dict[int, Dict[int, bytes]] = field(default_factory=dict)
    open_intents: Dict[int, OpenIntent] = field(default_factory=dict)
    last_publish_root: Optional[bytes] = None

    def apply_commit(self, intent: OpenIntent, transition: StoredTransition) -> None:
        """Fold a committed intent into the durable per-shard state."""
        self.shard_entries.setdefault(intent.shard, []).extend(intent.entries)
        self.shard_epochs[intent.shard] = self.shard_epochs.get(intent.shard, 0) + 1
        self.shard_transitions.setdefault(intent.shard, []).append(transition)
        self.open_intents.pop(intent.shard, None)

    def apply_rollback(self, intent: OpenIntent) -> None:
        """Drop an uncertified intent (its entries were never committed)."""
        self.open_intents.pop(intent.shard, None)


# ---------------------------------------------------------------------------
# Snapshot (de)serialization
# ---------------------------------------------------------------------------
def _encode_entries(entries: Sequence[Tuple[bytes, bytes]]) -> bytes:
    parts = [_u32(len(entries))]
    for identifier, value in entries:
        parts.append(_blob(identifier))
        parts.append(_blob(value))
    return b"".join(parts)


def _decode_entries(reader: _Reader) -> List[Tuple[bytes, bytes]]:
    return [(reader.blob(), reader.blob()) for _ in range(reader.u32())]


def _encode_transition(transition: StoredTransition) -> bytes:
    parts = [
        _blob(transition.old_digest),
        _blob(transition.new_digest),
        _blob(transition.root),
        _u32(len(transition.signer_ids)),
    ]
    parts.extend(_u32(signer) for signer in transition.signer_ids)
    if transition.scheme is not None and transition.aggregate is not None:
        parts.append(b"\x01")
        parts.append(_text(transition.scheme))
        parts.append(_blob(transition.aggregate))
    else:
        parts.append(b"\x00")
    return b"".join(parts)


def _decode_transition(reader: _Reader) -> StoredTransition:
    old_digest = reader.blob()
    new_digest = reader.blob()
    root = reader.blob()
    signer_ids = tuple(reader.u32() for _ in range(reader.u32()))
    scheme = aggregate = None
    if reader.u8():
        scheme = reader.text()
        aggregate = reader.blob()
    return StoredTransition(
        old_digest=old_digest,
        new_digest=new_digest,
        root=root,
        signer_ids=signer_ids,
        scheme=scheme,
        aggregate=aggregate,
    )


def encode_state(state: RestoredState) -> bytes:
    """Serialize a quiescent state for a ``SNAPSHOT`` record.

    Refuses states with open intents: snapshots are taken between epochs
    (the caller quiesces the service), never mid-transaction.
    """
    if state.open_intents:
        raise ValueError("cannot snapshot with unresolved epoch intents")
    parts = [_u32(state.num_shards), _u32(state.garbage_collections)]
    shards = sorted(set(state.shard_entries) | set(state.shard_epochs) | set(state.shard_transitions))
    parts.append(_u32(len(shards)))
    for shard in shards:
        parts.append(_u32(shard))
        parts.append(_encode_entries(state.shard_entries.get(shard, [])))
        parts.append(_u32(state.shard_epochs.get(shard, 0)))
        transitions = state.shard_transitions.get(shard, [])
        parts.append(_u32(len(transitions)))
        parts.extend(_encode_transition(t) for t in transitions)
    parts.append(_u32(len(state.backups)))
    for username in sorted(state.backups):
        parts.append(_text(username))
        ciphertexts = state.backups[username]
        parts.append(_u32(len(ciphertexts)))
        parts.extend(_blob(encode_recovery_ciphertext(ct)) for ct in ciphertexts)
    parts.append(_u32(len(state.incrementals)))
    for username in sorted(state.incrementals):
        parts.append(_text(username))
        blobs = state.incrementals[username]
        parts.append(_u32(len(blobs)))
        parts.extend(_blob(blob) for blob in blobs)
    parts.append(_u32(len(state.replies)))
    for username, attempt in sorted(state.replies):
        parts.append(_text(username))
        parts.append(_u32(attempt))
        blobs = state.replies[(username, attempt)]
        parts.append(_u32(len(blobs)))
        parts.extend(_blob(blob) for blob in blobs)
    parts.append(_u32(len(state.hsm_blocks)))
    for index in sorted(state.hsm_blocks):
        blocks = state.hsm_blocks[index]
        parts.append(_u32(index))
        parts.append(_u32(len(blocks)))
        for addr in sorted(blocks):
            parts.append(_u64(addr))
            parts.append(_blob(blocks[addr]))
    parts.append(_blob(state.last_publish_root or b""))
    return b"".join(parts)


def decode_state(data: bytes) -> RestoredState:
    """Inverse of :func:`encode_state` (strict — trailing bytes reject)."""
    reader = _Reader(data)
    state = RestoredState(
        num_shards=reader.u32(), garbage_collections=reader.u32()
    )
    for _ in range(reader.u32()):
        shard = reader.u32()
        state.shard_entries[shard] = _decode_entries(reader)
        state.shard_epochs[shard] = reader.u32()
        state.shard_transitions[shard] = [
            _decode_transition(reader) for _ in range(reader.u32())
        ]
    for _ in range(reader.u32()):
        username = reader.text()
        state.backups[username] = [
            decode_recovery_ciphertext(reader.blob()) for _ in range(reader.u32())
        ]
    for _ in range(reader.u32()):
        username = reader.text()
        state.incrementals[username] = [reader.blob() for _ in range(reader.u32())]
    for _ in range(reader.u32()):
        username = reader.text()
        attempt = reader.u32()
        state.replies[(username, attempt)] = [
            reader.blob() for _ in range(reader.u32())
        ]
    for _ in range(reader.u32()):
        index = reader.u32()
        state.hsm_blocks[index] = {
            _read_u64(reader): reader.blob() for _ in range(reader.u32())
        }
    root = reader.blob()
    state.last_publish_root = root or None
    reader.finish()
    return state


# ---------------------------------------------------------------------------
# The journal
# ---------------------------------------------------------------------------
class ProviderJournal:
    """Typed record writer/replayer over one :class:`WriteAheadLog`.

    One journal instance backs one provider process; the serving layer
    serializes epoch records per shard lane (``run_update`` is one lane at
    a time per shard), and the WAL itself serializes interleaved appends
    from concurrent lanes, so no extra locking lives here.
    """

    def __init__(self, store: BlockStore, domain: bytes = b"repro-journal") -> None:
        """Open the journal on ``store`` (verifying any existing records)."""
        self.wal = WriteAheadLog(store, domain)

    @property
    def store(self) -> BlockStore:
        """The underlying block store — the thing that survives a crash."""
        return self.wal.store

    # -- provider escrow -------------------------------------------------------
    def record_backup(self, username: str, ciphertext: LheCiphertext) -> None:
        """Journal one uploaded recovery ciphertext."""
        self.wal.append(
            K_BACKUP, _text(username) + _blob(encode_recovery_ciphertext(ciphertext))
        )

    def record_incremental(self, username: str, blob: bytes) -> None:
        """Journal one AE-encrypted incremental backup blob."""
        self.wal.append(K_INCREMENTAL, _text(username) + _blob(blob))

    def record_reply(self, username: str, attempt: int, blob: bytes) -> None:
        """Journal one escrowed HSM reply."""
        self.wal.append(K_REPLY, _text(username) + _u32(attempt) + _blob(blob))

    def record_hsm_block(self, index: int, addr: int, block: bytes) -> None:
        """Journal one outsourced HSM key block write."""
        self.wal.append(K_HSM_BLOCK, _u32(index) + _u64(addr) + _blob(block))

    # -- epoch transactions ----------------------------------------------------
    def record_intent(
        self,
        shard: int,
        num_shards: int,
        old_digest: bytes,
        new_digest: bytes,
        root: bytes,
        entries: Sequence[Tuple[bytes, bytes]],
    ) -> int:
        """Write-ahead record of a prepared (not yet certified) epoch."""
        payload = (
            _u32(shard)
            + _u32(num_shards)
            + _blob(old_digest)
            + _blob(new_digest)
            + _blob(root)
            + _encode_entries(entries)
        )
        return self.wal.append(K_EPOCH_INTENT, payload)

    def record_commit(
        self, shard: int, intent_seq: int, transition: Optional[CertifiedTransition]
    ) -> None:
        """Commit an intent; ``transition`` carries the quorum signature.

        ``transition=None`` is the reconciled-repair path (restart found
        the fleet had certified the epoch but the commit record was lost
        with the process): the commit is durable, the signature is not.
        """
        parts = [_u32(shard), _u64(intent_seq)]
        scheme = aggregate = None
        if transition is not None:
            scheme, aggregate = encode_aggregate_auto(transition.aggregate)
        if transition is not None and scheme is not None:
            parts.append(b"\x01")
            parts.append(_text(scheme))
            parts.append(_u32(len(transition.signer_ids)))
            parts.extend(_u32(signer) for signer in transition.signer_ids)
            parts.append(_blob(aggregate))
        else:
            parts.append(b"\x00")
        self.wal.append(K_EPOCH_COMMIT, b"".join(parts))

    def record_rollback(self, shard: int, intent_seq: int) -> None:
        """Roll an intent back (certification failed or never finished)."""
        self.wal.append(K_EPOCH_ROLLBACK, _u32(shard) + _u64(intent_seq))

    def record_publish(self, root: bytes) -> None:
        """Journal a published (cross-shard) root after a served tick."""
        self.wal.append(K_EPOCH_PUBLISH, _blob(root))

    def record_gc(self, count: int) -> None:
        """Journal a log garbage collection (``count`` = new GC total)."""
        self.wal.append(K_GC, _u32(count))

    # -- snapshot / restore ----------------------------------------------------
    def write_snapshot(self, state: RestoredState, compact: bool = True) -> int:
        """Append a snapshot record, anchor it, and (optionally) compact.

        Returns the snapshot's WAL sequence number.  Must run quiesced (no
        concurrent appends — the service stops its ticker first).
        """
        seq = self.wal.append(K_SNAPSHOT, encode_state(state))
        self.wal.anchor_now()
        if compact:
            self.wal.compact_before(seq)
        return seq

    def replay_state(self, expected_head: Optional[bytes] = None) -> RestoredState:
        """Fold every journal record into a :class:`RestoredState`.

        Raises :class:`~repro.storage.wal.WalCorruptionError` on tampered
        storage and :class:`JournalReplayError` on record sequences the
        write-ahead protocol cannot produce.  Unresolved intents are left
        in ``open_intents`` for :func:`reconcile_open_intents`.
        """
        state = RestoredState()
        for seq, kind, payload in self.wal.replay(expected_head):
            state = self._apply(state, seq, kind, payload)
        return state

    def _apply(
        self, state: RestoredState, seq: int, kind: int, payload: bytes
    ) -> RestoredState:
        """Fold one record into ``state`` (returns the new state)."""
        reader = _Reader(payload)
        if kind == K_SNAPSHOT:
            return decode_state(payload)
        if kind == K_BACKUP:
            username = reader.text()
            ciphertext = decode_recovery_ciphertext(reader.blob())
            reader.finish()
            state.backups.setdefault(username, []).append(ciphertext)
        elif kind == K_INCREMENTAL:
            username = reader.text()
            blob = reader.blob()
            reader.finish()
            state.incrementals.setdefault(username, []).append(blob)
        elif kind == K_REPLY:
            username = reader.text()
            attempt = reader.u32()
            blob = reader.blob()
            reader.finish()
            state.replies.setdefault((username, attempt), []).append(blob)
        elif kind == K_HSM_BLOCK:
            index = reader.u32()
            addr = _read_u64(reader)
            block = reader.blob()
            reader.finish()
            state.hsm_blocks.setdefault(index, {})[addr] = block
        elif kind == K_EPOCH_INTENT:
            shard = reader.u32()
            num_shards = reader.u32()
            intent = OpenIntent(
                seq=seq,
                shard=shard,
                num_shards=num_shards,
                old_digest=reader.blob(),
                new_digest=reader.blob(),
                root=reader.blob(),
                entries=_decode_entries(reader),
            )
            reader.finish()
            if shard in state.open_intents:
                raise JournalReplayError(
                    f"shard {shard} has two unresolved epoch intents"
                )
            state.num_shards = max(state.num_shards, num_shards)
            state.open_intents[shard] = intent
        elif kind == K_EPOCH_COMMIT:
            shard = reader.u32()
            intent_seq = _read_u64(reader)
            transition = self._read_commit_transition(reader, state, shard, intent_seq)
            reader.finish()
            state.apply_commit(state.open_intents[shard], transition)
        elif kind == K_EPOCH_ROLLBACK:
            shard = reader.u32()
            intent_seq = _read_u64(reader)
            reader.finish()
            intent = state.open_intents.get(shard)
            if intent is None or intent.seq != intent_seq:
                raise JournalReplayError(
                    f"rollback for shard {shard} matches no open intent"
                )
            state.apply_rollback(intent)
        elif kind == K_EPOCH_PUBLISH:
            state.last_publish_root = reader.blob()
            reader.finish()
        elif kind == K_GC:
            count = reader.u32()
            reader.finish()
            state.shard_entries = {shard: [] for shard in state.shard_entries}
            state.garbage_collections = count
        else:
            raise JournalReplayError(f"unknown journal record kind {kind}")
        return state

    def _read_commit_transition(
        self, reader: _Reader, state: RestoredState, shard: int, intent_seq: int
    ) -> StoredTransition:
        """Decode a commit's transition, validated against its open intent."""
        intent = state.open_intents.get(shard)
        if intent is None or intent.seq != intent_seq:
            raise JournalReplayError(
                f"commit for shard {shard} matches no open intent"
            )
        scheme = aggregate = None
        signer_ids: Tuple[int, ...] = ()
        if reader.u8():
            scheme = reader.text()
            signer_ids = tuple(reader.u32() for _ in range(reader.u32()))
            aggregate = reader.blob()
        return StoredTransition(
            old_digest=intent.old_digest,
            new_digest=intent.new_digest,
            root=intent.root,
            signer_ids=signer_ids,
            scheme=scheme,
            aggregate=aggregate,
        )


# ---------------------------------------------------------------------------
# Crash reconciliation
# ---------------------------------------------------------------------------
def reconcile_open_intents(
    state: RestoredState, journal: ProviderJournal, hsms: Sequence
) -> Dict[int, str]:
    """Settle every unresolved epoch intent against the trusted fleet.

    HSMs live outside the crashed process (separate hardware in the paper's
    deployment), so their digests are ground truth.  Because the commit
    record lands *before* the acceptance fan-out, an open intent normally
    means no device moved: the quorum either never formed or its aggregate
    died with the process, so a repair ``ROLLBACK`` is appended and the
    intent's entries are dropped (those sessions never received inclusion
    proofs).  Defensively, if an online committee device *is* found at the
    intent's new digest — a device only adopts a digest after verifying a
    quorum aggregate — the epoch was certified and a repair ``COMMIT`` is
    appended instead (its aggregate died with the process), so a certified
    digest is never rolled back.

    Returns ``{shard: "committed" | "rolled-back"}`` for observability.
    Raises :class:`JournalReplayError` if a committee device sits at a
    digest matching neither side of the intent (an inconsistency no crash
    of the instrumented paths can produce).
    """
    outcomes: Dict[int, str] = {}
    for shard in sorted(state.open_intents):
        intent = state.open_intents[shard]
        committee = [
            hsm
            for hsm in hsms
            if not hsm.is_failed
            and (intent.num_shards == 1 or hsm.index % intent.num_shards == shard)
        ]
        if not committee:
            raise JournalReplayError(
                f"no online committee device to reconcile shard {shard}"
            )
        digests = {
            (
                hsm.shard_digest(shard)
                if intent.num_shards > 1
                else hsm.log_digest
            )
            for hsm in committee
        }
        unexplained = digests - {intent.old_digest, intent.new_digest}
        if unexplained:
            raise JournalReplayError(
                f"shard {shard}: committee digest matches neither side of the"
                " open intent"
            )
        if intent.new_digest in digests:
            journal.record_commit(shard, intent.seq, None)
            state.apply_commit(
                intent,
                StoredTransition(
                    old_digest=intent.old_digest,
                    new_digest=intent.new_digest,
                    root=intent.root,
                ),
            )
            outcomes[shard] = "committed"
        else:
            journal.record_rollback(shard, intent.seq)
            state.apply_rollback(intent)
            outcomes[shard] = "rolled-back"
    return outcomes


# ---------------------------------------------------------------------------
# Journaled HSM block hosting
# ---------------------------------------------------------------------------
class JournaledBlockStore(InMemoryBlockStore):
    """Provider-hosted HSM key storage whose writes ride the journal.

    The secure-deletion tree's ``put``\\ s are journaled as ``HSM_BLOCK``
    records so a restarted provider re-hosts every device's outsourced key
    array; the device's in-boundary root key (which survives on the real
    HSM) then reads it exactly as before.  Deletes are not journaled:
    secure deletion re-keys paths by overwriting, and replaying the newest
    write per address reproduces the final array.
    """

    def __init__(self, journal: ProviderJournal, hsm_index: int) -> None:
        """A journaled store for HSM ``hsm_index``'s key blocks."""
        super().__init__()
        self._journal = journal
        self._hsm_index = hsm_index

    @classmethod
    def preloaded(
        cls, journal: ProviderJournal, hsm_index: int, blocks: Dict[int, bytes]
    ) -> "JournaledBlockStore":
        """A store rebuilt from restored blocks *without* re-journaling."""
        store = cls(journal, hsm_index)
        store._blocks = dict(blocks)
        return store

    def put(self, addr: int, block: bytes) -> None:
        """Journal the write, then host the block."""
        self._journal.record_hsm_block(self._hsm_index, addr, block)
        super().put(addr, block)
