"""Append-only write-ahead log over an untrusted block store.

The provider in the paper persists every backup ciphertext and log entry
for years; our reproduction kept all of it in process memory.  This module
is the durability primitive underneath ``repro.storage.journal``: a
hash-chained, append-only record log laid out on a
:class:`~repro.storage.blockstore.BlockStore` (the same oracle abstraction
the secure-deletion tree uses, so the tamper machinery of
``TamperingBlockStore`` exercises this layer too).

Layout and integrity:

- record ``seq`` (1-based) lives at block address ``seq`` and is written
  exactly once: ``chain_hash(32) || kind(1) || payload``, where
  ``chain_hash = H(domain, seq, prev_chain_hash, kind, payload)``;
- address ``0`` is the *anchor* — the only mutable block — rewritten by
  :meth:`WriteAheadLog.anchor_now` to point at the latest snapshot record
  so restores can skip replaying the full history;
- :meth:`replay` recomputes the chain hash of every record it yields, so a
  corrupted block, a swapped pair of blocks, or a record serving stale
  bytes fails loudly with :class:`WalCorruptionError` — tampering is
  *detected*, never silently restored;
- a stale (replayed) anchor after compaction points at a deleted snapshot
  record and is likewise detected, and callers holding a trusted head hash
  (e.g. reconciled from the HSM fleet) can pass it to :meth:`replay` to
  detect truncation of the tail.

Crash semantics: block writes are atomic (a put either lands whole or not
at all — ``CrashingBlockStore`` models the process dying between puts), so
after a crash the log is a verified prefix plus at most nothing; the
*transactional* interpretation of trailing records (an epoch intent with
no commit) belongs to ``repro.storage.journal``.

Thread safety: ``append`` may be called from concurrent epoch lanes; the
in-memory tail state (``_length``, ``_head``) is guarded by ``_lock`` and
each append holds it across the block write so records are strictly
ordered.  ``replay`` reads committed prefixes and takes no lock (restores
run on a quiesced store).
"""

from __future__ import annotations

import threading
from typing import Iterator, Optional, Tuple

from repro import metering
from repro.crypto.hashing import sha256
from repro.storage.blockstore import BlockStore

_ANCHOR_ADDR = 0
_FIRST_RECORD = 1
_CHAIN_LEN = 32
_ANCHOR_MAGIC = b"walanchr"


class WalCorruptionError(Exception):
    """The stored log failed integrity verification (tampering or rot)."""


def _chain_hash(domain: bytes, seq: int, prev: bytes, kind: int, payload: bytes) -> bytes:
    """The record's position-bound chain hash (swaps/corruption break it)."""
    return sha256(domain, b"record", seq.to_bytes(8, "big"), prev, bytes([kind]), payload)


class WriteAheadLog:
    """Hash-chained append-only record log on a block store."""

    #: Lock contract, checked by `repro.lintkit`'s lock-discipline pass:
    #: the in-memory tail (length + head hash) moves only under ``_lock``,
    #: which is held across the block write so appends serialize.
    _GUARDED_BY = {
        "_length": "_lock",
        "_head": "_lock",
    }

    def __init__(self, store: BlockStore, domain: bytes = b"repro-wal") -> None:
        """Open (or create) the log on ``store``.

        Opening scans and verifies the existing chain, so a freshly
        constructed instance always continues from a *verified* tail.
        """
        self._store = store
        self._domain = domain
        self._lock = threading.Lock()
        anchor = self.read_anchor()
        if anchor is None:
            start, prev = 0, self.genesis
        else:
            start, prev = anchor[0], anchor[1]
        self._length = start
        self._head = prev
        for seq, _, _, chain in self._walk(start + 1, prev):
            self._length = seq
            self._head = chain

    @property
    def genesis(self) -> bytes:
        """The chain hash before any record (position 0 of the chain)."""
        return sha256(self._domain, b"genesis")

    @property
    def store(self) -> BlockStore:
        """The underlying block store (restarts reopen the same one)."""
        return self._store

    def __len__(self) -> int:
        """Number of records appended (the last record's sequence number)."""
        with self._lock:
            return self._length

    @property
    def head(self) -> bytes:
        """Chain hash of the newest record — the log's integrity anchor."""
        with self._lock:
            return self._head

    # -- writing ---------------------------------------------------------------
    def append(self, kind: int, payload: bytes) -> int:
        """Durably append one record; returns its sequence number.

        The block write happens under the lock, so a crash (the store
        raising mid-put) leaves the in-memory tail untouched — exactly the
        state a restarted process would reconstruct from the store.

        Single-writer fencing: a record sequence number is never reused
        (compaction deletes low addresses but ``seq`` only grows), so the
        target address being occupied proves *another* log handle on the
        same store has appended past this one's head — e.g. a stale
        pre-restore provider still holding the journal.  Writing anyway
        would fork the chain and silently clobber the live writer's
        records, so that stale handle fails loudly instead.
        """
        if not (0 <= kind < 256):
            raise ValueError("record kind must fit one byte")
        with self._lock:
            seq = self._length + 1
            if seq in self._store:
                raise WalCorruptionError(
                    f"address {seq} is already occupied — another writer has"
                    " appended to this log (stale journal handle?)"
                )
            chain = _chain_hash(self._domain, seq, self._head, kind, payload)
            self._store.put(seq, chain + bytes([kind]) + payload)
            metering.count("wal_records", 1)
            self._length = seq
            self._head = chain
        return seq

    # -- reading / verification --------------------------------------------------
    def _walk(
        self, start: int, prev: bytes
    ) -> Iterator[Tuple[int, int, bytes, bytes]]:
        """Yield ``(seq, kind, payload, chain)`` from ``start``, verifying.

        Stops at the first missing address (the durable tail); raises
        :class:`WalCorruptionError` on any chain mismatch.
        """
        seq = start
        while seq in self._store:
            block = self._store.get(seq)
            if len(block) < _CHAIN_LEN + 1:
                raise WalCorruptionError(f"record {seq} truncated")
            stored, kind, payload = (
                block[:_CHAIN_LEN],
                block[_CHAIN_LEN],
                block[_CHAIN_LEN + 1 :],
            )
            expected = _chain_hash(self._domain, seq, prev, kind, payload)
            if stored != expected:
                raise WalCorruptionError(
                    f"record {seq} fails chain verification (corrupted,"
                    " swapped, or replayed block)"
                )
            yield seq, kind, payload, stored
            prev = stored
            seq += 1

    def replay(
        self, expected_head: Optional[bytes] = None
    ) -> Iterator[Tuple[int, int, bytes]]:
        """Yield every verified record ``(seq, kind, payload)`` from the
        anchored snapshot (or the beginning) to the durable tail.

        ``expected_head``, when supplied from a source the provider cannot
        rewrite (the restart path reconciles it against the HSM fleet),
        additionally detects *truncation* — an adversary dropping the
        newest records, which a pure chain check cannot see.

        When an anchor is present, the anchored snapshot record itself is
        yielded first (verified against the anchor's payload hash — its
        chain predecessor may have been compacted away) and the chain walk
        continues from it.
        """
        anchor = self.read_anchor()
        if anchor is None:
            start, prev = 0, self.genesis
        else:
            start, prev = anchor[0], anchor[1]
            block = self._store.get(start)
            yield start, block[_CHAIN_LEN], block[_CHAIN_LEN + 1 :]
        head = prev
        for seq, kind, payload, chain in self._walk(start + 1, prev):
            head = chain
            yield seq, kind, payload
        if expected_head is not None and head != expected_head:
            raise WalCorruptionError(
                "log head does not match the expected anchor (tail truncated"
                " or replayed)"
            )

    # -- snapshot anchor ---------------------------------------------------------
    def anchor_now(self) -> None:
        """Anchor restores at the *current last record* (a snapshot).

        Callers append their snapshot record and immediately anchor it
        (the log must be quiescent — no concurrent appends).  The anchor is
        the log's only mutable block; its payload carries its own binding
        hash so corruption is detected, and a *stale* anchor (a replayed
        old version) is caught because it must name a snapshot record whose
        stored bytes still hash right — compaction deletes superseded
        snapshots, so the replay dangles and restore fails loudly instead
        of silently resurrecting old state.  The anchor also commits to a
        hash of the snapshot record's content, because after compaction the
        record's chain predecessor is gone and the chain hash alone can no
        longer be recomputed.
        """
        with self._lock:
            seq, chain = self._length, self._head
        if seq < _FIRST_RECORD:
            raise ValueError("cannot anchor an empty log")
        block = self._store.get(seq)
        body = (
            seq.to_bytes(8, "big")
            + chain
            + sha256(self._domain, b"snapshot-record", block)
        )
        binding = sha256(self._domain, b"anchor", body)
        self._store.put(_ANCHOR_ADDR, _ANCHOR_MAGIC + body + binding)

    def read_anchor(self) -> Optional[Tuple[int, bytes, bytes]]:
        """The anchored ``(snapshot_seq, snapshot_chain, record_hash)``.

        Returns None when no snapshot was ever anchored.  Verifies the
        anchor's self-binding hash and that the named record exists, opens
        with exactly the anchored chain hash, and hashes to the committed
        record hash — a corrupted, swapped, or stale-replayed snapshot is
        detected here, never silently restored.
        """
        if _ANCHOR_ADDR not in self._store:
            return None
        block = self._store.get(_ANCHOR_ADDR)
        expected_len = len(_ANCHOR_MAGIC) + 8 + _CHAIN_LEN + 32 + 32
        if len(block) != expected_len or not block.startswith(_ANCHOR_MAGIC):
            raise WalCorruptionError("anchor block malformed")
        body = block[len(_ANCHOR_MAGIC) : -32]
        binding = block[-32:]
        if binding != sha256(self._domain, b"anchor", body):
            raise WalCorruptionError("anchor block fails its binding hash")
        seq = int.from_bytes(body[:8], "big")
        chain = body[8 : 8 + _CHAIN_LEN]
        record_hash = body[8 + _CHAIN_LEN :]
        if seq not in self._store:
            raise WalCorruptionError(
                "anchor names a missing snapshot record (stale or replayed"
                " anchor)"
            )
        record = self._store.get(seq)
        if record[:_CHAIN_LEN] != chain or sha256(
            self._domain, b"snapshot-record", record
        ) != record_hash:
            raise WalCorruptionError("anchor disagrees with its snapshot record")
        return seq, chain, record_hash

    def compact_before(self, seq: int) -> int:
        """Delete records strictly older than ``seq``; returns the count.

        Only meaningful after :meth:`anchor_now` pointed restores past
        them; stores without ``delete`` support keep the history (compaction
        is an optimization, never a correctness requirement).
        """
        delete = getattr(self._store, "delete", None)
        if delete is None:
            return 0
        removed = 0
        for addr in range(_FIRST_RECORD, seq):
            if addr in self._store:
                delete(addr)
                removed += 1
        return removed
