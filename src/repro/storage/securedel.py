"""Secure-deletion key tree over untrusted storage (Appendix C).

The HSM stores one 16-byte root key; the provider stores a binary tree of
AES-GCM ciphertexts.  Each internal node encrypts its two children's keys
under its own key; each leaf encrypts one data block.  Reading block ``i``
decrypts the root-to-leaf path (O(log D) symmetric ops + I/O).  Deleting
block ``i`` destroys the leaf key and re-keys the whole path, finishing with
a fresh root key — after which no combination of provider-held ciphertexts
and the HSM's new root key can recover the deleted block.

Differences from the paper's pseudocode are cosmetic: we pad ``D`` to a power
of two so the address arithmetic (leaf ``i`` at ``2^h + i``, parent at
``a // 2``) is exact, and we bind each ciphertext to its address via GCM
associated data, which makes block-swapping attacks fail the integrity check
explicitly rather than by key mismatch.

``NaiveSecureStore`` is the strawman of §9.1 (single key; deletion re-reads
and re-encrypts the whole array) used in the ablation benchmark: the paper
measures a 64 MB deletion at 48 minutes versus logarithmic time for the
tree, a ~4,423× throughput gap.
"""

from __future__ import annotations

import secrets
from typing import List, Optional, Sequence

from repro import metering
from repro.crypto.gcm import ae_decrypt, ae_encrypt
from repro.storage.blockstore import BlockStore

KEY_LEN = 16
_DELETED_KEY = b"\x00" * KEY_LEN  # the paper's "useless encryption key"


class DeletedBlockError(Exception):
    """Raised when reading a block that was securely deleted."""


def _addr_aad(addr: int) -> bytes:
    return b"securedel-node" + addr.to_bytes(8, "big")


class SecureDeletionTree:
    """HSM-side handle: holds the root key and drives the block oracle."""

    def __init__(self, store: BlockStore, height: int, root_key: bytes) -> None:
        self._store = store
        self.height = height
        self._root_key = root_key

    # -- setup -----------------------------------------------------------------
    @staticmethod
    def setup(store: BlockStore, blocks: Sequence[bytes]) -> "SecureDeletionTree":
        """Encrypt ``blocks`` into ``store`` and return the HSM handle.

        Runs in O(D) time and stores 2^(h+1) ciphertexts, where
        ``h = ceil(log2(len(blocks)))``.
        """
        count = max(1, len(blocks))
        height = max(1, (count - 1).bit_length())
        num_leaves = 1 << height

        # Generate keys level by level, leaves first.
        leaf_keys = [secrets.token_bytes(KEY_LEN) for _ in range(num_leaves)]
        for i in range(num_leaves):
            data = blocks[i] if i < len(blocks) else b""
            addr = (1 << height) + i
            store.put(addr, ae_encrypt(leaf_keys[i], data, aad=_addr_aad(addr)))

        level_keys = leaf_keys
        for level in range(height - 1, -1, -1):
            width = 1 << level
            parent_keys = [secrets.token_bytes(KEY_LEN) for _ in range(width)]
            for j in range(width):
                addr = (1 << level) + j
                payload = level_keys[2 * j] + level_keys[2 * j + 1]
                store.put(addr, ae_encrypt(parent_keys[j], payload, aad=_addr_aad(addr)))
            level_keys = parent_keys

        return SecureDeletionTree(store, height, level_keys[0])

    # -- internals ----------------------------------------------------------------
    def _path_addrs(self, index: int) -> List[int]:
        """Addresses from the root (addr 1) down to leaf ``index``."""
        leaf_addr = (1 << self.height) + index
        path = []
        addr = leaf_addr
        while addr >= 1:
            path.append(addr)
            addr //= 2
        return list(reversed(path))

    def _decrypt_path(self, index: int) -> List[bytes]:
        """Keys for every node on the root-to-leaf path (including leaf)."""
        if not (0 <= index < (1 << self.height)):
            raise IndexError("block index out of range")
        addrs = self._path_addrs(index)
        keys = [self._root_key]
        for depth, addr in enumerate(addrs[:-1]):
            metering.count("flash_read_bytes", KEY_LEN)
            node_ct = self._store.get(addr)
            payload = ae_decrypt(keys[-1], node_ct, aad=_addr_aad(addr))
            left_key, right_key = payload[:KEY_LEN], payload[KEY_LEN:]
            child_addr = addrs[depth + 1]
            child_key = left_key if child_addr % 2 == 0 else right_key
            if child_key == _DELETED_KEY:
                raise DeletedBlockError(f"block {index} was securely deleted")
            keys.append(child_key)
        return keys

    # -- public API ---------------------------------------------------------------
    def read(self, index: int) -> bytes:
        """Return data block ``index``; raise on deletion or tampering."""
        keys = self._decrypt_path(index)
        leaf_addr = (1 << self.height) + index
        leaf_ct = self._store.get(leaf_addr)
        return ae_decrypt(keys[-1], leaf_ct, aad=_addr_aad(leaf_addr))

    def delete(self, index: int) -> None:
        """Securely delete block ``index`` and re-key the path to the root."""
        addrs = self._path_addrs(index)
        keys = self._decrypt_path(index)

        # Walk back up: at each internal node, replace the child key (either
        # freshly re-keyed, or zeroed at the leaf) and encrypt the node under
        # a fresh key that becomes the child key for the next level up.
        child_new_key: Optional[bytes] = None  # None marks the deleted leaf
        for depth in range(len(addrs) - 2, -1, -1):
            addr = addrs[depth]
            node_ct = self._store.get(addr)
            payload = ae_decrypt(keys[depth], node_ct, aad=_addr_aad(addr))
            left_key, right_key = payload[:KEY_LEN], payload[KEY_LEN:]
            child_addr = addrs[depth + 1]
            replacement = _DELETED_KEY if child_new_key is None else child_new_key
            if child_addr % 2 == 0:
                left_key = replacement
            else:
                right_key = replacement
            fresh = secrets.token_bytes(KEY_LEN)
            self._store.put(addr, ae_encrypt(fresh, left_key + right_key, aad=_addr_aad(addr)))
            child_new_key = fresh

        assert child_new_key is not None
        self._root_key = child_new_key

    @property
    def root_key(self) -> bytes:
        """The only secret the HSM must store (16 bytes)."""
        return self._root_key

    def extract_root_key(self) -> bytes:
        """Explicit escape hatch modelling HSM compromise in tests."""
        return self._root_key


class NaiveSecureStore:
    """§9.1 strawman: one key over the whole array; delete = re-encrypt all.

    Functionally equivalent to the tree but deletion costs O(D) AES blocks
    and 2·D·blocksize bytes of I/O.  Exists for the ablation benchmark.
    """

    _ADDR = 0

    def __init__(self, store: BlockStore, block_count: int, block_size: int, key: bytes) -> None:
        self._store = store
        self._count = block_count
        self._size = block_size
        self._key = key

    @staticmethod
    def setup(store: BlockStore, blocks: Sequence[bytes]) -> "NaiveSecureStore":
        """Encrypt ``blocks`` (all equal-size) under one fresh key."""
        sizes = {len(b) for b in blocks}
        if len(sizes) > 1:
            raise ValueError("naive store requires equal-size blocks")
        size = sizes.pop() if sizes else 0
        key = secrets.token_bytes(KEY_LEN)
        store.put(NaiveSecureStore._ADDR, ae_encrypt(key, b"".join(blocks), aad=b"naive"))
        return NaiveSecureStore(store, len(blocks), size, key)

    def _load(self) -> bytearray:
        return bytearray(ae_decrypt(self._key, self._store.get(self._ADDR), aad=b"naive"))

    def read(self, index: int) -> bytes:
        """Decrypt the whole array and return block ``index``."""
        if not (0 <= index < self._count):
            raise IndexError("block index out of range")
        data = self._load()
        block = bytes(data[index * self._size : (index + 1) * self._size])
        if block == b"\x00" * self._size:
            raise DeletedBlockError(f"block {index} was securely deleted")
        return block

    def delete(self, index: int) -> None:
        """Zero block ``index`` and re-encrypt the whole array under a
        fresh key (the O(D) cost the puncturable tree avoids)."""
        data = self._load()
        data[index * self._size : (index + 1) * self._size] = b"\x00" * self._size
        self._key = secrets.token_bytes(KEY_LEN)
        self._store.put(self._ADDR, ae_encrypt(self._key, bytes(data), aad=b"naive"))
