"""SafetyPin reproduction: encrypted backups with human-memorable secrets.

This package is a from-scratch Python implementation of the system described
in "SafetyPin: Encrypted Backups with Human-Memorable Secrets" (Dauterman,
Corrigan-Gibbs, Mazières; OSDI 2020).  It contains:

- ``repro.crypto``   -- every cryptographic primitive the paper relies on
  (NIST P-256, hashed ElGamal, AES-128-GCM, Shamir sharing, Merkle trees,
  BLS12-381 pairings and aggregate signatures, Bloom-filter puncturable
  encryption).
- ``repro.storage``  -- outsourced storage with secure deletion (the
  Di Crescenzo key tree of Appendix C) over an untrusted block store.
- ``repro.hsm``      -- the simulated HSM fleet and the operation-metering
  cost model calibrated against the paper's Tables 2 and 7.
- ``repro.log``      -- the distributed append-only log (authenticated
  dictionary, chunked randomized auditing, aggregate signing).
- ``repro.core``     -- location-hiding encryption and the SafetyPin
  backup/recovery protocol.
- ``repro.baseline`` -- the Google/Apple-style fixed-cluster baseline.
- ``repro.analysis`` -- the paper's security bounds (Lemma 8, Theorems 9/10).
- ``repro.sim``      -- capacity planning and queueing models used for the
  deployment-scale figures.
- ``repro.adversary``-- attack harnesses used by the security test suite.

Quickstart::

    from repro import SystemParams, Deployment

    params = SystemParams.for_testing(num_hsms=16, cluster_size=4)
    dep = Deployment.create(params)
    client = dep.new_client("alice", pin="123456")
    ct = client.backup(b"disk image bytes")
    recovered = client.recover(ct, pin="123456")
    assert recovered == b"disk image bytes"
"""

# Public API re-exports are lazy so that `import repro.crypto.x` does not pull
# in the whole protocol stack (and so partial builds stay importable).
_EXPORTS = {
    "SystemParams": ("repro.core.params", "SystemParams"),
    "Deployment": ("repro.core.protocol", "Deployment"),
    "Client": ("repro.core.client", "Client"),
    "RecoveryError": ("repro.core.client", "RecoveryError"),
    "ServiceProvider": ("repro.core.provider", "ServiceProvider"),
    "LocationHidingEncryption": ("repro.core.lhe", "LocationHidingEncryption"),
}


def __getattr__(name):
    try:
        module_name, attr = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module 'repro' has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)


__all__ = [
    "SystemParams",
    "Deployment",
    "Client",
    "RecoveryError",
    "ServiceProvider",
    "LocationHidingEncryption",
    "__version__",
]

__version__ = "1.0.0"
