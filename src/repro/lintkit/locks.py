"""Lock-discipline pass: guarded attributes are only written under their lock.

PR 4 gave every stateful class in ``service/`` and ``log/`` a prose
thread-safety contract.  This pass makes those contracts machine-checked:
a class declares them as data, e.g. ::

    class EpochBatcher:
        _GUARDED_BY = {
            "_waiters": ("_lock", "_drained"),
            "epochs_run": ("_lock", "_drained"),
        }

and every *write* to a declared attribute (``self.attr = ...``,
``self.attr += ...``, ``self.attr[k] = ...``, or a mutating method call
like ``self.attr.append(...)``) must happen lexically inside a
``with self.<lock>:`` block naming one of the declared locks — or inside
``__init__``, where the object is not yet shared.  A write that holds the
lock by *calling convention* (the caller took it) carries a def-level
``# lint: unguarded[reason]`` suppression instead; the reason is the
documentation.

The analysis is lexical and intra-method on purpose: it cannot prove the
absence of races, but it pins every guarded write to either a visible
``with`` block or a written justification.  Rule id: ``unguarded-write``
(suppression alias ``unguarded``).
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, List, Set, Tuple

from repro.lintkit.engine import Finding, LintPass, ScanContext

#: Method names that mutate their receiver in place.
MUTATING_METHODS = frozenset(
    {
        "append",
        "appendleft",
        "add",
        "clear",
        "discard",
        "extend",
        "insert",
        "pop",
        "popleft",
        "remove",
        "setdefault",
        "update",
    }
)


class LockDisciplinePass(LintPass):
    """Checks writes to ``_GUARDED_BY``-declared attributes."""

    name = "locks"
    rules = ("unguarded-write",)

    def run(self, ctx: ScanContext) -> List[Finding]:
        findings: List[Finding] = []
        for source in ctx.files:
            if source.tree is None:
                continue
            for node in ast.walk(source.tree):
                if isinstance(node, ast.ClassDef):
                    contracts = _guarded_by(node)
                    if contracts:
                        findings.extend(_check_class(source.rel, node, contracts))
        return sorted(set(findings))


def _guarded_by(cls: ast.ClassDef) -> Dict[str, FrozenSet[str]]:
    """Parse the class's ``_GUARDED_BY`` literal, if present."""
    for stmt in cls.body:
        if (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and stmt.targets[0].id == "_GUARDED_BY"
            and isinstance(stmt.value, ast.Dict)
        ):
            contracts: Dict[str, FrozenSet[str]] = {}
            for key, value in zip(stmt.value.keys, stmt.value.values):
                if not (isinstance(key, ast.Constant) and isinstance(key.value, str)):
                    continue
                if isinstance(value, ast.Constant) and isinstance(value.value, str):
                    locks = frozenset({value.value})
                elif isinstance(value, (ast.Tuple, ast.List)):
                    locks = frozenset(
                        elt.value
                        for elt in value.elts
                        if isinstance(elt, ast.Constant) and isinstance(elt.value, str)
                    )
                else:
                    continue
                contracts[key.value] = locks
            return contracts
    return {}


def _check_class(
    rel: str, cls: ast.ClassDef, contracts: Dict[str, FrozenSet[str]]
) -> List[Finding]:
    findings: List[Finding] = []
    for member in cls.body:
        if not isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if member.name == "__init__":
            continue  # construction happens-before sharing
        _walk_method(rel, cls.name, member.body, contracts, frozenset(), findings)
    return findings


def _held_locks(stmt: ast.With) -> Set[str]:
    """Lock attribute names taken by a ``with self.X [, self.Y]:`` statement."""
    held: Set[str] = set()
    for item in stmt.items:
        expr = item.context_expr
        # Accept both `with self._lock:` and `with self._lock.acquire_ctx():`
        if isinstance(expr, ast.Call):
            expr = expr.func
        while isinstance(expr, ast.Attribute):
            if isinstance(expr.value, ast.Name) and expr.value.id == "self":
                held.add(expr.attr)
                break
            expr = expr.value
    return held


def _walk_method(
    rel: str,
    cls_name: str,
    body: List[ast.stmt],
    contracts: Dict[str, FrozenSet[str]],
    held: FrozenSet[str],
    findings: List[Finding],
) -> None:
    for stmt in body:
        if isinstance(stmt, ast.With):
            inner = held | _held_locks(stmt)
            _walk_method(rel, cls_name, stmt.body, contracts, frozenset(inner), findings)
            continue
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # A nested function runs later, possibly without the lock:
            # analyze it with no locks held (suppress if intentional).
            _walk_method(rel, cls_name, stmt.body, contracts, frozenset(), findings)
            continue
        _check_statement_writes(rel, cls_name, stmt, contracts, held, findings)
        for child_body in _nested_bodies(stmt):
            _walk_method(rel, cls_name, child_body, contracts, held, findings)


def _nested_bodies(stmt: ast.stmt) -> List[List[ast.stmt]]:
    bodies = []
    for attr in ("body", "orelse", "finalbody"):
        block = getattr(stmt, attr, None)
        if isinstance(block, list) and block and isinstance(block[0], ast.stmt):
            bodies.append(block)
    for handler in getattr(stmt, "handlers", []) or []:
        bodies.append(handler.body)
    return bodies


def _check_statement_writes(
    rel: str,
    cls_name: str,
    stmt: ast.stmt,
    contracts: Dict[str, FrozenSet[str]],
    held: FrozenSet[str],
    findings: List[Finding],
) -> None:
    writes: List[Tuple[str, int, str]] = []  # (attr, line, how)
    if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
        targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
        for target in targets:
            writes.extend(_attr_writes(target))
    # Mutating calls in this statement's own expressions (nested statement
    # bodies are handled by the recursive walk, which tracks their locks).
    for node in _own_expressions(stmt):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in MUTATING_METHODS:
                receiver = node.func.value
                if (
                    isinstance(receiver, ast.Attribute)
                    and isinstance(receiver.value, ast.Name)
                    and receiver.value.id == "self"
                ):
                    writes.append(
                        (receiver.attr, node.lineno, f".{node.func.attr}(...)")
                    )
    for attr, line, how in writes:
        locks = contracts.get(attr)
        if locks is None:
            continue
        if held & locks:
            continue
        wanted = " or ".join(f"self.{lock}" for lock in sorted(locks))
        findings.append(
            Finding(
                path=rel,
                line=line,
                rule="unguarded-write",
                message=(
                    f"{cls_name}.{attr} written via {how} outside"
                    f" `with {wanted}` (declared in _GUARDED_BY)"
                ),
            )
        )


def _own_expressions(stmt: ast.stmt):
    """Every expression node belonging to ``stmt`` itself (its header and
    value fields), excluding nested statement bodies."""
    for _, value in ast.iter_fields(stmt):
        exprs = value if isinstance(value, list) else [value]
        for item in exprs:
            if isinstance(item, ast.expr):
                yield from ast.walk(item)


def _attr_writes(target: ast.expr) -> List[Tuple[str, int, str]]:
    """Attribute names written by an assignment target on ``self``."""
    if isinstance(target, ast.Attribute):
        if isinstance(target.value, ast.Name) and target.value.id == "self":
            return [(target.attr, target.lineno, "assignment")]
        return []
    if isinstance(target, ast.Subscript):
        inner = target.value
        if (
            isinstance(inner, ast.Attribute)
            and isinstance(inner.value, ast.Name)
            and inner.value.id == "self"
        ):
            return [(inner.attr, target.lineno, "item assignment")]
        return []
    if isinstance(target, (ast.Tuple, ast.List)):
        out: List[Tuple[str, int, str]] = []
        for elt in target.elts:
            out.extend(_attr_writes(elt))
        return out
    if isinstance(target, ast.Starred):
        return _attr_writes(target.value)
    return []
