"""Metering-discipline pass: crypto hot paths must report to the op meter.

The op-count invariance tests (PR 3) assert *byte-identical* operation
counts across fast paths — which only means anything if every entry point
that performs curve or field heavy lifting actually calls
``metering.count``.  This pass keeps that discipline from rotting:

- a configured set of *engine primitives* does the raw work
  (``_jac_mult``, ``_window_mult``, ``_fixed_base_mult``,
  ``_multi_mult_jac``, ``batch_inverse_mod``);
- any *private* function that calls an engine becomes an engine itself
  (taken to a fixpoint), mirroring how the real helpers layer
  (``_mult_jac`` -> ``_window_mult``, ``_verify_chunk`` ->
  ``_ecdsa_candidate`` -> ``_multi_mult_jac``);
- every *public* function or method (dunders included) that is an engine
  or calls one directly must contain a ``metering.count(...)`` call, or
  carry a def-level ``# lint: unmetered[reason]`` suppression explaining
  which metered op already prices the work.

Public functions that only call other *public* metered functions are
exempt — the callee reports the op, and double-counting would break the
exact-snapshot tests.  Rule id: ``unmetered-op`` (alias ``unmetered``).
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Set

from repro.lintkit.engine import Finding, LintPass, ScanContext, call_name

_DEFAULT_MODULES = ("src/repro/crypto/ec.py", "src/repro/crypto/field.py")
_DEFAULT_ENGINES = frozenset(
    {
        "_jac_mult",
        "_window_mult",
        "_fixed_base_mult",
        "_multi_mult_jac",
        "batch_inverse_mod",
    }
)


class _Func:
    __slots__ = ("qualname", "name", "line", "rel", "calls", "meters")

    def __init__(self, qualname: str, name: str, line: int, rel: str) -> None:
        self.qualname = qualname
        self.name = name
        self.line = line
        self.rel = rel
        self.calls: Set[str] = set()
        self.meters = False


def _is_public(name: str) -> bool:
    if name.startswith("__") and name.endswith("__"):
        return True  # dunders are API surface (__mul__ is the hot path)
    return not name.startswith("_")


class MeteringPass(LintPass):
    """Flags unmetered public entry points into the crypto engines."""

    name = "metering"
    rules = ("unmetered-op",)

    def __init__(
        self,
        modules: Optional[Sequence[str]] = None,
        engines: Optional[Sequence[str]] = None,
    ) -> None:
        """``modules`` are repo-relative files to analyze together (the
        fixpoint spans them); ``engines`` seeds the primitive set."""
        self._modules = tuple(_DEFAULT_MODULES if modules is None else modules)
        self._engines = frozenset(_DEFAULT_ENGINES if engines is None else engines)

    def run(self, ctx: ScanContext) -> List[Finding]:
        funcs: List[_Func] = []
        scanned_any = False
        for rel in self._modules:
            source = ctx.get(rel)
            if source is None or source.tree is None:
                continue
            scanned_any = True
            funcs.extend(_harvest(source.tree, rel))
        if not scanned_any:
            return []
        engines = self._fixpoint(funcs)
        findings = []
        for func in funcs:
            if not _is_public(func.name):
                continue
            touches = func.name in engines or bool(func.calls & engines)
            if touches and not func.meters:
                reached = sorted((func.calls & engines) | (
                    {func.name} if func.name in engines else set()
                ))
                findings.append(
                    Finding(
                        path=func.rel,
                        line=func.line,
                        rule="unmetered-op",
                        message=(
                            f"public entry `{func.qualname}` reaches engine"
                            f" primitive(s) {', '.join(reached)} without a"
                            " metering.count(...) call"
                        ),
                    )
                )
        return sorted(set(findings))

    def _fixpoint(self, funcs: List[_Func]) -> Set[str]:
        """Grow the engine set through private helpers until stable."""
        engines = set(self._engines)
        private = [f for f in funcs if not _is_public(f.name)]
        changed = True
        while changed:
            changed = False
            for func in private:
                if func.name not in engines and func.calls & engines:
                    engines.add(func.name)
                    changed = True
        return engines


def _harvest(tree: ast.Module, rel: str) -> List[_Func]:
    """Every function/method in the module with its call and meter facts."""
    out: List[_Func] = []

    def visit(nodes, prefix: str) -> None:
        for node in nodes:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}{node.name}"
                func = _Func(qual, node.name, node.lineno, rel)
                for inner in ast.walk(node):
                    if isinstance(inner, ast.Call):
                        callee = call_name(inner)
                        if callee == "count":
                            func.meters = True
                        elif callee:
                            func.calls.add(callee)
                out.append(func)
                # Nested defs are analyzed as part of their parent (the
                # walk above already saw their calls); no separate entry.
            elif isinstance(node, ast.ClassDef):
                visit(node.body, f"{node.name}.")

    visit(tree.body, "")
    return out
