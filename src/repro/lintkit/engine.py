"""The lintkit core: findings, suppressions, baselines, and the pass runner.

Everything here is pass-agnostic.  A *pass* is any object with a ``name``
and a ``run(ctx) -> List[Finding]`` method; the runner parses every file
once, hands all passes the same :class:`ScanContext`, applies suppression
comments and (optionally) a baseline, and returns a deterministic,
sorted :class:`Report`.

Suppression syntax — one rule per comment, justification required::

    self.counter += 1  # lint: unguarded[caller holds _lock, see tick()]

The comment may sit on the flagged line itself, or on a ``def`` line (or
the line directly above it) to suppress that rule for the whole function.
An empty justification is itself reported (rule ``bad-suppression``) and
the suppression is ignored: the written reason is the audit trail.

Baselines are JSON files of finding fingerprints (rule + path + message,
line numbers excluded so pure reformatting does not churn them).  Check
mode filters baselined findings out; write mode records the current set.
"""

from __future__ import annotations

import ast
import hashlib
import io
import json
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

#: ``# lint: <rule>[why this is safe]`` — rule is an id or alias.
_SUPPRESS_RE = re.compile(r"#\s*lint:\s*([A-Za-z0-9_-]+)\s*\[([^\]]*)\]")

#: Short aliases accepted in suppression comments, per pass.
RULE_ALIASES: Dict[str, Tuple[str, ...]] = {
    "secret": ("secret-taint",),
    "unguarded": ("unguarded-write",),
    "wire": ("wire-schema",),
    "unmetered": ("unmetered-op",),
    "docs": ("docstring-missing", "docstring-thin"),
}


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation, anchored to a repo-relative ``path:line``."""

    path: str
    line: int
    rule: str
    message: str

    def render(self) -> str:
        """Human-readable one-liner (the CLI's default output format)."""
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"

    def fingerprint(self) -> str:
        """Stable identity for baselines: rule + path + message, no line."""
        raw = f"{self.rule}|{self.path}|{self.message}".encode("utf-8")
        return hashlib.sha256(raw).hexdigest()[:16]

    def as_dict(self) -> Dict[str, object]:
        """JSON-output shape (also carries the fingerprint)."""
        return {
            "path": self.path,
            "line": self.line,
            "rule": self.rule,
            "message": self.message,
            "fingerprint": self.fingerprint(),
        }


@dataclass(frozen=True)
class Suppression:
    """A parsed ``# lint: rule[reason]`` comment."""

    line: int
    rule: str
    reason: str

    def matches(self, finding_rule: str) -> bool:
        """Does this suppression cover ``finding_rule`` (id or alias)?"""
        if self.rule == finding_rule:
            return True
        return finding_rule in RULE_ALIASES.get(self.rule, ())


class SourceFile:
    """One parsed Python file: source text, AST, and suppression comments."""

    def __init__(self, path: Path, rel: str, text: str) -> None:
        self.path = path
        self.rel = rel
        self.text = text
        self.lines = text.splitlines()
        self.parse_error: Optional[str] = None
        try:
            self.tree: Optional[ast.Module] = ast.parse(text, filename=str(path))
        except SyntaxError as exc:
            self.tree = None
            self.parse_error = f"syntax error: {exc.msg} (line {exc.lineno})"
        self.suppressions = _parse_suppressions(text) if self.tree is not None else []
        self._def_lines: Optional[Dict[int, Tuple[int, int]]] = None

    def def_ranges(self) -> Dict[int, Tuple[int, int]]:
        """Map of ``def`` header line -> (first, last) body line, lazily built."""
        if self._def_lines is None:
            ranges: Dict[int, Tuple[int, int]] = {}
            if self.tree is not None:
                for node in ast.walk(self.tree):
                    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        end = getattr(node, "end_lineno", node.lineno) or node.lineno
                        ranges[node.lineno] = (node.lineno, end)
            self._def_lines = ranges
        return self._def_lines


def _parse_suppressions(text: str) -> List[Suppression]:
    """Extract suppressions from real comment tokens only (not strings)."""
    found: List[Suppression] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(text).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(tok.string)
            if match:
                found.append(
                    Suppression(
                        line=tok.start[0],
                        rule=match.group(1),
                        reason=match.group(2).strip(),
                    )
                )
    except tokenize.TokenError:  # pragma: no cover - parse already succeeded
        pass
    return found


class ScanContext:
    """Everything a pass may look at: the parsed files plus the repo root.

    ``root`` anchors cross-file checks (the wire-schema pass loads its
    companion files relative to it) and makes reported paths repo-relative
    and OS-independent.
    """

    def __init__(self, root: Path, files: Sequence[SourceFile]) -> None:
        self.root = Path(root)
        self.files = sorted(files, key=lambda f: f.rel)
        self._by_rel = {f.rel: f for f in self.files}

    def get(self, rel: str) -> Optional[SourceFile]:
        """The scanned file at repo-relative ``rel``, if it was scanned."""
        return self._by_rel.get(rel)

    def load(self, rel: str) -> Optional[SourceFile]:
        """Like :meth:`get`, but falls back to reading from disk under root."""
        scanned = self.get(rel)
        if scanned is not None:
            return scanned
        path = self.root / rel
        if not path.is_file():
            return None
        return SourceFile(path, rel, path.read_text())


class LintPass:
    """Base class for analysis passes (purely for shared plumbing).

    Subclasses set ``name`` (the pass id used in ``--passes``) and
    ``rules`` (the finding rule ids they may emit) and implement
    :meth:`run`.
    """

    name = "abstract"
    rules: Tuple[str, ...] = ()

    def run(self, ctx: ScanContext) -> List[Finding]:
        """Return every violation this pass sees in ``ctx`` (unsuppressed)."""
        raise NotImplementedError


@dataclass
class Report:
    """The runner's outcome: active findings plus suppression bookkeeping."""

    findings: List[Finding]
    suppressed: List[Tuple[Finding, Suppression]] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    files_scanned: int = 0

    @property
    def clean(self) -> bool:
        """True when nothing unsuppressed (and unbaselined) remains."""
        return not self.findings

    def to_json(self) -> str:
        """Deterministic JSON document for tooling/CI artifacts."""
        return json.dumps(
            {
                "findings": [f.as_dict() for f in self.findings],
                "suppressed": len(self.suppressed),
                "baselined": len(self.baselined),
                "files_scanned": self.files_scanned,
            },
            indent=2,
            sort_keys=True,
        )


def collect_files(root: Path, paths: Sequence[Path]) -> List[SourceFile]:
    """Parse every ``*.py`` under ``paths`` (files or directories), sorted."""
    seen: Set[Path] = set()
    ordered: List[Path] = []
    for path in paths:
        candidates = sorted(path.rglob("*.py")) if path.is_dir() else [path]
        for file in candidates:
            resolved = file.resolve()
            if resolved not in seen:
                seen.add(resolved)
                ordered.append(file)
    files = []
    for file in ordered:
        try:
            rel = file.resolve().relative_to(Path(root).resolve()).as_posix()
        except ValueError:
            rel = file.as_posix()
        files.append(SourceFile(file, rel, file.read_text()))
    return files


def _apply_suppressions(
    ctx: ScanContext, raw: Iterable[Finding]
) -> Tuple[List[Finding], List[Tuple[Finding, Suppression]], List[Finding]]:
    """Split raw findings into (active, suppressed) and flag bad comments."""
    active: List[Finding] = []
    suppressed: List[Tuple[Finding, Suppression]] = []
    bad: List[Finding] = []
    bad_seen: Set[Tuple[str, int]] = set()
    for finding in raw:
        source = ctx.get(finding.path)
        covering = None
        if source is not None:
            covering = _covering_suppression(source, finding)
        if covering is None:
            active.append(finding)
        elif not covering.reason:
            # An unjustified suppression never silences anything; report
            # both the original finding and the empty-reason comment.
            key = (finding.path, covering.line)
            if key not in bad_seen:
                bad_seen.add(key)
                bad.append(
                    Finding(
                        path=finding.path,
                        line=covering.line,
                        rule="bad-suppression",
                        message=(
                            f"suppression of `{covering.rule}` has no justification"
                            " — write why the finding is safe inside the brackets"
                        ),
                    )
                )
            active.append(finding)
        else:
            suppressed.append((finding, covering))
    return active, suppressed, bad


def _covering_suppression(source: SourceFile, finding: Finding) -> Optional[Suppression]:
    ranges = source.def_ranges()
    for sup in source.suppressions:
        if not sup.matches(finding.rule):
            continue
        if sup.line == finding.line:
            return sup
        # Def-level: the comment sits on (or directly above) a `def` whose
        # body contains the finding — suppresses the rule function-wide.
        for def_line in (sup.line, sup.line + 1):
            span = ranges.get(def_line)
            if span and span[0] <= finding.line <= span[1]:
                return sup
    return None


def run_passes(
    ctx: ScanContext,
    passes: Sequence[LintPass],
    baseline: Optional[Set[str]] = None,
) -> Report:
    """Run ``passes`` over ``ctx`` and return a sorted, suppression-applied
    report.  ``baseline`` (a set of fingerprints) filters known findings."""
    raw: List[Finding] = []
    for source in ctx.files:
        if source.parse_error:
            raw.append(
                Finding(path=source.rel, line=1, rule="parse-error", message=source.parse_error)
            )
    for lint_pass in passes:
        raw.extend(lint_pass.run(ctx))
    raw = sorted(set(raw))
    active, suppressed, bad = _apply_suppressions(ctx, raw)
    active = sorted(set(active) | set(bad))
    baselined: List[Finding] = []
    if baseline:
        kept = []
        for finding in active:
            if finding.fingerprint() in baseline:
                baselined.append(finding)
            else:
                kept.append(finding)
        active = kept
    return Report(
        findings=active,
        suppressed=suppressed,
        baselined=baselined,
        files_scanned=len(ctx.files),
    )


# -- baseline files -----------------------------------------------------------
def write_baseline(path: Path, findings: Sequence[Finding]) -> None:
    """Record ``findings`` as the accepted baseline at ``path``."""
    doc = {
        "version": 1,
        "fingerprints": sorted({f.fingerprint() for f in findings}),
    }
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")


def read_baseline(path: Path) -> Set[str]:
    """Load the fingerprint set written by :func:`write_baseline`."""
    doc = json.loads(path.read_text())
    if not isinstance(doc, dict) or doc.get("version") != 1:
        raise ValueError(f"unsupported baseline format in {path}")
    return set(doc.get("fingerprints", []))


# -- shared AST helpers (used by several passes) -------------------------------
def identifier_segments(name: str) -> List[str]:
    """Split ``snake_case`` / ``camelCase`` identifiers into lowercase words."""
    pieces = re.split(r"[_\W]+", name)
    words: List[str] = []
    for piece in pieces:
        words.extend(re.findall(r"[A-Za-z][a-z0-9]*|[A-Z]+(?![a-z])", piece))
    return [w.lower() for w in words if w]


def call_name(node: ast.Call) -> Optional[str]:
    """The bare callee name of a call: ``foo(...)`` and ``x.foo(...)`` -> foo."""
    if isinstance(node.func, ast.Name):
        return node.func.id
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None
