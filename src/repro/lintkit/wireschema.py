"""Wire-schema consistency pass: the frame catalog is closed and complete.

The provider RPC surface is a *closed* catalog: every request op and reply
kind declared in ``core/wire.py`` must be wired through four places that
are trivially easy to forget when adding a frame —

1. a body schema (``PROVIDER_REQUEST_SCHEMAS`` / ``PROVIDER_REPLY_SCHEMAS``)
   whose field kinds all have an encoder *and* a decoder;
2. a dispatch arm in the provider endpoint's ``_PROVIDER_RPC_HANDLERS``
   table (``service/channel.py``);
3. a hypothesis strategy for every field kind in
   ``tests/test_wire_properties.py`` (``_FIELD_STRATEGIES``), so the fuzz
   suite actually generates the frame;
4. a row in the ARCHITECTURE.md frame catalog (request ops only; the
   table's reply column uses the short kind names).

All of that is checked statically by cross-reading the ASTs, with every
finding anchored in ``wire.py`` where the tag is declared.  Error-status
tags must additionally appear in ``_PROVIDER_ERROR_STATUSES``, and tag
values must be unique within each namespace.  Rule id: ``wire-schema``
(suppression alias ``wire``).
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from repro.lintkit.engine import Finding, LintPass, ScanContext, SourceFile


class _Tag:
    __slots__ = ("name", "value", "line")

    def __init__(self, name: str, value: int, line: int) -> None:
        self.name = name
        self.value = value
        self.line = line


class WireSchemaPass(LintPass):
    """Cross-checks the PROV_* frame catalog across code, tests, and docs."""

    name = "wire"
    rules = ("wire-schema",)

    def __init__(
        self,
        wire_rel: str = "src/repro/core/wire.py",
        channel_rel: str = "src/repro/service/channel.py",
        tests_rel: str = "tests/test_wire_properties.py",
        docs_rel: str = "docs/ARCHITECTURE.md",
    ) -> None:
        self._wire_rel = wire_rel
        self._channel_rel = channel_rel
        self._tests_rel = tests_rel
        self._docs_rel = docs_rel

    def run(self, ctx: ScanContext) -> List[Finding]:
        wire = ctx.get(self._wire_rel) or ctx.load(self._wire_rel)
        if wire is None or wire.tree is None:
            return []  # nothing to check in this tree (e.g. fixture scans)
        model = _WireModel(wire)
        findings = model.self_checks()
        findings += self._check_channel(ctx, model)
        findings += self._check_strategies(ctx, model)
        findings += self._check_docs(ctx, model)
        return sorted(set(findings))

    # -- companions -------------------------------------------------------------
    def _check_channel(self, ctx: ScanContext, model: "_WireModel") -> List[Finding]:
        channel = ctx.get(self._channel_rel) or ctx.load(self._channel_rel)
        if channel is None or channel.tree is None:
            return [model.finding(
                f"cannot cross-check dispatch arms: {self._channel_rel} not found"
            )]
        handled = _dict_key_names(channel.tree, "_PROVIDER_RPC_HANDLERS")
        if handled is None:
            return [model.finding(
                f"{self._channel_rel} has no _PROVIDER_RPC_HANDLERS table"
            )]
        findings = []
        for tag in model.requests.values():
            if tag.name not in handled:
                findings.append(model.finding(
                    f"request op {tag.name} has no dispatch arm in"
                    f" _PROVIDER_RPC_HANDLERS ({self._channel_rel})",
                    line=tag.line,
                ))
        for name in sorted(handled - set(model.requests)):
            findings.append(model.finding(
                f"_PROVIDER_RPC_HANDLERS dispatches unknown op {name}"
                f" (not a declared request tag)"
            ))
        return findings

    def _check_strategies(self, ctx: ScanContext, model: "_WireModel") -> List[Finding]:
        tests = ctx.get(self._tests_rel) or ctx.load(self._tests_rel)
        if tests is None or tests.tree is None:
            return [model.finding(
                f"cannot cross-check fuzz strategies: {self._tests_rel} not found"
            )]
        strategies = _dict_key_strings(tests.tree, "_FIELD_STRATEGIES")
        if strategies is None:
            return [model.finding(
                f"{self._tests_rel} has no _FIELD_STRATEGIES table"
            )]
        findings = []
        for kind, line in sorted(model.field_kinds.items()):
            if kind not in strategies:
                findings.append(model.finding(
                    f"field kind '{kind}' has no hypothesis strategy in"
                    f" _FIELD_STRATEGIES ({self._tests_rel}) — the fuzz suite"
                    " will never generate it",
                    line=line,
                ))
        return findings

    def _check_docs(self, ctx: ScanContext, model: "_WireModel") -> List[Finding]:
        path = ctx.root / self._docs_rel
        if not path.is_file():
            return [model.finding(
                f"cannot cross-check the frame catalog: {self._docs_rel} not found"
            )]
        table_rows = [
            line for line in path.read_text().splitlines() if line.lstrip().startswith("|")
        ]
        findings = []
        for tag in model.requests.values():
            if not any(f"`{tag.name}`" in row for row in table_rows):
                findings.append(model.finding(
                    f"request op {tag.name} has no catalog row in {self._docs_rel}",
                    line=tag.line,
                ))
        return findings


class _WireModel:
    """Everything the pass needs out of wire.py's module-level AST."""

    def __init__(self, source: SourceFile) -> None:
        self.source = source
        self.requests: Dict[str, _Tag] = {}
        self.replies: Dict[str, _Tag] = {}
        self.errors: Dict[str, _Tag] = {}
        self.error_statuses: Optional[Set[str]] = None
        self.encoders: Optional[Set[str]] = None
        self.decoders: Optional[Set[str]] = None
        self.request_schemas: Optional[Dict[str, int]] = None  # op name -> line
        self.reply_schemas: Optional[Dict[str, int]] = None
        self.field_kinds: Dict[str, int] = {}  # kind -> first declaring line
        self._scan(source.tree)

    def finding(self, message: str, line: int = 1) -> Finding:
        return Finding(path=self.source.rel, line=line, rule="wire-schema", message=message)

    # -- AST extraction ---------------------------------------------------------
    def _scan(self, tree: ast.Module) -> None:
        for node in tree.body:
            target = _single_target(node)
            if target is None:
                continue
            value = node.value
            if target.startswith("PROV_") and isinstance(value, ast.Constant) \
                    and isinstance(value.value, int):
                tag = _Tag(target, value.value, node.lineno)
                if target.startswith("PROV_REPLY_"):
                    self.replies[target] = tag
                elif target.startswith("PROV_ERR_"):
                    self.errors[target] = tag
                else:
                    self.requests[target] = tag
            elif target == "_PROVIDER_ERROR_STATUSES" and isinstance(
                value, (ast.Tuple, ast.List)
            ):
                self.error_statuses = {
                    elt.id for elt in value.elts if isinstance(elt, ast.Name)
                }
            elif target in ("_FIELD_ENCODERS", "_FIELD_DECODERS") and isinstance(
                value, ast.Dict
            ):
                keys = {
                    key.value
                    for key in value.keys
                    if isinstance(key, ast.Constant) and isinstance(key.value, str)
                }
                if target == "_FIELD_ENCODERS":
                    self.encoders = keys
                else:
                    self.decoders = keys
            elif target in ("PROVIDER_REQUEST_SCHEMAS", "PROVIDER_REPLY_SCHEMAS") \
                    and isinstance(value, ast.Dict):
                table: Dict[str, int] = {}
                for key, body in zip(value.keys, value.values):
                    if isinstance(key, ast.Name):
                        table[key.id] = key.lineno
                    self._collect_kinds(body)
                if target == "PROVIDER_REQUEST_SCHEMAS":
                    self.request_schemas = table
                else:
                    self.reply_schemas = table

    def _collect_kinds(self, body: ast.expr) -> None:
        if not isinstance(body, (ast.Tuple, ast.List)):
            return
        for pair in body.elts:
            if isinstance(pair, (ast.Tuple, ast.List)) and len(pair.elts) == 2:
                kind = pair.elts[1]
                if isinstance(kind, ast.Constant) and isinstance(kind.value, str):
                    self.field_kinds.setdefault(kind.value, kind.lineno)

    # -- intra-file checks --------------------------------------------------------
    def self_checks(self) -> List[Finding]:
        findings: List[Finding] = []
        for label, tags in (
            ("request op", self.requests),
            ("reply kind", self.replies),
            ("error status", self.errors),
        ):
            seen: Dict[int, _Tag] = {}
            for tag in tags.values():
                other = seen.get(tag.value)
                if other is not None:
                    findings.append(self.finding(
                        f"{label} {tag.name} reuses tag value {tag.value}"
                        f" (already taken by {other.name})",
                        line=tag.line,
                    ))
                else:
                    seen[tag.value] = tag
        findings += self._check_schema_table(
            "request op", self.requests, self.request_schemas, "PROVIDER_REQUEST_SCHEMAS"
        )
        findings += self._check_schema_table(
            "reply kind", self.replies, self.reply_schemas, "PROVIDER_REPLY_SCHEMAS"
        )
        if self.error_statuses is not None:
            for tag in self.errors.values():
                if tag.name not in self.error_statuses:
                    findings.append(self.finding(
                        f"error status {tag.name} is missing from"
                        " _PROVIDER_ERROR_STATUSES (decoders will reject it)",
                        line=tag.line,
                    ))
        for kind, line in sorted(self.field_kinds.items()):
            if self.encoders is not None and kind not in self.encoders:
                findings.append(self.finding(
                    f"field kind '{kind}' has no entry in _FIELD_ENCODERS",
                    line=line,
                ))
            if self.decoders is not None and kind not in self.decoders:
                findings.append(self.finding(
                    f"field kind '{kind}' has no entry in _FIELD_DECODERS",
                    line=line,
                ))
        return findings

    def _check_schema_table(
        self,
        label: str,
        tags: Dict[str, _Tag],
        table: Optional[Dict[str, int]],
        table_name: str,
    ) -> List[Finding]:
        if table is None:
            return [self.finding(f"{table_name} table not found or not a dict literal")]
        findings = []
        for tag in tags.values():
            if tag.name not in table:
                findings.append(self.finding(
                    f"{label} {tag.name} has no body schema in {table_name}",
                    line=tag.line,
                ))
        for name, line in sorted(table.items()):
            if name not in tags:
                findings.append(self.finding(
                    f"{table_name} has a schema for undeclared tag {name}",
                    line=line,
                ))
        return findings


def _single_target(node: ast.stmt) -> Optional[str]:
    """Name of a simple module-level ``NAME = ...`` / annotated assignment."""
    if isinstance(node, ast.Assign) and len(node.targets) == 1 \
            and isinstance(node.targets[0], ast.Name):
        return node.targets[0].id
    if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name) \
            and node.value is not None:
        return node.target.id
    return None


def _dict_key_names(tree: ast.Module, table_name: str) -> Optional[Set[str]]:
    """Keys of a module-level dict literal, as bare/attribute tag names."""
    value = _module_value(tree, table_name)
    if not isinstance(value, ast.Dict):
        return None
    names: Set[str] = set()
    for key in value.keys:
        if isinstance(key, ast.Attribute):
            names.add(key.attr)
        elif isinstance(key, ast.Name):
            names.add(key.id)
    return names


def _dict_key_strings(tree: ast.Module, table_name: str) -> Optional[Set[str]]:
    """Keys of a module-level dict literal, as string constants."""
    value = _module_value(tree, table_name)
    if not isinstance(value, ast.Dict):
        return None
    return {
        key.value
        for key in value.keys
        if isinstance(key, ast.Constant) and isinstance(key.value, str)
    }


def _module_value(tree: ast.Module, name: str) -> Optional[ast.expr]:
    for node in tree.body:
        if _single_target(node) == name:
            return node.value
    return None
