"""Docstring pass: the documented packages keep their documentation contract.

This is ``scripts/docs_lint.py`` re-homed as a lintkit pass (the script
remains as a thin shim).  The contract is unchanged:

- every module carries a module docstring of at least ``MIN_MODULE``
  characters — long enough to state the module's role and its
  thread-safety contract;
- every public class, function, and method has a docstring (one line is
  fine); ``_private`` names, dunders, and property ``setter``/``deleter``
  halves are exempt.

Scope defaults to the packages whose docstrings PR 4 promised —
``service/``, ``log/``, and ``core/wire.py`` — plus the durability layer
``storage/``.  Rule ids: ``docstring-missing`` and ``docstring-thin``
(suppression alias ``docs``).
"""

from __future__ import annotations

import ast
from typing import List, Optional, Sequence

from repro.lintkit.engine import Finding, LintPass, ScanContext

MIN_MODULE = 120  # characters — a one-liner is not a module contract

_DEFAULT_SCOPES = (
    "src/repro/service/",
    "src/repro/log/",
    "src/repro/core/wire.py",
    "src/repro/storage/",
    "src/repro/chaos/",
    "src/repro/sim/faults.py",
)


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def _decorator_names(node: ast.AST):
    for decorator in getattr(node, "decorator_list", []):
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        if isinstance(target, ast.Attribute):
            yield target.attr
        elif isinstance(target, ast.Name):
            yield target.id


class DocstringPass(LintPass):
    """Flags missing/thin docstrings in the documented packages."""

    name = "docs"
    rules = ("docstring-missing", "docstring-thin")

    def __init__(self, include: Optional[Sequence[str]] = None) -> None:
        """``include`` limits the pass to repo-relative path prefixes
        (defaults to the PR 4 documentation surface)."""
        self._include = tuple(_DEFAULT_SCOPES if include is None else include)

    def run(self, ctx: ScanContext) -> List[Finding]:
        findings: List[Finding] = []
        for source in ctx.files:
            if source.tree is None:
                continue
            if not any(source.rel.startswith(prefix) for prefix in self._include):
                continue
            findings.extend(self._check_module(source.rel, source.tree))
        return sorted(set(findings))

    def _check_module(self, rel: str, tree: ast.Module) -> List[Finding]:
        findings: List[Finding] = []
        module_doc = ast.get_docstring(tree)
        if module_doc is None:
            findings.append(Finding(
                path=rel, line=1, rule="docstring-missing",
                message="missing module docstring",
            ))
        elif len(module_doc) < MIN_MODULE:
            findings.append(Finding(
                path=rel, line=1, rule="docstring-thin",
                message=(
                    f"module docstring too thin ({len(module_doc)} chars; state"
                    f" the module's role and thread-safety contract, >= {MIN_MODULE})"
                ),
            ))
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                    and _is_public(node.name):
                self._check_callable(rel, node, node.name, findings)
            elif isinstance(node, ast.ClassDef) and _is_public(node.name):
                if ast.get_docstring(node) is None:
                    findings.append(Finding(
                        path=rel, line=node.lineno, rule="docstring-missing",
                        message=f"missing docstring on class `{node.name}`",
                    ))
                for member in node.body:
                    if isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                            and _is_public(member.name):
                        self._check_callable(
                            rel, member, f"{node.name}.{member.name}", findings
                        )
        return findings

    @staticmethod
    def _check_callable(rel: str, node, qualname: str, findings: List[Finding]) -> None:
        decorators = set(_decorator_names(node))
        if "setter" in decorators or "deleter" in decorators or "overload" in decorators:
            return  # the getter/implementation carries the docstring
        if ast.get_docstring(node) is None:
            findings.append(Finding(
                path=rel, line=node.lineno, rule="docstring-missing",
                message=f"missing docstring on `{qualname}`",
            ))
