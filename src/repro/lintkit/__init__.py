"""repro.lintkit: zero-dependency AST static analysis for this repo's contracts.

The paper's security argument rests on a handful of *narrow interfaces*:
secrets (PINs, Shamir shares, HSM seeds) never leave the crypto/HSM layer
in printable form, shared mutable state in the serving layer is only
touched under its declared lock, the provider RPC surface is a closed
catalog of tagged frames, and the crypto hot paths report every operation
to the op meter so the byte-identical cost invariant holds.  Runtime tests
exercise those contracts; ``lintkit`` proves code *stays inside them* by
walking the AST — no third-party linter, no plugins, importable anywhere
the repo runs.

Layout: :mod:`repro.lintkit.engine` holds the reusable pieces (finding
model, suppression comments, baselines, pass protocol, the runner);
one module per analysis pass lives alongside it.  ``scripts/repro_lint.py``
is the CLI; ``docs/STATIC_ANALYSIS.md`` is the rule catalog.
"""

from repro.lintkit.engine import (
    Finding,
    LintPass,
    Report,
    ScanContext,
    SourceFile,
    Suppression,
    run_passes,
)
from repro.lintkit.docs import DocstringPass
from repro.lintkit.locks import LockDisciplinePass
from repro.lintkit.metering import MeteringPass
from repro.lintkit.secrets import SecretTaintPass
from repro.lintkit.wireschema import WireSchemaPass


def default_passes():
    """The five passes the CI gate runs, in their canonical order."""
    return [
        SecretTaintPass(),
        LockDisciplinePass(),
        WireSchemaPass(),
        MeteringPass(),
        DocstringPass(),
    ]


__all__ = [
    "Finding",
    "LintPass",
    "Report",
    "ScanContext",
    "SourceFile",
    "Suppression",
    "run_passes",
    "default_passes",
    "DocstringPass",
    "LockDisciplinePass",
    "MeteringPass",
    "SecretTaintPass",
    "WireSchemaPass",
]
