"""Secret-hygiene taint pass: secret-named values must never become text.

The paper's threat model lets the adversary read everything the service
prints — logs, exception messages, ``repr`` output all cross the trust
boundary.  This pass enforces the repo's redaction rule: a value whose
name marks it as key material (``pin``, ``sk``, ``seed``, ``share``,
``secret``, ...) may be hashed, encrypted, or length-measured, but may
never flow *as itself* into an f-string, ``str()``/``repr()``/``print()``,
a logging call, or an exception constructor.

The analysis is name-based and function-local, tuned for this codebase:

- an identifier is *tainted* when any of its words is in the secret
  registry and none is a sanitizer word (``share_ciphertext`` is fine —
  ciphertexts are public; ``pin_length`` is fine — lengths leak nothing);
- plain assignment propagates taint (``x = pin`` taints ``x``);
- any function call launders its result (``sha256(pin)``, ``len(shares)``)
  — *except* the sink calls themselves, which are exactly what we flag.

Scope: ``core/``, ``crypto/``, and ``hsm/`` — the layers that hold key
material.  Rule id: ``secret-taint`` (suppression alias ``secret``).
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Sequence, Set

from repro.lintkit.engine import Finding, LintPass, ScanContext, identifier_segments

#: Identifier words that mark a value as secret key material.
SECRET_SEGMENTS = frozenset(
    {
        "pin",
        "sk",
        "seed",
        "secret",
        "share",
        "shares",
        "priv",
        "privkey",
        "password",
        "passphrase",
        "plaintext",
    }
)

#: Words that mark a derived value as safe to print: ciphertexts, public
#: keys, digests, commitments, and plain metadata (lengths, counts, ids).
SANITIZER_SEGMENTS = frozenset(
    {
        "ct",
        "cts",
        "ciphertext",
        "ciphertexts",
        "enc",
        "encrypted",
        "pk",
        "pub",
        "public",
        "pubkey",
        "pubkeys",
        "commitment",
        "commitments",
        "hash",
        "hashed",
        "digest",
        "digests",
        "proof",
        "proofs",
        "count",
        "counts",
        "num",
        "len",
        "length",
        "lengths",
        "size",
        "sizes",
        "index",
        "indexes",
        "indices",
        "id",
        "ids",
        "identifier",
        "identifiers",
        "kind",
        "status",
        "phase",
        "label",
        "name",
        "names",
        "version",
        "holder",
        "error",
    }
)

_PRINTING_BUILTINS = frozenset({"str", "repr", "print", "ascii", "format"})
_LOGGING_METHODS = frozenset(
    {"debug", "info", "warning", "error", "exception", "critical", "log"}
)

_DEFAULT_SCOPES = ("src/repro/core/", "src/repro/crypto/", "src/repro/hsm/")


def name_is_tainted(name: str) -> bool:
    """Is ``name`` secret-flavoured and not explicitly sanitized?"""
    segments = identifier_segments(name)
    if not any(seg in SECRET_SEGMENTS for seg in segments):
        return False
    return not any(seg in SANITIZER_SEGMENTS for seg in segments)


class SecretTaintPass(LintPass):
    """Flags secret-named values reaching printable sinks."""

    name = "secrets"
    rules = ("secret-taint",)

    def __init__(self, include: Optional[Sequence[str]] = None) -> None:
        """``include`` limits the pass to files whose repo-relative path
        starts with one of the given prefixes (defaults to core/crypto/hsm)."""
        self._include = tuple(_DEFAULT_SCOPES if include is None else include)

    def run(self, ctx: ScanContext) -> List[Finding]:
        findings: List[Finding] = []
        for source in ctx.files:
            if source.tree is None:
                continue
            if not any(source.rel.startswith(prefix) for prefix in self._include):
                continue
            for func in _functions(source.tree):
                findings.extend(self._check_function(source.rel, func))
        return findings

    # -- per-function analysis -------------------------------------------------
    def _check_function(self, rel: str, func: ast.AST) -> List[Finding]:
        tainted = _seed_taint(func)
        findings: List[Finding] = []
        for stmt in ast.walk(func):
            if isinstance(stmt, ast.Assign):
                _propagate(stmt, tainted)
            elif isinstance(stmt, ast.JoinedStr):
                for part in stmt.values:
                    if isinstance(part, ast.FormattedValue):
                        findings.extend(
                            _flag(rel, part.value, tainted, "an f-string")
                        )
            elif isinstance(stmt, ast.Call):
                findings.extend(self._check_call(rel, stmt, tainted))
            elif isinstance(stmt, ast.Raise) and isinstance(stmt.exc, ast.Call):
                for arg in stmt.exc.args:
                    findings.extend(
                        _flag(rel, arg, tainted, "an exception message")
                    )
        return sorted(set(findings))

    def _check_call(
        self, rel: str, node: ast.Call, tainted: Set[str]
    ) -> Iterable[Finding]:
        if isinstance(node.func, ast.Name) and node.func.id in _PRINTING_BUILTINS:
            sink = f"`{node.func.id}()`"
        elif (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _LOGGING_METHODS
        ):
            sink = f"a log call (`.{node.func.attr}`)"
        else:
            return []
        found: List[Finding] = []
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            found.extend(_flag(rel, arg, tainted, sink))
        return found


def _functions(tree: ast.Module) -> Iterable[ast.AST]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _seed_taint(func: ast.AST) -> Set[str]:
    """Parameters of ``func`` that are tainted by name."""
    tainted: Set[str] = set()
    args = getattr(func, "args", None)
    if args is not None:
        every = list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        for arg in every:
            if name_is_tainted(arg.arg):
                tainted.add(arg.arg)
    return tainted


def _propagate(stmt: ast.Assign, tainted: Set[str]) -> None:
    """``x = <tainted name>`` taints ``x`` (calls launder, literals clear)."""
    source_tainted = _expr_is_tainted_name(stmt.value, tainted)
    for target in stmt.targets:
        if isinstance(target, ast.Name):
            if source_tainted:
                tainted.add(target.id)
            else:
                tainted.discard(target.id)


def _expr_is_tainted_name(node: ast.expr, tainted: Set[str]) -> bool:
    if isinstance(node, ast.Name):
        return node.id in tainted or name_is_tainted(node.id)
    if isinstance(node, ast.Attribute):
        return name_is_tainted(node.attr)
    return False


def _flag(
    rel: str, expr: ast.expr, tainted: Set[str], sink: str
) -> List[Finding]:
    """Tainted names inside ``expr`` that are not laundered by a call."""
    findings = []
    for name, line in _exposed_names(expr):
        if name in tainted or name_is_tainted(name):
            findings.append(
                Finding(
                    path=rel,
                    line=line,
                    rule="secret-taint",
                    message=(
                        f"secret-named value `{name}` flows into {sink};"
                        " redact it (log a length or digest instead)"
                    ),
                )
            )
    return findings


def _exposed_names(expr: ast.expr):
    """(name, line) pairs reachable without crossing a laundering call."""
    if isinstance(expr, ast.Name):
        yield expr.id, expr.lineno
        return
    if isinstance(expr, ast.Attribute):
        yield expr.attr, expr.lineno
        return
    if isinstance(expr, ast.Call):
        # Calls launder their arguments — unless the call is itself a
        # printing sink, which the caller checks separately via _check_call.
        return
    for child in ast.iter_child_nodes(expr):
        if isinstance(child, ast.expr):
            yield from _exposed_names(child)
