"""Operation metering for the performance cost model.

The paper evaluates SafetyPin on physical SoloKeys and reports per-operation
rates (Table 7).  We cannot measure silicon, so every cryptographic primitive
in this package reports the *operations it performs* to an ambient
:class:`OpMeter`.  The cost model (``repro.hsm.costmodel``) later converts an
operation trace into modeled seconds on a chosen device.

Metering is passive and optional: when no meter is attached, counting is a
cheap no-op, so functional code and benchmarks share one code path.

Operation names used throughout the package:

====================  =========================================================
``ec_mult``           NIST P-256 scalar multiplication (the paper's "g^x")
``elgamal_enc``       hashed-ElGamal encryption (2 EC mults + AE)
``elgamal_dec``       hashed-ElGamal decryption (1 EC mult + AE)
``ecdsa_verify``      ECDSA/Schnorr-style verification (2 EC mults)
``pairing``           BLS12-381 optimal-ate pairing
``bls_sign``          BLS signature (1 G1 mult)
``aes_block``         one AES-128 block operation (16 bytes)
``sha256_block``      one SHA-256 compression (64-byte block)
``hmac``              one HMAC-SHA256 over a short message
``flash_read_bytes``  bytes read from HSM non-volatile storage
``io_bytes``          bytes moved over the host<->HSM transport
====================  =========================================================
"""

from __future__ import annotations

import contextlib
import threading
from collections import Counter
from typing import Dict, Iterator, List, Optional


class _MeterStack(threading.local):
    """Per-thread stack of attached meters.

    A stack (not a single slot) lets nested scopes — client ops inside a
    deployment-wide trace — each observe the operations they cover.  It is
    thread-local because the service layer runs many sessions and one
    worker thread per HSM concurrently: a client thread's operations must
    never land on another session's meter.
    """

    def __init__(self) -> None:
        self.meters: List["OpMeter"] = []


_ACTIVE = _MeterStack()


class OpMeter:
    """Accumulates counts of abstract operations.

    >>> meter = OpMeter()
    >>> with meter.attached():
    ...     count("ec_mult")
    ...     count("io_bytes", 32)
    >>> meter.counts["ec_mult"]
    1
    >>> meter.counts["io_bytes"]
    32
    """

    def __init__(self) -> None:
        self.counts: Counter = Counter()

    def add(self, op: str, units: float = 1) -> None:
        """Record ``units`` occurrences of operation ``op``."""
        self.counts[op] += units

    def merge(self, other: "OpMeter") -> None:
        """Fold another meter's counts into this one."""
        self.counts.update(other.counts)

    def reset(self) -> None:
        self.counts.clear()

    def snapshot(self) -> Dict[str, float]:
        """Return a plain-dict copy of the counts."""
        return dict(self.counts)

    @contextlib.contextmanager
    def attached(self) -> Iterator["OpMeter"]:
        """Attach this meter so module-level :func:`count` reports to it
        (on this thread; other threads' operations are never observed)."""
        _ACTIVE.meters.append(self)
        try:
            yield self
        finally:
            _ACTIVE.meters.remove(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self.counts.items()))
        return f"OpMeter({inner})"


def count(op: str, units: float = 1) -> None:
    """Report an operation to every meter attached on this thread."""
    for meter in _ACTIVE.meters:
        meter.counts[op] += units


def active_meter() -> Optional[OpMeter]:
    """Return this thread's innermost attached meter, or ``None``."""
    return _ACTIVE.meters[-1] if _ACTIVE.meters else None


@contextlib.contextmanager
def metered() -> Iterator[OpMeter]:
    """Convenience: attach a fresh meter and yield it.

    >>> with metered() as m:
    ...     count("hmac")
    >>> m.counts["hmac"]
    1
    """
    meter = OpMeter()
    with meter.attached():
        yield meter
