"""Security bounds (paper §6.2, Appendix A).

All probabilities are returned in log2 form where underflow is a risk, with
plain-float convenience wrappers for the common parameter ranges.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Union

Number = Union[int, float, Fraction]


# ---------------------------------------------------------------------------
# §6.2: the log-audit failure bound
# ---------------------------------------------------------------------------
def audit_failure_probability(f_secret: Number, audit_count: int) -> float:
    """Pr[no honest HSM audits a given chunk] ≤ exp((2·f_secret − 1)·C).

    §6.2: with (1 − 2·f_secret)·N honest, participating HSMs each auditing C
    chunks of N, the miss probability per chunk is
    (1 − 1/N)^((1−2f)·N·C) ≤ exp((2f − 1)·C).  At f = 1/16 and C = 128 this
    is 2^-161 < 2^-128.
    """
    f = float(f_secret)
    if not 0 <= f < 0.5:
        raise ValueError("f_secret must be in [0, 0.5) for the bound to hold")
    return math.exp((2 * f - 1) * audit_count)


# ---------------------------------------------------------------------------
# Theorem 9: correctness (fault tolerance)
# ---------------------------------------------------------------------------
def correctness_failure_bound(cluster_size: int, f_live: Number) -> float:
    """Theorem 9's bound: Pr[recovery fails] ≤ C(n, n/2)·f_live^(n/2) ≤ 2^-n/2
    for f_live ≤ 1/8 (the paper instantiates f_live = 1/64, t = n/2)."""
    n = cluster_size
    half = n // 2
    return math.comb(n, half) * float(f_live) ** half


def correctness_failure_exact(cluster_size: int, threshold: int, f_live: Number) -> float:
    """Exact binomial tail: Pr[fewer than t of n sampled HSMs are alive],
    with each HSM failed independently with probability f_live."""
    n, t, f = cluster_size, threshold, float(f_live)
    # Recovery fails iff the number of *live* cluster members is < t.
    return sum(
        math.comb(n, k) * (1 - f) ** k * f ** (n - k) for k in range(0, t)
    )


# ---------------------------------------------------------------------------
# Lemma 8: the cover bound
# ---------------------------------------------------------------------------
def cover_probability_bound(num_hsms: int, cluster_size: int, num_pins: int) -> float:
    """Log2 of Lemma 8's bound on Cover(1/16, 3/n).

    The lemma: for N > e·n and Φ ≤ 2^(n/2), the probability that *some*
    1/16-fraction subset of HSMs n/2-covers more than (3/n)·N of Φ random
    clusters is at most 2^(-N/4).  We evaluate the underlying expression

        2^(N/2) · (Φ·e/(β·N) · (2eα)^(n/2))^(β·N),   α=1/16, β=3/n

    in log2 space so callers can check it for arbitrary parameters; when the
    lemma's preconditions hold this is ≤ −N/4.
    """
    n_hsms, n, phi = num_hsms, cluster_size, num_pins
    alpha = 1.0 / 16.0
    beta = 3.0 / n
    log2_inner = (
        math.log2(phi)
        + math.log2(math.e)
        - math.log2(beta * n_hsms)
        + (n / 2) * math.log2(2 * math.e * alpha)
    )
    return n_hsms / 2 + beta * n_hsms * log2_inner


def theorem10_preconditions_ok(num_hsms: int, cluster_size: int, num_pins: int) -> bool:
    """Lemma 8 / Theorem 10 preconditions: N > e·n and |P| ≤ 2^(n/2)."""
    return num_hsms > math.e * cluster_size and num_pins <= 2 ** (cluster_size / 2)


# ---------------------------------------------------------------------------
# Theorem 10: the security bound
# ---------------------------------------------------------------------------
def security_advantage_bound(
    num_hsms: int,
    cluster_size: int,
    num_pins: int,
    oracle_queries: int = 2**40,
    cdh_advantage: float = 2**-100,
    ae_advantage: float = 2**-100,
) -> float:
    """Theorem 10: LHEncAdv ≤ 2^(−N/4) + N·Q·CDHAdv + 3N/(n·|P|) + AEAdv.

    The dominant, parameter-driven term is 3N/(n·|P|) — the price of
    location hiding over the ideal 1/|P| PIN-guessing bound.
    """
    return (
        2.0 ** (-num_hsms / 4)
        + num_hsms * oracle_queries * cdh_advantage
        + 3.0 * num_hsms / (cluster_size * num_pins)
        + ae_advantage
    )


def security_loss_bits(num_hsms: int, cluster_size: int) -> float:
    """Bits of security lost versus pure PIN guessing (Figure 11's y-axis).

    The attacker's bounded advantage is ≈ 3N/(n·|P|) versus 1/|P| for PIN
    guessing, a ratio of 3N/n:  loss = log2(3N/n).

    Note: evaluating at the paper's N=3,100 gives 7.86 bits at n=40, while
    Figure 11 prints 6.81 — the figure's annotations correspond to N=1,500
    (log2(3·1500/40)=6.81, log2(3·1500/100)=5.49).  The *shape* (−log2(n)
    decay, ~1.3 bits across n=40..100) is identical; EXPERIMENTS.md records
    both evaluations.
    """
    return math.log2(3.0 * num_hsms / cluster_size)


def remark5_attack_advantage(
    num_hsms: int, cluster_size: int, num_pins: int, f_secret: Number = Fraction(1, 16)
) -> float:
    """Remark 5's generic attack: corrupt f·N keys ⇒ test (f·N)/n PINs,
    succeeding with probability ≈ f·N/(n·|P|).  Theorem 10 is tight against
    this up to the constant 3/f."""
    return float(f_secret) * num_hsms / (cluster_size * num_pins)


# ---------------------------------------------------------------------------
# Parameter selection (§9.2)
# ---------------------------------------------------------------------------
def minimum_cluster_size(num_pins: int) -> int:
    """Smallest even n with |P| ≤ 2^(n/2) (the Lemma 8 precondition).

    Six-digit PINs (|P| = 10^6) give n = 40, the paper's cluster size; the
    artifact likewise "does not measure cluster sizes less than 40 because
    our analysis shows that our security guarantees begin to break down".
    """
    if num_pins < 2:
        return 2
    n = 2 * math.ceil(math.log2(num_pins))
    return n if n % 2 == 0 else n + 1
