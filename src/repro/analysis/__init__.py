"""The paper's security analysis, as executable mathematics.

Implements the quantitative bounds of §6.2 and Appendix A (Lemma 8,
Theorems 9 and 10), plus the parameter-selection rules derived from them.
The benchmarks use these to reproduce the security-loss annotations of
Figure 11 and the parameter table of §9.2.
"""

from repro.analysis.bounds import (
    audit_failure_probability,
    correctness_failure_bound,
    correctness_failure_exact,
    cover_probability_bound,
    security_advantage_bound,
    security_loss_bits,
    remark5_attack_advantage,
    minimum_cluster_size,
    theorem10_preconditions_ok,
)

__all__ = [
    "audit_failure_probability",
    "correctness_failure_bound",
    "correctness_failure_exact",
    "cover_probability_bound",
    "security_advantage_bound",
    "security_loss_bits",
    "remark5_attack_advantage",
    "minimum_cluster_size",
    "theorem10_preconditions_ok",
]
