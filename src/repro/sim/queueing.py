"""M/M/1 queueing model for recovery tail latency (paper Figure 13).

The paper: "We compute these values by modeling incoming requests using a
Poisson process and each HSM using an M/M/1 queue with service times derived
from our experimental results."

For an M/M/1 queue with arrival rate λ and service rate μ (λ < μ), the
sojourn time (queueing + service) is exponential with rate (μ − λ), so the
p-th percentile latency is  −ln(1 − p) / (μ − λ).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class MM1Queue:
    """One HSM modeled as an M/M/1 queue."""

    service_rate: float  # jobs/second the HSM can absorb (μ)
    arrival_rate: float  # jobs/second offered to it (λ)

    def __post_init__(self) -> None:
        if self.service_rate <= 0:
            raise ValueError("service rate must be positive")
        if self.arrival_rate < 0:
            raise ValueError("arrival rate must be non-negative")

    @property
    def utilization(self) -> float:
        return self.arrival_rate / self.service_rate

    @property
    def stable(self) -> bool:
        return self.arrival_rate < self.service_rate

    def mean_latency(self) -> float:
        if not self.stable:
            return math.inf
        return 1.0 / (self.service_rate - self.arrival_rate)

    def latency_percentile(self, p: float = 0.99) -> float:
        """p-th percentile sojourn time; infinite for an unstable queue."""
        if not (0 < p < 1):
            raise ValueError("percentile must be in (0, 1)")
        if not self.stable:
            return math.inf
        return -math.log(1.0 - p) / (self.service_rate - self.arrival_rate)


@dataclass(frozen=True)
class EpochBatchModel:
    """Latency/cost model of batched log epochs (the serving layer).

    Sessions arrive as a Poisson stream at ``arrival_rate`` (sessions/s)
    and wait for the next epoch tick, committed every ``epoch_interval``
    seconds at a fixed cost of ``epoch_seconds`` of log-update work.  With
    per-request epochs every session pays ``epoch_seconds`` itself; with
    batching the cost is amortized over everyone sharing the tick.
    """

    arrival_rate: float  # sessions/second offered to the service
    epoch_interval: float  # seconds between batch ticks
    epoch_seconds: float  # cost of one run_update epoch

    def __post_init__(self) -> None:
        if self.arrival_rate < 0:
            raise ValueError("arrival rate must be non-negative")
        if self.epoch_interval <= 0 or self.epoch_seconds < 0:
            raise ValueError("epoch interval must be positive, cost non-negative")

    @property
    def sessions_per_epoch(self) -> float:
        return self.arrival_rate * self.epoch_interval

    def mean_wait(self) -> float:
        """Mean added latency: uniform arrival within a tick waits T/2."""
        return self.epoch_interval / 2.0

    def wait_percentile(self, p: float = 0.99) -> float:
        if not (0 < p < 1):
            raise ValueError("percentile must be in (0, 1)")
        return p * self.epoch_interval

    def epoch_cost_per_session(self) -> float:
        """Amortized log-update seconds each session pays.

        Falls from ``epoch_seconds`` (per-request, <=1 session per epoch)
        toward ``epoch_seconds / (λT)`` as batches fill up.
        """
        return self.epoch_seconds / max(1.0, self.sessions_per_epoch)

    def speedup_vs_per_request(self) -> float:
        """Log-update work saved by batching: sessions per epoch, >= 1."""
        return max(1.0, self.sessions_per_epoch)


@dataclass(frozen=True)
class EpochShardModel:
    """Capacity model of sharded epoch lanes (Amdahl over the epoch work).

    An unsharded epoch costs ``epoch_seconds``.  Sharding splits the
    *parallelizable* part (chunk preparation, per-shard audits — everything
    proportional to the shard's insertions) across ``num_shards`` lanes,
    while ``serial_fraction`` of the cost stays serial (join + cross-shard
    root publish + the batcher's single-threaded bookkeeping), and each
    extra lane adds ``per_shard_overhead`` seconds of fixed per-epoch work
    (every lane runs its own signature collection and quorum check against
    the full fleet).

    This is the planning-side mirror of the live ``ShardedLog`` +
    lane-pool implementation, the way :class:`EpochBatchModel` mirrors the
    unsharded batcher.
    """

    arrival_rate: float  # sessions/second offered to the service
    epoch_interval: float  # seconds between batch ticks
    epoch_seconds: float  # cost of one *unsharded* run_update epoch
    num_shards: int = 1  # parallel lanes (1 = the EpochBatchModel case)
    serial_fraction: float = 0.05  # share of epoch_seconds that cannot shard
    per_shard_overhead: float = 0.0  # fixed extra seconds per additional lane

    def __post_init__(self) -> None:
        if self.arrival_rate < 0:
            raise ValueError("arrival rate must be non-negative")
        if self.epoch_interval <= 0 or self.epoch_seconds < 0:
            raise ValueError("epoch interval must be positive, cost non-negative")
        if self.num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if not (0 <= self.serial_fraction <= 1):
            raise ValueError("serial_fraction must be in [0, 1]")
        if self.per_shard_overhead < 0:
            raise ValueError("per_shard_overhead must be non-negative")

    @property
    def sessions_per_epoch(self) -> float:
        return self.arrival_rate * self.epoch_interval

    def lane_seconds(self) -> float:
        """Wall-clock of one sharded tick: serial part + slowest lane."""
        serial = self.serial_fraction * self.epoch_seconds
        parallel = (1.0 - self.serial_fraction) * self.epoch_seconds
        overhead = self.per_shard_overhead * (self.num_shards - 1)
        return serial + parallel / self.num_shards + overhead

    def speedup(self) -> float:
        """Epoch-preparation speedup over the unsharded single lane."""
        lane = self.lane_seconds()
        return self.epoch_seconds / lane if lane > 0 else float("inf")

    def epoch_cost_per_session(self) -> float:
        """Amortized wall-clock each session pays for its tick's epoch."""
        return self.lane_seconds() / max(1.0, self.sessions_per_epoch)

    def max_stable_arrival_rate(self, sessions_cost_seconds: float = 0.0) -> float:
        """Largest sustainable session rate: a tick's epoch (plus optional
        per-session serving cost) must finish within the tick interval."""
        budget = self.epoch_interval - self.lane_seconds()
        if budget <= 0:
            return 0.0
        if sessions_cost_seconds <= 0:
            return math.inf
        return budget / (sessions_cost_seconds * self.epoch_interval)


def min_fleet_for_latency(
    total_job_rate: float,
    per_hsm_service_rate: float,
    latency_constraint: Optional[float],
    percentile: float = 0.99,
) -> int:
    """Smallest N such that splitting ``total_job_rate`` evenly over N
    M/M/1 queues meets the percentile latency constraint.

    ``latency_constraint=None`` means "any finite latency" (the paper's
    "Infinite" curve): N need only make each queue stable.

    Closed form: p99 ≤ L  ⇔  μ − λ/N ≥ −ln(0.01)/L
                          ⇔  N ≥ λ / (μ + ln(1−p)/L).
    """
    if total_job_rate <= 0:
        return 1
    if latency_constraint is None:
        # Stability only: λ/N < μ.
        return math.floor(total_job_rate / per_hsm_service_rate) + 1
    needed_slack = -math.log(1.0 - percentile) / latency_constraint
    if needed_slack >= per_hsm_service_rate:
        raise ValueError(
            "latency constraint unreachable: service time alone exceeds it"
        )
    n = total_job_rate / (per_hsm_service_rate - needed_slack)
    return max(1, math.ceil(n))


def fig13_series(
    per_hsm_service_rate: float,
    jobs_per_recovery: float,
    requests_per_year: Sequence[float],
    latency_constraints: Sequence[Optional[float]] = (30.0, 60.0, 300.0, None),
) -> List[Tuple[Optional[float], List[Tuple[float, int]]]]:
    """Figure 13's curves: data-center size N vs annual request rate, one
    series per 99th-percentile latency constraint.

    ``jobs_per_recovery`` is the cluster size n: each client recovery puts
    one decrypt-and-puncture job on each of n HSMs.
    """
    seconds_per_year = 3600.0 * 24 * 365
    series = []
    for constraint in latency_constraints:
        points = []
        for annual in requests_per_year:
            job_rate = annual * jobs_per_recovery / seconds_per_year
            points.append(
                (annual, min_fleet_for_latency(job_rate, per_hsm_service_rate, constraint))
            )
        series.append((constraint, points))
    return series
