"""Throughput and cost planning (paper §9.2, Figure 12, Table 14).

The per-HSM service model follows the paper's accounting:

- a recovery job on one HSM = one Bloom-filter decrypt-and-puncture (the
  Figure 10 critical path), priced with the cost model;
- each HSM also spends a fixed fraction of its active cycles auditing the
  log (the paper measures ≈11%);
- puncturable keys wear out: after ``punctures_before_rotation`` decryptions
  the HSM must regenerate its key array, which costs one public-key
  operation per slot (the paper estimates 75 hours on a SoloKey and finds
  HSMs spend roughly half their life rotating);
- one *client* recovery consumes ``cluster_size`` HSM jobs (every cluster
  member decrypts one share).

Throughput scales across devices by the Table 2 ``g^x``-rate ratio, the
paper's own method for Figure 12 and Table 14.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional, Sequence

from repro.crypto.bloom import BloomParams
from repro.hsm.costmodel import CostModel, Transport
from repro.hsm.devices import DeviceSpec, SOLOKEY


@dataclass(frozen=True)
class HsmThroughputModel:
    """Per-HSM service-rate model for one device type."""

    device: DeviceSpec
    decrypt_puncture_seconds: float
    rotation_seconds: float
    punctures_before_rotation: int
    log_audit_fraction: float = 0.11  # §9.1: ~11% of active cycles

    @property
    def service_rate(self) -> float:
        """Decrypt-and-puncture jobs per second, ignoring rotation/log tax
        (what the queueing model uses for in-service HSMs)."""
        return 1.0 / self.decrypt_puncture_seconds

    @property
    def processing_seconds_between_rotations(self) -> float:
        base = self.punctures_before_rotation * self.decrypt_puncture_seconds
        return base / (1.0 - self.log_audit_fraction)

    @property
    def rotation_duty_fraction(self) -> float:
        """Fraction of an HSM's life spent regenerating keys (paper: ~56%)."""
        processing = self.processing_seconds_between_rotations
        return self.rotation_seconds / (self.rotation_seconds + processing)

    @property
    def recoveries_per_hour(self) -> float:
        """Decrypt-and-puncture jobs per wall-clock hour, all taxes included
        (paper: 1,503.9 for the SoloKey)."""
        cycle = self.rotation_seconds + self.processing_seconds_between_rotations
        return 3600.0 * self.punctures_before_rotation / cycle


def build_throughput_model(
    device: DeviceSpec = SOLOKEY,
    bloom_params: Optional[BloomParams] = None,
    transport: Optional[Transport] = None,
) -> HsmThroughputModel:
    """Price decrypt+puncture and rotation for a device via the cost model.

    Operation counts per decrypt-and-puncture on Bloom parameters (m, k)
    with a depth-``ceil(log2 m)`` secure-deletion tree:

    - 1 ElGamal decryption (the surviving slot),
    - read path + k delete paths: (k+1)·depth AES-GCM node decryptions and
      k·depth re-encryptions, 2 blocks each,
    - the same number of ~64-byte node ciphertexts over the transport.

    Rotation = m fresh slot keypairs (m EC mults) + m tree setup AE blocks.
    """
    if bloom_params is None:
        bloom_params = BloomParams.paper_deployment()
    model = CostModel(device, transport)
    m = bloom_params.num_slots
    k = bloom_params.num_hashes
    depth = max(1, math.ceil(math.log2(m)))
    node_bytes = 64  # two 16-byte keys + GCM nonce/tag overhead

    counts: Dict[str, float] = {
        "elgamal_dec": 1,
        # read path for the decryption + k delete walks (down + re-encrypt up)
        "aes_block": (depth + 3 * k * depth) * 2,
        "io_bytes": (depth + 3 * k * depth) * node_bytes,
        "flash_read_bytes": 16 * (k + 1),
    }
    decrypt_puncture = model.seconds(counts)

    rotation_counts: Dict[str, float] = {
        "ec_mult": m,  # fresh slot keypairs
        "aes_block": 4 * m,  # tree setup encryption
        "io_bytes": m * node_bytes,
    }
    rotation = model.seconds(rotation_counts)

    # The paper rotates once half the slot keys are deleted; each puncture
    # deletes k slots.
    punctures_before_rotation = max(1, m // (2 * k))
    return HsmThroughputModel(
        device=device,
        decrypt_puncture_seconds=decrypt_puncture,
        rotation_seconds=rotation,
        punctures_before_rotation=punctures_before_rotation,
    )


def recoveries_per_year(
    num_hsms: int,
    cluster_size: int,
    throughput: HsmThroughputModel,
) -> float:
    """Client recoveries/year a fleet sustains: each recovery costs
    ``cluster_size`` HSM jobs (Figure 12's y-axis)."""
    hours = 24.0 * 365
    return num_hsms * throughput.recoveries_per_hour * hours / cluster_size


@dataclass(frozen=True)
class DeploymentPlan:
    """One row of Table 14."""

    device: DeviceSpec
    quantity: int
    f_secret: Fraction
    tolerated_evil: int
    hardware_cost_usd: float
    recoveries_per_year: float

    def describe(self) -> str:
        return (
            f"{self.device.name:<22} qty={self.quantity:>6} "
            f"f_secret=1/{int(1 / self.f_secret)} "
            f"N_evil={self.tolerated_evil:>4} cost=${self.hardware_cost_usd:,.0f}"
        )


def plan_deployment(
    device: DeviceSpec,
    annual_recoveries: float,
    cluster_size: int = 40,
    f_secret: Fraction = Fraction(1, 16),
    throughput: Optional[HsmThroughputModel] = None,
    min_quantity: Optional[int] = None,
) -> DeploymentPlan:
    """Size a fleet of ``device`` for ``annual_recoveries`` (Table 14)."""
    if throughput is None:
        throughput = build_throughput_model(device)
    per_hsm_yearly_jobs = throughput.recoveries_per_hour * 24 * 365
    needed_jobs = annual_recoveries * cluster_size
    quantity = max(1, math.ceil(needed_jobs / per_hsm_yearly_jobs))
    if min_quantity is not None:
        quantity = max(quantity, min_quantity)
    return DeploymentPlan(
        device=device,
        quantity=quantity,
        f_secret=f_secret,
        tolerated_evil=int(f_secret * quantity),
        hardware_cost_usd=quantity * device.price_usd,
        recoveries_per_year=recoveries_per_year(quantity, cluster_size, throughput),
    )


def fig12_series(
    devices: Sequence[DeviceSpec],
    budgets_usd: Sequence[float],
    cluster_size: int = 40,
) -> Dict[str, List[tuple]]:
    """Figure 12: recoveries/year vs hardware outlay, one line per device."""
    out: Dict[str, List[tuple]] = {}
    for device in devices:
        throughput = build_throughput_model(device)
        points = []
        for budget in budgets_usd:
            quantity = int(budget / device.price_usd)
            annual = (
                recoveries_per_year(quantity, cluster_size, throughput)
                if quantity > 0
                else 0.0
            )
            points.append((budget, annual))
        out[device.name] = points
    return out


# AWS S3 infrequent-access pricing used by Table 14's storage estimate.
S3_IA_PER_GB_MONTH = 0.0125


def storage_cost_per_year(users: float, gb_per_user: float = 4.0) -> float:
    """Table 14's footnote: storing user disk images dwarfs HSM cost."""
    return users * gb_per_user * S3_IA_PER_GB_MONTH * 12
