"""Workload generation and discrete-event queue simulation.

Two uses:

1. empirical validation of the analytic M/M/1 tail-latency model behind
   Figure 13 (``simulate_queue_p99`` vs ``MM1Queue.latency_percentile``);
2. driving multi-user protocol scenarios in tests and examples
   (``PoissonWorkload`` produces arrival times and user/PIN pairs).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional, Tuple


def percentile(samples: List[float], p: float) -> float:
    """The ``p``-quantile of ``samples`` under the ceil-rank convention.

    Rank ``ceil(p * n)`` (1-based) of the sorted samples: p50 of 100
    samples is the 50th-smallest, p99 the 99th-smallest — never the max
    unless ``p`` actually reaches ``1.0``.  (The previous ``int(p * n)``
    index read one rank too high: p99 of 100 samples returned the max.)
    Returns NaN on an empty list.
    """
    if not samples:
        return float("nan")
    ordered = sorted(samples)
    rank = min(len(ordered), max(1, math.ceil(p * len(ordered))))
    return ordered[rank - 1]


#: Alias for call sites whose ``percentile=`` keyword shadows the function.
_percentile = percentile


@dataclass
class PoissonWorkload:
    """Poisson arrival process of recovery requests."""

    rate_per_second: float
    rng: random.Random

    def arrival_times(self, count: int) -> List[float]:
        """The first ``count`` arrival instants."""
        t = 0.0
        out = []
        for _ in range(count):
            t += self.rng.expovariate(self.rate_per_second)
            out.append(t)
        return out

    def users(self, count: int, pin_length: int = 4) -> List[Tuple[str, str]]:
        """Synthetic (username, PIN) pairs.

        PINs are drawn uniformly; real-world PIN skew only *helps* the
        attacker guess PINs, which is orthogonal to the systems behaviour
        exercised here.
        """
        pairs = []
        for i in range(count):
            pin = "".join(self.rng.choice("0123456789") for _ in range(pin_length))
            pairs.append((f"user{i}", pin))
        return pairs


@dataclass
class DiurnalWorkload:
    """Non-homogeneous Poisson arrivals with a day/night rate swing.

    Models the provider's diurnal traffic: the instantaneous arrival rate is
    ``base_rate * (1 + amplitude * sin(2*pi*t/period + phase))`` and
    arrivals are drawn by Lewis-Shedler thinning, so the process is a pure
    function of the injected ``rng``.  Each arrival is attributed to one of
    ``num_users`` modeled users (the chaos campaign samples a small subset
    of these as live protocol sessions; the rest feed the closed-form
    latency models at full population scale).
    """

    base_rate: float
    amplitude: float
    period: float
    num_users: int
    rng: random.Random
    phase: float = 0.0

    def __post_init__(self) -> None:
        """Validate the swing: rates must stay strictly positive."""
        if not (0.0 <= self.amplitude < 1.0):
            raise ValueError("amplitude must be in [0, 1) so the rate stays > 0")
        if self.base_rate <= 0 or self.period <= 0 or self.num_users < 1:
            raise ValueError("base_rate, period, and num_users must be positive")

    def rate_at(self, t: float) -> float:
        """Instantaneous arrival rate at virtual time ``t``."""
        return self.base_rate * (
            1.0 + self.amplitude * math.sin(2.0 * math.pi * t / self.period + self.phase)
        )

    def arrivals(self, start: float, end: float) -> List[Tuple[float, int]]:
        """All ``(arrival_time, modeled_user_id)`` pairs in ``[start, end)``.

        Thinning: candidates are drawn at the peak rate and accepted with
        probability ``rate(t)/peak``, giving the exact non-homogeneous
        process without per-step integration.
        """
        peak = self.base_rate * (1.0 + self.amplitude)
        out: List[Tuple[float, int]] = []
        t = start
        while True:
            t += self.rng.expovariate(peak)
            if t >= end:
                return out
            if self.rng.random() * peak <= self.rate_at(t):
                out.append((t, self.rng.randrange(self.num_users)))


def simulate_queue_p99(
    arrival_rate: float,
    service_rate: float,
    num_jobs: int = 20000,
    rng: Optional[random.Random] = None,
    percentile: float = 0.99,
) -> float:
    """Discrete-event simulation of one M/M/1 queue; returns the empirical
    sojourn-time percentile.  Used to validate the Figure 13 closed form."""
    rng = rng or random.Random(0)
    t = 0.0
    server_free_at = 0.0
    latencies = []
    for _ in range(num_jobs):
        t += rng.expovariate(arrival_rate)
        start = max(t, server_free_at)
        service = rng.expovariate(service_rate)
        done = start + service
        server_free_at = done
        latencies.append(done - t)
    return _percentile(latencies, percentile)


def simulate_fleet_p99(
    total_arrival_rate: float,
    service_rate: float,
    num_hsms: int,
    num_jobs: int = 20000,
    rng: Optional[random.Random] = None,
    percentile: float = 0.99,
) -> float:
    """Jobs split uniformly at random over ``num_hsms`` independent queues
    (how a provider load-balances recoveries across the fleet)."""
    rng = rng or random.Random(0)
    t = 0.0
    free_at = [0.0] * num_hsms
    latencies = []
    for _ in range(num_jobs):
        t += rng.expovariate(total_arrival_rate)
        q = rng.randrange(num_hsms)
        start = max(t, free_at[q])
        done = start + rng.expovariate(service_rate)
        free_at[q] = done
        latencies.append(done - t)
    return _percentile(latencies, percentile)
