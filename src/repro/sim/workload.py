"""Workload generation and discrete-event queue simulation.

Two uses:

1. empirical validation of the analytic M/M/1 tail-latency model behind
   Figure 13 (``simulate_queue_p99`` vs ``MM1Queue.latency_percentile``);
2. driving multi-user protocol scenarios in tests and examples
   (``PoissonWorkload`` produces arrival times and user/PIN pairs).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple


@dataclass
class PoissonWorkload:
    """Poisson arrival process of recovery requests."""

    rate_per_second: float
    rng: random.Random

    def arrival_times(self, count: int) -> List[float]:
        """The first ``count`` arrival instants."""
        t = 0.0
        out = []
        for _ in range(count):
            t += self.rng.expovariate(self.rate_per_second)
            out.append(t)
        return out

    def users(self, count: int, pin_length: int = 4) -> List[Tuple[str, str]]:
        """Synthetic (username, PIN) pairs.

        PINs are drawn uniformly; real-world PIN skew only *helps* the
        attacker guess PINs, which is orthogonal to the systems behaviour
        exercised here.
        """
        pairs = []
        for i in range(count):
            pin = "".join(self.rng.choice("0123456789") for _ in range(pin_length))
            pairs.append((f"user{i}", pin))
        return pairs


def simulate_queue_p99(
    arrival_rate: float,
    service_rate: float,
    num_jobs: int = 20000,
    rng: Optional[random.Random] = None,
    percentile: float = 0.99,
) -> float:
    """Discrete-event simulation of one M/M/1 queue; returns the empirical
    sojourn-time percentile.  Used to validate the Figure 13 closed form."""
    rng = rng or random.Random(0)
    t = 0.0
    server_free_at = 0.0
    latencies = []
    for _ in range(num_jobs):
        t += rng.expovariate(arrival_rate)
        start = max(t, server_free_at)
        service = rng.expovariate(service_rate)
        done = start + service
        server_free_at = done
        latencies.append(done - t)
    latencies.sort()
    index = min(len(latencies) - 1, int(percentile * len(latencies)))
    return latencies[index]


def simulate_fleet_p99(
    total_arrival_rate: float,
    service_rate: float,
    num_hsms: int,
    num_jobs: int = 20000,
    rng: Optional[random.Random] = None,
    percentile: float = 0.99,
) -> float:
    """Jobs split uniformly at random over ``num_hsms`` independent queues
    (how a provider load-balances recoveries across the fleet)."""
    rng = rng or random.Random(0)
    t = 0.0
    free_at = [0.0] * num_hsms
    latencies = []
    for _ in range(num_jobs):
        t += rng.expovariate(total_arrival_rate)
        q = rng.randrange(num_hsms)
        start = max(t, free_at[q])
        done = start + rng.expovariate(service_rate)
        free_at[q] = done
        latencies.append(done - t)
    latencies.sort()
    index = min(len(latencies) - 1, int(percentile * len(latencies)))
    return latencies[index]
