"""Discrete-event simulation of a SafetyPin data center.

The analytic models behind Figures 12/13 assume Poisson arrivals, M/M/1
queues, and independent key-rotation downtime.  This simulator checks those
assumptions by actually playing out a deployment timeline:

- recovery jobs arrive as a Poisson process; each job fans out to the
  ``n`` HSMs of a (uniformly random) hidden cluster;
- each HSM serves its own FIFO queue with exponential service times around
  the cost-model mean;
- each HSM counts punctures and goes offline for its rotation time once the
  Bloom filter is half-worn, exactly like the real device;
- a job completes when ``t`` of its ``n`` shares are decrypted (extra
  shares are still charged to the queues that serve them, as in reality).

Outputs: per-job completion latency percentiles, per-HSM utilization, and
rotation downtime fractions — comparable against the closed-form models in
``repro.sim.queueing`` / ``repro.sim.capacity``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional

from repro.sim.capacity import HsmThroughputModel


@dataclass
class SimResult:
    """Aggregate statistics from one simulation run."""

    completed_jobs: int
    latencies: List[float]
    busy_fraction: float
    rotating_fraction: float
    rotations: int

    def percentile(self, p: float) -> float:
        """Latency ``p``-quantile under the ceil-rank convention (p99 of 100
        samples is the 99th-smallest, not the max — see
        :func:`repro.sim.workload.percentile`)."""
        from repro.sim.workload import percentile

        return percentile(self.latencies, p)

    @property
    def mean_latency(self) -> float:
        return sum(self.latencies) / max(1, len(self.latencies))


@dataclass
class _Hsm:
    index: int
    free_at: float = 0.0
    punctures: int = 0
    busy_time: float = 0.0
    rotating_time: float = 0.0
    rotations: int = 0


@dataclass(order=True)
class _Share:
    ready_at: float
    job_id: int = field(compare=False)


class DataCenterSimulator:
    """Simulates ``num_hsms`` devices serving threshold recoveries."""

    def __init__(
        self,
        num_hsms: int,
        cluster_size: int,
        threshold: int,
        throughput: HsmThroughputModel,
        rng: Optional[random.Random] = None,
    ) -> None:
        if threshold > cluster_size or cluster_size > num_hsms:
            raise ValueError("need t <= n <= N")
        self.num_hsms = num_hsms
        self.cluster_size = cluster_size
        self.threshold = threshold
        self.throughput = throughput
        self.rng = rng or random.Random(0)

    def run(self, arrival_rate: float, num_jobs: int) -> SimResult:
        """Simulate ``num_jobs`` Poisson arrivals at ``arrival_rate``/s."""
        rng = self.rng
        hsms = [_Hsm(i) for i in range(self.num_hsms)]
        mean_service = self.throughput.decrypt_puncture_seconds
        rotation_s = self.throughput.rotation_seconds
        rotation_after = self.throughput.punctures_before_rotation

        latencies: List[float] = []
        t = 0.0
        horizon = 0.0
        for _ in range(num_jobs):
            t += rng.expovariate(arrival_rate)
            cluster = rng.sample(range(self.num_hsms), self.cluster_size)
            share_done: List[float] = []
            for index in cluster:
                hsm = hsms[index]
                start = max(t, hsm.free_at)
                service = rng.expovariate(1.0 / mean_service)
                done = start + service
                hsm.busy_time += service
                hsm.punctures += 1
                hsm.free_at = done
                # Wear-triggered rotation takes the device offline.
                if hsm.punctures >= rotation_after:
                    hsm.free_at += rotation_s
                    hsm.rotating_time += rotation_s
                    hsm.rotations += 1
                    hsm.punctures = 0
                share_done.append(done)
            share_done.sort()
            completion = share_done[self.threshold - 1]
            latencies.append(completion - t)
            horizon = max(horizon, completion)

        total_time = max(horizon, 1e-9) * self.num_hsms
        busy = sum(h.busy_time for h in hsms) / total_time
        rotating = sum(h.rotating_time for h in hsms) / total_time
        return SimResult(
            completed_jobs=num_jobs,
            latencies=latencies,
            busy_fraction=busy,
            rotating_fraction=rotating,
            rotations=sum(h.rotations for h in hsms),
        )

    def max_stable_rate(self) -> float:
        """Arrival rate (jobs/s) at which the fleet saturates:
        N · effective-rate / n."""
        per_hsm = self.throughput.recoveries_per_hour / 3600.0
        return self.num_hsms * per_hsm / self.cluster_size
