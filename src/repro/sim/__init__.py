"""Deployment-scale models (paper §9.2, Figures 12–14).

The paper's billion-user numbers are themselves models — Poisson arrivals
into M/M/1 HSM queues, throughput scaled by the g^x column of Table 2 — and
this package implements the same models, plus a discrete-event simulator
that validates the analytic tail-latency curve empirically.
"""

from repro.sim.queueing import (
    EpochBatchModel,
    EpochShardModel,
    MM1Queue,
    min_fleet_for_latency,
    fig13_series,
)
from repro.sim.capacity import (
    HsmThroughputModel,
    DeploymentPlan,
    plan_deployment,
    recoveries_per_year,
)
from repro.sim.workload import (
    DiurnalWorkload,
    PoissonWorkload,
    percentile,
    simulate_queue_p99,
)

__all__ = [
    "DiurnalWorkload",
    "percentile",
    "EpochBatchModel",
    "EpochShardModel",
    "MM1Queue",
    "min_fleet_for_latency",
    "fig13_series",
    "HsmThroughputModel",
    "DeploymentPlan",
    "plan_deployment",
    "recoveries_per_year",
    "PoissonWorkload",
    "simulate_queue_p99",
]
