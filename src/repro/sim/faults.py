"""Deterministic byte-level fault injection, shared by tests and chaos runs.

The ``Flaky*`` wrappers inject seeded transport faults (drops, duplicates,
bit-flips, truncation, trailing garbage) into the two wire boundaries the
system exposes — the client->HSM decrypt-share leg and the client->provider
RPC leg — so a hostile or lossy network provably surfaces *typed* errors,
never a raw crash and never corrupted provider state.

Every fault is drawn from a ``random.Random`` seeded at construction, so a
fault schedule is a pure function of its seed: the pytest suites replay
exact schedules per seed, and ``repro.chaos`` hands these wrappers
substreams of its deterministic scheduler so whole campaign interleavings
replay bit-for-bit.  (This module lived in ``tests/conftest.py`` first;
it was promoted here so the chaos layer and the test suite share one
fault-injection toolkit.  The conftest keeps thin re-export shims.)

Thread safety: each wrapper owns a private PRNG and mutates only its own
counters; share one instance across threads only if the underlying
handler is itself thread-safe and schedule determinism is not required.
"""

from __future__ import annotations

import random
from collections import Counter

from repro.core import wire
from repro.service.channel import (
    Channel,
    HsmWireEndpoint,
    ProviderWireEndpoint,
    WireProviderChannel,
    _STATUS_EXCEPTIONS,
)


class FrameDropped(Exception):
    """The fault injector dropped a frame (models a transport timeout)."""


class FlakyTransport:
    """Wrap a ``bytes -> bytes`` handler with seeded frame faults.

    Per call, a mode is drawn from a PRNG seeded at construction (so runs
    are reproducible): pass-through (weighted by ``ok_weight``), a request
    bit-flip, a reply bit-flip, reply truncation, trailing garbage on the
    reply, duplicate delivery (the handler runs twice — a retransmission),
    or a drop (raises :class:`FrameDropped` before the handler runs).
    ``faults_injected`` counts what actually happened.
    """

    FAULTS = (
        "corrupt_request",
        "corrupt_reply",
        "truncate_reply",
        "garbage_reply",
        "duplicate",
        "drop",
    )

    def __init__(self, handle, seed: int, ok_weight: int = 4) -> None:
        """``handle`` is the healthy transport; ``ok_weight`` passes cleanly
        that many times per one of each fault mode, in expectation."""
        self._handle = handle
        self._rng = random.Random(seed)
        self._modes = ("ok",) * ok_weight + self.FAULTS
        self.faults_injected: Counter = Counter()

    def __call__(self, request: bytes) -> bytes:
        """Round-trip one frame, possibly injecting this call's fault."""
        mode = self._rng.choice(self._modes)
        self.faults_injected[mode] += 1
        if mode == "drop":
            raise FrameDropped("frame dropped by fault injector")
        if mode == "corrupt_request":
            request = self._flip_bit(request)
        reply = self._handle(request)
        if mode == "duplicate":
            reply = self._handle(request)
        elif mode == "corrupt_reply":
            reply = self._flip_bit(reply)
        elif mode == "truncate_reply":
            reply = reply[: self._rng.randrange(len(reply))] if reply else reply
        elif mode == "garbage_reply":
            reply = reply + bytes([self._rng.randrange(256)])
        return reply

    def _flip_bit(self, data: bytes) -> bytes:
        if not data:
            return data
        index = self._rng.randrange(len(data))
        flipped = data[index] ^ (1 << self._rng.randrange(8))
        return data[:index] + bytes([flipped]) + data[index + 1 :]


class FlakyProviderChannel(WireProviderChannel):
    """A wire provider channel whose transport injects seeded faults."""

    def __init__(self, endpoint: ProviderWireEndpoint, seed: int, ok_weight: int = 4):
        """Wrap ``endpoint`` so every provider RPC frame rides the injector."""
        self.faults = FlakyTransport(endpoint.handle, seed, ok_weight)
        super().__init__(self.faults)


class FlakyChannel(Channel):
    """A client->HSM wire channel whose transport injects seeded faults."""

    def __init__(self, device, seed: int, ok_weight: int = 4) -> None:
        """Wrap ``device``'s wire endpoint so decrypt-share frames ride the
        injector (same seed -> same fault schedule)."""
        endpoint = HsmWireEndpoint(device)
        self.faults = FlakyTransport(endpoint.handle_decrypt_share, seed, ok_weight)

    def decrypt_share(self, request):
        """Round-trip through the flaky transport; re-raise error statuses."""
        reply_bytes = self.faults(wire.encode_decrypt_request(request))
        status, payload = wire.decode_decrypt_reply(reply_bytes)
        if status == wire.REPLY_OK:
            return payload
        raise _STATUS_EXCEPTIONS[status](payload)
