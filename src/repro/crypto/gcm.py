"""AES-128-GCM authenticated encryption (NIST SP 800-38D).

This is the paper's ``(AEEncrypt, AEDecrypt)`` scheme: it encrypts the backed
up disk image under the transport key, wraps Shamir shares inside hashed
ElGamal, and protects every node of the secure-deletion key tree.

The implementation composes the pure-Python AES core with CTR-mode keystream
generation and a GHASH tag over (AAD, ciphertext).  Validated against NIST
GCM test vectors in the test suite.
"""

from __future__ import annotations

import secrets

from repro.crypto.aes import Aes128
from repro.crypto.hashing import constant_time_equal


class AuthenticationError(Exception):
    """Raised when a GCM tag (or any AE integrity check) fails."""


def _ghash_key_tables(h: int):
    """Precompute shift tables for GHASH multiplication by H."""
    # Simple bit-serial multiply; adequate for our message sizes.
    return h


def _gf128_mul(x: int, y: int) -> int:
    """Multiplication in GF(2^128) with the GCM polynomial (bit-reflected)."""
    # GCM treats bit 0 as the coefficient of x^0 with a *left-to-right*
    # convention: the MSB of the block is x^0.  Using the standard algorithm
    # from SP 800-38D section 6.3.
    r = 0xE1000000000000000000000000000000
    z = 0
    v = x
    for i in range(127, -1, -1):
        if (y >> i) & 1:
            z ^= v
        if v & 1:
            v = (v >> 1) ^ r
        else:
            v >>= 1
    return z


class AesGcm:
    """AES-128-GCM with 12-byte nonces and 16-byte tags."""

    NONCE_LEN = 12
    TAG_LEN = 16

    def __init__(self, key: bytes) -> None:
        self._aes = Aes128(key)
        self._h = int.from_bytes(self._aes.encrypt_block(b"\x00" * 16), "big")

    # -- internals ------------------------------------------------------------
    def _ghash(self, aad: bytes, ciphertext: bytes) -> bytes:
        def blocks(data: bytes):
            for i in range(0, len(data), 16):
                chunk = data[i : i + 16]
                yield chunk + b"\x00" * (16 - len(chunk))

        y = 0
        for block in blocks(aad):
            y = _gf128_mul(y ^ int.from_bytes(block, "big"), self._h)
        for block in blocks(ciphertext):
            y = _gf128_mul(y ^ int.from_bytes(block, "big"), self._h)
        lengths = (len(aad) * 8).to_bytes(8, "big") + (len(ciphertext) * 8).to_bytes(8, "big")
        y = _gf128_mul(y ^ int.from_bytes(lengths, "big"), self._h)
        return y.to_bytes(16, "big")

    def _ctr_stream(self, nonce: bytes, length: int, start_counter: int = 2) -> bytes:
        out = bytearray()
        counter = start_counter
        while len(out) < length:
            block = nonce + counter.to_bytes(4, "big")
            out.extend(self._aes.encrypt_block(block))
            counter += 1
        return bytes(out[:length])

    def _j0(self, nonce: bytes) -> bytes:
        if len(nonce) != self.NONCE_LEN:
            raise ValueError("GCM nonce must be 12 bytes")
        return nonce + b"\x00\x00\x00\x01"

    # -- public API -------------------------------------------------------------
    def encrypt(self, nonce: bytes, plaintext: bytes, aad: bytes = b"") -> bytes:
        """Return ciphertext || 16-byte tag."""
        ciphertext = bytes(
            p ^ k for p, k in zip(plaintext, self._ctr_stream(nonce, len(plaintext)))
        )
        s = self._ghash(aad, ciphertext)
        tag_mask = self._aes.encrypt_block(self._j0(nonce))
        tag = bytes(a ^ b for a, b in zip(s, tag_mask))
        return ciphertext + tag

    def decrypt(self, nonce: bytes, data: bytes, aad: bytes = b"") -> bytes:
        """Verify the tag and return the plaintext; raise on any tampering."""
        if len(data) < self.TAG_LEN:
            raise AuthenticationError("ciphertext shorter than tag")
        ciphertext, tag = data[: -self.TAG_LEN], data[-self.TAG_LEN :]
        s = self._ghash(aad, ciphertext)
        tag_mask = self._aes.encrypt_block(self._j0(nonce))
        expect = bytes(a ^ b for a, b in zip(s, tag_mask))
        if not constant_time_equal(tag, expect):
            raise AuthenticationError("GCM tag mismatch")
        return bytes(
            c ^ k for c, k in zip(ciphertext, self._ctr_stream(nonce, len(ciphertext)))
        )


def ae_encrypt(key: bytes, plaintext: bytes, aad: bytes = b"") -> bytes:
    """One-shot AE with a random nonce prepended (the paper's AEEncrypt)."""
    nonce = secrets.token_bytes(AesGcm.NONCE_LEN)
    return nonce + AesGcm(key).encrypt(nonce, plaintext, aad)


def ae_decrypt(key: bytes, data: bytes, aad: bytes = b"") -> bytes:
    """Inverse of :func:`ae_encrypt` (the paper's AEDecrypt)."""
    if len(data) < AesGcm.NONCE_LEN + AesGcm.TAG_LEN:
        raise AuthenticationError("AE ciphertext too short")
    nonce, body = data[: AesGcm.NONCE_LEN], data[AesGcm.NONCE_LEN :]
    return AesGcm(key).decrypt(nonce, body, aad)
