"""Bloom-filter parameterization for Bloom-filter encryption.

Bloom-filter encryption (Derler et al., EUROCRYPT 2018) indexes a ciphertext
tag into ``k`` slots of an ``m``-slot filter.  A puncture deletes those
slots' secret keys; a *later* ciphertext fails to decrypt only if **all** of
its ``k`` slots have been deleted — the Bloom-filter false-positive event.

This module holds the (m, k) parameter mathematics and the tag-to-slots
hashing; the encryption scheme itself lives in ``repro.crypto.bfe``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from repro.crypto.hashing import sha256


@dataclass(frozen=True)
class BloomParams:
    """Parameters of a Bloom filter sized for a puncturable-encryption key.

    ``num_slots`` is the paper's secret-key array length (the key is "roughly
    λ·P group elements" for P punctures at failure 2^-λ), ``num_hashes`` the
    per-ciphertext slot count.
    """

    num_slots: int
    num_hashes: int
    max_punctures: int
    failure_exponent: int

    @staticmethod
    def for_punctures(max_punctures: int, failure_exponent: int = 16) -> "BloomParams":
        """Size a filter so that after ``max_punctures`` punctures, a fresh
        ciphertext fails to decrypt with probability at most
        ``2^-failure_exponent``.

        Standard Bloom-filter sizing: for n inserted items and false-positive
        rate p, m = -n ln p / (ln 2)^2 and k = (m/n) ln 2.  A puncture plays
        the role of an insertion; decryption failure of an unrelated
        ciphertext is exactly a false positive.
        """
        if max_punctures < 1:
            raise ValueError("max_punctures must be >= 1")
        if failure_exponent < 1:
            raise ValueError("failure_exponent must be >= 1")
        ln_p = -failure_exponent * math.log(2.0)
        m = math.ceil(-max_punctures * ln_p / (math.log(2.0) ** 2))
        k = max(1, round((m / max_punctures) * math.log(2.0)))
        return BloomParams(
            num_slots=m,
            num_hashes=k,
            max_punctures=max_punctures,
            failure_exponent=failure_exponent,
        )

    @staticmethod
    def paper_deployment() -> "BloomParams":
        """The evaluated configuration (§9.1, §9.2).

        The paper sets keys "to allow 2^20 punctures" with a 64 MB secret
        array and rotates after "roughly 2^18 decryptions" (when half the
        slots are gone).  That corresponds to m = 2^21 slots (2^21 × 32 B =
        64 MB) and k = 4 hashes: 2^18 punctures × 4 slots = 2^20 = m/2.
        The decryption-failure rate for not-yet-recovered ciphertexts at
        rotation time is (1 − e^{−1/2})^4 ≈ 2.4% — the bandwidth-vs-f_live
        trade-off the paper describes explicitly.
        """
        return BloomParams(
            num_slots=1 << 21,
            num_hashes=4,
            max_punctures=1 << 20,
            failure_exponent=5,
        )

    def slots_for_tag(self, tag: bytes) -> List[int]:
        """The ``k`` slot indices for a ciphertext tag (distinct, ordered).

        Uses counter-mode SHA-256 with rejection of duplicates so a tag maps
        to ``num_hashes`` *distinct* slots (duplicates would weaken the
        deletion guarantee).
        """
        if self.num_hashes > self.num_slots:
            raise ValueError("more hashes than slots")
        slots: List[int] = []
        seen = set()
        counter = 0
        bound = (1 << 64) - ((1 << 64) % self.num_slots)
        while len(slots) < self.num_hashes:
            block = sha256(b"bfe-slots", tag, counter.to_bytes(8, "big"))
            counter += 1
            for off in range(0, 32, 8):
                draw = int.from_bytes(block[off : off + 8], "big")
                if draw >= bound:
                    continue
                slot = draw % self.num_slots
                if slot in seen:
                    continue
                seen.add(slot)
                slots.append(slot)
                if len(slots) == self.num_hashes:
                    break
        return slots

    def failure_probability(self, punctures_done: int) -> float:
        """Probability that a fresh ciphertext is undecryptable after
        ``punctures_done`` punctures (the false-positive rate)."""
        if punctures_done <= 0:
            return 0.0
        fraction_deleted = 1.0 - math.exp(
            -self.num_hashes * punctures_done / self.num_slots
        )
        return fraction_deleted**self.num_hashes

    def secret_key_bytes(self, element_size: int = 32) -> int:
        """Size of the secret-key array (paper: >64 MB at 2^20 punctures)."""
        return self.num_slots * element_size
