"""Merkle trees (Merkle, CRYPTO 1989).

SafetyPin uses Merkle commitments in three places:

1. the service provider commits to the per-chunk digests and extension proofs
   of a log update round (Figure 5's root ``R``);
2. an HSM commits to the array of Bloom-filter slot public keys so clients
   can verify fetched slot keys against a constant-size value;
3. clients commit to their chosen recovery cluster + ciphertext (the recovery
   commitment ``h``), though that uses a plain hash commitment
   (``repro.crypto.commit``).

This module provides a batch-built binary Merkle tree with inclusion proofs.
Leaves are arbitrary byte strings; leaf and node hashing is domain-separated
to rule out second-preimage-by-reinterpretation attacks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.crypto.hashing import sha256

_LEAF_TAG = b"\x00merkle-leaf"
_NODE_TAG = b"\x01merkle-node"
_EMPTY_ROOT = sha256(b"merkle-empty")


def _leaf_hash(data: bytes) -> bytes:
    return sha256(_LEAF_TAG, data)


def _node_hash(left: bytes, right: bytes) -> bytes:
    return sha256(_NODE_TAG, left, right)


@dataclass(frozen=True)
class MerkleProof:
    """Inclusion proof: the leaf index plus sibling hashes bottom-to-top.

    Each path entry is ``(sibling_hash, sibling_is_left)``.
    """

    index: int
    path: Tuple[Tuple[bytes, bool], ...]

    def to_bytes(self) -> bytes:
        out = [self.index.to_bytes(8, "big"), len(self.path).to_bytes(4, "big")]
        for sibling, is_left in self.path:
            out.append(b"\x01" if is_left else b"\x00")
            out.append(sibling)
        return b"".join(out)

    @staticmethod
    def from_bytes(data: bytes) -> "MerkleProof":
        index = int.from_bytes(data[:8], "big")
        count = int.from_bytes(data[8:12], "big")
        path = []
        offset = 12
        for _ in range(count):
            is_left = data[offset] == 1
            sibling = data[offset + 1 : offset + 33]
            if len(sibling) != 32:
                raise ValueError("truncated Merkle proof")
            path.append((sibling, is_left))
            offset += 33
        return MerkleProof(index=index, path=tuple(path))


class MerkleTree:
    """A static Merkle tree built over a list of byte-string leaves."""

    def __init__(self, leaves: Sequence[bytes]) -> None:
        self.leaf_count = len(leaves)
        self._levels: List[List[bytes]] = []
        if self.leaf_count == 0:
            self.root = _EMPTY_ROOT
            return
        level = [_leaf_hash(leaf) for leaf in leaves]
        self._levels.append(level)
        while len(level) > 1:
            nxt = []
            for i in range(0, len(level), 2):
                left = level[i]
                right = level[i + 1] if i + 1 < len(level) else level[i]
                nxt.append(_node_hash(left, right))
            level = nxt
            self._levels.append(level)
        self.root = level[0]

    def prove(self, index: int) -> MerkleProof:
        """Inclusion proof for the leaf at ``index``."""
        if not (0 <= index < self.leaf_count):
            raise IndexError("leaf index out of range")
        path = []
        idx = index
        for level in self._levels[:-1]:
            if idx % 2 == 0:
                sibling_idx = idx + 1 if idx + 1 < len(level) else idx
                path.append((level[sibling_idx], False))
            else:
                path.append((level[idx - 1], True))
            idx //= 2
        return MerkleProof(index=index, path=tuple(path))

    @staticmethod
    def verify(root: bytes, leaf: bytes, proof: MerkleProof) -> bool:
        """Check that ``leaf`` is at ``proof.index`` under ``root``."""
        node = _leaf_hash(leaf)
        idx = proof.index
        for sibling, is_left in proof.path:
            if is_left:
                node = _node_hash(sibling, node)
            else:
                node = _node_hash(node, sibling)
            idx //= 2
        return node == root

    @staticmethod
    def empty_root() -> bytes:
        return _EMPTY_ROOT


class IncrementalMerkleTree(MerkleTree):
    """A Merkle tree over a fixed leaf set that supports O(log n) updates.

    Byte-compatible with :class:`MerkleTree`: for any sequence of
    ``update`` calls, ``root`` and every ``prove`` path are identical to a
    tree rebuilt from scratch over the same leaves (the sharded log's
    cross-shard root relies on this — verifiers never learn which
    construction produced the value).  ``update(i, leaf)`` rehashes only
    the leaf and its root path: one leaf hash plus one node hash per
    level, instead of the ``2n-1`` hashes a rebuild pays.

    The leaf *count* is fixed at construction (the sharded log's arity is
    part of the trusted configuration, so the shard-digest leaf set never
    grows); only leaf values change.  Not internally synchronized —
    callers serialize updates (``ShardedLog`` holds ``_root_lock``).
    """

    def update(self, index: int, leaf: bytes) -> None:
        """Replace the leaf at ``index``; rehash only its path to the root."""
        if not (0 <= index < self.leaf_count):
            raise IndexError("leaf index out of range")
        levels = self._levels
        levels[0][index] = _leaf_hash(leaf)
        idx = index
        for depth in range(len(levels) - 1):
            level = levels[depth]
            parent = idx // 2
            left = level[2 * parent]
            right = level[2 * parent + 1] if 2 * parent + 1 < len(level) else left
            levels[depth + 1][parent] = _node_hash(left, right)
            idx = parent
        self.root = levels[-1][0]
