"""NIST P-256 elliptic-curve arithmetic.

The paper's public-key operations (hashed ElGamal, ECDSA verification in the
Table 7 microbenchmarks, the "g^x/sec" column of Table 2) all run over NIST
P-256.  This module implements the curve from scratch:

- Jacobian-coordinate point addition/doubling (no field inversions on the
  hot path; one inversion to normalize),
- 4-bit fixed-window scalar multiplication,
- SEC1 compressed point (de)serialization,
- key generation and ECDSA sign/verify (RFC 6979-style deterministic nonces).

Scalar multiplications report ``ec_mult`` to the ambient meter; this is the
paper's fundamental public-key cost unit (SoloKey: 7.69 ops/sec).
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass
from typing import Optional, Tuple

from repro import metering
from repro.crypto.hashing import hmac_sha256, sha256

# NIST P-256 domain parameters (FIPS 186-4, D.1.2.3).
P = 0xFFFFFFFF00000001000000000000000000000000FFFFFFFFFFFFFFFFFFFFFFFF
A = P - 3
B = 0x5AC635D8AA3A93E7B3EBBD55769886BC651D06B0CC53B0F63BCE3C3E27D2604B
GX = 0x6B17D1F2E12C4247F8BCE6E563A440F277037D812DEB33A0F4A13945D898C296
GY = 0x4FE342E2FE1A7F9B8EE7EB4A7C0F9E162BCE33576B315ECECBB6406837BF51F5
N = 0xFFFFFFFF00000000FFFFFFFFFFFFFFFFBCE6FAADA7179E84F3B9CAC2FC632551

_JPoint = Tuple[int, int, int]  # Jacobian (X, Y, Z); Z == 0 is infinity
_INFINITY: _JPoint = (1, 1, 0)


def _jac_double(pt: _JPoint) -> _JPoint:
    x, y, z = pt
    if z == 0 or y == 0:
        return _INFINITY
    ysq = (y * y) % P
    s = (4 * x * ysq) % P
    m = (3 * x * x + A * z * z * z * z) % P
    nx = (m * m - 2 * s) % P
    ny = (m * (s - nx) - 8 * ysq * ysq) % P
    nz = (2 * y * z) % P
    return nx, ny, nz


def _jac_add(p1: _JPoint, p2: _JPoint) -> _JPoint:
    x1, y1, z1 = p1
    x2, y2, z2 = p2
    if z1 == 0:
        return p2
    if z2 == 0:
        return p1
    z1sq = (z1 * z1) % P
    z2sq = (z2 * z2) % P
    u1 = (x1 * z2sq) % P
    u2 = (x2 * z1sq) % P
    s1 = (y1 * z2sq * z2) % P
    s2 = (y2 * z1sq * z1) % P
    if u1 == u2:
        if s1 != s2:
            return _INFINITY
        return _jac_double(p1)
    h = (u2 - u1) % P
    r = (s2 - s1) % P
    hsq = (h * h) % P
    hcu = (hsq * h) % P
    nx = (r * r - hcu - 2 * u1 * hsq) % P
    ny = (r * (u1 * hsq - nx) - s1 * hcu) % P
    nz = (h * z1 * z2) % P
    return nx, ny, nz


def _jac_to_affine(pt: _JPoint) -> Optional[Tuple[int, int]]:
    x, y, z = pt
    if z == 0:
        return None
    zinv = pow(z, -1, P)
    zinv2 = (zinv * zinv) % P
    return (x * zinv2) % P, (y * zinv2 * zinv) % P


def _jac_mult(pt: _JPoint, scalar: int) -> _JPoint:
    """4-bit fixed-window scalar multiplication."""
    scalar %= N
    if scalar == 0:
        return _INFINITY
    # Precompute 1..15 multiples of pt.
    table = [_INFINITY, pt]
    for _ in range(14):
        table.append(_jac_add(table[-1], pt))
    result = _INFINITY
    for shift in range(scalar.bit_length() + (4 - scalar.bit_length() % 4) % 4 - 4, -1, -4):
        for _ in range(4):
            result = _jac_double(result)
        window = (scalar >> shift) & 0xF
        if window:
            result = _jac_add(result, table[window])
    return result


class ECPoint:
    """An affine point on P-256 (or the point at infinity)."""

    __slots__ = ("x", "y")

    def __init__(self, x: Optional[int], y: Optional[int]) -> None:
        self.x = x
        self.y = y
        if x is not None:
            if not (0 <= x < P and 0 <= y < P):  # type: ignore[operator]
                raise ValueError("coordinates out of range")
            if (y * y - (x * x * x + A * x + B)) % P != 0:  # type: ignore[operator]
                raise ValueError("point is not on P-256")

    @property
    def is_infinity(self) -> bool:
        return self.x is None

    def _jac(self) -> _JPoint:
        if self.is_infinity:
            return _INFINITY
        return (self.x, self.y, 1)  # type: ignore[return-value]

    @staticmethod
    def _from_jac(pt: _JPoint) -> "ECPoint":
        affine = _jac_to_affine(pt)
        if affine is None:
            return ECPoint(None, None)
        return ECPoint(affine[0], affine[1])

    def __add__(self, other: "ECPoint") -> "ECPoint":
        return ECPoint._from_jac(_jac_add(self._jac(), other._jac()))

    def __neg__(self) -> "ECPoint":
        if self.is_infinity:
            return self
        return ECPoint(self.x, (-self.y) % P)  # type: ignore[operator]

    def __sub__(self, other: "ECPoint") -> "ECPoint":
        return self + (-other)

    def __mul__(self, scalar: int) -> "ECPoint":
        metering.count("ec_mult")
        return ECPoint._from_jac(_jac_mult(self._jac(), scalar))

    __rmul__ = __mul__

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, ECPoint) and self.x == other.x and self.y == other.y
        )

    def __hash__(self) -> int:
        return hash((self.x, self.y))

    def __repr__(self) -> str:
        if self.is_infinity:
            return "ECPoint(infinity)"
        return f"ECPoint(x={self.x:#x})"

    # -- SEC1 compressed serialization --------------------------------------
    def to_bytes(self) -> bytes:
        if self.is_infinity:
            return b"\x00"
        prefix = b"\x03" if self.y & 1 else b"\x02"  # type: ignore[operator]
        return prefix + self.x.to_bytes(32, "big")  # type: ignore[union-attr]

    @staticmethod
    def from_bytes(data: bytes) -> "ECPoint":
        if data == b"\x00":
            return ECPoint(None, None)
        if len(data) != 33 or data[0] not in (2, 3):
            raise ValueError("malformed compressed point")
        x = int.from_bytes(data[1:], "big")
        rhs = (pow(x, 3, P) + A * x + B) % P
        y = pow(rhs, (P + 1) // 4, P)  # P ≡ 3 (mod 4)
        if (y * y) % P != rhs:
            raise ValueError("x-coordinate not on curve")
        if (y & 1) != (data[0] & 1):
            y = P - y
        return ECPoint(x, y)


class _Curve:
    """The P-256 group object: generator, order, key generation, ECDSA."""

    def __init__(self) -> None:
        self.p = P
        self.a = A
        self.b = B
        self.n = N
        self.generator = ECPoint(GX, GY)
        self.infinity = ECPoint(None, None)

    # -- keys ---------------------------------------------------------------
    def random_scalar(self, rng=None) -> int:
        if rng is None:
            return 1 + secrets.randbelow(self.n - 1)
        return rng.randrange(1, self.n)

    def keygen(self, rng=None) -> "ECKeyPair":
        sk = self.random_scalar(rng)
        return ECKeyPair(secret=sk, public=self.generator * sk)

    def hash_to_point(self, data: bytes) -> ECPoint:
        """Try-and-increment hash onto the curve (used for commitments)."""
        counter = 0
        while True:
            digest = sha256(b"p256-h2c", data, counter.to_bytes(4, "big"))
            candidate = b"\x02" + digest
            try:
                return ECPoint.from_bytes(candidate)
            except ValueError:
                counter += 1

    # -- ECDSA ----------------------------------------------------------------
    def ecdsa_sign(self, secret: int, message: bytes) -> Tuple[int, int]:
        """Deterministic ECDSA (RFC 6979-flavoured nonce derivation)."""
        z = int.from_bytes(sha256(b"ecdsa", message), "big") % self.n
        k_seed = hmac_sha256(secret.to_bytes(32, "big"), sha256(b"nonce", message))
        k = (int.from_bytes(k_seed, "big") % (self.n - 1)) + 1
        while True:
            point = self.generator * k
            r = point.x % self.n  # type: ignore[union-attr]
            if r == 0:
                k = (k + 1) % self.n or 1
                continue
            s = (pow(k, -1, self.n) * (z + r * secret)) % self.n
            if s == 0:
                k = (k + 1) % self.n or 1
                continue
            return r, s

    def ecdsa_verify(self, public: ECPoint, message: bytes, signature: Tuple[int, int]) -> bool:
        metering.count("ecdsa_verify")
        r, s = signature
        if not (1 <= r < self.n and 1 <= s < self.n):
            return False
        z = int.from_bytes(sha256(b"ecdsa", message), "big") % self.n
        w = pow(s, -1, self.n)
        u1 = (z * w) % self.n
        u2 = (r * w) % self.n
        # Direct Jacobian computation: u1*G + u2*Q without double-metering.
        pt = _jac_add(_jac_mult(self.generator._jac(), u1), _jac_mult(public._jac(), u2))
        affine = _jac_to_affine(pt)
        if affine is None:
            return False
        return affine[0] % self.n == r


@dataclass(frozen=True)
class ECKeyPair:
    """A P-256 keypair; ``secret`` is an integer scalar, ``public`` a point."""

    secret: int
    public: ECPoint


# The module-level singleton everyone imports.
P256 = _Curve()
