"""NIST P-256 elliptic-curve arithmetic with a layered fast path.

The paper's public-key operations (hashed ElGamal, ECDSA verification in the
Table 7 microbenchmarks, the "g^x/sec" column of Table 2) all run over NIST
P-256.  This module implements the curve from scratch:

- Jacobian-coordinate point addition/doubling (no field inversions on the
  hot path; one inversion to normalize),
- 4-bit fixed-window scalar multiplication,
- SEC1 compressed point (de)serialization,
- key generation and ECDSA sign/verify (RFC 6979-style deterministic nonces).

Because the generator is the single most-multiplied point in the system
(keygen, hashed ElGamal, ECDSA sign/verify, every HSM decrypt), scalar
multiplication is tiered:

- **Fixed-base comb (constant table)**: ``g^x`` uses a radix-16 comb table
  of ``w·16^i·G`` built once per process (``_generator_table``) and
  normalized to affine with a single Montgomery batch inversion.  A
  fixed-base multiply then needs only ~63 mixed additions and *zero*
  doublings.
- **Cached per-point windows (per-point table)**: repeated multiplications
  of the same long-lived :class:`ECPoint` (HSM ElGamal keys, signer keys)
  reuse an affine 4-bit window table cached on the instance, skipping the
  15-entry table rebuild the naive path pays on every call.
- **Per-call window (naive path)**: :func:`naive_mult` keeps the original
  rebuild-the-table-every-call algorithm as the reference/baseline used by
  property tests and ``benchmarks/bench_crypto_hotpath.py``.

:func:`multi_mult` exposes Straus/Shamir multi-scalar multiplication
(``Σ sᵢ·Pᵢ`` with one shared doubling chain), and
:meth:`_Curve.ecdsa_verify_batch` verifies many signatures with shared
fixed-base work and one batch inversion to normalize every result.  All
batched paths are bit-for-bit deterministic — they produce exactly the same
accept/reject decisions as the sequential code — and metering is preserved:
``ec_mult``/``ecdsa_verify`` counts for a fixed workload are identical to
the pre-fast-path implementation (the paper's cost accounting must not
drift; only wall-clock changes).

Scalar multiplications report ``ec_mult`` to the ambient meter; this is the
paper's fundamental public-key cost unit (SoloKey: 7.69 ops/sec).
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro import metering
from repro.crypto.field import batch_inverse_mod
from repro.crypto.hashing import hmac_sha256, sha256

# NIST P-256 domain parameters (FIPS 186-4, D.1.2.3).
P = 0xFFFFFFFF00000001000000000000000000000000FFFFFFFFFFFFFFFFFFFFFFFF
A = P - 3
B = 0x5AC635D8AA3A93E7B3EBBD55769886BC651D06B0CC53B0F63BCE3C3E27D2604B
GX = 0x6B17D1F2E12C4247F8BCE6E563A440F277037D812DEB33A0F4A13945D898C296
GY = 0x4FE342E2FE1A7F9B8EE7EB4A7C0F9E162BCE33576B315ECECBB6406837BF51F5
N = 0xFFFFFFFF00000000FFFFFFFFFFFFFFFFBCE6FAADA7179E84F3B9CAC2FC632551

_JPoint = Tuple[int, int, int]  # Jacobian (X, Y, Z); Z == 0 is infinity
_Affine = Tuple[int, int]
_INFINITY: _JPoint = (1, 1, 0)


def _jac_double(pt: _JPoint) -> _JPoint:
    x, y, z = pt
    if z == 0 or y == 0:
        return _INFINITY
    ysq = (y * y) % P
    s = (4 * x * ysq) % P
    # a = -3, so 3x² + a·z⁴ = 3(x - z²)(x + z²): three field mults, not six.
    zsq = (z * z) % P
    m = (3 * (x - zsq) * (x + zsq)) % P
    nx = (m * m - 2 * s) % P
    ny = (m * (s - nx) - 8 * ysq * ysq) % P
    nz = (2 * y * z) % P
    return nx, ny, nz


def _jac_add(p1: _JPoint, p2: _JPoint) -> _JPoint:
    x1, y1, z1 = p1
    x2, y2, z2 = p2
    if z1 == 0:
        return p2
    if z2 == 0:
        return p1
    z1sq = (z1 * z1) % P
    z2sq = (z2 * z2) % P
    u1 = (x1 * z2sq) % P
    u2 = (x2 * z1sq) % P
    s1 = (y1 * z2sq * z2) % P
    s2 = (y2 * z1sq * z1) % P
    if u1 == u2:
        if s1 != s2:
            return _INFINITY
        return _jac_double(p1)
    h = (u2 - u1) % P
    r = (s2 - s1) % P
    hsq = (h * h) % P
    hcu = (hsq * h) % P
    nx = (r * r - hcu - 2 * u1 * hsq) % P
    ny = (r * (u1 * hsq - nx) - s1 * hcu) % P
    nz = (h * z1 * z2) % P
    return nx, ny, nz


def _jac_add_affine(p1: _JPoint, x2: int, y2: int) -> _JPoint:
    """Mixed addition: ``p1 + (x2, y2, 1)``.

    Table entries on the fast paths are pre-normalized to affine (Z = 1),
    which removes four field multiplications per addition versus the general
    Jacobian formula.
    """
    x1, y1, z1 = p1
    if z1 == 0:
        return (x2, y2, 1)
    z1sq = (z1 * z1) % P
    u2 = (x2 * z1sq) % P
    s2 = (y2 * z1sq * z1) % P
    if x1 == u2:
        if y1 != s2:
            return _INFINITY
        return _jac_double(p1)
    h = (u2 - x1) % P
    r = (s2 - y1) % P
    hsq = (h * h) % P
    hcu = (hsq * h) % P
    nx = (r * r - hcu - 2 * x1 * hsq) % P
    ny = (r * (x1 * hsq - nx) - y1 * hcu) % P
    nz = (h * z1) % P
    return nx, ny, nz


def _jac_to_affine(pt: _JPoint) -> Optional[_Affine]:
    x, y, z = pt
    if z == 0:
        return None
    zinv = pow(z, -1, P)
    zinv2 = (zinv * zinv) % P
    return (x * zinv2) % P, (y * zinv2 * zinv) % P


def _jac_to_affine_batch(points: Sequence[_JPoint]) -> List[Optional[_Affine]]:
    """Normalize many Jacobian points with ONE field inversion.

    Montgomery's batch-inversion trick: invert the product of all Z values,
    then unwind per-element inverses with two multiplications each.  Points
    at infinity come back as ``None``.
    """
    zs = [pt[2] for pt in points if pt[2] != 0]
    if not zs:
        return [None] * len(points)
    inverses = iter(batch_inverse_mod(zs, P))
    out: List[Optional[_Affine]] = []
    for x, y, z in points:
        if z == 0:
            out.append(None)
            continue
        zinv = next(inverses)
        zinv2 = (zinv * zinv) % P
        out.append(((x * zinv2) % P, (y * zinv2 * zinv) % P))
    return out


# ---------------------------------------------------------------------------
# Scalar-multiplication engines
# ---------------------------------------------------------------------------
def _jac_mult(pt: _JPoint, scalar: int) -> _JPoint:
    """4-bit fixed-window scalar multiplication (per-call table).

    This is the naive baseline: it rebuilds the 15-entry window table on
    every call.  The fast paths below avoid exactly that rebuild; property
    tests and the hot-path benchmark cross-check against this function.
    """
    scalar %= N
    if scalar == 0:
        return _INFINITY
    # Precompute 1..15 multiples of pt.
    table = [_INFINITY, pt]
    for _ in range(14):
        table.append(_jac_add(table[-1], pt))
    result = _INFINITY
    for shift in range(scalar.bit_length() + (4 - scalar.bit_length() % 4) % 4 - 4, -1, -4):
        for _ in range(4):
            result = _jac_double(result)
        window = (scalar >> shift) & 0xF
        if window:
            result = _jac_add(result, table[window])
    return result


def _build_affine_window(x: int, y: int) -> List[Optional[_Affine]]:
    """Affine 4-bit window table ``[None, P, 2P, ..., 15P]`` for a point.

    The 14 additions run in Jacobian coordinates; one batch inversion then
    normalizes all 15 entries at once so every later window addition is a
    cheap mixed add.  (Multiples 1..15 of a point of prime order N are never
    infinity.)
    """
    jac: List[_JPoint] = [(x, y, 1)]
    for _ in range(14):
        jac.append(_jac_add_affine(jac[-1], x, y))
    return [None] + _jac_to_affine_batch(jac)  # type: ignore[list-item]


def _window_mult(table: Sequence[Optional[_Affine]], scalar: int) -> _JPoint:
    """Left-to-right 4-bit window multiply over a pre-built affine table."""
    result = _INFINITY
    nibbles: List[int] = []
    while scalar:
        nibbles.append(scalar & 0xF)
        scalar >>= 4
    for window in reversed(nibbles):
        result = _jac_double(_jac_double(_jac_double(_jac_double(result))))
        if window:
            entry = table[window]
            result = _jac_add_affine(result, entry[0], entry[1])  # type: ignore[index]
    return result


# -- fixed-base comb for the generator ----------------------------------------
_COMB_ROWS = 64  # scalars are < 2^256: 64 radix-16 digits
_FIXED_BASE_TABLE: Optional[List[List[Optional[_Affine]]]] = None


def _generator_table() -> List[List[Optional[_Affine]]]:
    """The constant fixed-base table: ``table[i][w] = w · 16^i · G`` (affine).

    Built lazily once per process (~960 Jacobian additions + ONE field
    inversion via batch normalization) and shared by every ``g^x`` in the
    system.  A fixed-base multiply then performs at most one mixed addition
    per nonzero radix-16 digit of the scalar — no doublings at all.

    Thread-safety: a racing build computes an identical table; the final
    single assignment makes the benign race harmless.
    """
    global _FIXED_BASE_TABLE
    if _FIXED_BASE_TABLE is None:
        jac_rows: List[List[_JPoint]] = []
        base: _JPoint = (GX, GY, 1)
        for _ in range(_COMB_ROWS):
            row = [base]
            for _ in range(14):
                row.append(_jac_add(row[-1], base))
            jac_rows.append(row)
            base = _jac_add(row[-1], base)  # 16 · previous base
        flat = [pt for row in jac_rows for pt in row]
        affine = iter(_jac_to_affine_batch(flat))
        _FIXED_BASE_TABLE = [
            [None] + [next(affine) for _ in row] for row in jac_rows
        ]
    return _FIXED_BASE_TABLE


def _fixed_base_mult(scalar: int) -> _JPoint:
    """``scalar · G`` via the comb table: ~63 mixed adds, zero doublings."""
    table = _generator_table()
    result = _INFINITY
    row = 0
    while scalar:
        window = scalar & 0xF
        if window:
            entry = table[row][window]
            result = _jac_add_affine(result, entry[0], entry[1])  # type: ignore[index]
        scalar >>= 4
        row += 1
    return result


def _is_generator(x: Optional[int], y: Optional[int]) -> bool:
    return x == GX and y == GY


def _multi_mult_jac(pairs: Sequence[Tuple[int, "ECPoint"]]) -> _JPoint:
    """Straus/Shamir interleaved multi-scalar multiply (no metering).

    Scalars are assumed reduced mod N and nonzero, points non-infinity.
    Generator terms are folded into one comb multiplication (zero
    doublings); the remaining points share a single doubling chain, each
    contributing one mixed addition per nonzero scalar digit.
    """
    gen_scalar = 0
    others: List[Tuple[int, Sequence[Optional[_Affine]]]] = []
    for scalar, point in pairs:
        if _is_generator(point.x, point.y):
            gen_scalar = (gen_scalar + scalar) % N
        else:
            others.append((scalar, point._window_table()))
    result = _fixed_base_mult(gen_scalar) if gen_scalar else _INFINITY
    if others:
        top = max(scalar.bit_length() for scalar, _ in others)
        positions = (top + 3) // 4
        acc = _INFINITY
        for pos in range(positions - 1, -1, -1):
            acc = _jac_double(_jac_double(_jac_double(_jac_double(acc))))
            shift = 4 * pos
            for scalar, table in others:
                window = (scalar >> shift) & 0xF
                if window:
                    entry = table[window]
                    acc = _jac_add_affine(acc, entry[0], entry[1])  # type: ignore[index]
        result = _jac_add(result, acc)
    return result


class ECPoint:
    """An affine point on P-256 (or the point at infinity).

    Instances lazily cache an affine 4-bit window table (``_wtab``) the
    first time they are scalar-multiplied, so repeated multiplications of
    the same long-lived point — HSM ElGamal keys, multisig signer keys —
    skip the per-call table rebuild.  The cache is keyed on the instance;
    equality/hashing ignore it.  Multiplications of the generator's
    coordinates take the constant fixed-base comb path instead.
    """

    __slots__ = ("x", "y", "_wtab")

    def __init__(self, x: Optional[int], y: Optional[int]) -> None:
        self.x = x
        self.y = y
        self._wtab: Optional[List[Optional[_Affine]]] = None
        if x is not None:
            if not (0 <= x < P and 0 <= y < P):  # type: ignore[operator]
                raise ValueError("coordinates out of range")
            if (y * y - (x * x * x + A * x + B)) % P != 0:  # type: ignore[operator]
                raise ValueError("point is not on P-256")

    @property
    def is_infinity(self) -> bool:
        return self.x is None

    def _jac(self) -> _JPoint:
        if self.is_infinity:
            return _INFINITY
        return (self.x, self.y, 1)  # type: ignore[return-value]

    def _window_table(self) -> List[Optional[_Affine]]:
        """The cached per-point window table (built on first use).

        A benign race between threads builds identical tables; the single
        attribute assignment keeps the cache consistent either way.
        """
        table = self._wtab
        if table is None:
            table = _build_affine_window(self.x, self.y)  # type: ignore[arg-type]
            self._wtab = table
        return table

    @staticmethod
    def _from_jac(pt: _JPoint) -> "ECPoint":
        affine = _jac_to_affine(pt)
        if affine is None:
            return ECPoint(None, None)
        return ECPoint(affine[0], affine[1])

    def __add__(self, other: "ECPoint") -> "ECPoint":
        return ECPoint._from_jac(_jac_add(self._jac(), other._jac()))

    def __neg__(self) -> "ECPoint":
        if self.is_infinity:
            return self
        return ECPoint(self.x, (-self.y) % P)  # type: ignore[operator]

    def __sub__(self, other: "ECPoint") -> "ECPoint":
        return self + (-other)

    def _mult_jac(self, scalar: int) -> _JPoint:
        """Unmetered scalar multiply choosing the fastest applicable path."""
        scalar %= N
        if scalar == 0 or self.is_infinity:
            return _INFINITY
        if _is_generator(self.x, self.y):
            return _fixed_base_mult(scalar)
        return _window_mult(self._window_table(), scalar)

    def __mul__(self, scalar: int) -> "ECPoint":
        metering.count("ec_mult")
        return ECPoint._from_jac(self._mult_jac(scalar))

    __rmul__ = __mul__

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, ECPoint) and self.x == other.x and self.y == other.y
        )

    def __hash__(self) -> int:
        return hash((self.x, self.y))

    def __repr__(self) -> str:
        if self.is_infinity:
            return "ECPoint(infinity)"
        return f"ECPoint(x={self.x:#x})"

    # -- SEC1 compressed serialization --------------------------------------
    def to_bytes(self) -> bytes:
        if self.is_infinity:
            return b"\x00"
        prefix = b"\x03" if self.y & 1 else b"\x02"  # type: ignore[operator]
        return prefix + self.x.to_bytes(32, "big")  # type: ignore[union-attr]

    @staticmethod
    def from_bytes(data: bytes) -> "ECPoint":
        if data == b"\x00":
            return ECPoint(None, None)
        if len(data) != 33 or data[0] not in (2, 3):
            raise ValueError("malformed compressed point")
        x = int.from_bytes(data[1:], "big")
        rhs = (pow(x, 3, P) + A * x + B) % P
        y = pow(rhs, (P + 1) // 4, P)  # P ≡ 3 (mod 4)
        if (y * y) % P != rhs:
            raise ValueError("x-coordinate not on curve")
        if (y & 1) != (data[0] & 1):
            y = P - y
        return ECPoint(x, y)


def naive_mult(point: ECPoint, scalar: int) -> ECPoint:
    """The pre-fast-path algorithm: per-call window table, no caching.

    Kept as the reference implementation for property tests and as the
    baseline ``benchmarks/bench_crypto_hotpath.py`` measures speedups
    against.  Reports ``ec_mult`` exactly like ``point * scalar``.
    """
    metering.count("ec_mult")
    return ECPoint._from_jac(_jac_mult(point._jac(), scalar))


def multi_mult(pairs: Sequence[Tuple[int, ECPoint]], count_ops: bool = True) -> ECPoint:
    """Straus/Shamir multi-scalar multiplication: ``Σ sᵢ·Pᵢ`` in one pass.

    All points share a single doubling chain (generator terms skip even
    that, via the fixed-base comb), so ``k`` multiplications cost roughly
    one multiplication plus ``k`` window-addition streams instead of ``k``
    full multiplications.  The result is bit-for-bit the same point the
    ``k`` separate multiplications would sum to.

    Metering: reports one ``ec_mult`` per pair (matching what the ``k``
    separate ``P * s`` calls would have reported) unless ``count_ops`` is
    False — internal callers that never metered per-multiplication, like
    ``ecdsa_verify``, pass False to keep the paper's cost model exact.
    """
    if count_ops and pairs:
        metering.count("ec_mult", len(pairs))
    live = [
        (scalar % N, point)
        for scalar, point in pairs
        if scalar % N != 0 and not point.is_infinity
    ]
    if not live:
        return ECPoint(None, None)
    return ECPoint._from_jac(_multi_mult_jac(live))


# Batched verification processes triples this many at a time: big enough to
# amortize the shared normalization, small enough that a bad aggregate can
# only waste one chunk of work past its first invalid signature.
_VERIFY_CHUNK = 8


class _Curve:
    """The P-256 group object: generator, order, key generation, ECDSA."""

    def __init__(self) -> None:
        self.p = P
        self.a = A
        self.b = B
        self.n = N
        self.generator = ECPoint(GX, GY)
        self.infinity = ECPoint(None, None)

    # -- keys ---------------------------------------------------------------
    def random_scalar(self, rng=None) -> int:
        if rng is None:
            return 1 + secrets.randbelow(self.n - 1)
        return rng.randrange(1, self.n)

    def keygen(self, rng=None) -> "ECKeyPair":
        sk = self.random_scalar(rng)
        return ECKeyPair(secret=sk, public=self.generator * sk)

    def hash_to_point(self, data: bytes) -> ECPoint:
        """Try-and-increment hash onto the curve (used for commitments)."""
        counter = 0
        while True:
            digest = sha256(b"p256-h2c", data, counter.to_bytes(4, "big"))
            candidate = b"\x02" + digest
            try:
                return ECPoint.from_bytes(candidate)
            except ValueError:
                counter += 1

    # -- ECDSA ----------------------------------------------------------------
    def ecdsa_sign(self, secret: int, message: bytes) -> Tuple[int, int]:
        """Deterministic ECDSA (RFC 6979-flavoured nonce derivation).

        The per-signature ``g^k`` rides the constant fixed-base comb.
        """
        z = int.from_bytes(sha256(b"ecdsa", message), "big") % self.n
        k_seed = hmac_sha256(secret.to_bytes(32, "big"), sha256(b"nonce", message))
        k = (int.from_bytes(k_seed, "big") % (self.n - 1)) + 1
        while True:
            point = self.generator * k
            r = point.x % self.n  # type: ignore[union-attr]
            if r == 0:
                k = (k + 1) % self.n or 1
                continue
            s = (pow(k, -1, self.n) * (z + r * secret)) % self.n
            if s == 0:
                k = (k + 1) % self.n or 1
                continue
            return r, s

    def _ecdsa_candidate(
        self, public: ECPoint, message: bytes, signature: Tuple[int, int]
    ) -> Optional[Tuple[int, _JPoint]]:
        """Shared verification core: ``(r, u1·G + u2·Q)`` in Jacobian form,
        or ``None`` for signatures that fail the scalar range checks.

        ``u1·G`` takes the constant comb path, ``u2·Q`` the per-point cached
        window; neither reports ``ec_mult`` (verification has always metered
        only ``ecdsa_verify``)."""
        r, s = signature
        if not (1 <= r < self.n and 1 <= s < self.n):
            return None
        z = int.from_bytes(sha256(b"ecdsa", message), "big") % self.n
        w = pow(s, -1, self.n)
        u1 = (z * w) % self.n
        u2 = (r * w) % self.n
        # Zero scalars and the identity point contribute nothing (u·∞ = ∞);
        # dropping them here keeps an attacker-supplied infinity "public
        # key" on the returns-False path instead of crashing the verifier.
        pairs = [
            (u, pt)
            for u, pt in ((u1, self.generator), (u2, public))
            if u and not pt.is_infinity
        ]
        return r, (_multi_mult_jac(pairs) if pairs else _INFINITY)

    def ecdsa_verify(self, public: ECPoint, message: bytes, signature: Tuple[int, int]) -> bool:
        metering.count("ecdsa_verify")
        candidate = self._ecdsa_candidate(public, message, signature)
        if candidate is None:
            return False
        r, pt = candidate
        affine = _jac_to_affine(pt)
        if affine is None:
            return False
        return affine[0] % self.n == r

    def _verify_chunk(
        self, items: Sequence[Tuple[ECPoint, bytes, Tuple[int, int]]]
    ) -> List[bool]:
        """Unmetered batch core: verdicts for a slice of triples, with all
        result points normalized by ONE Montgomery batch inversion."""
        candidates = [self._ecdsa_candidate(*item) for item in items]
        points = [cand[1] for cand in candidates if cand is not None]
        normalized = iter(_jac_to_affine_batch(points))
        results: List[bool] = []
        for cand in candidates:
            if cand is None:
                results.append(False)
                continue
            affine = next(normalized)
            results.append(affine is not None and affine[0] % self.n == cand[0])
        return results

    def ecdsa_verify_batch(
        self, items: Sequence[Tuple[ECPoint, bytes, Tuple[int, int]]]
    ) -> List[bool]:
        """Verify many ``(public, message, signature)`` triples at once.

        Each triple's fixed-base work shares the comb table and all result
        points are normalized with ONE Montgomery batch inversion instead of
        one inversion per signature.  The outcome list is bit-for-bit what
        sequential :meth:`ecdsa_verify` calls would return.

        Metering mirrors a sequential short-circuiting caller: one
        ``ecdsa_verify`` per item up to and including the first failure
        (a modeled device stops checking there), so fixed-workload counts
        are unchanged.  Callers that only need the conjunction should use
        :meth:`ecdsa_verify_all`, which also stops *computing* early.
        """
        results = self._verify_chunk(items)
        checked = len(results)
        for index, ok in enumerate(results):
            if not ok:
                checked = index + 1
                break
        if checked:
            metering.count("ecdsa_verify", checked)
        return results

    def ecdsa_verify_all(
        self, items: Sequence[Tuple[ECPoint, bytes, Tuple[int, int]]]
    ) -> bool:
        """True iff every triple verifies; stops at the first failure.

        Triples are processed in chunks of ``_VERIFY_CHUNK``: the honest
        all-valid path keeps the shared fixed-base work and pays one batch
        inversion per chunk (the inversion is microseconds; the scalar
        multiplications dominate), while a rejected aggregate costs at most
        one chunk of wasted candidate computations beyond the failing
        signature — the sequential loop's early-abort cost bound, up to a
        constant — instead of paying for all N.  Metering is exactly the
        sequential short-circuit: one ``ecdsa_verify`` per triple up to and
        including the first failure.
        """
        checked = 0
        for start in range(0, len(items), _VERIFY_CHUNK):
            for ok in self._verify_chunk(items[start : start + _VERIFY_CHUNK]):
                checked += 1
                if not ok:
                    metering.count("ecdsa_verify", checked)
                    return False
        if checked:
            metering.count("ecdsa_verify", checked)
        return True


@dataclass(frozen=True)
class ECKeyPair:
    """A P-256 keypair; ``secret`` is an integer scalar, ``public`` a point."""

    secret: int
    public: ECPoint


# The module-level singleton everyone imports.
P256 = _Curve()
