"""BLS12-381 pairing-friendly curve, from scratch.

The paper's distributed log aggregates HSM signatures with BLS-style
multisignatures "over the JEDI implementation of the BLS12-381 curve" (§9).
This module supplies the algebra: the base field Fq, extension tower
Fq2/Fq12 (via a generic polynomial-extension field), the G1 and G2 curve
groups, hash-to-G1 with cofactor clearing, and the optimal-ate pairing
(Miller loop + naive final exponentiation).

The implementation follows the standard textbook/py_ecc structure.  It is
slow (a pairing takes on the order of a second in CPython) but the protocol
only verifies one aggregate signature per log epoch, and performance claims
in the benchmarks come from the cost model, not from timing this code.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

from repro import metering
from repro.crypto.hashing import sha256

# Base field modulus and subgroup order.
Q = 0x1A0111EA397FE69A4B1BA7B6434BACD764774B84F38512BF6730D2A0F6B0F6241EABFFFEB153FFFFB9FEFFFFFFFFAAAB
R = 0x73EDA753299D7D483339D80809A1D80553BDA402FFFE5BFEFFFFFFFF00000001

# BLS parameter: the Miller loop count |x| (x itself is negative).
ATE_LOOP_COUNT = 0xD201000000010000
LOG_ATE_LOOP_COUNT = 62

# G1 cofactor (clears torsion after hashing onto the curve).
H1 = 0x396C8C005555E1568C00AAAB0000AAAB


class Fq:
    """The prime field GF(Q)."""

    __slots__ = ("n",)

    def __init__(self, n: int) -> None:
        self.n = n % Q

    def __add__(self, other):
        return Fq(self.n + _val(other))

    __radd__ = __add__

    def __sub__(self, other):
        return Fq(self.n - _val(other))

    def __rsub__(self, other):
        return Fq(_val(other) - self.n)

    def __mul__(self, other):
        return Fq(self.n * _val(other))

    __rmul__ = __mul__

    def __truediv__(self, other):
        return self * Fq(_val(other)).inv()

    def __pow__(self, e: int):
        return Fq(pow(self.n, e, Q))

    def __neg__(self):
        return Fq(-self.n)

    def inv(self) -> "Fq":
        if self.n == 0:
            raise ZeroDivisionError("inverse of 0 in Fq")
        return Fq(pow(self.n, -1, Q))

    def __eq__(self, other) -> bool:
        if isinstance(other, Fq):
            return self.n == other.n
        if isinstance(other, int):
            return self.n == other % Q
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("Fq", self.n))

    def __repr__(self) -> str:
        return f"Fq({self.n:#x})"

    @staticmethod
    def one() -> "Fq":
        return Fq(1)

    @staticmethod
    def zero() -> "Fq":
        return Fq(0)


def _val(x) -> int:
    if isinstance(x, Fq):
        return x.n
    if isinstance(x, int):
        return x
    raise TypeError(f"cannot coerce {type(x)} into Fq")


def _poly_div_rounded(a: List[int], b: List[int]) -> List[int]:
    """Polynomial division over GF(Q) returning the quotient (py_ecc style)."""
    deg_a, deg_b = _deg(a), _deg(b)
    temp = list(a)
    out = [0] * len(a)
    for i in range(deg_a - deg_b, -1, -1):
        if _deg(temp) < deg_b + i:
            continue
        factor = temp[deg_b + i] * pow(b[deg_b], -1, Q) % Q
        out[i] = factor
        for c in range(deg_b + 1):
            temp[c + i] = (temp[c + i] - b[c] * factor) % Q
    return out[: _deg(out) + 1]


def _deg(p: Sequence[int]) -> int:
    d = len(p) - 1
    while d and p[d] == 0:
        d -= 1
    return d


class FqP:
    """Generic polynomial extension field GF(Q^degree).

    Elements are coefficient vectors modulo ``modulus_coeffs`` (which encode
    the minimal polynomial ``x^degree - sum_i modulus_coeffs[i] x^i``...
    precisely: ``x^degree = -sum_i modulus_coeffs[i] x^i``).
    Subclasses fix the degree and modulus; Fq2 and Fq12 below.
    """

    degree = 0
    modulus_coeffs: Tuple[int, ...] = ()

    def __init__(self, coeffs: Sequence[Union[int, Fq]]) -> None:
        if len(coeffs) != self.degree:
            raise ValueError(f"expected {self.degree} coefficients")
        self.coeffs: List[int] = [_val(c) % Q for c in coeffs]

    # -- ring operations ---------------------------------------------------
    def _wrap(self, coeffs: List[int]) -> "FqP":
        return type(self)(coeffs)

    def __add__(self, other: "FqP") -> "FqP":
        return self._wrap([(a + b) % Q for a, b in zip(self.coeffs, other.coeffs)])

    def __sub__(self, other: "FqP") -> "FqP":
        return self._wrap([(a - b) % Q for a, b in zip(self.coeffs, other.coeffs)])

    def __neg__(self) -> "FqP":
        return self._wrap([(-a) % Q for a in self.coeffs])

    def __mul__(self, other):
        if isinstance(other, (int, Fq)):
            v = _val(other)
            return self._wrap([(a * v) % Q for a in self.coeffs])
        b = [0] * (self.degree * 2 - 1)
        for i, ca in enumerate(self.coeffs):
            if ca == 0:
                continue
            for j, cb in enumerate(other.coeffs):
                b[i + j] = (b[i + j] + ca * cb) % Q
        # Reduce modulo the minimal polynomial.
        for exp in range(self.degree * 2 - 2, self.degree - 1, -1):
            top = b[exp]
            if top == 0:
                continue
            b[exp] = 0
            for i, mc in enumerate(self.modulus_coeffs):
                b[exp - self.degree + i] = (b[exp - self.degree + i] - top * mc) % Q
        return self._wrap(b[: self.degree])

    __rmul__ = __mul__

    def __truediv__(self, other):
        if isinstance(other, (int, Fq)):
            return self * pow(_val(other), -1, Q)
        return self * other.inv()

    def __pow__(self, e: int) -> "FqP":
        result = self.one()
        base = self
        while e > 0:
            if e & 1:
                result = result * base
            base = base * base
            e >>= 1
        return result

    def inv(self) -> "FqP":
        """Extended-Euclid inversion over the polynomial ring."""
        lm, hm = [1] + [0] * self.degree, [0] * (self.degree + 1)
        low = self.coeffs + [0]
        high = list(self.modulus_coeffs) + [1]
        while _deg(low):
            r = _poly_div_rounded(high, low)
            r += [0] * (self.degree + 1 - len(r))
            nm = list(hm)
            new = list(high)
            for i in range(self.degree + 1):
                for j in range(self.degree + 1 - i):
                    nm[i + j] = (nm[i + j] - lm[i] * r[j]) % Q
                    new[i + j] = (new[i + j] - low[i] * r[j]) % Q
            lm, low, hm, high = nm, new, lm, low
        inv_low0 = pow(low[0], -1, Q)
        return self._wrap([(c * inv_low0) % Q for c in lm[: self.degree]])

    # -- misc -----------------------------------------------------------------
    def __eq__(self, other) -> bool:
        return type(self) is type(other) and self.coeffs == other.coeffs

    def __hash__(self) -> int:
        return hash((type(self).__name__, tuple(self.coeffs)))

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.coeffs})"

    @classmethod
    def one(cls) -> "FqP":
        return cls([1] + [0] * (cls.degree - 1))

    @classmethod
    def zero(cls) -> "FqP":
        return cls([0] * cls.degree)

    def is_zero(self) -> bool:
        return all(c == 0 for c in self.coeffs)


class Fq2(FqP):
    """GF(Q^2) = Fq[u]/(u^2 + 1)."""

    degree = 2
    modulus_coeffs = (1, 0)

    def conjugate(self) -> "Fq2":
        return Fq2([self.coeffs[0], (-self.coeffs[1]) % Q])


class Fq12(FqP):
    """GF(Q^12) = Fq[w]/(w^12 - 2 w^6 + 2)."""

    degree = 12
    modulus_coeffs = (2, 0, 0, 0, 0, 0, -2 % Q, 0, 0, 0, 0, 0)

    def conjugate(self) -> "Fq12":
        # The map w -> -w (an order-2 Galois automorphism): negate odd coeffs.
        return Fq12([c if i % 2 == 0 else (-c) % Q for i, c in enumerate(self.coeffs)])


# -- curve points -------------------------------------------------------------
# Affine points as (x, y) tuples over any of the fields; None = infinity.
Point = Optional[Tuple[object, object]]

B1 = Fq(4)
B2 = Fq2([4, 4])

G1_GEN: Point = (
    Fq(0x17F1D3A73197D7942695638C4FA9AC0FC3688C4F9774B905A14E3A3F171BAC586C55E83FF97A1AEFFB3AF00ADB22C6BB),
    Fq(0x08B3F481E3AAA0F1A09E30ED741D8AE4FCF5E095D5D00AF600DB18CB2C04B3EDD03CC744A2888AE40CAA232946C5E7E1),
)
G2_GEN: Point = (
    Fq2([
        0x024AA2B2F08F0A91260805272DC51051C6E47AD4FA403B02B4510B647AE3D1770BAC0326A805BBEFD48056C8C121BDB8,
        0x13E02B6052719F607DACD3A088274F65596BD0D09920B61AB5DA61BBDC7F5049334CF11213945D57E5AC7D055D042B7E,
    ]),
    Fq2([
        0x0CE5D527727D6E118CC9CDC6DA2E351AADFD9BAA8CBDD3A76D429A695160D12C923AC9CC3BACA289E193548608B82801,
        0x0606C4A02EA734CC32ACD2B02BC28B99CB3E287E85A763AF267492AB572E99AB3F370D275CEC1DA1AAA9075FF05F79BE,
    ]),
)


def is_on_curve(pt: Point, b) -> bool:
    if pt is None:
        return True
    x, y = pt
    return y * y - x * x * x == b  # type: ignore[operator]


def double(pt: Point) -> Point:
    if pt is None:
        return None
    x, y = pt
    # No 2-torsion on BLS12-381 (both group orders are odd), so y != 0 here.
    m = (3 * x * x) / (2 * y)  # type: ignore[operator]
    newx = m * m - 2 * x  # type: ignore[operator]
    newy = -m * newx + m * x - y  # type: ignore[operator]
    return (newx, newy)


def add(p1: Point, p2: Point) -> Point:
    if p1 is None:
        return p2
    if p2 is None:
        return p1
    x1, y1 = p1
    x2, y2 = p2
    if x1 == x2 and y1 == y2:
        return double(p1)
    if x1 == x2:
        return None
    m = (y2 - y1) / (x2 - x1)  # type: ignore[operator]
    newx = m * m - x1 - x2  # type: ignore[operator]
    newy = -m * newx + m * x1 - y1  # type: ignore[operator]
    return (newx, newy)


def neg(pt: Point) -> Point:
    if pt is None:
        return None
    x, y = pt
    return (x, -y)  # type: ignore[operator]


def multiply(pt: Point, n: int) -> Point:
    n %= R
    if n == 0 or pt is None:
        return None
    result: Point = None
    addend = pt
    while n:
        if n & 1:
            result = add(result, addend)
        addend = double(addend)
        n >>= 1
    return result


def eq(p1: Point, p2: Point) -> bool:
    return p1 == p2


# -- serialization (uncompressed, internal format) -----------------------------
def g1_to_bytes(pt: Point) -> bytes:
    if pt is None:
        return b"\x00"
    x, y = pt
    return b"\x01" + x.n.to_bytes(48, "big") + y.n.to_bytes(48, "big")  # type: ignore[union-attr]


def g1_from_bytes(data: bytes) -> Point:
    if data == b"\x00":
        return None
    if len(data) != 97 or data[0] != 1:
        raise ValueError("malformed G1 encoding")
    pt = (Fq(int.from_bytes(data[1:49], "big")), Fq(int.from_bytes(data[49:], "big")))
    if not is_on_curve(pt, B1):
        raise ValueError("G1 point not on curve")
    return pt


def g2_to_bytes(pt: Point) -> bytes:
    if pt is None:
        return b"\x00"
    x, y = pt
    out = b"\x01"
    for coeff in x.coeffs + y.coeffs:  # type: ignore[union-attr]
        out += coeff.to_bytes(48, "big")
    return out


def g2_from_bytes(data: bytes) -> Point:
    if data == b"\x00":
        return None
    if len(data) != 193 or data[0] != 1:
        raise ValueError("malformed G2 encoding")
    vals = [int.from_bytes(data[1 + 48 * i : 49 + 48 * i], "big") for i in range(4)]
    pt = (Fq2(vals[:2]), Fq2(vals[2:]))
    if not is_on_curve(pt, B2):
        raise ValueError("G2 point not on curve")
    return pt


# -- hash to G1 -----------------------------------------------------------------
def hash_to_g1(message: bytes, domain: bytes = b"bls-sig") -> Point:
    """Try-and-increment hash onto the r-order subgroup of G1."""
    counter = 0
    while True:
        digest = sha256(domain, message, counter.to_bytes(4, "big"))
        digest2 = sha256(domain, b"second", message, counter.to_bytes(4, "big"))
        x = Fq(int.from_bytes(digest + digest2, "big"))
        rhs = x * x * x + B1
        y = rhs ** ((Q + 1) // 4)  # Q ≡ 3 (mod 4)
        if y * y == rhs:
            pt = (x, y)
            cleared = multiply(pt, H1)
            if cleared is not None:
                return cleared
        counter += 1


# -- pairing --------------------------------------------------------------------
_W = Fq12([0, 1] + [0] * 10)
_W2 = _W * _W
_W3 = _W2 * _W


def twist(pt: Point) -> Point:
    """Map a G2 point (over Fq2) into the curve over Fq12 (the sextic twist)."""
    if pt is None:
        return None
    x, y = pt
    xc = [(x.coeffs[0] - x.coeffs[1]) % Q, x.coeffs[1]]  # type: ignore[union-attr]
    yc = [(y.coeffs[0] - y.coeffs[1]) % Q, y.coeffs[1]]  # type: ignore[union-attr]
    nx = Fq12([xc[0]] + [0] * 5 + [xc[1]] + [0] * 5)
    ny = Fq12([yc[0]] + [0] * 5 + [yc[1]] + [0] * 5)
    # BLS12-381 uses an M-type twist: untwisting divides by powers of w.
    return (nx / _W2, ny / _W3)


def cast_g1_to_fq12(pt: Point) -> Point:
    if pt is None:
        return None
    x, y = pt
    return (
        Fq12([x.n] + [0] * 11),  # type: ignore[union-attr]
        Fq12([y.n] + [0] * 11),  # type: ignore[union-attr]
    )


def _linefunc(p1: Point, p2: Point, t: Point) -> Fq12:
    x1, y1 = p1  # type: ignore[misc]
    x2, y2 = p2  # type: ignore[misc]
    xt, yt = t  # type: ignore[misc]
    if x1 != x2:
        m = (y2 - y1) / (x2 - x1)
        return m * (xt - x1) - (yt - y1)
    if y1 == y2:
        m = (3 * x1 * x1) / (2 * y1)
        return m * (xt - x1) - (yt - y1)
    return xt - x1


def miller_loop(q_t: Point, p_t: Point) -> Fq12:
    """Optimal-ate Miller loop over twisted/cast points (no final exp)."""
    if q_t is None or p_t is None:
        return Fq12.one()
    r_pt = q_t
    f = Fq12.one()
    for i in range(LOG_ATE_LOOP_COUNT, -1, -1):
        f = f * f * _linefunc(r_pt, r_pt, p_t)
        r_pt = double(r_pt)
        if ATE_LOOP_COUNT & (1 << i):
            f = f * _linefunc(r_pt, q_t, p_t)
            r_pt = add(r_pt, q_t)
    # The BLS parameter x is negative: conjugate the Miller output.
    return f.conjugate()


def final_exponentiate(f: Fq12) -> Fq12:
    return f ** ((Q**12 - 1) // R)


def _pairing_compute(p: Point, q: Point) -> Fq12:
    if not is_on_curve(p, B1):
        raise ValueError("P not on G1")
    if not is_on_curve(q, B2):
        raise ValueError("Q not on G2")
    return final_exponentiate(miller_loop(twist(q), cast_g1_to_fq12(p)))


# Memoize the (pure, deterministic) pairing computation.  In the simulated
# fleet every HSM verifies the same aggregate signature each log epoch; the
# cache collapses those N identical evaluations to one while the op meter
# still charges each HSM for its own pairing.
_PAIRING_CACHE: dict = {}
_PAIRING_CACHE_MAX = 512


def pairing(p: Point, q: Point) -> Fq12:
    """e(P, Q) for P in G1, Q in G2 (reporting one ``pairing`` op)."""
    metering.count("pairing")
    if p is None or q is None:
        return Fq12.one()
    key = (g1_to_bytes(p), g2_to_bytes(q))
    cached = _PAIRING_CACHE.get(key)
    if cached is None:
        cached = _pairing_compute(p, q)
        if len(_PAIRING_CACHE) >= _PAIRING_CACHE_MAX:
            _PAIRING_CACHE.clear()
        _PAIRING_CACHE[key] = cached
    return cached
