"""Cryptographic substrate for the SafetyPin reproduction.

Everything here is implemented from scratch on top of the Python standard
library (``hashlib``, ``hmac``, ``secrets``): prime fields, NIST P-256,
hashed ElGamal, AES-128-GCM, Shamir secret sharing, Merkle trees, BLS12-381
pairings with aggregate signatures, and Bloom-filter puncturable encryption.

The implementations favour clarity and testability over raw speed; they are
validated against published test vectors where vectors exist (AES, GCM,
P-256) and against algebraic properties elsewhere (pairing bilinearity,
share-reconstruction identities).
"""

_EXPORTS = {
    "PrimeField": ("repro.crypto.field", "PrimeField"),
    "FieldElement": ("repro.crypto.field", "FieldElement"),
    "batch_inverse_mod": ("repro.crypto.field", "batch_inverse_mod"),
    "P256": ("repro.crypto.ec", "P256"),
    "ECPoint": ("repro.crypto.ec", "ECPoint"),
    "ECKeyPair": ("repro.crypto.ec", "ECKeyPair"),
    "multi_mult": ("repro.crypto.ec", "multi_mult"),
    "naive_mult": ("repro.crypto.ec", "naive_mult"),
    "HashedElGamal": ("repro.crypto.elgamal", "HashedElGamal"),
    "ElGamalCiphertext": ("repro.crypto.elgamal", "ElGamalCiphertext"),
    "AesGcm": ("repro.crypto.gcm", "AesGcm"),
    "AuthenticationError": ("repro.crypto.gcm", "AuthenticationError"),
    "ShamirSharer": ("repro.crypto.shamir", "ShamirSharer"),
    "Share": ("repro.crypto.shamir", "Share"),
    "MerkleTree": ("repro.crypto.merkle", "MerkleTree"),
    "IncrementalMerkleTree": ("repro.crypto.merkle", "IncrementalMerkleTree"),
    "MerkleProof": ("repro.crypto.merkle", "MerkleProof"),
    "BloomFilterEncryption": ("repro.crypto.bfe", "BloomFilterEncryption"),
    "PuncturedKeyError": ("repro.crypto.bfe", "PuncturedKeyError"),
}

__all__ = list(_EXPORTS)


def __getattr__(name):
    try:
        module_name, attr = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module 'repro.crypto' has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)
