"""Hash commitments for recovery attempts.

During recovery the client commits to (its username, the identities of its
chosen cluster, its recovery ciphertext) and logs the commitment ``h``
(Section 4.2).  Each contacted HSM later receives the *opening* and checks
that (a) the commitment matches the logged value and (b) the HSM itself is a
member of the committed cluster.  The commitment is binding and hiding in the
random-oracle model (SHA-256 with 32 bytes of randomness).
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.crypto.hashing import constant_time_equal, sha256


@dataclass(frozen=True)
class CommitmentOpening:
    """Everything needed to recompute a recovery commitment."""

    username: str
    cluster: Tuple[int, ...]
    ciphertext_hash: bytes
    randomness: bytes

    def commitment(self) -> bytes:
        return _commit_digest(
            self.username, self.cluster, self.ciphertext_hash, self.randomness
        )

    def to_bytes(self) -> bytes:
        user = self.username.encode("utf-8")
        out = [
            len(user).to_bytes(2, "big"),
            user,
            len(self.cluster).to_bytes(2, "big"),
        ]
        out.extend(i.to_bytes(4, "big") for i in self.cluster)
        out.append(self.ciphertext_hash)
        out.append(self.randomness)
        return b"".join(out)

    @staticmethod
    def from_bytes(data: bytes) -> "CommitmentOpening":
        ulen = int.from_bytes(data[:2], "big")
        username = data[2 : 2 + ulen].decode("utf-8")
        off = 2 + ulen
        clen = int.from_bytes(data[off : off + 2], "big")
        off += 2
        cluster = tuple(
            int.from_bytes(data[off + 4 * i : off + 4 * i + 4], "big") for i in range(clen)
        )
        off += 4 * clen
        ciphertext_hash = data[off : off + 32]
        randomness = data[off + 32 : off + 64]
        if len(randomness) != 32:
            raise ValueError("truncated commitment opening")
        return CommitmentOpening(username, cluster, ciphertext_hash, randomness)


def _commit_digest(
    username: str, cluster: Sequence[int], ciphertext_hash: bytes, randomness: bytes
) -> bytes:
    cluster_bytes = b"".join(i.to_bytes(4, "big") for i in cluster)
    return sha256(
        b"safetypin-recovery-commitment",
        username.encode("utf-8"),
        cluster_bytes,
        ciphertext_hash,
        randomness,
    )


def commit_recovery(
    username: str, cluster: Sequence[int], ciphertext_hash: bytes, rng=None
) -> Tuple[bytes, CommitmentOpening]:
    """Produce ``(h, opening)`` for a recovery attempt."""
    if rng is None:
        randomness = secrets.token_bytes(32)
    else:
        randomness = bytes(rng.randrange(256) for _ in range(32))
    opening = CommitmentOpening(
        username=username,
        cluster=tuple(cluster),
        ciphertext_hash=ciphertext_hash,
        randomness=randomness,
    )
    return opening.commitment(), opening


def verify_opening(commitment: bytes, opening: CommitmentOpening) -> bool:
    """Constant-time check that ``opening`` opens ``commitment``."""
    return constant_time_equal(commitment, opening.commitment())
