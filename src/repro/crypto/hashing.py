"""Hashing utilities: KDFs, hash-to-indices, and domain-separated digests.

Two hash functions from the paper live here:

- ``Hash : {0,1}^λ × P → [N]^n`` (Figure 15) — :func:`hash_to_indices` maps a
  (salt, PIN) pair to the pseudorandom cluster of ``n`` HSM indices.  The
  paper models this as a random oracle; we instantiate it with SHA-256 in
  counter mode with rejection sampling so indices are uniform over ``[N]``.
- ``Hash' : G → K`` — :func:`kdf` derives authenticated-encryption keys from
  Diffie-Hellman group elements inside hashed ElGamal (Appendix A.4), with
  explicit domain-separation labels.
"""

from __future__ import annotations

import hashlib
import hmac as _hmac
from typing import List

from repro import metering


def sha256(*parts: bytes) -> bytes:
    """SHA-256 over length-prefixed parts (unambiguous concatenation)."""
    h = hashlib.sha256()
    total = 0
    for part in parts:
        h.update(len(part).to_bytes(8, "big"))
        h.update(part)
        total += len(part) + 8
    metering.count("sha256_block", max(1, (total + 63) // 64))
    return h.digest()


def hmac_sha256(key: bytes, message: bytes) -> bytes:
    metering.count("hmac")
    return _hmac.new(key, message, hashlib.sha256).digest()


def kdf(label: str, *parts: bytes, length: int = 32) -> bytes:
    """HKDF-style expand: derive ``length`` bytes bound to ``label``.

    Used for hashed-ElGamal key derivation (the paper's Hash'), commitment
    randomness expansion, and transport-key derivation.  The label provides
    domain separation between the different uses.
    """
    prk = sha256(label.encode("utf-8"), *parts)
    out = b""
    counter = 0
    while len(out) < length:
        out += sha256(prk, counter.to_bytes(4, "big"), label.encode("utf-8"))
        counter += 1
    return out[:length]


def hash_to_indices(salt: bytes, pin: str, total: int, count: int) -> List[int]:
    """The paper's ``Hash(salt, pin) -> [N]^n`` (Figure 15, step 3).

    Deterministically expands (salt, pin) into ``count`` indices drawn
    uniformly (with replacement, as in the paper: a *list* in [N]^n) from
    ``range(total)``.  Uniformity uses rejection sampling over 8-byte draws
    so there is no modulo bias.
    """
    if total <= 0:
        raise ValueError("total must be positive")
    if count < 0:
        raise ValueError("count must be non-negative")
    seed = sha256(b"safetypin-select", salt, pin.encode("utf-8"))
    indices: List[int] = []
    counter = 0
    # Largest multiple of `total` below 2^64: draws >= bound are rejected.
    bound = (1 << 64) - ((1 << 64) % total)
    while len(indices) < count:
        block = sha256(seed, counter.to_bytes(8, "big"))
        counter += 1
        for off in range(0, 32, 8):
            draw = int.from_bytes(block[off : off + 8], "big")
            if draw < bound:
                indices.append(draw % total)
                if len(indices) == count:
                    break
    return indices


def hash_to_int(data: bytes, modulus: int) -> int:
    """Map arbitrary bytes to a uniform integer in [0, modulus)."""
    if modulus <= 0:
        raise ValueError("modulus must be positive")
    # 64 extra bits of slack make the modular bias negligible (< 2^-64).
    need = (modulus.bit_length() + 64 + 7) // 8
    out = b""
    counter = 0
    while len(out) < need:
        out += sha256(b"hash-to-int", data, counter.to_bytes(4, "big"))
        counter += 1
    return int.from_bytes(out[:need], "big") % modulus


def constant_time_equal(a: bytes, b: bytes) -> bool:
    return _hmac.compare_digest(a, b)
