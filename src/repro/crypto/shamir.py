"""Shamir secret sharing over GF(p) (Shamir, CACM 1979).

SafetyPin splits the AES transport key into ``t``-of-``n`` shares, encrypts
one share to each HSM in the PIN-selected cluster, and reconstructs from any
``t`` decrypted shares (Figure 15).  We share over the P-256 scalar field so
a share is the same size as a curve scalar; 128-bit AES keys embed with room
to spare.

``Reconstruct`` in the paper tolerates *missing* shares (fail-stop HSMs), not
corrupted ones; :meth:`ShamirSharer.reconstruct` mirrors that, and
:meth:`ShamirSharer.reconstruct_robust` additionally implements the paper's
majority vote over the attached message ciphertexts.

Recombination is a recovery hot path: Lagrange interpolation inverts all
``t`` denominators with one batched modular inversion (see
``PrimeField.lagrange_interpolate_at_zero``), so reconstructing a share set
costs a single ``pow(x, -1, p)`` regardless of the threshold.
"""

from __future__ import annotations

import secrets as _secrets
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

from repro.crypto.field import FieldElement, PrimeField

# The P-256 group order: a convenient ~256-bit prime field.
DEFAULT_MODULUS = 0xFFFFFFFF00000000FFFFFFFFFFFFFFFFBCE6FAADA7179E84F3B9CAC2FC632551


@dataclass(frozen=True)
class Share:
    """One Shamir share: the evaluation point ``x`` and value ``y``."""

    x: int
    y: int

    def to_bytes(self, byte_length: int = 32) -> bytes:
        return self.x.to_bytes(4, "big") + self.y.to_bytes(byte_length, "big")

    @staticmethod
    def from_bytes(data: bytes, byte_length: int = 32) -> "Share":
        if len(data) != 4 + byte_length:
            raise ValueError("malformed share encoding")
        return Share(
            x=int.from_bytes(data[:4], "big"),
            y=int.from_bytes(data[4:], "big"),
        )


class ShamirSharer:
    """t-of-n sharing of byte-string secrets embedded in GF(p)."""

    def __init__(self, threshold: int, num_shares: int, modulus: int = DEFAULT_MODULUS) -> None:
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        if num_shares < threshold:
            raise ValueError("need at least `threshold` shares")
        if num_shares >= modulus:
            raise ValueError("too many shares for field size")
        self.threshold = threshold
        self.num_shares = num_shares
        self.field = PrimeField(modulus)

    # -- embedding ------------------------------------------------------------
    def _embed(self, secret: bytes) -> FieldElement:
        value = int.from_bytes(secret, "big")
        if value >= self.field.modulus:
            raise ValueError("secret too large to embed in field")
        return self.field(value)

    def _extract(self, element: FieldElement, length: int) -> bytes:
        try:
            return element.value.to_bytes(length, "big")
        except OverflowError:
            # Corrupt shares can interpolate to a full-width field element;
            # surface that as an invalid candidate, not a crash.
            raise ValueError("reconstructed value does not fit the secret length")

    # -- sharing -----------------------------------------------------------------
    def share(self, secret: bytes, rng=None) -> List[Share]:
        """Split ``secret`` (at most 31 bytes for the default field) into
        ``num_shares`` shares, any ``threshold`` of which reconstruct it."""
        coeffs = [self._embed(secret)]
        for _ in range(self.threshold - 1):
            coeffs.append(self.field.random(rng))
        shares = []
        for i in range(1, self.num_shares + 1):
            x = self.field(i)
            y = self.field.eval_poly(coeffs, x)
            shares.append(Share(x=i, y=y.value))
        return shares

    def reconstruct(self, shares: Iterable[Optional[Share]], secret_length: int = 16) -> bytes:
        """Reconstruct from any >= threshold non-``None`` shares.

        ``None`` entries model fail-stopped HSMs (the paper's ⊥ shares)."""
        available = [s for s in shares if s is not None]
        if len(available) < self.threshold:
            raise ValueError(
                f"need {self.threshold} shares, only {len(available)} available"
            )
        points = [
            (self.field(s.x), self.field(s.y)) for s in available[: self.threshold]
        ]
        return self._extract(self.field.lagrange_interpolate_at_zero(points), secret_length)

    def reconstruct_robust(
        self,
        shares: Sequence[Optional[Share]],
        verifier,
        secret_length: int = 16,
        max_attempts: int = 64,
    ) -> bytes:
        """Reconstruct when some shares may be *wrong*, not just missing.

        ``verifier(candidate_secret) -> bool`` decides whether a candidate is
        the true secret (in SafetyPin: does the AES-GCM tag of the backup
        ciphertext verify under this key?).  We try random subsets of size
        ``threshold``; with a bounded number of bad shares this terminates
        quickly in expectation.
        """
        available = [s for s in shares if s is not None]
        if len(available) < self.threshold:
            raise ValueError("not enough shares for robust reconstruction")
        rng = _secrets.SystemRandom()
        # Wrap each share into field elements once; the attempt loop below
        # only samples indices instead of rebuilding elements per subset.
        wrapped = [(self.field(s.x), self.field(s.y)) for s in available]
        for _ in range(max_attempts):
            points = [wrapped[i] for i in rng.sample(range(len(wrapped)), self.threshold)]
            try:
                candidate = self._extract(
                    self.field.lagrange_interpolate_at_zero(points), secret_length
                )
            except ValueError:
                continue  # corrupt subset interpolated out of range
            if verifier(candidate):
                return candidate
        raise ValueError("robust reconstruction failed: too many corrupt shares")
