"""Bloom-filter (puncturable) encryption — paper §7.1, pairing-free variant.

A puncturable public-key encryption scheme: after an HSM decrypts a
ciphertext it *punctures* its secret key so that ciphertext can never be
decrypted again, giving SafetyPin forward security.

The paper uses Bloom-filter encryption (Derler et al. 2018) but replaces the
pairing-based IBE with a plain-DH construction ("we use a variant ... that
avoids the need for pairings but increases the size of the HSMs' public
keys", §9).  We implement that variant concretely:

- The secret key is an array of ``m`` independent ElGamal secret scalars,
  one per Bloom slot.  At the paper's parameters (2^20 punctures) this array
  is tens of megabytes — far beyond HSM storage — so it lives in a
  :class:`~repro.storage.securedel.SecureDeletionTree` outsourced to the
  untrusted provider, with only the 16-byte root key inside the HSM.
- The public key is the array of ``m`` slot public keys, committed by a
  Merkle root so a client can verify any slot key it fetches against a
  constant-size, attestable value.
- Encryption: a fresh DH ephemeral ``g^r`` is hashed (with context) into a
  tag; the tag selects ``k`` slots; a random payload key is AE-wrapped under
  each slot's DH shared secret; the payload is AE-encrypted once.
- Puncture: securely delete the ``k`` slot secret keys for the ciphertext's
  tag.  Decryption of *that* ciphertext becomes impossible; an unrelated
  ciphertext fails only if all its own slots are gone (probability
  ``BloomParams.failure_probability``).
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro import metering
from repro.crypto.bloom import BloomParams
from repro.crypto.ec import ECPoint, P256
from repro.crypto.gcm import AuthenticationError, ae_decrypt, ae_encrypt
from repro.crypto.hashing import kdf, sha256
from repro.crypto.merkle import MerkleProof, MerkleTree
from repro.storage.blockstore import BlockStore
from repro.storage.securedel import DeletedBlockError, SecureDeletionTree

_SCALAR_LEN = 32


class PuncturedKeyError(Exception):
    """Every Bloom slot of the ciphertext's tag has been deleted."""


@dataclass(frozen=True)
class BfePublicKey:
    """The m slot public keys plus their Merkle commitment."""

    params: BloomParams
    slot_pubkeys: Tuple[ECPoint, ...]
    commitment: bytes

    @staticmethod
    def from_slots(params: BloomParams, slot_pubkeys: List[ECPoint]) -> "BfePublicKey":
        tree = MerkleTree([p.to_bytes() for p in slot_pubkeys])
        return BfePublicKey(
            params=params, slot_pubkeys=tuple(slot_pubkeys), commitment=tree.root
        )

    def slot_proof(self, index: int) -> MerkleProof:
        """Merkle proof that ``slot_pubkeys[index]`` is committed.

        In a deployment clients fetch only the slot keys they need plus these
        proofs, keeping per-HSM storage at kilobytes (the paper's 9.02 KB
        figure for a 40-HSM cluster)."""
        tree = MerkleTree([p.to_bytes() for p in self.slot_pubkeys])
        return tree.prove(index)

    def verify_slot(self, index: int, pubkey: ECPoint, proof: MerkleProof) -> bool:
        return proof.index == index and MerkleTree.verify(
            self.commitment, pubkey.to_bytes(), proof
        )

    def size_bytes(self) -> int:
        return 33 * len(self.slot_pubkeys)


@dataclass(frozen=True)
class BfeCiphertext:
    """``(tag, g^r, [wrapped payload key per slot], payload AE ciphertext)``.

    The *tag* names the Bloom slots this ciphertext lives in; puncturing the
    tag kills every ciphertext that used it.  By default the tag is derived
    from the DH ephemeral (one puncture = one ciphertext, the classic BFE
    behaviour); SafetyPin instead derives it from (username, salt) so that
    recovering any backup in a salt-sharing series revokes the whole series
    (§8 "multiple recovery ciphertexts").  Tag integrity is enforced by
    using the tag as AE associated data on the wrapped keys: a swapped tag
    selects the wrong slots and fails authentication.
    """

    tag: bytes
    ephemeral: ECPoint
    wrapped_keys: Tuple[bytes, ...]
    payload: bytes

    def __len__(self) -> int:
        return len(self.tag) + 33 + sum(len(w) for w in self.wrapped_keys) + len(self.payload)


class BfeSecretKey:
    """HSM-side handle: the outsourced slot-key tree plus puncture counters.

    Only :attr:`tree`'s 16-byte root key is HSM-resident; the provider holds
    the encrypted slot array.
    """

    def __init__(self, params: BloomParams, tree: SecureDeletionTree) -> None:
        self.params = params
        self.tree = tree
        self.punctures_done = 0
        self.slots_deleted = 0

    def fraction_deleted(self) -> float:
        return self.slots_deleted / self.params.num_slots

    def needs_rotation(self, threshold: float = 0.5) -> bool:
        """The paper rotates keys once half the secret-key elements are gone."""
        return self.fraction_deleted() >= threshold


class BloomFilterEncryption:
    """Stateless scheme object (instances carry no keys)."""

    @staticmethod
    def keygen(
        params: BloomParams, store: BlockStore, rng=None
    ) -> Tuple[BfePublicKey, BfeSecretKey]:
        """Generate slot keypairs and outsource the secret array to ``store``."""
        secrets_list: List[int] = []
        pubkeys: List[ECPoint] = []
        for _ in range(params.num_slots):
            scalar = P256.random_scalar(rng)
            secrets_list.append(scalar)
            pubkeys.append(P256.generator * scalar)
        blocks = [s.to_bytes(_SCALAR_LEN, "big") for s in secrets_list]
        tree = SecureDeletionTree.setup(store, blocks)
        return (
            BfePublicKey.from_slots(params, pubkeys),
            BfeSecretKey(params, tree),
        )

    # -- encryption (client side) ---------------------------------------------
    @staticmethod
    def encrypt(
        public: BfePublicKey,
        plaintext: bytes,
        context: bytes = b"",
        tag: Optional[bytes] = None,
    ) -> BfeCiphertext:
        r = P256.random_scalar()
        ephemeral = P256.generator * r
        if tag is None:
            tag = sha256(b"bfe-tag", ephemeral.to_bytes(), context)
        slots = public.params.slots_for_tag(tag)

        payload_key = secrets.token_bytes(16)
        wrapped = []
        for slot in slots:
            shared = public.slot_pubkeys[slot] * r
            wrap_key = kdf("bfe-slot-wrap", shared.to_bytes(), tag, slot.to_bytes(4, "big"))
            wrapped.append(ae_encrypt(wrap_key[:16], payload_key, aad=tag))
        payload = ae_encrypt(payload_key, plaintext, aad=context)
        metering.count("elgamal_enc", len(slots))
        return BfeCiphertext(
            tag=tag, ephemeral=ephemeral, wrapped_keys=tuple(wrapped), payload=payload
        )

    # -- decryption (HSM side) ---------------------------------------------------
    @staticmethod
    def decrypt(
        secret: BfeSecretKey, ciphertext: BfeCiphertext, context: bytes = b""
    ) -> bytes:
        """Decrypt using the first surviving Bloom slot."""
        tag = ciphertext.tag
        slots = secret.params.slots_for_tag(tag)
        last_error: Optional[Exception] = None
        for position, slot in enumerate(slots):
            try:
                scalar_bytes = secret.tree.read(slot)
            except DeletedBlockError as exc:
                last_error = exc
                continue
            scalar = int.from_bytes(scalar_bytes, "big")
            shared = ciphertext.ephemeral * scalar
            metering.count("elgamal_dec")
            wrap_key = kdf("bfe-slot-wrap", shared.to_bytes(), tag, slot.to_bytes(4, "big"))
            try:
                payload_key = ae_decrypt(wrap_key[:16], ciphertext.wrapped_keys[position], aad=tag)
            except AuthenticationError as exc:
                last_error = exc
                continue
            # The payload's associated data binds the LHE context; a wrong
            # context (e.g. a wrong-PIN cluster digest) fails authentication
            # here even when the slot key itself was right.
            return ae_decrypt(payload_key, ciphertext.payload, aad=context)
        raise PuncturedKeyError(
            "no surviving Bloom slot can decrypt this ciphertext"
        ) from last_error

    # -- puncturing (HSM side) -----------------------------------------------------
    @staticmethod
    def puncture(secret: BfeSecretKey, ciphertext: BfeCiphertext, context: bytes = b"") -> None:
        """Securely delete the ciphertext's slots (idempotent)."""
        BloomFilterEncryption.puncture_tag(secret, ciphertext.tag)

    @staticmethod
    def puncture_tag(secret: BfeSecretKey, tag: bytes) -> None:
        slots = secret.params.slots_for_tag(tag)
        for slot in slots:
            try:
                secret.tree.delete(slot)
                secret.slots_deleted += 1
            except DeletedBlockError:
                pass  # already gone: puncture is idempotent
        secret.punctures_done += 1
