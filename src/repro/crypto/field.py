"""Prime-field arithmetic.

A small, explicit GF(p) implementation used by Shamir secret sharing and by
the elliptic-curve code.  Field elements are immutable value objects; the
field object owns the modulus and provides Lagrange interpolation (the
reconstruction step of Shamir sharing).
"""

from __future__ import annotations

import secrets
from typing import Iterable, List, Sequence, Tuple


# lint: unmetered[inversions are priced inside the callers' metered ops (ec_mult, ecdsa_verify); a new meter op would shift the exact op-count snapshots]
def batch_inverse_mod(values: Sequence[int], modulus: int) -> List[int]:
    """Montgomery's batch-inversion trick: invert ``k`` nonzero residues
    with ONE modular inversion plus ``3(k-1)`` multiplications.

    The crypto fast paths (normalizing many Jacobian points, Lagrange
    denominators in Shamir/threshold recombination) all funnel through this
    helper; results are bit-identical to ``pow(v, -1, modulus)`` per value.
    """
    if not values:
        return []
    prefix: List[int] = [1] * len(values)
    acc = 1
    for i, value in enumerate(values):
        if value % modulus == 0:
            raise ZeroDivisionError("batch inverse of zero residue")
        prefix[i] = acc
        acc = (acc * value) % modulus
    inv = pow(acc, -1, modulus)
    out = [0] * len(values)
    for i in range(len(values) - 1, -1, -1):
        out[i] = (prefix[i] * inv) % modulus
        inv = (inv * values[i]) % modulus
    return out


class FieldElement:
    """An element of GF(p).  Supports ``+ - * / **`` against elements and ints."""

    __slots__ = ("value", "field")

    def __init__(self, value: int, field: "PrimeField") -> None:
        self.value = value % field.modulus
        self.field = field

    # -- arithmetic -------------------------------------------------------
    def _coerce(self, other) -> "FieldElement":
        if isinstance(other, FieldElement):
            if other.field is not self.field and other.field.modulus != self.field.modulus:
                raise ValueError("cannot mix elements of different fields")
            return other
        if isinstance(other, int):
            return FieldElement(other, self.field)
        return NotImplemented  # type: ignore[return-value]

    def __add__(self, other) -> "FieldElement":
        other = self._coerce(other)
        return FieldElement(self.value + other.value, self.field)

    __radd__ = __add__

    def __sub__(self, other) -> "FieldElement":
        other = self._coerce(other)
        return FieldElement(self.value - other.value, self.field)

    def __rsub__(self, other) -> "FieldElement":
        other = self._coerce(other)
        return FieldElement(other.value - self.value, self.field)

    def __mul__(self, other) -> "FieldElement":
        other = self._coerce(other)
        return FieldElement(self.value * other.value, self.field)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "FieldElement":
        other = self._coerce(other)
        return self * other.inverse()

    def __rtruediv__(self, other) -> "FieldElement":
        other = self._coerce(other)
        return other * self.inverse()

    def __pow__(self, exponent: int) -> "FieldElement":
        return FieldElement(pow(self.value, exponent, self.field.modulus), self.field)

    def __neg__(self) -> "FieldElement":
        return FieldElement(-self.value, self.field)

    def inverse(self) -> "FieldElement":
        if self.value == 0:
            raise ZeroDivisionError("inverse of zero in GF(p)")
        return FieldElement(pow(self.value, -1, self.field.modulus), self.field)

    # -- comparison / hashing ---------------------------------------------
    def __eq__(self, other) -> bool:
        if isinstance(other, int):
            return self.value == other % self.field.modulus
        if isinstance(other, FieldElement):
            return self.value == other.value and self.field.modulus == other.field.modulus
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.value, self.field.modulus))

    def __repr__(self) -> str:
        return f"FieldElement({self.value} mod {self.field.modulus})"

    # -- serialization ------------------------------------------------------
    def to_bytes(self) -> bytes:
        return self.value.to_bytes(self.field.byte_length, "big")


class PrimeField:
    """GF(p) for a prime modulus p."""

    def __init__(self, modulus: int) -> None:
        if modulus < 2:
            raise ValueError("modulus must be >= 2")
        self.modulus = modulus
        self.byte_length = (modulus.bit_length() + 7) // 8

    def __call__(self, value: int) -> FieldElement:
        return FieldElement(value, self)

    def zero(self) -> FieldElement:
        return FieldElement(0, self)

    def one(self) -> FieldElement:
        return FieldElement(1, self)

    def random(self, rng=None) -> FieldElement:
        """Uniform random element.  ``rng`` may be a ``random.Random`` for
        deterministic tests; defaults to the OS CSPRNG."""
        if rng is None:
            return FieldElement(secrets.randbelow(self.modulus), self)
        return FieldElement(rng.randrange(self.modulus), self)

    def from_bytes(self, data: bytes) -> FieldElement:
        return FieldElement(int.from_bytes(data, "big"), self)

    def __eq__(self, other) -> bool:
        return isinstance(other, PrimeField) and other.modulus == self.modulus

    def __hash__(self) -> int:
        return hash(("PrimeField", self.modulus))

    def __repr__(self) -> str:
        return f"PrimeField(2^{self.modulus.bit_length() - 1}-ish modulus)"

    # -- polynomial helpers (Shamir) ----------------------------------------
    def eval_poly(self, coeffs: Sequence[FieldElement], x: FieldElement) -> FieldElement:
        """Evaluate a polynomial given low-to-high coefficients (Horner)."""
        acc = self.zero()
        for coeff in reversed(coeffs):
            acc = acc * x + coeff
        return acc

    # lint: unmetered[thin wrapper over batch_inverse_mod; same pricing rationale — callers meter the enclosing curve/verify op]
    def batch_inverse(self, elements: Sequence[FieldElement]) -> List[FieldElement]:
        """Invert many field elements with one modular inversion
        (:func:`batch_inverse_mod`); identical results to per-element
        :meth:`FieldElement.inverse`."""
        return [
            FieldElement(v, self)
            for v in batch_inverse_mod([e.value for e in elements], self.modulus)
        ]

    # lint: unmetered[Shamir recombination is field-only work; the paper's cost model meters curve and AE ops, not GF(p) interpolation]
    def lagrange_interpolate_at_zero(
        self, points: Iterable[Tuple[FieldElement, FieldElement]]
    ) -> FieldElement:
        """Interpolate the unique degree-(k-1) polynomial through ``points``
        and evaluate it at x=0.  This is Shamir reconstruction.

        The k per-term denominators are inverted together with ONE modular
        inversion (Montgomery batching) instead of one inversion per share —
        the share-recombination hot path of every recovery."""
        pts: List[Tuple[FieldElement, FieldElement]] = list(points)
        xs = [p[0].value for p in pts]
        if len(set(xs)) != len(xs):
            raise ValueError("duplicate x-coordinates in interpolation")
        modulus = self.modulus
        nums: List[int] = []
        dens: List[int] = []
        for i, (xi, _) in enumerate(pts):
            num, den = 1, 1
            for j, (xj, _) in enumerate(pts):
                if i == j:
                    continue
                num = (num * (-xj.value)) % modulus
                den = (den * (xi.value - xj.value)) % modulus
            nums.append(num)
            dens.append(den)
        den_invs = batch_inverse_mod(dens, modulus)
        total = 0
        for (_, yi), num, den_inv in zip(pts, nums, den_invs):
            total = (total + yi.value * num * den_inv) % modulus
        return FieldElement(total, self)
