"""Prime-field arithmetic.

A small, explicit GF(p) implementation used by Shamir secret sharing and by
the elliptic-curve code.  Field elements are immutable value objects; the
field object owns the modulus and provides Lagrange interpolation (the
reconstruction step of Shamir sharing).
"""

from __future__ import annotations

import secrets
from typing import Iterable, List, Sequence, Tuple


class FieldElement:
    """An element of GF(p).  Supports ``+ - * / **`` against elements and ints."""

    __slots__ = ("value", "field")

    def __init__(self, value: int, field: "PrimeField") -> None:
        self.value = value % field.modulus
        self.field = field

    # -- arithmetic -------------------------------------------------------
    def _coerce(self, other) -> "FieldElement":
        if isinstance(other, FieldElement):
            if other.field is not self.field and other.field.modulus != self.field.modulus:
                raise ValueError("cannot mix elements of different fields")
            return other
        if isinstance(other, int):
            return FieldElement(other, self.field)
        return NotImplemented  # type: ignore[return-value]

    def __add__(self, other) -> "FieldElement":
        other = self._coerce(other)
        return FieldElement(self.value + other.value, self.field)

    __radd__ = __add__

    def __sub__(self, other) -> "FieldElement":
        other = self._coerce(other)
        return FieldElement(self.value - other.value, self.field)

    def __rsub__(self, other) -> "FieldElement":
        other = self._coerce(other)
        return FieldElement(other.value - self.value, self.field)

    def __mul__(self, other) -> "FieldElement":
        other = self._coerce(other)
        return FieldElement(self.value * other.value, self.field)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "FieldElement":
        other = self._coerce(other)
        return self * other.inverse()

    def __rtruediv__(self, other) -> "FieldElement":
        other = self._coerce(other)
        return other * self.inverse()

    def __pow__(self, exponent: int) -> "FieldElement":
        return FieldElement(pow(self.value, exponent, self.field.modulus), self.field)

    def __neg__(self) -> "FieldElement":
        return FieldElement(-self.value, self.field)

    def inverse(self) -> "FieldElement":
        if self.value == 0:
            raise ZeroDivisionError("inverse of zero in GF(p)")
        return FieldElement(pow(self.value, -1, self.field.modulus), self.field)

    # -- comparison / hashing ---------------------------------------------
    def __eq__(self, other) -> bool:
        if isinstance(other, int):
            return self.value == other % self.field.modulus
        if isinstance(other, FieldElement):
            return self.value == other.value and self.field.modulus == other.field.modulus
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.value, self.field.modulus))

    def __repr__(self) -> str:
        return f"FieldElement({self.value} mod {self.field.modulus})"

    # -- serialization ------------------------------------------------------
    def to_bytes(self) -> bytes:
        return self.value.to_bytes(self.field.byte_length, "big")


class PrimeField:
    """GF(p) for a prime modulus p."""

    def __init__(self, modulus: int) -> None:
        if modulus < 2:
            raise ValueError("modulus must be >= 2")
        self.modulus = modulus
        self.byte_length = (modulus.bit_length() + 7) // 8

    def __call__(self, value: int) -> FieldElement:
        return FieldElement(value, self)

    def zero(self) -> FieldElement:
        return FieldElement(0, self)

    def one(self) -> FieldElement:
        return FieldElement(1, self)

    def random(self, rng=None) -> FieldElement:
        """Uniform random element.  ``rng`` may be a ``random.Random`` for
        deterministic tests; defaults to the OS CSPRNG."""
        if rng is None:
            return FieldElement(secrets.randbelow(self.modulus), self)
        return FieldElement(rng.randrange(self.modulus), self)

    def from_bytes(self, data: bytes) -> FieldElement:
        return FieldElement(int.from_bytes(data, "big"), self)

    def __eq__(self, other) -> bool:
        return isinstance(other, PrimeField) and other.modulus == self.modulus

    def __hash__(self) -> int:
        return hash(("PrimeField", self.modulus))

    def __repr__(self) -> str:
        return f"PrimeField(2^{self.modulus.bit_length() - 1}-ish modulus)"

    # -- polynomial helpers (Shamir) ----------------------------------------
    def eval_poly(self, coeffs: Sequence[FieldElement], x: FieldElement) -> FieldElement:
        """Evaluate a polynomial given low-to-high coefficients (Horner)."""
        acc = self.zero()
        for coeff in reversed(coeffs):
            acc = acc * x + coeff
        return acc

    def lagrange_interpolate_at_zero(
        self, points: Iterable[Tuple[FieldElement, FieldElement]]
    ) -> FieldElement:
        """Interpolate the unique degree-(k-1) polynomial through ``points``
        and evaluate it at x=0.  This is Shamir reconstruction."""
        pts: List[Tuple[FieldElement, FieldElement]] = list(points)
        xs = [p[0].value for p in pts]
        if len(set(xs)) != len(xs):
            raise ValueError("duplicate x-coordinates in interpolation")
        total = self.zero()
        for i, (xi, yi) in enumerate(pts):
            num = self.one()
            den = self.one()
            for j, (xj, _) in enumerate(pts):
                if i == j:
                    continue
                num = num * (-xj)
                den = den * (xi - xj)
            total = total + yi * num / den
        return total
