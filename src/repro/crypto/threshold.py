"""Threshold ElGamal decryption — the design the paper rejects (§1).

"One way to achieve SafetyPin's security goal would be to threshold-encrypt
the client's hashed PIN and backup key in such a way that decrypting the
client's backup key would require the participation of 6% of all HSMs in
the system.  Unfortunately, this approach lacks scalability."

We implement that rejected design for real so the ablation benchmarks can
measure, rather than assert, the scalability gap: a t-of-N threshold
ElGamal KEM over P-256 with Shamir-shared secret keys and Lagrange
recombination in the exponent.

Protocol:

- ``keygen``: a dealer shares a master secret ``x`` into t-of-N Shamir
  shares; the public key is ``X = g^x``.  (The paper's variant would use a
  DKG; dealer-based sharing suffices for cost comparison.)
- ``encrypt``: KEM ciphertext ``(g^r, AE(H(X^r), m))``.
- ``partial_decrypt`` (one per participating HSM): ``(g^r)^{x_i}``.
- ``combine``: ``X^r = Π partials^{λ_i}`` by Lagrange coefficients, then AE
  decryption.

Cost profile (the point of the exercise): decryption needs ``t ≈ 0.06·N``
HSMs to each do a point multiplication *per recovery* — so adding HSMs
adds work per recovery instead of capacity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro import metering
from repro.crypto.ec import ECPoint, P256, N as CURVE_ORDER, multi_mult
from repro.crypto.field import PrimeField, batch_inverse_mod
from repro.crypto.gcm import ae_decrypt, ae_encrypt
from repro.crypto.hashing import kdf


@dataclass(frozen=True)
class ThresholdPublicKey:
    threshold: int
    num_parties: int
    point: ECPoint


@dataclass(frozen=True)
class ThresholdKeyShare:
    """Party ``index`` holds polynomial evaluation ``x_i = f(index)``."""

    index: int  # 1-based Shamir x-coordinate
    scalar: int


@dataclass(frozen=True)
class ThresholdCiphertext:
    ephemeral: ECPoint
    body: bytes


def keygen(
    threshold: int, num_parties: int, rng=None
) -> Tuple[ThresholdPublicKey, List[ThresholdKeyShare]]:
    if not (1 <= threshold <= num_parties):
        raise ValueError("need 1 <= t <= N")
    field = PrimeField(CURVE_ORDER)
    coeffs = [field.random(rng) for _ in range(threshold)]
    master = coeffs[0]
    shares = []
    for i in range(1, num_parties + 1):
        shares.append(
            ThresholdKeyShare(index=i, scalar=field.eval_poly(coeffs, field(i)).value)
        )
    public = ThresholdPublicKey(
        threshold=threshold,
        num_parties=num_parties,
        point=P256.generator * master.value,
    )
    return public, shares


def encrypt(public: ThresholdPublicKey, message: bytes, context: bytes = b"") -> ThresholdCiphertext:
    r = P256.random_scalar()
    shared = public.point * r
    key = kdf("threshold-elgamal", shared.to_bytes(), context, length=16)
    return ThresholdCiphertext(
        ephemeral=P256.generator * r,
        body=ae_encrypt(key, message, aad=context),
    )


def partial_decrypt(share: ThresholdKeyShare, ciphertext: ThresholdCiphertext) -> Tuple[int, ECPoint]:
    """One HSM's contribution: ``(i, (g^r)^{x_i})`` — one point mult."""
    metering.count("elgamal_dec")
    return share.index, ciphertext.ephemeral * share.scalar


def combine(
    public: ThresholdPublicKey,
    ciphertext: ThresholdCiphertext,
    partials: Sequence[Tuple[int, ECPoint]],
    context: bytes = b"",
) -> bytes:
    """Lagrange recombination in the exponent, then AE decryption.

    The ``t`` Lagrange denominators are inverted with one batched modular
    inversion, and ``Π partials^{λ_i}`` runs as a single Straus multi-scalar
    multiplication (one shared doubling chain) instead of ``t`` independent
    point multiplications — same group element, ``t`` metered ``ec_mult``
    either way, a fraction of the wall-clock.
    """
    if len({i for i, _ in partials}) < public.threshold:
        raise ValueError(f"need {public.threshold} distinct partial decryptions")
    use = list({i: p for i, p in partials}.items())[: public.threshold]
    indices = [i for i, _ in use]
    # λ_i = Π_{j≠i} j / (j − i) mod curve order
    nums, dens = [], []
    for i in indices:
        num, den = 1, 1
        for j in indices:
            if j == i:
                continue
            num = (num * j) % CURVE_ORDER
            den = (den * (j - i)) % CURVE_ORDER
        nums.append(num)
        dens.append(den)
    den_invs = batch_inverse_mod(dens, CURVE_ORDER)
    shared = multi_mult(
        [
            ((num * den_inv) % CURVE_ORDER, partial)
            for (_, partial), num, den_inv in zip(use, nums, den_invs)
        ]
    )
    key = kdf("threshold-elgamal", shared.to_bytes(), context, length=16)
    return ae_decrypt(key, ciphertext.body, aad=context)
