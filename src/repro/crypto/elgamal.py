"""Hashed ElGamal public-key encryption over P-256 (Appendix A.4).

The scheme: a keypair is ``(x, g^x)``.  To encrypt message ``m`` to public
key ``X``, sample ``r``, output ``(g^r, AEEncrypt(Hash'(X^r || context), m))``.

Two properties matter for SafetyPin:

- **Key privacy** (Bellare et al. 2001): the ciphertext reveals nothing about
  which public key it was encrypted to.  Hashed ElGamal ciphertexts are a
  uniform group element plus an AE ciphertext under an independent-looking
  key, so they are key-private — the heart of location hiding.
- **CCA security**: follows from CDH + the random-oracle KDF + the AE scheme.

The paper prescribes domain separation: the KDF input is prefixed with the
client's username, the recovery salt, and the n cluster public keys
(Appendix A.4, last paragraph).  Callers pass that as ``context``.

Hot-path note: ``g^r`` inside :meth:`HashedElGamal.encrypt` rides the
constant fixed-base comb table in ``repro.crypto.ec``, and ``X^r`` reuses
the window table cached on the (long-lived) recipient key point, so
repeated encryptions to the same HSM key skip the per-call table rebuild.
Decryption's ``(g^r)^x`` sees a fresh ephemeral point each time and
therefore pays one per-call window table — the naive path's cost floor.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass

from repro import metering
from repro.crypto.ec import ECKeyPair, ECPoint, P256
from repro.crypto.gcm import AesGcm, AuthenticationError
from repro.crypto.hashing import kdf


@dataclass(frozen=True)
class ElGamalCiphertext:
    """``(g^r, AE ciphertext)`` with the AE nonce folded into the body."""

    ephemeral: ECPoint
    body: bytes

    def to_bytes(self) -> bytes:
        return self.ephemeral.to_bytes() + self.body

    @staticmethod
    def from_bytes(data: bytes) -> "ElGamalCiphertext":
        if len(data) < 33:
            raise ValueError("ciphertext too short")
        return ElGamalCiphertext(
            ephemeral=ECPoint.from_bytes(data[:33]), body=data[33:]
        )

    def __len__(self) -> int:
        return 33 + len(self.body)


class HashedElGamal:
    """Stateless encrypt/decrypt helpers; keys are ``ECKeyPair`` objects."""

    @staticmethod
    def keygen(rng=None) -> ECKeyPair:
        return P256.keygen(rng)

    @staticmethod
    def encrypt(public: ECPoint, plaintext: bytes, context: bytes = b"") -> ElGamalCiphertext:
        """Encrypt to ``public``; ``context`` provides domain separation."""
        metering.count("elgamal_enc")
        r = P256.random_scalar()
        ephemeral = P256.generator * r
        shared = public * r
        key = kdf("hashed-elgamal", shared.to_bytes(), context, length=16)
        nonce = secrets.token_bytes(AesGcm.NONCE_LEN)
        body = nonce + AesGcm(key).encrypt(nonce, plaintext, aad=context)
        return ElGamalCiphertext(ephemeral=ephemeral, body=body)

    @staticmethod
    def decrypt(secret: int, ciphertext: ElGamalCiphertext, context: bytes = b"") -> bytes:
        """Decrypt; raises ``AuthenticationError`` on tampering or wrong key."""
        metering.count("elgamal_dec")
        shared = ciphertext.ephemeral * secret
        key = kdf("hashed-elgamal", shared.to_bytes(), context, length=16)
        nonce = ciphertext.body[: AesGcm.NONCE_LEN]
        if len(ciphertext.body) < AesGcm.NONCE_LEN + AesGcm.TAG_LEN:
            raise AuthenticationError("ElGamal body too short")
        return AesGcm(key).decrypt(nonce, ciphertext.body[AesGcm.NONCE_LEN :], aad=context)
