"""AES-128 block cipher (FIPS 197), pure Python.

Only the pieces SafetyPin needs: key expansion plus the forward and inverse
ciphers on single 16-byte blocks.  GCM mode (``repro.crypto.gcm``) builds the
authenticated-encryption scheme the paper's construction calls ``AEEncrypt``/
``AEDecrypt`` on top of the forward cipher.

Each block operation reports ``aes_block`` to the ambient meter; the paper's
SoloKey sustains 3,703.7 AES-128 block ops per second (Table 7).
"""

from __future__ import annotations

from typing import List

from repro import metering

# -- S-box generation (computed once at import; avoids a 256-entry literal) --


def _build_sbox() -> tuple:
    # Multiplicative inverses in GF(2^8) via log/antilog tables on generator 3.
    exp = [0] * 512
    log = [0] * 256
    x = 1
    for i in range(255):
        exp[i] = x
        log[x] = i
        # multiply by 3 = x * 2 ^ x
        x ^= (x << 1) ^ (0x11B if x & 0x80 else 0)
        x &= 0xFF
    for i in range(255, 512):
        exp[i] = exp[i - 255]

    def inv(b: int) -> int:
        return 0 if b == 0 else exp[255 - log[b]]

    sbox = [0] * 256
    for i in range(256):
        c = inv(i)
        s = c
        for _ in range(4):
            c = ((c << 1) | (c >> 7)) & 0xFF
            s ^= c
        sbox[i] = s ^ 0x63
    inv_sbox = [0] * 256
    for i, s in enumerate(sbox):
        inv_sbox[s] = i
    return tuple(sbox), tuple(inv_sbox), tuple(exp), tuple(log)


_SBOX, _INV_SBOX, _EXP, _LOG = _build_sbox()


def _gmul(a: int, b: int) -> int:
    """GF(2^8) multiplication via log tables."""
    if a == 0 or b == 0:
        return 0
    return _EXP[_LOG[a] + _LOG[b]]


_RCON = (0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36)


class Aes128:
    """AES with a 128-bit key: 10 rounds over a 4x4 byte state."""

    def __init__(self, key: bytes) -> None:
        if len(key) != 16:
            raise ValueError("AES-128 requires a 16-byte key")
        self._round_keys = self._expand_key(key)

    @staticmethod
    def _expand_key(key: bytes) -> List[List[int]]:
        words = [list(key[i : i + 4]) for i in range(0, 16, 4)]
        for i in range(4, 44):
            temp = list(words[i - 1])
            if i % 4 == 0:
                temp = temp[1:] + temp[:1]
                temp = [_SBOX[b] for b in temp]
                temp[0] ^= _RCON[i // 4 - 1]
            words.append([w ^ t for w, t in zip(words[i - 4], temp)])
        # Group into 11 round keys of 16 bytes (column-major state layout).
        return [sum(words[r * 4 : r * 4 + 4], []) for r in range(11)]

    # -- round operations (state is a flat 16-list, column-major) -----------
    @staticmethod
    def _add_round_key(state: List[int], rk: List[int]) -> None:
        for i in range(16):
            state[i] ^= rk[i]

    @staticmethod
    def _sub_bytes(state: List[int], box) -> None:
        for i in range(16):
            state[i] = box[state[i]]

    @staticmethod
    def _shift_rows(state: List[int]) -> List[int]:
        # state[col*4 + row]; row r rotates left by r.
        s = state
        return [
            s[0], s[5], s[10], s[15],
            s[4], s[9], s[14], s[3],
            s[8], s[13], s[2], s[7],
            s[12], s[1], s[6], s[11],
        ]

    @staticmethod
    def _inv_shift_rows(state: List[int]) -> List[int]:
        s = state
        return [
            s[0], s[13], s[10], s[7],
            s[4], s[1], s[14], s[11],
            s[8], s[5], s[2], s[15],
            s[12], s[9], s[6], s[3],
        ]

    @staticmethod
    def _mix_columns(state: List[int]) -> List[int]:
        out = [0] * 16
        for c in range(4):
            col = state[c * 4 : c * 4 + 4]
            out[c * 4 + 0] = _gmul(col[0], 2) ^ _gmul(col[1], 3) ^ col[2] ^ col[3]
            out[c * 4 + 1] = col[0] ^ _gmul(col[1], 2) ^ _gmul(col[2], 3) ^ col[3]
            out[c * 4 + 2] = col[0] ^ col[1] ^ _gmul(col[2], 2) ^ _gmul(col[3], 3)
            out[c * 4 + 3] = _gmul(col[0], 3) ^ col[1] ^ col[2] ^ _gmul(col[3], 2)
        return out

    @staticmethod
    def _inv_mix_columns(state: List[int]) -> List[int]:
        out = [0] * 16
        for c in range(4):
            col = state[c * 4 : c * 4 + 4]
            out[c * 4 + 0] = _gmul(col[0], 14) ^ _gmul(col[1], 11) ^ _gmul(col[2], 13) ^ _gmul(col[3], 9)
            out[c * 4 + 1] = _gmul(col[0], 9) ^ _gmul(col[1], 14) ^ _gmul(col[2], 11) ^ _gmul(col[3], 13)
            out[c * 4 + 2] = _gmul(col[0], 13) ^ _gmul(col[1], 9) ^ _gmul(col[2], 14) ^ _gmul(col[3], 11)
            out[c * 4 + 3] = _gmul(col[0], 11) ^ _gmul(col[1], 13) ^ _gmul(col[2], 9) ^ _gmul(col[3], 14)
        return out

    # -- block API -----------------------------------------------------------
    def encrypt_block(self, block: bytes) -> bytes:
        if len(block) != 16:
            raise ValueError("AES block must be 16 bytes")
        metering.count("aes_block")
        state = list(block)
        self._add_round_key(state, self._round_keys[0])
        for rnd in range(1, 10):
            self._sub_bytes(state, _SBOX)
            state = self._shift_rows(state)
            state = self._mix_columns(state)
            self._add_round_key(state, self._round_keys[rnd])
        self._sub_bytes(state, _SBOX)
        state = self._shift_rows(state)
        self._add_round_key(state, self._round_keys[10])
        return bytes(state)

    def decrypt_block(self, block: bytes) -> bytes:
        if len(block) != 16:
            raise ValueError("AES block must be 16 bytes")
        metering.count("aes_block")
        state = list(block)
        self._add_round_key(state, self._round_keys[10])
        for rnd in range(9, 0, -1):
            state = self._inv_shift_rows(state)
            self._sub_bytes(state, _INV_SBOX)
            self._add_round_key(state, self._round_keys[rnd])
            state = self._inv_mix_columns(state)
        state = self._inv_shift_rows(state)
        self._sub_bytes(state, _INV_SBOX)
        self._add_round_key(state, self._round_keys[0])
        return bytes(state)
