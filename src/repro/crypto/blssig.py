"""BLS multisignatures with public-key aggregation (Boneh–Drijvers–Neven).

The distributed log's update protocol (Figure 5) has every online HSM sign
the digest transition ``(d, d', R)``; the service provider aggregates the
signatures into a single 48-byte-equivalent value, and each HSM verifies one
aggregate signature — constant work independent of the fleet size.

Scheme (same-message multisignature):

- secret key ``x``; public key ``X = g2^x``; signature ``σ = H(m)^x ∈ G1``.
- aggregate signature ``σ* = Π σ_i``; aggregate key ``X* = Π X_i``.
- verification: ``e(σ*, g2) == e(H(m), X*)``.

Rogue-key attacks are prevented with proofs of possession: each HSM publishes
``pop = H(pk)^x`` at registration, verified once by everyone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro import metering
from repro.crypto import bls12381 as bls


@dataclass(frozen=True)
class BlsPublicKey:
    point: object  # G2 point

    def to_bytes(self) -> bytes:
        return bls.g2_to_bytes(self.point)

    @staticmethod
    def from_bytes(data: bytes) -> "BlsPublicKey":
        return BlsPublicKey(bls.g2_from_bytes(data))


@dataclass(frozen=True)
class BlsSignature:
    point: object  # G1 point

    def to_bytes(self) -> bytes:
        return bls.g1_to_bytes(self.point)

    @staticmethod
    def from_bytes(data: bytes) -> "BlsSignature":
        return BlsSignature(bls.g1_from_bytes(data))


@dataclass(frozen=True)
class BlsKeyPair:
    secret: int
    public: BlsPublicKey


def keygen(rng=None) -> BlsKeyPair:
    if rng is None:
        import secrets as _s

        sk = 1 + _s.randbelow(bls.R - 1)
    else:
        sk = rng.randrange(1, bls.R)
    return BlsKeyPair(secret=sk, public=BlsPublicKey(bls.multiply(bls.G2_GEN, sk)))


def sign(secret: int, message: bytes) -> BlsSignature:
    metering.count("bls_sign")
    h = bls.hash_to_g1(message)
    return BlsSignature(bls.multiply(h, secret))


def verify(public: BlsPublicKey, message: bytes, signature: BlsSignature) -> bool:
    """Single-signer verification: e(σ, g2) == e(H(m), X)."""
    if signature.point is None:
        return False
    left = bls.pairing(signature.point, bls.G2_GEN)
    right = bls.pairing(bls.hash_to_g1(message), public.point)
    return left == right


def aggregate_signatures(signatures: Iterable[BlsSignature]) -> BlsSignature:
    acc = None
    for sig in signatures:
        acc = bls.add(acc, sig.point)
    return BlsSignature(acc)


def aggregate_public_keys(publics: Iterable[BlsPublicKey]) -> BlsPublicKey:
    acc = None
    for pk in publics:
        acc = bls.add(acc, pk.point)
    return BlsPublicKey(acc)


def verify_aggregate(
    publics: Sequence[BlsPublicKey], message: bytes, signature: BlsSignature
) -> bool:
    """Verify a same-message multisignature against the signer set.

    Cost: two pairings regardless of ``len(publics)`` — the property the log
    protocol relies on for scalability.
    """
    if not publics or signature.point is None:
        return False
    agg_pk = aggregate_public_keys(publics)
    left = bls.pairing(signature.point, bls.G2_GEN)
    right = bls.pairing(bls.hash_to_g1(message), agg_pk.point)
    return left == right


# -- proofs of possession ------------------------------------------------------
def prove_possession(keypair: BlsKeyPair) -> BlsSignature:
    """``pop = H(pk)^sk`` — publishing this prevents rogue-key attacks."""
    return sign(keypair.secret, b"bls-pop" + keypair.public.to_bytes())


def verify_possession(public: BlsPublicKey, pop: BlsSignature) -> bool:
    return verify(public, b"bls-pop" + public.to_bytes(), pop)
