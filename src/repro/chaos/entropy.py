"""Seeded entropy hijack: every randomness source becomes a DRBG stream.

The protocol stack draws randomness from ``secrets`` (token bytes, salts,
ElGamal nonces, EC keygen) and from ``random.SystemRandom`` (robust-Shamir
subset sampling), both of which bottom out in OS entropy.  A chaos run
must be a pure function of its seed, so for the duration of a run this
module reroutes those sources through one deterministic byte stream:

- ``os.urandom`` and ``random._urandom`` (the import ``random.SystemRandom``
  actually calls) are replaced by a seeded PRNG's ``randbytes``, which
  makes every ``secrets`` helper and every ``SystemRandom`` method
  deterministic at once;
- ``secrets.token_bytes`` / ``secrets.token_hex`` are patched explicitly
  as well (belt and braces — they are the call sites the codebase uses);
- the global ``random`` module state is snapshotted and reseeded, so an
  accidental global-``random`` call inside the stack cannot leak host
  nondeterminism into a run (the determinism test would catch the leak).

Everything is restored on exit, including the global ``random`` state.

Thread safety: none — the hijack patches process-global modules and must
wrap exactly one single-threaded chaos run at a time (nesting raises).
"""

from __future__ import annotations

import hashlib
import os
import random as random_module
import secrets as secrets_module
from typing import Optional


def derive_seed(seed: int, label: str) -> int:
    """A 64-bit child seed bound to ``(seed, label)`` (domain-separated, so
    adding a stream never perturbs sibling streams)."""
    digest = hashlib.sha256(f"repro.chaos|{seed}|{label}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class DeterministicEntropy:
    """Context manager that pins all ambient entropy to a seed.

    Usage::

        with DeterministicEntropy(seed):
            ...   # every secrets/os.urandom/SystemRandom draw is seeded

    The underlying stream is a ``random.Random`` seeded from
    ``derive_seed(seed, "entropy")``; distinct seeds give independent
    streams, identical seeds give byte-identical ones.
    """

    _active: Optional["DeterministicEntropy"] = None

    def __init__(self, seed: int) -> None:
        """Prepare a hijack for ``seed`` (nothing is patched until entry)."""
        self.seed = seed
        self._drbg = random_module.Random(derive_seed(seed, "entropy"))
        self._saved: dict = {}

    def _randbytes(self, n: int) -> bytes:
        return self._drbg.randbytes(n)

    def __enter__(self) -> "DeterministicEntropy":
        """Patch the entropy sources; raises if a hijack is already live."""
        if DeterministicEntropy._active is not None:
            raise RuntimeError("DeterministicEntropy does not nest")
        DeterministicEntropy._active = self
        self._saved = {
            "os.urandom": os.urandom,
            "random._urandom": getattr(random_module, "_urandom", None),
            "secrets.token_bytes": secrets_module.token_bytes,
            "secrets.token_hex": secrets_module.token_hex,
            "random.state": random_module.getstate(),
        }
        hijack = self._randbytes
        os.urandom = hijack
        if self._saved["random._urandom"] is not None:
            # SystemRandom.random/getrandbits/randbytes all read this module
            # global, so one patch covers secrets.randbelow/randbits and the
            # robust-Shamir SystemRandom sampling in one go.
            random_module._urandom = hijack

        def token_bytes(nbytes: Optional[int] = None) -> bytes:
            return hijack(32 if nbytes is None else nbytes)

        def token_hex(nbytes: Optional[int] = None) -> str:
            return token_bytes(nbytes).hex()

        secrets_module.token_bytes = token_bytes
        secrets_module.token_hex = token_hex
        random_module.seed(derive_seed(self.seed, "global-random"))
        return self

    def __exit__(self, *exc_info) -> None:
        """Restore every patched source and the global ``random`` state."""
        os.urandom = self._saved["os.urandom"]
        if self._saved["random._urandom"] is not None:
            random_module._urandom = self._saved["random._urandom"]
        secrets_module.token_bytes = self._saved["secrets.token_bytes"]
        secrets_module.token_hex = self._saved["secrets.token_hex"]
        random_module.setstate(self._saved["random.state"])
        DeterministicEntropy._active = None
