"""Continuously-evaluated safety invariants for chaos campaigns.

Liveness may legitimately suffer under chaos (a partitioned cluster can
refuse a recovery; that is an *expected failure*).  Safety may not.  The
checkers here encode the safety floor, evaluated between scheduler events
so any breakage is pinned to an exact step index:

- **log-digest-chain** — replaying each (shard) log's committed entries
  through a fresh authenticated dictionary reproduces its live digest;
  nothing is left pending between epochs; and for sharded logs the
  incrementally-maintained cross-shard root matches a from-scratch
  Merkle recompute over the replayed shard digests.
- **attempt-counters** — the O(1) per-user attempt counters are never
  *behind* the reference full-log scan (behind would re-issue a logged
  attempt number: corruption; ahead only under-serves, by design).
- **no-rolled-back-session** — every recovery served since the last
  garbage collection still has its attempt identifier in the committed
  log: no session was ever served from an epoch that later vanished.
- **journal-consistency** — for durable deployments: an independent
  replay of the journal store yields no open intents, the same per-shard
  digests as the live log, and the same escrow counts (run after every
  crash/restore and at campaign end; it re-reads the whole WAL).

Each failure becomes a :class:`Violation`; the engine stamps the step
index and dumps a replay file.

Thread safety: checkers only read provider state and must run between
scheduler events (the chaos run is single-threaded, so they do).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List

from repro.log.authdict import AuthenticatedDictionary
from repro.log.sharded import cross_shard_root
from repro.storage.journal import ProviderJournal


@dataclass
class Violation:
    """One invariant breach, pinned to the scheduler step that exposed it."""

    invariant: str
    message: str
    step: int = -1  # stamped by the engine when it records the violation

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready form for reports and replay files."""
        return {"invariant": self.invariant, "message": self.message, "step": self.step}


def _component_logs(log) -> List:
    """The per-shard ``DistributedLog`` components (one-element for the
    unsharded log) — each carries its own digest chain to verify."""
    return list(log.shards) if hasattr(log, "shards") else [log]


def check_digest_chain(provider) -> List[Violation]:
    """Replay committed entries per shard; digests must match exactly.

    For sharded logs this also recomputes the cross-shard root *from
    scratch* over the replayed shard digests and compares it to the live
    ``log.digest`` — the live value is maintained incrementally (O(log S)
    path updates per dirty shard), and this is the reference it must stay
    byte-identical to.
    """
    out: List[Violation] = []
    components = _component_logs(provider.log)
    replayed_digests: List[bytes] = []
    for shard, log in enumerate(components):
        replayed = AuthenticatedDictionary.from_entries(log.ordered_entries)
        replayed_digests.append(replayed.digest)
        if replayed.digest != log.digest:
            out.append(Violation(
                "log-digest-chain",
                f"shard {shard}: replaying {len(log.ordered_entries)} committed"
                " entries does not reproduce the live digest",
            ))
        if log.pending:
            out.append(Violation(
                "log-digest-chain",
                f"shard {shard}: {len(log.pending)} entries left pending between"
                " epochs",
            ))
    if hasattr(provider.log, "shards"):
        if cross_shard_root(replayed_digests) != provider.log.digest:
            out.append(Violation(
                "log-digest-chain",
                "incrementally-maintained cross-shard root disagrees with the"
                f" from-scratch Merkle root over all {len(components)} replayed"
                " shard digests",
            ))
    return out


def check_attempt_counters(provider, usernames: Iterable[str]) -> List[Violation]:
    """The incremental counter must never fall behind the full-log scan."""
    out: List[Violation] = []
    for username in usernames:
        counter = provider.next_attempt_number(username)
        scan = provider.scan_attempt_number(username)
        if counter < scan:
            out.append(Violation(
                "attempt-counters",
                f"counter for {username!r} is {counter}, behind the log scan"
                f" ({scan}): a logged attempt number would be re-issued",
            ))
    return out


def check_no_rolled_back_session(
    provider, served: Dict[bytes, str]
) -> List[Violation]:
    """Every session served since the last GC is still in the committed log."""
    committed = {identifier for identifier, _ in provider.log.ordered_entries}
    out: List[Violation] = []
    for identifier, username in served.items():
        if identifier not in committed:
            out.append(Violation(
                "no-rolled-back-session",
                f"session {identifier!r} (user {username!r}) was served but its"
                " attempt is no longer in the committed log (rolled-back epoch)",
            ))
    return out


def check_journal_consistency(provider, usernames: Iterable[str]) -> List[Violation]:
    """An independent journal replay must agree with the live provider."""
    if provider.journal is None:
        return []
    out: List[Violation] = []
    state = ProviderJournal(provider.journal.store).replay_state()
    if state.open_intents:
        out.append(Violation(
            "journal-consistency",
            f"journal replay left open epoch intents on shards"
            f" {sorted(state.open_intents)} outside any crash window",
        ))
    for shard, log in enumerate(_component_logs(provider.log)):
        replayed = AuthenticatedDictionary.from_entries(
            state.shard_entries.get(shard, [])
        )
        if replayed.digest != log.digest:
            out.append(Violation(
                "journal-consistency",
                f"shard {shard}: journal-replayed digest disagrees with the"
                " live log digest",
            ))
    for username in usernames:
        live = provider.backup_count(username)
        durable = len(state.backups.get(username, []))
        if durable != live:
            out.append(Violation(
                "journal-consistency",
                f"escrow divergence for {username!r}: journal holds {durable}"
                f" backups, provider holds {live}",
            ))
    return out


def run_invariant_checks(
    provider,
    usernames: Iterable[str],
    served: Dict[bytes, str],
    include_journal: bool = False,
) -> List[Violation]:
    """Run the cheap checkers (plus the journal replay when asked)."""
    usernames = list(usernames)
    out = check_digest_chain(provider)
    out += check_attempt_counters(provider, usernames)
    out += check_no_rolled_back_session(provider, served)
    if include_journal:
        out += check_journal_consistency(provider, usernames)
    return out
