"""Replay files: a violation is a reproducible artifact, not a flake.

Because a chaos run is a pure function of ``(scenario, seed)``, pinning a
violation takes three numbers: scenario name, seed, and the step index at
which the violation was recorded.  :func:`write_replay` dumps exactly that
(schema-versioned JSON, plus the invariant name / message and the trace
digest for cross-checking); :func:`replay_file` re-executes the run and
verifies the same invariant fires at the same step — CI does this round
trip on the deliberately-violating demo scenario every push.

A replay file deliberately stores no state snapshot: re-executing from
the seed *is* the reproduction, which also re-validates that the engine
stayed deterministic since the violation was captured (a digest mismatch
on replay means nondeterminism crept in — itself a bug to chase).

Thread safety: plain functions over JSON files; no shared state.
"""

from __future__ import annotations

import json
from typing import Dict, Optional

from repro.chaos.engine import ChaosReport, run_scenario
from repro.chaos.scenarios import DEMO_SCENARIO, SCENARIOS, Scenario

#: Replay files carry a schema version so future fields stay additive.
REPLAY_SCHEMA = 1


def write_replay(report: ChaosReport, path: str, quick: bool = False) -> Dict:
    """Dump ``report``'s first violation as a replay file at ``path``.

    Returns the written record.  Raises ``ValueError`` if the report has no
    violations (there is nothing to replay).
    """
    if not report.violations:
        raise ValueError("report has no violations; nothing to replay")
    first = report.violations[0]
    record = {
        "schema": REPLAY_SCHEMA,
        "scenario": report.scenario,
        "seed": report.seed,
        "quick": quick,
        "violation_step": first.step,
        "invariant": first.invariant,
        "message": first.message,
        "trace_digest": report.trace_digest,
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(record, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return record


def load_replay(path: str) -> Dict:
    """Load and schema-check a replay file."""
    with open(path, "r", encoding="utf-8") as fh:
        record = json.load(fh)
    if record.get("schema") != REPLAY_SCHEMA:
        raise ValueError(
            f"unsupported replay schema {record.get('schema')!r} in {path}"
        )
    for key in ("scenario", "seed", "violation_step", "invariant"):
        if key not in record:
            raise ValueError(f"replay file {path} is missing {key!r}")
    return record


def _resolve_scenario(name: str) -> Scenario:
    """Look up a scenario by name (catalog plus the demo scenario)."""
    if name == DEMO_SCENARIO.name:
        return DEMO_SCENARIO
    if name not in SCENARIOS:
        raise ValueError(f"unknown scenario {name!r} in replay file")
    return SCENARIOS[name]


def replay_file(path: str) -> ChaosReport:
    """Re-execute the run a replay file pins and verify the reproduction.

    The run is re-executed with the recorded ``(scenario, seed)`` and
    stopped at the first violation; the reproduction must then match the
    record — same step index, same invariant — or a ``ReplayMismatch`` is
    raised (which would mean the engine lost determinism).
    """
    record = load_replay(path)
    report = run_scenario(
        _resolve_scenario(record["scenario"]),
        int(record["seed"]),
        quick=bool(record.get("quick", False)),
        stop_on_violation=True,
    )
    if not report.violations:
        raise ReplayMismatch(
            f"replay of {record['scenario']}@{record['seed']} produced no"
            f" violation (expected {record['invariant']!r} at step"
            f" {record['violation_step']})"
        )
    first = report.violations[0]
    if (first.step, first.invariant) != (
        record["violation_step"], record["invariant"]
    ):
        raise ReplayMismatch(
            f"replay diverged: expected {record['invariant']!r} at step"
            f" {record['violation_step']}, got {first.invariant!r} at step"
            f" {first.step}"
        )
    expected_digest: Optional[str] = record.get("trace_digest")
    if expected_digest is not None and report.trace_digest != expected_digest:
        raise ReplayMismatch(
            "replay reached the recorded violation but the event trace"
            " digest differs — nondeterminism upstream of the violation"
        )
    return report


class ReplayMismatch(AssertionError):
    """The re-execution did not reproduce the recorded violation exactly."""
