"""The chaos scenario catalog: declarative specs the engine interprets.

A :class:`Scenario` is a frozen value object — deployment shape, modeled
population and diurnal traffic curve, and fault schedule — so a campaign
run is fully identified by ``(scenario name, seed)`` and a replay file
needs to store nothing else.  All schedule times are expressed as
*fractions of the horizon* so :meth:`Scenario.quick` can shrink a
scenario for the CI fast lane without moving any fault relative to the
traffic around it.

The catalog (``SCENARIOS``) covers the axes the paper's evaluation
claims span: diurnal load at a 10⁶-user modeled population, device-loss/
replacement waves (Figure 11's cluster-size failure tolerance), geo
partitions and flaky provider RPC, crash/restore of the durable provider
(clean and mid-epoch), and adversarial clients mixed into honest
traffic.  ``demo_log_tamper`` deliberately corrupts the log so the
violation → replay-file → exact-replay pipeline can be demonstrated and
CI-tested; it is excluded from the default campaign.

Thread safety: scenarios are immutable data; share freely.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, Optional, Tuple


@dataclass(frozen=True)
class Scenario:
    """Everything that defines one chaos campaign scenario.

    Fault-schedule entries use horizon fractions in ``[0, 1)``:

    - ``device_loss``: ``(when, count, restore_after)`` — fail ``count``
      random live HSMs at ``when``; restart exactly that batch
      ``restore_after`` later (``restore_after <= 0`` = never replaced);
    - ``partitions``: ``(start, duration, fraction)`` — that fraction of
      the fleet becomes unreachable at the channel level (devices stay
      healthy: a *network* partition, not a device loss);
    - ``flaky``: ``(start, duration, ok_weight)`` — clients created in
      the window speak provider RPC through a seeded
      :class:`~repro.sim.faults.FlakyProviderChannel`;
    - ``crash_at``: clean provider crash-restore points (journal replay +
      reconcile; requires ``durable``);
    - ``mid_epoch_crash_at``: arms the :class:`CrashingBlockStore` so the
      next epoch's journal write kills the process mid-transaction
      (requires ``durable`` and ``crashing_store``);
    - ``adversary_at``: a brute-force PIN attacker runs against a fresh
      victim account (must be refused past the attempt budget);
    - ``tamper_at``: deliberately corrupt a committed log entry (demo
      scenarios only — this *must* trip the digest-chain invariant).
    """

    name: str
    description: str
    horizon: float = 86_400.0  # one modeled day of virtual time
    # -- deployment shape ------------------------------------------------------
    num_hsms: int = 8
    cluster_size: int = 4
    shards: int = 1
    max_punctures: int = 96
    durable: bool = False
    crashing_store: bool = False
    # -- modeled population / traffic -----------------------------------------
    modeled_users: int = 1_000_000
    base_rate: float = 0.12  # ≈10⁴ recoveries/day across the modeled million
    diurnal_amplitude: float = 0.6
    waves: int = 12  # traffic is drawn in horizon/waves windows
    live_every: int = 400  # every Nth modeled arrival becomes a live session
    max_live_sessions: int = 30
    wrong_pin_fraction: float = 0.1
    model_service_seconds: float = 0.35  # per decrypt-puncture, SoloKey-ish
    session_spread_seconds: float = 45.0  # virtual begin->shares/finish gap
    # -- maintenance & invariant sweeps ---------------------------------------
    check_points: int = 8
    rotation_points: int = 4
    gc_at: Tuple[float, ...] = ()
    # -- fault schedule (horizon fractions) -----------------------------------
    device_loss: Tuple[Tuple[float, int, float], ...] = ()
    partitions: Tuple[Tuple[float, float, float], ...] = ()
    flaky: Tuple[Tuple[float, float, int], ...] = ()
    crash_at: Tuple[float, ...] = ()
    mid_epoch_crash_at: Optional[float] = None
    adversary_at: Tuple[float, ...] = ()
    tamper_at: Optional[float] = None

    def __post_init__(self) -> None:
        """Reject configurations the engine cannot execute."""
        if (self.crash_at or self.mid_epoch_crash_at is not None) and not self.durable:
            raise ValueError(f"{self.name}: crash points require durable=True")
        if self.mid_epoch_crash_at is not None and not self.crashing_store:
            raise ValueError(f"{self.name}: mid-epoch crash requires crashing_store")
        if self.shards > 1 and not 1 <= self.shards <= self.num_hsms:
            raise ValueError(f"{self.name}: bad shard count")

    def quick(self) -> "Scenario":
        """A CI-fast-lane variant: same shape and fault fractions, ~1/5 of
        the virtual day and a tight live-session cap."""
        return dataclasses.replace(
            self,
            horizon=self.horizon / 5.0,
            waves=max(4, self.waves // 3),
            max_live_sessions=min(self.max_live_sessions, 8),
            live_every=max(60, self.live_every // 4),
            check_points=max(4, self.check_points // 2),
            # Preserve a deliberate zero (e.g. kill_mid_epoch keeps the armed
            # crash inside an epoch by scheduling no rotations at all).
            rotation_points=(
                0 if self.rotation_points == 0 else max(2, self.rotation_points // 2)
            ),
        )


def _catalog(*scenarios: Scenario) -> Dict[str, Scenario]:
    """Index scenarios by name, refusing duplicates."""
    out: Dict[str, Scenario] = {}
    for scenario in scenarios:
        if scenario.name in out:
            raise ValueError(f"duplicate scenario {scenario.name!r}")
        out[scenario.name] = scenario
    return out


#: The default campaign catalog, in the order the campaign runs them.
SCENARIOS: Dict[str, Scenario] = _catalog(
    Scenario(
        name="baseline_diurnal",
        description=(
            "Honest diurnal traffic over a 10^6-user modeled population;"
            " rotation + GC maintenance, no faults.  The determinism and"
            " zero-violation floor."
        ),
        gc_at=(0.55,),
    ),
    Scenario(
        name="device_loss_wave",
        description=(
            "Two device-loss waves (Figure 11 scale, relative to the fleet):"
            " the first batch is replaced after a quarter-day, the second is"
            " never replaced — recoveries must keep meeting the threshold or"
            " fail with typed errors only."
        ),
        device_loss=((0.30, 2, 0.25), (0.70, 2, 0.0)),
    ),
    Scenario(
        name="geo_partition",
        description=(
            "Half the fleet becomes unreachable at the channel level for a"
            " fifth of the day (devices stay healthy), then a flaky-provider"
            " window injects frame drops/corruption into the RPC leg."
        ),
        partitions=((0.35, 0.20, 0.5),),
        flaky=((0.65, 0.15, 5),),
    ),
    Scenario(
        name="crash_restart",
        description=(
            "A durable two-lane deployment is crash-restored twice between"
            " epochs (journal replay + reconcile); sessions in flight across"
            " a crash abort and later traffic re-proves liveness."
        ),
        durable=True,
        shards=2,
        crash_at=(0.40, 0.75),
    ),
    Scenario(
        name="kill_mid_epoch",
        description=(
            "The block store is armed so the provider process dies inside an"
            " epoch's journal transaction; restore must reconcile the open"
            " intent atomically (complete or vanish, never half)."
        ),
        durable=True,
        crashing_store=True,
        shards=2,
        rotation_points=0,  # keep the armed crash inside an epoch, not a rotation
        mid_epoch_crash_at=0.5,
    ),
    Scenario(
        name="adversarial_mix",
        description=(
            "Brute-force PIN attackers interleave with honest diurnal traffic"
            " (plus a small un-replaced device loss); every attacker must be"
            " refused past the attempt budget while honest sessions keep"
            " recovering."
        ),
        adversary_at=(0.30, 0.60),
        device_loss=((0.45, 1, 0.0),),
    ),
)

#: The CI fast lane runs these two (in .quick() form).
QUICK_SCENARIOS: Tuple[str, ...] = ("baseline_diurnal", "device_loss_wave")

#: The deliberately-violating demo scenario (excluded from SCENARIOS).
DEMO_SCENARIO = Scenario(
    name="demo_log_tamper",
    description=(
        "A deliberately-seeded fault: a committed log entry is rewritten"
        " behind the fleet's back mid-run.  The digest-chain invariant MUST"
        " fire at the next sweep; the run dumps a replay file that"
        " scripts/chaos_replay.py re-executes to the identical step."
    ),
    horizon=7_200.0,
    waves=4,
    live_every=120,
    max_live_sessions=4,
    check_points=12,
    rotation_points=0,
    tamper_at=0.5,
)
