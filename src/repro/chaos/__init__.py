"""Deterministic chaos campaigns: seeded scheduler, scenarios, exact replay.

The chaos layer turns "flaky under concurrency" into "reproducible
counterexample".  A run is a pure function of ``(scenario, seed)``:

- :mod:`repro.chaos.entropy` routes every entropy source the protocol
  stack touches (``secrets``, ``os.urandom``, the global ``random``
  module) through one seeded DRBG for the duration of a run;
- :mod:`repro.chaos.scheduler` owns a virtual clock and a deterministic
  event queue — all workload, fault, and maintenance activity steps
  cooperatively through it, and every step appends one line to a trace
  whose digest is byte-identical across same-seed runs;
- :mod:`repro.chaos.engine` executes scenarios against a real
  :class:`~repro.core.protocol.Deployment` (live protocol sessions,
  device-loss waves, geo-partitions, flaky provider RPC, crash/restore,
  adversaries) while continuously evaluating the invariants in
  :mod:`repro.chaos.invariants`;
- :mod:`repro.chaos.scenarios` is the catalog; :mod:`repro.chaos.replay`
  writes and re-executes replay files so any violation reproduces at the
  identical step.

Thread safety: chaos runs are strictly single-threaded by design — the
scheduler *is* the concurrency model (interleavings come from event
order, not threads), which is what makes exact replay possible.
"""

from repro.chaos.engine import ChaosEngine, ChaosReport, run_scenario
from repro.chaos.entropy import DeterministicEntropy
from repro.chaos.invariants import Violation, run_invariant_checks
from repro.chaos.replay import load_replay, replay_file, write_replay
from repro.chaos.scenarios import (
    DEMO_SCENARIO,
    QUICK_SCENARIOS,
    SCENARIOS,
    Scenario,
)
from repro.chaos.scheduler import DeterministicScheduler

__all__ = [
    "ChaosEngine",
    "ChaosReport",
    "run_scenario",
    "DeterministicEntropy",
    "Violation",
    "run_invariant_checks",
    "load_replay",
    "replay_file",
    "write_replay",
    "DEMO_SCENARIO",
    "QUICK_SCENARIOS",
    "SCENARIOS",
    "Scenario",
    "DeterministicScheduler",
]
