"""The chaos engine: executes a scenario against a real deployment.

``ChaosEngine`` interprets a :class:`~repro.chaos.scenarios.Scenario`
under a :class:`~repro.chaos.scheduler.DeterministicScheduler` and a
:class:`~repro.chaos.entropy.DeterministicEntropy` hijack, so an entire
campaign run — modeled diurnal arrivals for the million-user population,
live protocol sessions sampled out of them, device-loss waves, channel
partitions, flaky provider RPC, crash/restore, adversaries, maintenance
epochs, invariant sweeps — is a pure function of ``(scenario, seed)``.

Concurrency is cooperative, not threaded: a live recovery session is two
scheduler events (``session-begin`` runs the backup, attempt logging and
proof fetch; ``session-run`` requests shares and finishes), so sessions
genuinely interleave — an epoch committed between a session's phases
exercises the stale-proof refresh path — while the interleaving itself
stays replayable.  Crashes, key rotations and log GC bump a generation
counter that aborts sessions in flight across them (the real-world
analogue: the client retries after a maintenance window).

Failure taxonomy: *expected* failures (typed protocol errors under
injected faults) are counted; anything else — an untyped exception, a
recovery served with a wrong PIN, an invariant breach — becomes a
:class:`~repro.chaos.invariants.Violation` pinned to its step index.

Thread safety: none; one engine drives one single-threaded run.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.adversary.attacks import BruteForcePinAttacker
from repro.chaos.entropy import DeterministicEntropy
from repro.chaos.invariants import Violation, run_invariant_checks
from repro.chaos.scenarios import Scenario
from repro.chaos.scheduler import DeterministicScheduler
from repro.core.client import Client, RecoveryError
from repro.core.params import SystemParams
from repro.core.protocol import Deployment
from repro.core.provider import ProviderError
from repro.core.wire import WireFormatError
from repro.crypto.gcm import AuthenticationError
from repro.service.channel import (
    Channel,
    DirectProviderChannel,
    ProviderWireEndpoint,
    direct_channels,
)
from repro.sim.faults import FlakyProviderChannel, FrameDropped
from repro.sim.workload import DiurnalWorkload, percentile
from repro.storage.blockstore import (
    CrashError,
    CrashingBlockStore,
    InMemoryBlockStore,
)

#: Exception types that count as *expected* (liveness) failures under
#: chaos: typed protocol/transport refusals.  Anything outside this set
#: escaping a session is an "unclean-error" violation — and ``KeyError``
#: (the log refusing a duplicate attempt identifier) is deliberately NOT
#: here, because a duplicate identifier means the attempt counters
#: regressed, which is a safety bug.
CLEAN_ERRORS: Tuple[type, ...] = (
    RecoveryError,
    ProviderError,
    WireFormatError,
    FrameDropped,
    AuthenticationError,
)


class _PartitionGate(Channel):
    """A client→HSM channel that simulates a network partition: while the
    device's index is in the engine's partitioned set, calls fail with the
    same typed unavailability the device's own fail-stop produces (the
    client treats either as a ⊥ share)."""

    def __init__(self, inner: Channel, index: int, engine: "ChaosEngine") -> None:
        """Wrap ``inner`` for device ``index``, consulting ``engine`` state."""
        self._inner = inner
        self._index = index
        self._engine = engine

    def decrypt_share(self, request):
        """Raise ``HsmUnavailableError`` while partitioned, else pass through."""
        if self._index in self._engine.partitioned:
            from repro.hsm.device import HsmUnavailableError

            raise HsmUnavailableError(
                f"hsm {self._index} unreachable (network partition)"
            )
        return self._inner.decrypt_share(request)


@dataclass
class _LiveSession:
    """Book-keeping for one sampled live protocol session."""

    sid: int
    username: str
    true_pin: str
    pin_used: str
    wrong_pin: bool
    generation: int
    modeled_latency: Optional[float]
    secret: bytes = b""
    client: Optional[Client] = None
    session: object = None


@dataclass
class ChaosReport:
    """Everything one chaos run produced, JSON-ready via :meth:`as_dict`."""

    scenario: str
    seed: int
    steps: int
    trace_digest: str
    final_log_digest: str
    counters: Dict[str, int]
    violations: List[Violation]
    modeled_arrivals: int
    live_sessions: int
    modeled_p50: float
    modeled_p99: float
    live_p50: Optional[float]
    live_p99: Optional[float]
    op_counts: Dict[str, float]
    wall_seconds: float
    trace: List[str] = field(default_factory=list, repr=False)

    @property
    def ok(self) -> bool:
        """True iff the run finished with zero invariant violations."""
        return not self.violations

    def as_dict(self, include_trace: bool = False) -> Dict[str, object]:
        """JSON-ready summary (the trace is large; opt in explicitly)."""
        out: Dict[str, object] = {
            "scenario": self.scenario,
            "seed": self.seed,
            "steps": self.steps,
            "trace_digest": self.trace_digest,
            "final_log_digest": self.final_log_digest,
            "counters": dict(sorted(self.counters.items())),
            "violations": [v.as_dict() for v in self.violations],
            "modeled_arrivals": self.modeled_arrivals,
            "live_sessions": self.live_sessions,
            "modeled_p50_s": self.modeled_p50,
            "modeled_p99_s": self.modeled_p99,
            "live_p50_s": self.live_p50,
            "live_p99_s": self.live_p99,
            "op_counts": {k: self.op_counts[k] for k in sorted(self.op_counts)},
            "wall_seconds": self.wall_seconds,
        }
        if include_trace:
            out["trace"] = list(self.trace)
        return out


class ChaosEngine:
    """Executes one scenario at one seed; see the module docstring."""

    def __init__(self, scenario: Scenario, seed: int) -> None:
        """Bind the engine to ``(scenario, seed)``; nothing runs yet."""
        self.scenario = scenario
        self.seed = seed
        self.sched = DeterministicScheduler(seed)
        # Domain-separated randomness: one substream per concern, so adding
        # draws to one never perturbs another.
        self._sessions_rng = self.sched.substream("sessions")
        self._faults_rng = self.sched.substream("faults")
        self._adversary_rng = self.sched.substream("adversary")
        self._model_rng = self.sched.substream("queue-model")
        # Mutable world state.
        self.deployment: Optional[Deployment] = None
        self.params: Optional[SystemParams] = None
        self.store = None
        self.partitioned: Set[int] = set()
        self.generation = 0  # bumped by crash / rotation / GC: aborts in-flight
        self.served: Dict[bytes, str] = {}  # log identifier -> username
        self.usernames: List[str] = []
        self.violations: List[Violation] = []
        self.counters: Dict[str, int] = {}
        self._flaky_windows: List[Tuple[float, float, int]] = []
        self._model_free_at: Dict[int, float] = {}
        self._modeled_latencies: List[float] = []
        self._live_latencies: List[float] = []
        self._arrivals = 0
        self._live_spawned = 0
        self._live_stride = 1  # widened in _schedule to spread the sample

    # -- small helpers ---------------------------------------------------------
    def _count(self, key: str, n: int = 1) -> None:
        self.counters[key] = self.counters.get(key, 0) + n

    def _violate(self, violation: Violation) -> None:
        violation.step = self.sched.step
        self.violations.append(violation)

    def _record_violations(self, violations: List[Violation]) -> None:
        for violation in violations:
            self._violate(violation)

    def _guarded(self, fn):
        """Wrap an event callback with the failure taxonomy: CrashError →
        crash-restore, clean errors → counted, anything else → violation."""

        def wrapped() -> Optional[str]:
            try:
                return fn()
            except CrashError:
                return self._crash_restore("armed-crash")
            except CLEAN_ERRORS as exc:
                self._count(f"clean:{type(exc).__name__}")
                return f"clean-failure {type(exc).__name__}"
            except Exception as exc:  # noqa: BLE001 - the whole point
                self._violate(Violation(
                    "unclean-error",
                    f"{type(exc).__name__} escaped an event: {exc}",
                ))
                return f"UNCLEAN {type(exc).__name__}"

        return wrapped

    def _flaky_ok_weight(self) -> Optional[int]:
        """The active flaky window's ok_weight at virtual now, if any."""
        for start, end, ok_weight in self._flaky_windows:
            if start <= self.sched.now < end:
                return ok_weight
        return None

    def _make_client(self, username: str) -> Client:
        """A fresh client wired through the partition gate; inside a flaky
        window its provider leg rides a seeded ``FlakyProviderChannel``."""
        deployment = self.deployment
        inner = direct_channels(deployment.fleet)
        ok_weight = self._flaky_ok_weight()
        if ok_weight is not None:
            provider = FlakyProviderChannel(
                ProviderWireEndpoint(deployment.provider),
                seed=self._faults_rng.getrandbits(32),
                ok_weight=ok_weight,
            )
        else:
            provider = DirectProviderChannel(deployment.provider)
        return Client(
            username=username,
            params=deployment.params,
            provider=provider,
            channels=lambda index: _PartitionGate(inner(index), index, self),
            mpk=deployment.fleet.master_public_key(),
        )

    # -- provisioning ----------------------------------------------------------
    def _provision(self) -> None:
        """Build the deployment the scenario describes (inside the entropy
        hijack, so HSM keygen is seed-determined too)."""
        sc = self.scenario
        self.params = SystemParams.for_testing(
            num_hsms=sc.num_hsms,
            cluster_size=sc.cluster_size,
            max_punctures=sc.max_punctures,
        )
        if sc.crashing_store:
            self.store = CrashingBlockStore()
        elif sc.durable:
            self.store = InMemoryBlockStore()
        else:
            self.store = None
        self.deployment = Deployment.create(
            self.params,
            rng=self.sched.substream("provision"),
            shards=sc.shards if sc.shards > 1 else None,
            store=self.store,
        )
        self._model_free_at = {i: 0.0 for i in range(sc.num_hsms)}
        self.sched.note(
            "provision",
            f"hsms={sc.num_hsms} cluster={sc.cluster_size} shards={sc.shards}"
            f" durable={sc.durable}",
        )

    # -- the modeled queue (full-population tail latency) ----------------------
    def _model_job(self, t: float) -> Optional[float]:
        """Latency of one modeled recovery at virtual time ``t``: the
        threshold-th share completion across a sampled cluster of currently
        reachable HSMs, each an exponential server with its own queue.
        Returns ``None`` (counted as dropped) when fewer than ``threshold``
        devices are reachable."""
        sc = self.scenario
        fleet = self.deployment.fleet
        online = [
            i for i in range(sc.num_hsms)
            if not fleet.hsms[i].is_failed and i not in self.partitioned
        ]
        if len(online) < self.params.threshold:
            self._count("modeled-dropped")
            return None
        cluster = self._model_rng.sample(online, min(sc.cluster_size, len(online)))
        completions = []
        for index in cluster:
            start = max(t, self._model_free_at[index])
            done = start + self._model_rng.expovariate(1.0 / sc.model_service_seconds)
            self._model_free_at[index] = done
            completions.append(done)
        completions.sort()
        need = min(self.params.threshold, len(completions))
        return completions[need - 1] - t

    # -- live sessions ---------------------------------------------------------
    def _spawn_session(self, t: float, uid: int, modeled_latency: Optional[float]) -> None:
        """Sample one modeled arrival as a live protocol session."""
        sc = self.scenario
        sid = self._live_spawned
        self._live_spawned += 1
        pin_space = 10 ** self.params.pin_length
        pin_value = self._sessions_rng.randrange(pin_space)
        true_pin = f"{pin_value:0{self.params.pin_length}d}"
        wrong_pin = self._sessions_rng.random() < sc.wrong_pin_fraction
        pin_used = (
            f"{(pin_value + 1) % pin_space:0{self.params.pin_length}d}"
            if wrong_pin else true_pin
        )
        username = f"u{uid}-s{sid}"
        self.usernames.append(username)
        sess = _LiveSession(
            sid=sid,
            username=username,
            true_pin=true_pin,
            pin_used=pin_used,
            wrong_pin=wrong_pin,
            generation=self.generation,
            modeled_latency=modeled_latency,
        )
        self.sched.at(t, "session-begin", self._guarded(lambda: self._session_begin(sess)))

    def _session_begin(self, sess: _LiveSession) -> str:
        """Phase 1 of a live session: backup upload, attempt logging (an
        epoch), inclusion proof.  Schedules phase 2 a little later so other
        activity interleaves between the phases."""
        if sess.generation != self.generation:
            self._count("aborted")
            return f"sid={sess.sid} aborted (stale generation)"
        sess.client = self._make_client(sess.username)
        sess.secret = f"disk-key|{sess.username}".encode()
        try:
            sess.client.backup(sess.secret, sess.true_pin)
            sess.session = sess.client.begin_recovery(
                sess.pin_used, backup_recovery_key=False
            )
        except CLEAN_ERRORS as exc:
            self._count(f"begin-fail:{type(exc).__name__}")
            return f"sid={sess.sid} begin-failed {type(exc).__name__}"
        sess.generation = self.generation
        spread = self._sessions_rng.expovariate(1.0 / self.scenario.session_spread_seconds)
        self.sched.after(
            spread, "session-run", self._guarded(lambda: self._session_run(sess))
        )
        return f"sid={sess.sid} user={sess.username} attempt={sess.session.attempt}"

    def _session_run(self, sess: _LiveSession) -> str:
        """Phase 2: request shares from the hidden cluster and finish.  A
        wrong-PIN session *must* end in ``RecoveryError``; a right-PIN one
        that completes must return the exact secret."""
        if sess.generation != self.generation:
            self._count("aborted")
            return f"sid={sess.sid} aborted (stale generation)"
        try:
            sess.client.request_shares(sess.session, sess.pin_used)
            recovered = sess.client.finish_recovery(sess.session)
        except CLEAN_ERRORS as exc:
            if sess.wrong_pin and isinstance(exc, RecoveryError):
                self._count("wrong-pin-refused")
                return f"sid={sess.sid} wrong-pin refused"
            self._count(f"session-fail:{type(exc).__name__}")
            return f"sid={sess.sid} failed {type(exc).__name__}"
        if sess.wrong_pin:
            self._violate(Violation(
                "wrong-pin-accepted",
                f"session {sess.sid} recovered user {sess.username!r} with a"
                " wrong PIN",
            ))
            return f"sid={sess.sid} UNCLEAN wrong-pin-accepted"
        if recovered != sess.secret:
            self._violate(Violation(
                "wrong-secret",
                f"session {sess.sid} for {sess.username!r} recovered the wrong"
                " plaintext",
            ))
            return f"sid={sess.sid} UNCLEAN wrong-secret"
        self._count("recovered")
        self.served[sess.session.log_identifier] = sess.username
        if sess.modeled_latency is not None:
            self._live_latencies.append(sess.modeled_latency)
        return f"sid={sess.sid} recovered"

    # -- traffic ---------------------------------------------------------------
    def _traffic_wave(self, workload: DiurnalWorkload, start: float, end: float) -> str:
        """Draw one window of modeled arrivals; run each through the queue
        model and sample every ``live_every``-th as a live session."""
        sc = self.scenario
        spawned = 0
        arrivals = workload.arrivals(start, end)
        for t, uid in arrivals:
            self._arrivals += 1
            latency = self._model_job(t)
            if latency is not None:
                self._modeled_latencies.append(latency)
            if (
                self._arrivals % self._live_stride == 0
                and self._live_spawned < sc.max_live_sessions
            ):
                self._spawn_session(t, uid, latency)
                spawned += 1
        return f"arrivals={len(arrivals)} live={spawned}"

    # -- faults ----------------------------------------------------------------
    def _device_loss(self, count: int, restore_after: float) -> str:
        """Fail-stop ``count`` random live devices; maybe schedule their
        replacement batch."""
        fleet = self.deployment.fleet
        count = min(count, len(fleet.online()))
        victims = fleet.fail_random(count, rng=self._faults_rng)
        self._count("devices-failed", count)
        if restore_after > 0:
            delay = restore_after * self.scenario.horizon

            def _restore() -> str:
                self.deployment.fleet.restart(victims)
                self._count("devices-replaced", len(victims))
                return f"replaced {sorted(victims)}"

            self.sched.after(delay, "device-replace", self._guarded(_restore))
        return f"failed {sorted(victims)} replace={restore_after > 0}"

    def _partition_start(self, fraction: float) -> str:
        """Make a random fraction of the fleet unreachable at channel level."""
        n = self.scenario.num_hsms
        count = max(1, round(fraction * n))
        self.partitioned = set(self._faults_rng.sample(range(n), count))
        self._count("partitions")
        return f"partitioned {sorted(self.partitioned)}"

    def _partition_end(self) -> str:
        """Heal the partition."""
        healed = sorted(self.partitioned)
        self.partitioned = set()
        return f"healed {healed}"

    def _crash_restore(self, label: str) -> str:
        """Kill the provider process and rebuild it from the journal (the
        fleet — separate tamper-resistant hardware — survives).  In-flight
        sessions abort via the generation bump; the full journal-replay
        invariant runs immediately after the restore."""
        sc = self.scenario
        self.generation += 1
        fleet = self.deployment.fleet
        if isinstance(self.store, CrashingBlockStore):
            self.store = self.store.blocks  # the durable image, disarmed
        self.deployment = Deployment.restore(
            self.params,
            self.store,
            fleet,
            shards=sc.shards if sc.shards > 1 else None,
        )
        self._count("crash-restores")
        self._record_violations(run_invariant_checks(
            self.deployment.provider, self.usernames, self.served,
            include_journal=True,
        ))
        return f"{label}: restored; post-restore checks ran"

    def _arm_crash(self) -> str:
        """Arm the crashing store so an upcoming journal write dies
        mid-transaction."""
        self.store.crash_after(3)
        return "store armed: 3 puts to live"

    # -- maintenance -----------------------------------------------------------
    def _rotate(self) -> str:
        """Run the daily key-rotation sweep; any rotation invalidates
        in-flight sessions (their key material is stale)."""
        rotated = self.deployment.rotate_keys_if_needed()
        if rotated:
            self.generation += 1
            self._count("rotations", len(rotated))
        return f"rotated={sorted(rotated)}"

    def _garbage_collect(self) -> str:
        """Garbage-collect the log (resets attempt budgets, clears entries);
        the served-session registry resets with it and in-flight sessions
        abort (their inclusion proofs no longer verify)."""
        self.deployment.garbage_collect_log()
        self.served.clear()
        self.generation += 1
        self._count("garbage-collections")
        return "log compacted; served-registry reset"

    def _adversary(self, index: int) -> str:
        """Provision a victim, then brute-force PINs through the legitimate
        recovery protocol.  The attack succeeding — or the log holding more
        attempts than the budget — is a violation."""
        victim = f"victim-{index}"
        self.usernames.append(victim)
        pin_space = 10 ** self.params.pin_length
        true_value = self._adversary_rng.randrange(pin_space)
        true_pin = f"{true_value:0{self.params.pin_length}d}"
        self._make_client(victim).backup(f"victim-secret-{index}".encode(), true_pin)
        attacker = BruteForcePinAttacker(lambda: self._make_client(victim), victim)
        budget = self.params.max_attempts_per_user
        wrong_pins = [
            f"{(true_value + 1 + i) % pin_space:0{self.params.pin_length}d}"
            for i in range(budget + 2)
        ]
        stolen = attacker.run(wrong_pins)
        if stolen is not None:
            self._violate(Violation(
                "adversary-success",
                f"brute-force attacker recovered {victim!r}'s secret",
            ))
        logged = len(self.deployment.provider.recovery_attempts_for(victim))
        if logged > budget:
            self._violate(Violation(
                "attempt-budget",
                f"log holds {logged} attempts for {victim!r}, over the"
                f" budget of {budget}",
            ))
        self._count("adversaries-blocked" if stolen is None else "adversaries-won")
        return f"victim={victim} guesses={attacker.guesses_made} logged={logged}"

    def _tamper(self) -> str:
        """Deliberately rewrite a committed log entry in place (the demo
        fault): the next digest-chain sweep MUST flag it."""
        log = self.deployment.provider.log
        component = (list(log.shards) if hasattr(log, "shards") else [log])[0]
        identifier, value = component.ordered_entries[-1]
        component.ordered_entries[-1] = (identifier, value + b"|tampered")
        return f"rewrote entry {identifier.hex()[:16]}"

    def _invariant_sweep(self) -> str:
        """One continuous-evaluation pass of the cheap safety checkers."""
        found = run_invariant_checks(
            self.deployment.provider, self.usernames, self.served
        )
        self._record_violations(found)
        return "ok" if not found else f"VIOLATIONS={len(found)}"

    # -- schedule assembly -----------------------------------------------------
    def _schedule(self) -> None:
        """Translate the scenario's declarative schedule into events."""
        sc = self.scenario
        horizon = sc.horizon
        # Stretch the live-session stride so the sampled sessions spread over
        # the whole horizon instead of exhausting the cap in the first wave —
        # faults scheduled late in the day must still see live traffic.
        expected_arrivals = int(sc.base_rate * horizon)
        self._live_stride = max(
            sc.live_every,
            max(1, expected_arrivals // max(1, sc.max_live_sessions)),
        )
        workload = DiurnalWorkload(
            base_rate=sc.base_rate,
            amplitude=sc.diurnal_amplitude,
            period=horizon,
            num_users=sc.modeled_users,
            rng=self.sched.substream("workload"),
        )
        window = horizon / sc.waves
        for wave in range(sc.waves):
            start, end = wave * window, (wave + 1) * window
            self.sched.at(
                start, "traffic-wave",
                self._guarded(
                    lambda s=start, e=end: self._traffic_wave(workload, s, e)
                ),
            )
        for i in range(1, sc.check_points + 1):
            self.sched.at(
                i * horizon / (sc.check_points + 1), "invariant-check",
                self._guarded(self._invariant_sweep),
            )
        for i in range(1, sc.rotation_points + 1):
            self.sched.at(
                i * horizon / (sc.rotation_points + 1), "rotation",
                self._guarded(self._rotate),
            )
        for frac in sc.gc_at:
            self.sched.at(frac * horizon, "gc", self._guarded(self._garbage_collect))
        for frac, count, restore_after in sc.device_loss:
            self.sched.at(
                frac * horizon, "device-loss",
                self._guarded(
                    lambda c=count, r=restore_after: self._device_loss(c, r)
                ),
            )
        for start, duration, fraction in sc.partitions:
            self.sched.at(
                start * horizon, "partition-start",
                self._guarded(lambda f=fraction: self._partition_start(f)),
            )
            self.sched.at(
                (start + duration) * horizon, "partition-end",
                self._guarded(self._partition_end),
            )
        for start, duration, ok_weight in sc.flaky:
            self._flaky_windows.append(
                (start * horizon, (start + duration) * horizon, ok_weight)
            )
        for frac in sc.crash_at:
            self.sched.at(
                frac * horizon, "crash",
                self._guarded(lambda: self._crash_restore("clean-crash")),
            )
        if sc.mid_epoch_crash_at is not None:
            self.sched.at(
                sc.mid_epoch_crash_at * horizon, "arm-crash",
                self._guarded(self._arm_crash),
            )
        for i, frac in enumerate(sc.adversary_at):
            self.sched.at(
                frac * horizon, "adversary",
                self._guarded(lambda idx=i: self._adversary(idx)),
            )
        if sc.tamper_at is not None:
            self.sched.at(
                sc.tamper_at * horizon, "tamper", self._guarded(self._tamper)
            )

    # -- entry point -----------------------------------------------------------
    def run(
        self,
        stop_on_violation: bool = True,
        max_steps: Optional[int] = None,
    ) -> ChaosReport:
        """Execute the scenario; returns the :class:`ChaosReport`.

        ``stop_on_violation=True`` halts at the first violating step so the
        step index in the replay file is the last line of the trace;
        ``max_steps`` lets the replay harness stop exactly at a recorded
        step.
        """
        wall_start = time.monotonic()
        with DeterministicEntropy(self.seed):
            self._provision()
            self._schedule()
            stop = (lambda: bool(self.violations)) if stop_on_violation else None
            self.sched.run(max_steps=max_steps, stop=stop)
            if not self.violations or not stop_on_violation:
                final = run_invariant_checks(
                    self.deployment.provider, self.usernames, self.served,
                    include_journal=self.deployment.provider.journal is not None,
                )
                self._record_violations(final)
                self.sched.note(
                    "final-check",
                    "ok" if not final else f"VIOLATIONS={len(final)}",
                )
        return ChaosReport(
            scenario=self.scenario.name,
            seed=self.seed,
            steps=self.sched.step,
            trace_digest=self.sched.trace_digest(),
            final_log_digest=self.deployment.provider.log.digest.hex(),
            counters=dict(sorted(self.counters.items())),
            violations=list(self.violations),
            modeled_arrivals=self._arrivals,
            live_sessions=self._live_spawned,
            modeled_p50=percentile(self._modeled_latencies, 0.50),
            modeled_p99=percentile(self._modeled_latencies, 0.99),
            live_p50=(
                percentile(self._live_latencies, 0.50)
                if self._live_latencies else None
            ),
            live_p99=(
                percentile(self._live_latencies, 0.99)
                if self._live_latencies else None
            ),
            op_counts=self.deployment.fleet.total_op_counts(),
            wall_seconds=time.monotonic() - wall_start,
            trace=list(self.sched.trace),
        )


def run_scenario(
    scenario: Scenario,
    seed: int,
    quick: bool = False,
    stop_on_violation: bool = True,
    max_steps: Optional[int] = None,
) -> ChaosReport:
    """Run ``scenario`` (optionally its :meth:`~Scenario.quick` variant) at
    ``seed`` and return the report — the one-call API the campaign runner,
    the replay harness, and the tests all share."""
    if quick:
        scenario = scenario.quick()
    engine = ChaosEngine(scenario, seed)
    return engine.run(stop_on_violation=stop_on_violation, max_steps=max_steps)
