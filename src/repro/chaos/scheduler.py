"""The seeded deterministic scheduler: virtual clock + ordered event queue.

Every piece of chaos-campaign activity — workload arrivals, session
phases, epoch maintenance, fault waves, crash points, invariant sweeps —
is an event on this scheduler's queue.  Events run one at a time in
``(virtual_time, sequence_number)`` order, so an entire "concurrent"
campaign is really one deterministic interleaving: same scenario, same
seed, same event order, bit-for-bit.

Each executed event appends one line to ``trace``; ``trace_digest()``
hashes the whole trace, which is the primary determinism witness (the
determinism test asserts byte-identical traces across same-seed runs and
differing traces across seeds).  Event callbacks may return a short
detail string that lands in the trace line, and may schedule further
events (that is how sessions step cooperatively through begin/shares/
finish phases).

Randomness: the scheduler owns a master ``random.Random`` plus labelled
``substream``s (domain-separated by :func:`repro.chaos.entropy.derive_seed`)
so each component — workload, faults, adversary, queue model — draws
from its own stream and adding one component never shifts another's.

Thread safety: none; the scheduler is the single-threaded heart of a
chaos run and must only be driven from one thread.
"""

from __future__ import annotations

import hashlib
import heapq
import random
from typing import Callable, List, Optional, Tuple

from repro.chaos.entropy import derive_seed

#: An event callback: takes no arguments (closures capture their world),
#: optionally returns a detail string for the trace line.
EventFn = Callable[[], Optional[str]]


class DeterministicScheduler:
    """A virtual-time event loop that is a pure function of its seed."""

    def __init__(self, seed: int) -> None:
        """Create an empty queue at virtual time 0 with a seeded master RNG."""
        self.seed = seed
        self.rng = random.Random(derive_seed(seed, "scheduler"))
        self.now = 0.0
        self.step = 0
        self.trace: List[str] = []
        self._heap: List[Tuple[float, int, str, EventFn]] = []
        self._seq = 0

    # -- randomness -----------------------------------------------------------
    def substream(self, label: str) -> random.Random:
        """An independent seeded RNG bound to ``(seed, label)``."""
        return random.Random(derive_seed(self.seed, f"substream|{label}"))

    # -- scheduling -----------------------------------------------------------
    def at(self, time: float, kind: str, fn: EventFn) -> None:
        """Schedule ``fn`` at virtual ``time`` (clamped to never run in the
        past; ties break by scheduling order, which is deterministic)."""
        self._seq += 1
        heapq.heappush(self._heap, (max(time, self.now), self._seq, kind, fn))

    def after(self, delay: float, kind: str, fn: EventFn) -> None:
        """Schedule ``fn`` at ``now + delay``."""
        self.at(self.now + max(0.0, delay), kind, fn)

    def note(self, kind: str, detail: str) -> None:
        """Append a trace line outside any event (setup/teardown markers)."""
        self.trace.append(f"-     t={self.now:.6f} {kind} {detail}")

    # -- execution ------------------------------------------------------------
    def run(
        self,
        max_steps: Optional[int] = None,
        stop: Optional[Callable[[], bool]] = None,
    ) -> int:
        """Drain the queue; returns the number of events executed.

        ``stop()`` is consulted after every event (the engine uses it to
        halt at the first invariant violation so the violating step index
        is the last line of the trace).  ``max_steps`` bounds runaway
        scenarios; the replay harness uses it to stop at a recorded step.
        """
        executed = 0
        while self._heap:
            if max_steps is not None and executed >= max_steps:
                break
            time, _, kind, fn = heapq.heappop(self._heap)
            self.now = time
            self.step += 1
            executed += 1
            detail = fn()
            line = f"{self.step:05d} t={time:.6f} {kind}"
            if detail:
                line += f" {detail}"
            self.trace.append(line)
            if stop is not None and stop():
                break
        return executed

    def trace_digest(self) -> str:
        """SHA-256 over the full trace — the determinism witness."""
        joined = "\n".join(self.trace).encode("utf-8")
        return hashlib.sha256(joined).hexdigest()
