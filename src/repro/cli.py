"""Command-line interface for exploring the SafetyPin reproduction.

Drives an in-memory deployment through the library's public API:

    python -m repro.cli demo                 # end-to-end walkthrough
    python -m repro.cli plan --users 1e9     # deployment sizing (§9.2)
    python -m repro.cli params               # paper parameters + bounds
    python -m repro.cli attack               # run the threat-model attacks
    python -m repro.cli loadtest --clients 16  # concurrent service sessions

(Backups are in-process: the CLI is a teaching/evaluation tool, not a
persistence layer.)
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro import Deployment, SystemParams
    from repro.core.client import RecoveryError

    params = SystemParams.for_testing(
        num_hsms=args.hsms, cluster_size=args.cluster, pin_length=len(args.pin)
    )
    print(f"provisioning {params.num_hsms} HSMs (n={params.cluster_size}, "
          f"t={params.threshold})...")
    dep = Deployment.create(params)
    client = dep.new_client(args.user)
    message = args.message.encode("utf-8")
    client.backup(message, pin=args.pin)
    print(f"backed up {len(message)} bytes for {args.user!r}")
    recovered = client.recover(pin=args.pin)
    assert recovered == message
    print("recovered successfully; HSMs punctured their keys")
    try:
        client.recover(pin=args.pin)
        print("ERROR: second recovery should have failed")
        return 1
    except RecoveryError:
        print("second recovery correctly refused (forward security)")
    print(f"log entries for {args.user!r}: "
          f"{len(client.audit_my_recovery_attempts())}")
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    from repro.analysis.bounds import minimum_cluster_size, security_loss_bits
    from repro.hsm.devices import SAFENET_A700, SOLOKEY, YUBIHSM2
    from repro.sim.capacity import build_throughput_model, plan_deployment

    users = float(args.users)
    n = minimum_cluster_size(10 ** args.pin_digits)
    print(f"cluster size n = {n} for {args.pin_digits}-digit PINs")
    for device in (SOLOKEY, YUBIHSM2, SAFENET_A700):
        throughput = build_throughput_model(device)
        plan = plan_deployment(device, users, cluster_size=n, throughput=throughput)
        print(f"  {plan.describe()}")
    solo = plan_deployment(SOLOKEY, users, cluster_size=n)
    print(f"security loss vs PIN guessing at the SoloKey plan: "
          f"{security_loss_bits(solo.quantity, n):.2f} bits")
    return 0


def _cmd_params(args: argparse.Namespace) -> int:
    from repro.analysis.bounds import (
        audit_failure_probability,
        correctness_failure_exact,
        security_advantage_bound,
    )
    from repro.core.params import SystemParams

    params = SystemParams.for_paper()
    bloom = params.bloom_params()
    print("paper deployment parameters:")
    print(f"  N = {params.num_hsms} HSMs, n = {params.cluster_size}, "
          f"t = {params.threshold}")
    print(f"  PIN space |P| = {params.pin_space_size:,}")
    print(f"  f_secret = {params.f_secret} "
          f"(tolerates {params.tolerated_compromises} stolen HSMs)")
    print(f"  f_live = {params.f_live} "
          f"(tolerates {params.tolerated_failures} failed HSMs)")
    print(f"  Bloom key: {bloom.num_slots:,} slots x 32 B = "
          f"{bloom.secret_key_bytes() / 1e6:.0f} MB, k = {bloom.num_hashes}")
    print("derived security bounds:")
    print(f"  audit miss prob (C=128): "
          f"{audit_failure_probability(params.f_secret, params.audit_count):.2e}")
    print(f"  recovery failure prob: "
          f"{correctness_failure_exact(params.cluster_size, params.threshold, params.f_live):.2e}")
    print(f"  attacker advantage bound (Thm 10): "
          f"{security_advantage_bound(params.num_hsms, params.cluster_size, params.pin_space_size):.2e}")
    return 0


def _cmd_loadtest(args: argparse.Namespace) -> int:
    import random
    import threading
    import time

    from repro import Deployment, SystemParams

    params = SystemParams.for_testing(
        num_hsms=args.hsms,
        cluster_size=args.cluster,
        max_punctures=max(16, 4 * args.clients),
    )
    shard_note = f", {args.shards} log shards" if args.shards > 1 else ""
    print(f"provisioning {params.num_hsms} HSMs for {args.clients} concurrent "
          f"clients ({args.epoch_mode} epochs, {args.transport} transport"
          f"{shard_note})...")
    dep = Deployment.create(params, rng=random.Random(args.seed))
    service = dep.recovery_service(
        shards=args.shards if args.shards > 1 else None,
        transport=args.transport,
        epoch_mode=args.epoch_mode,
        tick_interval=args.tick_interval,
    )
    clients = [service.new_client(f"load-{i}") for i in range(args.clients)]
    errors: List[str] = []

    def session(i: int) -> None:
        try:
            message = f"payload-{i}".encode("utf-8")
            pin = f"{1000 + i:04d}"[: params.pin_length]
            clients[i].backup(message, pin=pin)
            if clients[i].recover(pin) != message:
                errors.append(f"client {i}: wrong plaintext")
        except Exception as exc:  # noqa: BLE001 - report, don't crash the bench
            errors.append(f"client {i}: {exc!r}")

    epochs_before = dep.provider.log.epoch
    with service:
        start = time.perf_counter()
        threads = [
            threading.Thread(target=session, args=(i,)) for i in range(args.clients)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        elapsed = time.perf_counter() - start
    stats = service.stats()
    print(f"{args.clients} backup+recovery sessions in {elapsed:.2f}s "
          f"({args.clients / max(elapsed, 1e-9):.1f} sessions/s)")
    epochs = dep.provider.log.epoch - epochs_before
    if args.epoch_mode == "batched":
        lanes = stats.get("shard_lanes", 1)
        lane_note = f" across {lanes} shard lanes" if lanes > 1 else ""
        print(f"log epochs committed: {epochs}{lane_note} "
              f"(sessions per epoch: {stats['epoch_sessions']})")
    else:
        print(f"log epochs committed: {epochs} (one per recovery)")
    busiest = max(stats["jobs_per_device"])
    print(f"busiest HSM queue served {busiest} requests")
    if "provider_wire" in stats:
        pw = stats["provider_wire"]
        print(f"provider RPC wire traffic: {pw['frames_sent']} frames, "
              f"{pw['bytes_sent']} request bytes, "
              f"{pw['bytes_received']} reply bytes")
    if errors:
        for line in errors:
            print("ERROR:", line)
        return 1
    print("all sessions recovered their backups")
    return 0


def _cmd_attack(args: argparse.Namespace) -> int:
    import runpy
    import os

    script = os.path.join(
        os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
        "examples",
        "attack_and_audit.py",
    )
    if os.path.exists(script):
        runpy.run_path(script, run_name="__main__")
        return 0
    # Fallback when examples/ is not shipped: run the core attack inline.
    from repro import Deployment, SystemParams
    from repro.adversary.attacks import decrypt_with_stolen_secrets

    dep = Deployment.create(SystemParams.for_testing())
    client = dep.new_client("victim")
    client.backup(b"secret", pin="1234")
    ct = dep.provider.fetch_backup("victim")
    stolen = dep.fleet.compromise([0])
    print("one stolen HSM decrypts:",
          decrypt_with_stolen_secrets(client.lhe, ct, stolen, "1234", client.mpk))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli", description="SafetyPin reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="end-to-end backup/recovery walkthrough")
    demo.add_argument("--hsms", type=int, default=16)
    demo.add_argument("--cluster", type=int, default=4)
    demo.add_argument("--user", default="alice")
    demo.add_argument("--pin", default="4927")
    demo.add_argument("--message", default="hello from safetypin")
    demo.set_defaults(func=_cmd_demo)

    plan = sub.add_parser("plan", help="deployment sizing (§9.2)")
    plan.add_argument("--users", default="1e9")
    plan.add_argument("--pin-digits", type=int, default=6)
    plan.set_defaults(func=_cmd_plan)

    params = sub.add_parser("params", help="paper parameters and bounds")
    params.set_defaults(func=_cmd_params)

    attack = sub.add_parser("attack", help="run the threat-model attack demos")
    attack.set_defaults(func=_cmd_attack)

    loadtest = sub.add_parser(
        "loadtest", help="concurrent recovery sessions through the service layer"
    )
    loadtest.add_argument("--clients", type=int, default=16)
    loadtest.add_argument("--hsms", type=int, default=16)
    loadtest.add_argument("--cluster", type=int, default=4)
    loadtest.add_argument("--transport", choices=("wire", "direct"), default="wire")
    loadtest.add_argument(
        "--epoch-mode", choices=("batched", "per-request"), default="batched"
    )
    loadtest.add_argument("--tick-interval", type=float, default=0.02)
    loadtest.add_argument(
        "--shards", type=int, default=1,
        help="log shards / parallel epoch lanes (>1 reshards the log)",
    )
    loadtest.add_argument("--seed", type=int, default=7)
    loadtest.set_defaults(func=_cmd_loadtest)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
