"""The serving layer: concurrent sessions over one SafetyPin deployment.

The core protocol modules (``repro.core``) implement *one* backup or
recovery faithfully; this package makes many of them happen at once, the
way the paper's deployment serves millions of users.  Four pieces:

**Channel boundary** (:mod:`repro.service.channel`).  Clients reach HSMs
only through a :class:`~repro.service.channel.Channel` — one
``decrypt_share`` method.  The default :class:`WireChannel` serializes
every request and reply through ``repro.core.wire``, so client and device
exchange bytes across the untrusted provider's network, never live Python
objects; refusals and punctures cross the wire as status codes.

**Per-HSM worker queues** (:mod:`repro.service.workers`).  Real HSMs serve
one command at a time; :class:`~repro.service.workers.HsmWorkerPool` gives
each device a FIFO queue and a single worker thread (exactly the M/M/1
shape the capacity model in ``repro.sim`` assumes), so any number of
sessions can be in flight while each device's state mutates serially.

**Epoch batching** (:mod:`repro.service.batcher`).  The distributed-log
update is the expensive, global step; the paper amortizes it by committing
one batch epoch every ~10 minutes.  The
:class:`~repro.service.batcher.EpochBatcher` accumulates every session's
log insertion and commits exactly one ``run_update`` per tick, fanning the
inclusion proofs back to all waiting sessions.  Because proofs are
digest-exact, served sessions hold an *epoch lease* until their share
phase ends; the next tick waits for leases to drain (bounded), and clients
that straddle an epoch anyway refresh their proof and retry once.

**Shard lanes** (also :mod:`repro.service.batcher`).  Over a sharded log
(``repro.log.sharded``) a tick groups waiters by their identifier's shard
and fans one epoch per shard out to a lane-worker pool, joining before the
combined cross-shard root is published; a failed shard epoch rolls back
and fails only its own tickets.

:class:`~repro.service.recovery.RecoveryService` assembles the pieces into
the deployment's front end; ``Deployment.recovery_service()`` builds one
(pass ``shards=S`` for S lanes).

Thread safety: this package *is* the concurrency layer — every class
documents its own contract.  The rule of thumb: device and shard state is
only ever touched from its FIFO worker; cross-session state lives behind
the batcher's lock.
"""

from repro.service.batcher import EpochBatcher, EpochTicket, ServiceTimeout
from repro.service.channel import (
    Channel,
    DirectChannel,
    HsmWireEndpoint,
    WireChannel,
    direct_channels,
    wire_channels,
)
from repro.service.recovery import BatchedProviderFacade, RecoveryService
from repro.service.workers import HsmWorkerPool, QueuedChannel, queued_channels

__all__ = [
    "BatchedProviderFacade",
    "Channel",
    "DirectChannel",
    "EpochBatcher",
    "EpochTicket",
    "HsmWireEndpoint",
    "HsmWorkerPool",
    "QueuedChannel",
    "RecoveryService",
    "ServiceTimeout",
    "WireChannel",
    "direct_channels",
    "queued_channels",
    "wire_channels",
]
