"""The client ↔ HSM transport boundary.

A :class:`Channel` is the only way client code reaches an HSM: one
``decrypt_share`` method.  The default transport (:class:`WireChannel`)
serializes the request and the reply through ``repro.core.wire`` — the
client and the device exchange *bytes*, never live Python objects, so the
trust boundary of the paper (everything between client and HSM crosses the
untrusted provider's network) is real in the reproduction too.

Error outcomes (refused / punctured / fail-stopped) cross the wire as
status codes and are re-raised client-side as the same exception types the
devices throw, so protocol code is transport-agnostic.

Each ``decrypt_share`` bottoms out in HSM-side ElGamal/BFE point
multiplications, which since the crypto fast-path layer ride the fixed-base
comb and per-key cached window tables in ``repro.crypto.ec`` — the channel
turnaround (and therefore per-HSM queue drain rate in
``service.workers``) tracks those table-backed rates rather than the naive
rebuild-per-call cost.

Thread safety: channels are stateless pass-throughs (safe to share across
threads); serialization of *device* state is not their job — wrap them
with ``service.workers.queued_channels`` so every call lands on the
device's single FIFO worker, as the service does.
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence

from repro.core import wire
from repro.crypto.bfe import PuncturedKeyError
from repro.crypto.elgamal import ElGamalCiphertext
from repro.hsm.device import (
    DecryptShareRequest,
    HsmRefusedError,
    HsmStaleProofError,
    HsmUnavailableError,
)

#: Maps an HSM index to the Channel reaching that device.
ChannelFactory = Callable[[int], "Channel"]

#: The single status↔exception table, most-derived exception types first so
#: the encoding side can pick the first isinstance match (HsmStaleProofError
#: subclasses HsmRefusedError).  Both transport directions derive from it.
_ERROR_STATUS_BY_TYPE = (
    (HsmStaleProofError, wire.REPLY_STALE_PROOF),
    (HsmUnavailableError, wire.REPLY_UNAVAILABLE),
    (PuncturedKeyError, wire.REPLY_PUNCTURED),
    (HsmRefusedError, wire.REPLY_REFUSED),
)
_ERROR_TYPES = tuple(exc_type for exc_type, _ in _ERROR_STATUS_BY_TYPE)
_STATUS_EXCEPTIONS = {status: exc_type for exc_type, status in _ERROR_STATUS_BY_TYPE}


def _status_for(exc: Exception) -> int:
    for exc_type, status in _ERROR_STATUS_BY_TYPE:
        if isinstance(exc, exc_type):
            return status
    raise TypeError(f"no wire status for {type(exc)}")  # pragma: no cover


class Channel:
    """Narrow interface between a client and one HSM."""

    def decrypt_share(self, request: DecryptShareRequest) -> ElGamalCiphertext:
        """Ask the device to decrypt one share (raises on refusal)."""
        raise NotImplementedError


class DirectChannel(Channel):
    """In-process shortcut: call the device object directly.

    Kept for tests and micro-benchmarks that want to exclude serialization
    cost; production wiring uses :class:`WireChannel`.
    """

    def __init__(self, device) -> None:
        self._device = device

    def decrypt_share(self, request: DecryptShareRequest) -> ElGamalCiphertext:
        """Call the device object directly (no serialization)."""
        return self._device.decrypt_share(request)


class HsmWireEndpoint:
    """Device-side half of the wire transport: bytes in, bytes out.

    Decodes the request, runs the device, and encodes the outcome —
    including the error outcomes, which become status replies rather than
    exceptions crossing the boundary.
    """

    def __init__(self, device) -> None:
        self._device = device

    def handle_decrypt_share(self, request_bytes: bytes) -> bytes:
        """Decode, run the device, encode the outcome (reply or status)."""
        request = wire.decode_decrypt_request(request_bytes)
        try:
            reply = self._device.decrypt_share(request)
        except _ERROR_TYPES as exc:
            return wire.encode_decrypt_error(_status_for(exc), str(exc))
        return wire.encode_decrypt_reply(reply)


class WireChannel(Channel):
    """Default transport: every request/reply round-trips through bytes."""

    def __init__(self, endpoint: HsmWireEndpoint) -> None:
        self._endpoint = endpoint

    def decrypt_share(self, request: DecryptShareRequest) -> ElGamalCiphertext:
        """Round-trip through bytes; re-raise error statuses client-side."""
        reply_bytes = self._endpoint.handle_decrypt_share(
            wire.encode_decrypt_request(request)
        )
        status, payload = wire.decode_decrypt_reply(reply_bytes)
        if status == wire.REPLY_OK:
            return payload
        raise _STATUS_EXCEPTIONS[status](payload)


def wire_channels(devices: Sequence) -> ChannelFactory:
    """A factory of wire channels over an indexable device collection."""
    cache: Dict[int, WireChannel] = {}

    def factory(index: int) -> Channel:
        if index not in cache:
            cache[index] = WireChannel(HsmWireEndpoint(devices[index]))
        return cache[index]

    return factory


def direct_channels(devices: Sequence) -> ChannelFactory:
    """A factory of direct (no serialization) channels."""
    cache: Dict[int, DirectChannel] = {}

    def factory(index: int) -> Channel:
        if index not in cache:
            cache[index] = DirectChannel(devices[index])
        return cache[index]

    return factory
