"""The client-side transport boundaries: client ↔ HSM and client ↔ provider.

A :class:`Channel` is the only way client code reaches an HSM: one
``decrypt_share`` method.  The default transport (:class:`WireChannel`)
serializes the request and the reply through ``repro.core.wire`` — the
client and the device exchange *bytes*, never live Python objects, so the
trust boundary of the paper (everything between client and HSM crosses the
untrusted provider's network) is real in the reproduction too.

A :class:`ProviderChannel` is the same idea for the client ↔ provider leg:
backup upload/fetch, incremental blobs, attempt reservation, log-and-prove,
inclusion-proof refresh, and reply escrow.  The default transport
(:class:`WireProviderChannel` over a :class:`ProviderWireEndpoint`) frames
every call through the tagged provider RPC encoding in ``repro.core.wire``;
failures come back as typed ``PROV_REPLY_ERROR`` frames and are re-raised
client-side as :class:`~repro.core.provider.ProviderError` (or
:class:`~repro.service.batcher.ServiceTimeout` for epoch timeouts) — a
Python exception object never crosses the boundary.
:class:`DirectProviderChannel` is the no-serialization reference path kept
for tests and micro-benchmarks.

Error outcomes (refused / punctured / fail-stopped) cross the wire as
status codes and are re-raised client-side as the same exception types the
devices throw, so protocol code is transport-agnostic.

Each ``decrypt_share`` bottoms out in HSM-side ElGamal/BFE point
multiplications, which since the crypto fast-path layer ride the fixed-base
comb and per-key cached window tables in ``repro.crypto.ec`` — the channel
turnaround (and therefore per-HSM queue drain rate in
``service.workers``) tracks those table-backed rates rather than the naive
rebuild-per-call cost.

Thread safety: channels are stateless pass-throughs (safe to share across
threads); serialization of *device* state is not their job — wrap them
with ``service.workers.queued_channels`` so every call lands on the
device's single FIFO worker, as the service does.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core import wire
from repro.core.provider import ProviderError
from repro.crypto.bfe import PuncturedKeyError
from repro.crypto.elgamal import ElGamalCiphertext
from repro.hsm.device import (
    DecryptShareRequest,
    HsmRefusedError,
    HsmStaleProofError,
    HsmUnavailableError,
)

#: Maps an HSM index to the Channel reaching that device.
ChannelFactory = Callable[[int], "Channel"]

#: The single status↔exception table, most-derived exception types first so
#: the encoding side can pick the first isinstance match (HsmStaleProofError
#: subclasses HsmRefusedError).  Both transport directions derive from it.
_ERROR_STATUS_BY_TYPE = (
    (HsmStaleProofError, wire.REPLY_STALE_PROOF),
    (HsmUnavailableError, wire.REPLY_UNAVAILABLE),
    (PuncturedKeyError, wire.REPLY_PUNCTURED),
    (HsmRefusedError, wire.REPLY_REFUSED),
)
_ERROR_TYPES = tuple(exc_type for exc_type, _ in _ERROR_STATUS_BY_TYPE)
_STATUS_EXCEPTIONS = {status: exc_type for exc_type, status in _ERROR_STATUS_BY_TYPE}


def _status_for(exc: Exception) -> int:
    for exc_type, status in _ERROR_STATUS_BY_TYPE:
        if isinstance(exc, exc_type):
            return status
    raise TypeError(f"no wire status for {type(exc)}")  # pragma: no cover


class Channel:
    """Narrow interface between a client and one HSM."""

    def decrypt_share(self, request: DecryptShareRequest) -> ElGamalCiphertext:
        """Ask the device to decrypt one share (raises on refusal)."""
        raise NotImplementedError


class DirectChannel(Channel):
    """In-process shortcut: call the device object directly.

    Kept for tests and micro-benchmarks that want to exclude serialization
    cost; production wiring uses :class:`WireChannel`.
    """

    def __init__(self, device) -> None:
        self._device = device

    def decrypt_share(self, request: DecryptShareRequest) -> ElGamalCiphertext:
        """Call the device object directly (no serialization)."""
        return self._device.decrypt_share(request)


class HsmWireEndpoint:
    """Device-side half of the wire transport: bytes in, bytes out.

    Decodes the request, runs the device, and encodes the outcome —
    including the error outcomes, which become status replies rather than
    exceptions crossing the boundary.
    """

    def __init__(self, device) -> None:
        self._device = device

    def handle_decrypt_share(self, request_bytes: bytes) -> bytes:
        """Decode, run the device, encode the outcome (reply or status)."""
        request = wire.decode_decrypt_request(request_bytes)
        try:
            reply = self._device.decrypt_share(request)
        except _ERROR_TYPES as exc:
            return wire.encode_decrypt_error(_status_for(exc), str(exc))
        return wire.encode_decrypt_reply(reply)


class WireChannel(Channel):
    """Default transport: every request/reply round-trips through bytes."""

    def __init__(self, endpoint: HsmWireEndpoint) -> None:
        self._endpoint = endpoint

    def decrypt_share(self, request: DecryptShareRequest) -> ElGamalCiphertext:
        """Round-trip through bytes; re-raise error statuses client-side."""
        reply_bytes = self._endpoint.handle_decrypt_share(
            wire.encode_decrypt_request(request)
        )
        status, payload = wire.decode_decrypt_reply(reply_bytes)
        if status == wire.REPLY_OK:
            return payload
        raise _STATUS_EXCEPTIONS[status](payload)


def wire_channels(devices: Sequence) -> ChannelFactory:
    """A factory of wire channels over an indexable device collection."""
    cache: Dict[int, WireChannel] = {}

    def factory(index: int) -> Channel:
        if index not in cache:
            cache[index] = WireChannel(HsmWireEndpoint(devices[index]))
        return cache[index]

    return factory


def direct_channels(devices: Sequence) -> ChannelFactory:
    """A factory of direct (no serialization) channels."""
    cache: Dict[int, DirectChannel] = {}

    def factory(index: int) -> Channel:
        if index not in cache:
            cache[index] = DirectChannel(devices[index])
        return cache[index]

    return factory


# ---------------------------------------------------------------------------
# The client <-> provider transport boundary
# ---------------------------------------------------------------------------
class ProviderChannel:
    """Narrow interface between a client and the service provider.

    One method per RPC op of the provider surface (the frame catalog in
    ``repro.core.wire``).  Client code holds a ProviderChannel, never a
    live :class:`~repro.core.provider.ServiceProvider`.
    """

    def upload_backup(self, username: str, ciphertext) -> int:
        """Store a recovery ciphertext; returns its per-user index."""
        raise NotImplementedError

    def fetch_backup(self, username: str, index: int = -1):
        """Fetch one stored recovery ciphertext (default: newest)."""
        raise NotImplementedError

    def backup_count(self, username: str) -> int:
        """How many recovery ciphertexts the provider holds for a user."""
        raise NotImplementedError

    def upload_incremental(self, username: str, blob: bytes) -> None:
        """Append one AE-encrypted incremental backup blob (§8)."""
        raise NotImplementedError

    def fetch_incrementals(self, username: str) -> List[bytes]:
        """All incremental blobs stored for a user, oldest first."""
        raise NotImplementedError

    def next_attempt_number(self, username: str) -> int:
        """First unused attempt slot for a user in the current log."""
        raise NotImplementedError

    def reserve_attempt_number(self, username: str) -> int:
        """Atomically claim the next attempt slot for a user."""
        raise NotImplementedError

    def log_recovery_attempt(
        self, username: str, attempt: int, commitment: bytes
    ) -> bytes:
        """Queue (rec|user|attempt -> commitment) for the next epoch."""
        raise NotImplementedError

    def log_and_prove(self, username: str, attempt: int, commitment: bytes):
        """Insert, wait for an epoch, return ``(identifier, proof)``."""
        raise NotImplementedError

    def prove_inclusion(self, identifier: bytes, value: bytes):
        """A fresh proof against the current digest (None if uncommitted)."""
        raise NotImplementedError

    def share_phase_done(self, username: str, attempt: int) -> None:
        """Liveness hint: this attempt's share phase is over."""
        raise NotImplementedError

    def store_reply(self, username: str, attempt: int, encrypted_reply: bytes) -> None:
        """Escrow one encrypted HSM reply for device-failure recovery (§8)."""
        raise NotImplementedError

    def fetch_replies(self, username: str, attempt: int) -> List[bytes]:
        """All escrowed replies for one recovery attempt."""
        raise NotImplementedError

    def recovery_attempts_for(self, username: str) -> List[Tuple[bytes, bytes]]:
        """All logged attempts for a user (what a monitoring client checks)."""
        raise NotImplementedError


class DirectProviderChannel(ProviderChannel):
    """In-process reference path: call the provider object directly.

    Kept so tests and benchmarks can measure exactly what the wire framing
    costs; production wiring uses :class:`WireProviderChannel`.
    """

    def __init__(self, provider) -> None:
        self._provider = provider

    def upload_backup(self, username: str, ciphertext) -> int:
        """Delegate to the provider object (no serialization)."""
        return self._provider.upload_backup(username, ciphertext)

    def fetch_backup(self, username: str, index: int = -1):
        """Delegate to the provider object (no serialization)."""
        return self._provider.fetch_backup(username, index)

    def backup_count(self, username: str) -> int:
        """Delegate to the provider object (no serialization)."""
        return self._provider.backup_count(username)

    def upload_incremental(self, username: str, blob: bytes) -> None:
        """Delegate to the provider object (no serialization)."""
        self._provider.upload_incremental(username, blob)

    def fetch_incrementals(self, username: str) -> List[bytes]:
        """Delegate to the provider object (no serialization)."""
        return self._provider.fetch_incrementals(username)

    def next_attempt_number(self, username: str) -> int:
        """Delegate to the provider object (no serialization)."""
        return self._provider.next_attempt_number(username)

    def reserve_attempt_number(self, username: str) -> int:
        """Delegate to the provider object (no serialization)."""
        return self._provider.reserve_attempt_number(username)

    def log_recovery_attempt(
        self, username: str, attempt: int, commitment: bytes
    ) -> bytes:
        """Delegate to the provider object (no serialization)."""
        return self._provider.log_recovery_attempt(username, attempt, commitment)

    def log_and_prove(self, username: str, attempt: int, commitment: bytes):
        """Delegate to the provider object (no serialization)."""
        return self._provider.log_and_prove(username, attempt, commitment)

    def prove_inclusion(self, identifier: bytes, value: bytes):
        """Delegate to the provider object (no serialization)."""
        return self._provider.prove_inclusion(identifier, value)

    def share_phase_done(self, username: str, attempt: int) -> None:
        """Delegate to the provider object (no serialization)."""
        self._provider.share_phase_done(username, attempt)

    def store_reply(self, username: str, attempt: int, encrypted_reply: bytes) -> None:
        """Delegate to the provider object (no serialization)."""
        self._provider.store_reply(username, attempt, encrypted_reply)

    def fetch_replies(self, username: str, attempt: int) -> List[bytes]:
        """Delegate to the provider object (no serialization)."""
        return self._provider.fetch_replies(username, attempt)

    def recovery_attempts_for(self, username: str) -> List[Tuple[bytes, bytes]]:
        """Delegate to the provider object (no serialization)."""
        return self._provider.recovery_attempts_for(username)


class ProviderWireEndpoint:
    """Provider-side half of the wire transport: bytes in, bytes out.

    Decodes each request frame, dispatches to the provider surface, and
    encodes the outcome.  *Every* failure becomes a typed error frame:
    malformed requests answer ``PROV_ERR_BAD_REQUEST``, provider refusals
    answer ``PROV_ERR_PROVIDER``, epoch timeouts answer
    ``PROV_ERR_TIMEOUT``, and — defense in depth — a raw ``KeyError`` /
    ``IndexError`` / ``ValueError`` escaping the provider is converted
    rather than propagated, so no Python exception ever crosses the wire.
    """

    def __init__(self, provider) -> None:
        self._provider = provider

    def handle(self, request_bytes: bytes) -> bytes:
        """Serve one framed request; always returns a reply frame."""
        from repro.service.batcher import ServiceTimeout

        try:
            op, fields = wire.decode_provider_request(request_bytes)
        except wire.WireFormatError as exc:
            return wire.encode_provider_error(wire.PROV_ERR_BAD_REQUEST, str(exc))
        try:
            kind, reply = _PROVIDER_RPC_HANDLERS[op](self._provider, fields)
            # Encoding inside the try: a provider returning an
            # out-of-contract value (unencodable field) must also answer
            # with an error frame, not crash the connection handler.
            return wire.encode_provider_reply(kind, reply)
        except ServiceTimeout as exc:
            return wire.encode_provider_error(wire.PROV_ERR_TIMEOUT, str(exc))
        except (ProviderError, wire.WireFormatError) as exc:
            return wire.encode_provider_error(wire.PROV_ERR_PROVIDER, str(exc))
        except (KeyError, IndexError, ValueError) as exc:
            return wire.encode_provider_error(
                wire.PROV_ERR_PROVIDER, f"{type(exc).__name__}: {exc}"
            )


#: op -> handler(provider, fields) -> (reply kind, reply fields).
_PROVIDER_RPC_HANDLERS = {
    wire.PROV_UPLOAD_BACKUP: lambda p, f: (
        wire.PROV_REPLY_COUNT,
        {"value": p.upload_backup(f["username"], f["ciphertext"])},
    ),
    wire.PROV_FETCH_BACKUP: lambda p, f: (
        wire.PROV_REPLY_BACKUP,
        {"ciphertext": p.fetch_backup(f["username"], f["index"])},
    ),
    wire.PROV_BACKUP_COUNT: lambda p, f: (
        wire.PROV_REPLY_COUNT,
        {"value": p.backup_count(f["username"])},
    ),
    wire.PROV_UPLOAD_INCREMENTAL: lambda p, f: (
        wire.PROV_REPLY_ACK,
        _ack(p.upload_incremental(f["username"], f["blob"])),
    ),
    wire.PROV_FETCH_INCREMENTALS: lambda p, f: (
        wire.PROV_REPLY_BLOBS,
        {"blobs": p.fetch_incrementals(f["username"])},
    ),
    wire.PROV_NEXT_ATTEMPT: lambda p, f: (
        wire.PROV_REPLY_COUNT,
        {"value": p.next_attempt_number(f["username"])},
    ),
    wire.PROV_RESERVE_ATTEMPT: lambda p, f: (
        wire.PROV_REPLY_COUNT,
        {"value": p.reserve_attempt_number(f["username"])},
    ),
    wire.PROV_LOG_ATTEMPT: lambda p, f: (
        wire.PROV_REPLY_LOGGED,
        {
            "identifier": p.log_recovery_attempt(
                f["username"], f["attempt"], f["commitment"]
            )
        },
    ),
    wire.PROV_LOG_AND_PROVE: lambda p, f: (
        wire.PROV_REPLY_PROVEN,
        dict(
            zip(
                ("identifier", "proof"),
                p.log_and_prove(f["username"], f["attempt"], f["commitment"]),
            )
        ),
    ),
    wire.PROV_PROVE_INCLUSION: lambda p, f: (
        wire.PROV_REPLY_PROOF,
        {"proof": p.prove_inclusion(f["identifier"], f["value"])},
    ),
    wire.PROV_SHARE_PHASE_DONE: lambda p, f: (
        wire.PROV_REPLY_ACK,
        _ack(p.share_phase_done(f["username"], f["attempt"])),
    ),
    wire.PROV_STORE_REPLY: lambda p, f: (
        wire.PROV_REPLY_ACK,
        _ack(p.store_reply(f["username"], f["attempt"], f["reply"])),
    ),
    wire.PROV_FETCH_REPLIES: lambda p, f: (
        wire.PROV_REPLY_BLOBS,
        {"blobs": p.fetch_replies(f["username"], f["attempt"])},
    ),
    wire.PROV_LIST_ATTEMPTS: lambda p, f: (
        wire.PROV_REPLY_ENTRIES,
        {"entries": p.recovery_attempts_for(f["username"])},
    ),
}


def _ack(_unused) -> Dict:
    """Empty reply body for side-effect-only ops."""
    return {}


class WireProviderChannel(ProviderChannel):
    """Default transport: every provider call round-trips through bytes.

    ``transport`` is any ``bytes -> bytes`` callable (an endpoint's
    ``handle``, an in-memory loopback, or a fault-injecting test wrapper).
    Error frames re-raise as :class:`ProviderError` /
    :class:`~repro.service.batcher.ServiceTimeout`; a malformed reply
    raises :class:`~repro.core.wire.WireFormatError`.

    Traffic counters (``frames_sent`` / ``bytes_sent`` /
    ``bytes_received``) accumulate under a lock, so benchmarks can report
    the wire overhead of the provider leg; the channel itself is a
    stateless pass-through otherwise and safe to share across threads.
    """

    #: Lock contract, checked by `repro.lintkit`'s lock-discipline pass.
    _GUARDED_BY = {
        "frames_sent": "_counter_lock",
        "bytes_sent": "_counter_lock",
        "bytes_received": "_counter_lock",
    }

    def __init__(self, transport) -> None:
        if isinstance(transport, ProviderWireEndpoint):
            transport = transport.handle
        self._transport: Callable[[bytes], bytes] = transport
        self._counter_lock = threading.Lock()
        self.frames_sent = 0
        self.bytes_sent = 0
        self.bytes_received = 0

    def wire_stats(self) -> Dict[str, int]:
        """Snapshot of the traffic counters (frames and bytes both ways)."""
        with self._counter_lock:
            return {
                "frames_sent": self.frames_sent,
                "bytes_sent": self.bytes_sent,
                "bytes_received": self.bytes_received,
            }

    def _call(self, op: int, fields: Dict, expected_kind: int) -> Dict:
        request = wire.encode_provider_request(op, fields)
        reply_bytes = self._transport(request)
        with self._counter_lock:
            self.frames_sent += 1
            self.bytes_sent += len(request)
            self.bytes_received += len(reply_bytes)
        kind, reply = wire.decode_provider_reply(reply_bytes)
        if kind == wire.PROV_REPLY_ERROR:
            self._raise_error(reply["status"], reply["message"])
        if kind != expected_kind:
            raise wire.WireFormatError(
                f"unexpected reply kind {kind} to provider op {op}"
            )
        return reply

    @staticmethod
    def _raise_error(status: int, message: str) -> None:
        from repro.service.batcher import ServiceTimeout

        if status == wire.PROV_ERR_TIMEOUT:
            raise ServiceTimeout(message)
        raise ProviderError(message)

    def upload_backup(self, username: str, ciphertext) -> int:
        """Round-trip the upload through bytes; returns the stored index."""
        return self._call(
            wire.PROV_UPLOAD_BACKUP,
            {"username": username, "ciphertext": ciphertext},
            wire.PROV_REPLY_COUNT,
        )["value"]

    def fetch_backup(self, username: str, index: int = -1):
        """Fetch one recovery ciphertext as wire bytes and decode it."""
        return self._call(
            wire.PROV_FETCH_BACKUP,
            {"username": username, "index": index},
            wire.PROV_REPLY_BACKUP,
        )["ciphertext"]

    def backup_count(self, username: str) -> int:
        """Ask how many backups the provider holds for a user."""
        return self._call(
            wire.PROV_BACKUP_COUNT, {"username": username}, wire.PROV_REPLY_COUNT
        )["value"]

    def upload_incremental(self, username: str, blob: bytes) -> None:
        """Append one incremental blob over the wire."""
        self._call(
            wire.PROV_UPLOAD_INCREMENTAL,
            {"username": username, "blob": blob},
            wire.PROV_REPLY_ACK,
        )

    def fetch_incrementals(self, username: str) -> List[bytes]:
        """Fetch every incremental blob over the wire."""
        return self._call(
            wire.PROV_FETCH_INCREMENTALS,
            {"username": username},
            wire.PROV_REPLY_BLOBS,
        )["blobs"]

    def next_attempt_number(self, username: str) -> int:
        """Ask for the first unused attempt slot."""
        return self._call(
            wire.PROV_NEXT_ATTEMPT, {"username": username}, wire.PROV_REPLY_COUNT
        )["value"]

    def reserve_attempt_number(self, username: str) -> int:
        """Atomically reserve the next attempt slot over the wire."""
        return self._call(
            wire.PROV_RESERVE_ATTEMPT, {"username": username}, wire.PROV_REPLY_COUNT
        )["value"]

    def log_recovery_attempt(
        self, username: str, attempt: int, commitment: bytes
    ) -> bytes:
        """Queue a log insertion over the wire; returns its identifier."""
        return self._call(
            wire.PROV_LOG_ATTEMPT,
            {"username": username, "attempt": attempt, "commitment": commitment},
            wire.PROV_REPLY_LOGGED,
        )["identifier"]

    def log_and_prove(self, username: str, attempt: int, commitment: bytes):
        """Insert + wait for an epoch; decodes ``(identifier, proof)``."""
        reply = self._call(
            wire.PROV_LOG_AND_PROVE,
            {"username": username, "attempt": attempt, "commitment": commitment},
            wire.PROV_REPLY_PROVEN,
        )
        return reply["identifier"], reply["proof"]

    def prove_inclusion(self, identifier: bytes, value: bytes):
        """Fetch a fresh proof (or None) through the tagged proof envelope."""
        return self._call(
            wire.PROV_PROVE_INCLUSION,
            {"identifier": identifier, "value": value},
            wire.PROV_REPLY_PROOF,
        )["proof"]

    def share_phase_done(self, username: str, attempt: int) -> None:
        """Send the share-phase-done liveness hint as a frame."""
        self._call(
            wire.PROV_SHARE_PHASE_DONE,
            {"username": username, "attempt": attempt},
            wire.PROV_REPLY_ACK,
        )

    def store_reply(self, username: str, attempt: int, encrypted_reply: bytes) -> None:
        """Escrow one encrypted HSM reply over the wire."""
        self._call(
            wire.PROV_STORE_REPLY,
            {"username": username, "attempt": attempt, "reply": encrypted_reply},
            wire.PROV_REPLY_ACK,
        )

    def fetch_replies(self, username: str, attempt: int) -> List[bytes]:
        """Fetch the escrowed replies for one attempt over the wire."""
        return self._call(
            wire.PROV_FETCH_REPLIES,
            {"username": username, "attempt": attempt},
            wire.PROV_REPLY_BLOBS,
        )["blobs"]

    def recovery_attempts_for(self, username: str) -> List[Tuple[bytes, bytes]]:
        """Fetch the user's logged attempts as (identifier, value) pairs."""
        return self._call(
            wire.PROV_LIST_ATTEMPTS, {"username": username}, wire.PROV_REPLY_ENTRIES
        )["entries"]


def provider_channel(provider, transport: str = "wire") -> ProviderChannel:
    """Wrap a provider(-facade) in the channel flavor ``transport`` names.

    ``"wire"`` builds the byte-level loopback
    (:class:`WireProviderChannel` over a :class:`ProviderWireEndpoint`);
    ``"direct"`` builds the no-serialization reference path.
    """
    if transport == "wire":
        return WireProviderChannel(ProviderWireEndpoint(provider))
    if transport == "direct":
        return DirectProviderChannel(provider)
    raise ValueError(f"unknown transport {transport!r}")
