"""Per-HSM worker queues: one FIFO, one thread per device.

Real HSMs process one command at a time over a serial link; the discrete-
event capacity model (``repro.sim``) assumes exactly this — one M/M/1 queue
per device.  :class:`HsmWorkerPool` makes the concurrency model of the live
service match: every request to device *i* is enqueued on FIFO *i* and
executed by that device's single worker thread, so device state (Bloom-
filter punctures, log digests) is never touched by two requests at once no
matter how many client sessions are in flight.

Thread safety: the pool is the synchronization primitive — ``submit``/
``call`` may be invoked from any number of threads concurrently (they only
touch thread-safe queues), and everything a thunk does runs single-threaded
on its device's worker.  ``start``/``stop`` are idempotent but must not
race each other.  The epoch shard lanes reuse the same class: lane *k* is
"device" *k* of a second, smaller pool.
"""

from __future__ import annotations

import queue
import threading
from typing import Callable, List, Optional

from repro.hsm.device import HsmUnavailableError
from repro.service.channel import Channel, ChannelFactory


class _Job:
    __slots__ = ("thunk", "done", "result", "error")

    def __init__(self, thunk: Callable[[], object]) -> None:
        self.thunk = thunk
        self.done = threading.Event()
        self.result: object = None
        self.error: Optional[BaseException] = None


_STOP = object()


class HsmWorkerPool:
    """One FIFO queue and one worker thread per HSM index."""

    def __init__(self, num_devices: int, call_timeout: float = 60.0) -> None:
        if num_devices < 1:
            raise ValueError("worker pool needs at least one device")
        self._queues: List["queue.Queue"] = [queue.Queue() for _ in range(num_devices)]
        self._threads: List[threading.Thread] = []
        self._call_timeout = call_timeout
        self.jobs_processed = [0] * num_devices

    def __len__(self) -> int:
        return len(self._queues)

    @property
    def running(self) -> bool:
        """Whether the worker threads are live."""
        return bool(self._threads)

    def start(self) -> None:
        """Spawn one daemon worker per queue (idempotent)."""
        if self._threads:
            return
        for index in range(len(self._queues)):
            thread = threading.Thread(
                target=self._serve, args=(index,), name=f"hsm-worker-{index}", daemon=True
            )
            thread.start()
            self._threads.append(thread)

    def stop(self) -> None:
        """Drain and join the workers (safe to call twice or before start)."""
        # Not running: enqueuing sentinels here would poison the queues for
        # a later start(), whose fresh workers would consume them and exit.
        if not self._threads:
            return
        for q in self._queues:
            q.put(_STOP)
        for thread in self._threads:
            thread.join(timeout=self._call_timeout)
        self._threads = []

    def _serve(self, index: int) -> None:
        q = self._queues[index]
        while True:
            job = q.get()
            if job is _STOP:
                return
            try:
                job.result = job.thunk()
            except BaseException as exc:  # re-raised on the caller's thread
                job.error = exc
            finally:
                self.jobs_processed[index] += 1
                job.done.set()

    def submit(self, index: int, thunk: Callable[[], object]) -> _Job:
        """Enqueue ``thunk`` on worker ``index``'s FIFO without waiting.

        Returns the job handle; collect it with :meth:`result`.  This is
        the fan-out primitive the shard epoch lanes use: submit one job
        per lane, then join them all.
        """
        if not self._threads:
            raise RuntimeError("worker pool is not running (call start() first)")
        job = _Job(thunk)
        self._queues[index].put(job)
        return job

    def result(self, job: _Job, timeout: Optional[float] = None) -> object:
        """Wait for a submitted job; re-raises the thunk's exception."""
        if not job.done.wait(self._call_timeout if timeout is None else timeout):
            raise TimeoutError(
                f"job did not complete within {self._call_timeout if timeout is None else timeout}s"
            )
        if job.error is not None:
            raise job.error
        return job.result

    def call(self, index: int, thunk: Callable[[], object]) -> object:
        """Run ``thunk`` on device ``index``'s worker, in FIFO order."""
        job = self.submit(index, thunk)
        if not job.done.wait(self._call_timeout):
            raise TimeoutError(
                f"device {index} did not serve the request within {self._call_timeout}s"
            )
        if job.error is not None:
            raise job.error
        return job.result

    def queue_depth(self, index: int) -> int:
        """Jobs currently waiting on worker ``index``'s FIFO."""
        return self._queues[index].qsize()


class QueuedChannel(Channel):
    """A channel that routes through a device's FIFO worker queue."""

    def __init__(self, pool: HsmWorkerPool, index: int, inner: Channel) -> None:
        self._pool = pool
        self._index = index
        self._inner = inner

    def decrypt_share(self, request):
        """Run the inner channel's decrypt on the device's FIFO worker."""
        try:
            return self._pool.call(
                self._index, lambda: self._inner.decrypt_share(request)
            )
        except TimeoutError as exc:
            # A device whose queue backed up past the deadline is, to this
            # session, indistinguishable from a fail-stopped one: surface it
            # as the ⊥-share case so the rest of the cluster can still meet
            # the threshold.  (The queued job may still execute later and
            # puncture the share — the same loss as a reply dropped by the
            # network.)
            raise HsmUnavailableError(
                f"HSM {self._index} request timed out in its queue"
            ) from exc


def queued_channels(pool: HsmWorkerPool, inner: ChannelFactory) -> ChannelFactory:
    """Wrap a channel factory so every call queues on the device's FIFO."""

    def factory(index: int) -> Channel:
        return QueuedChannel(pool, index, inner(index))

    return factory
