"""The concurrent recovery service: many sessions, one epoch per tick.

``RecoveryService`` is the deployment's serving front end.  It owns

- a :class:`~repro.service.workers.HsmWorkerPool` — one FIFO worker per
  HSM, so device state is serialized per device while different devices
  serve different sessions in parallel;
- an :class:`~repro.service.batcher.EpochBatcher` — all sessions' log
  insertions ride one shared update epoch per tick instead of paying a
  full epoch each (the paper's every-~10-minutes batch);
- a ticker thread committing epochs at ``tick_interval`` (or manual
  ``tick()`` calls for deterministic tests).

Clients created through :meth:`new_client` are ordinary
:class:`~repro.core.client.Client` objects; they speak to the provider only
through a ``ProviderChannel`` (byte-framed provider RPC for the default
``"wire"`` transport) fronting a facade whose ``log_and_prove`` blocks on
the shared epoch, and their HSM channels run through the worker queues.  ``epoch_mode="per-request"`` keeps the
seed's one-epoch-per-recovery behaviour (serializing sessions, since an
epoch invalidates every other in-flight proof) — it exists so benchmarks
can measure exactly what batching buys.

Thread safety: the service is built to be hammered by many client threads
at once.  All shared mutable state lives behind the batcher's lock, the
provider's attempt-counter lock, the per-request slot condition, or a
per-device/per-lane FIFO; devices and shard lanes never see two
concurrent calls.  ``start``/``stop`` bracket the worker threads and are
the only methods that must be externally serialized.
"""

from __future__ import annotations

import threading
import time
from typing import List, Optional

from repro.core.client import Client
from repro.core.protocol import Deployment
from repro.core.provider import ProviderError, ServiceProvider
from repro.service.batcher import EpochBatcher
from repro.service.channel import (
    ChannelFactory,
    DirectProviderChannel,
    ProviderWireEndpoint,
    WireProviderChannel,
    direct_channels,
    wire_channels,
)
from repro.service.workers import HsmWorkerPool, queued_channels

#: Device methods of the Figure 5 epoch protocol that mutate or read
#: device state and therefore must serialize with decrypt-share traffic.
_EPOCH_METHODS = frozenset(
    (
        "audit_log_update",
        "audit_specific_chunks",
        "accept_log_digest",
        "accept_certified_transition",
        "accept_garbage_collection",
    )
)


class _FifoDevice:
    """Epoch-protocol view of one HSM that routes calls through its FIFO
    worker, so log updates obey the same per-device serialization as
    decrypt-share traffic — device state is never touched by two threads
    at once, which is the worker pool's whole invariant."""

    def __init__(self, pool: HsmWorkerPool, device) -> None:
        self._pool = pool
        self._device = device

    def __getattr__(self, name):
        attr = getattr(self._device, name)
        if name in _EPOCH_METHODS:
            return lambda *args, **kwargs: self._pool.call(
                self._device.index, lambda: attr(*args, **kwargs)
            )
        return attr


class BatchedProviderFacade:
    """What the service's provider endpoint dispatches into.

    Delegates to the real :class:`ServiceProvider`, with two changes:
    attempt numbers are *reserved* atomically (concurrent sessions for one
    user cannot collide) and ``log_and_prove`` waits for the shared epoch
    instead of running its own.  Clients never hold this object — they
    speak through a ``ProviderChannel`` (byte-framed for the default
    ``"wire"`` transport) that fronts it.
    """

    def __init__(self, service: "RecoveryService") -> None:
        self._service = service
        self._provider = service.provider

    def __getattr__(self, name):
        return getattr(self._provider, name)

    # -- attempt numbering ----------------------------------------------------
    def next_attempt_number(self, username: str) -> int:
        """Atomically *reserve* a slot (concurrent sessions never collide)."""
        return self._provider.reserve_attempt_number(username)

    # -- the log, via the shared epoch ----------------------------------------
    def log_and_prove(self, username: str, attempt: int, commitment: bytes):
        """Queue the insertion and block on the shared epoch's ticket."""
        service = self._service
        if service.epoch_mode == "per-request":
            service.acquire_session_slot(username, attempt)
            try:
                with service.batcher.lock:
                    identifier = self._provider.log_recovery_attempt(
                        username, attempt, commitment
                    )
                    service.run_epoch()
                    proof = self._provider.log.prove_includes(identifier, commitment)
                    if proof is None:  # pragma: no cover - insert guarantees it
                        raise ProviderError("inclusion proof unavailable after epoch")
                    return identifier, proof
            except BaseException:
                service.release_session_slot(username, attempt)
                raise
        ticket = service.batcher.submit(username, attempt, commitment)
        return ticket.wait(service.session_timeout)

    def prove_inclusion(self, identifier: bytes, value: bytes):
        """Fresh proof against the current digest (under the epoch lock)."""
        with self._service.batcher.lock:
            return self._provider.prove_inclusion(identifier, value)

    def share_phase_done(self, username: str, attempt: int) -> None:
        """Release the session's epoch lease (or per-request slot)."""
        if self._service.epoch_mode == "per-request":
            self._service.release_session_slot(username, attempt)
        else:
            self._service.batcher.release(username, attempt)


class RecoveryService:
    """Concurrent serving front end over one deployment."""

    def __init__(
        self,
        deployment: Deployment,
        transport: str = "wire",
        epoch_mode: str = "batched",
        tick_interval: float = 0.02,
        lease_timeout: float = 10.0,
        session_timeout: float = 60.0,
        call_timeout: float = 60.0,
    ) -> None:
        if transport not in ("wire", "direct"):
            raise ValueError(f"unknown transport {transport!r}")
        if epoch_mode not in ("batched", "per-request"):
            raise ValueError(f"unknown epoch mode {epoch_mode!r}")
        self.deployment = deployment
        self.provider: ServiceProvider = deployment.provider
        self.epoch_mode = epoch_mode
        self.session_timeout = session_timeout
        # Stashed so restart() can rebuild an identical service over the
        # restored deployment.
        self._ctor_options = dict(
            transport=transport,
            epoch_mode=epoch_mode,
            tick_interval=tick_interval,
            lease_timeout=lease_timeout,
            session_timeout=session_timeout,
            call_timeout=call_timeout,
        )
        self.pool = HsmWorkerPool(len(deployment.fleet), call_timeout=call_timeout)
        self._call_timeout = call_timeout
        self._epoch_fleet = [_FifoDevice(self.pool, hsm) for hsm in deployment.fleet]
        # One epoch lane per log shard: lane k is a FIFO worker that commits
        # shard k's epochs, so a tick fans out across lanes and joins
        # (unsharded logs keep the single caller-thread epoch path).
        self.shard_lanes = getattr(self.provider.log, "num_shards", 1)
        self._lane_pool: Optional[HsmWorkerPool] = (
            HsmWorkerPool(self.shard_lanes, call_timeout=call_timeout)
            if self.shard_lanes > 1
            else None
        )
        self.batcher = EpochBatcher(
            self.provider,
            lease_timeout=lease_timeout,
            run_epoch=self.run_epoch,
            shard_runner=self.run_shard_epochs if self._lane_pool else None,
        )
        inner = (wire_channels if transport == "wire" else direct_channels)(
            deployment.fleet
        )
        self._channels: ChannelFactory = queued_channels(self.pool, inner)
        self._facade = BatchedProviderFacade(self)
        # Clients reach the provider only through this channel: the default
        # "wire" transport frames every call (and every failure) through
        # the provider RPC encoding; "direct" is the reference path.
        if transport == "wire":
            self.provider_endpoint: Optional[ProviderWireEndpoint] = (
                ProviderWireEndpoint(self._facade)
            )
            self.provider_channel = WireProviderChannel(self.provider_endpoint)
        else:
            self.provider_endpoint = None
            self.provider_channel = DirectProviderChannel(self._facade)
        self._tick_interval = tick_interval
        self._ticker: Optional[threading.Thread] = None
        self._stop = threading.Event()
        # per-request mode: one session owns the log at a time (an epoch per
        # request invalidates every other in-flight proof, so overlap is
        # unsound — this slot is what batching removes).
        self._slot_cv = threading.Condition()
        self._slot_owner: Optional[tuple] = None
        self.slot_steals = 0
        self.clients: List[Client] = []

    # -- lifecycle -------------------------------------------------------------
    def start(self) -> "RecoveryService":
        """Start the worker pool, the shard lanes, and the epoch ticker."""
        self.pool.start()
        if self._lane_pool is not None:
            self._lane_pool.start()
        if self._ticker is None:
            self._stop.clear()
            self._ticker = threading.Thread(
                target=self._run_ticker, name="epoch-ticker", daemon=True
            )
            self._ticker.start()
        return self

    def stop(self) -> None:
        """Drain one final tick, then stop the ticker, lanes, and workers."""
        if self._ticker is not None:
            self._stop.set()
            self._ticker.join(timeout=self.session_timeout)
            self._ticker = None
        if self._lane_pool is not None:
            self._lane_pool.stop()
        self.pool.stop()

    def __enter__(self) -> "RecoveryService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def _run_ticker(self) -> None:
        while not self._stop.wait(self._tick_interval):
            self.batcher.tick()
        # Final drain so sessions submitted around shutdown still resolve.
        self.batcher.tick()

    def tick(self) -> int:
        """Commit one epoch now (manual mode for deterministic tests)."""
        return self.batcher.tick()

    def restart(self) -> "RecoveryService":
        """Crash-restart the provider process and return the revived service.

        Models the paper's provider-restart reality: this service's process
        state (pending batches, leases, attempt reservations) is lost, but
        the durable block store and the HSM fleet survive.  Stops the
        workers, rebuilds the deployment from its journal
        (:meth:`Deployment.restore` — WAL replay plus reconciliation of any
        epoch the crash left half-committed), and returns a *new* service
        over the restored deployment with the same construction options
        (not started; callers ``start()`` it or use it as a context
        manager).  Clients of the dead service are wired to its defunct
        queues — create fresh ones via :meth:`new_client` on the returned
        service.  Raises :class:`ProviderError` for non-durable deployments.
        """
        journal = getattr(self.provider, "journal", None)
        if journal is None:
            raise ProviderError(
                "restart requires a durable deployment"
                " (Deployment.create(..., store=...))"
            )
        self.stop()
        restored = Deployment.restore(
            self.deployment.params, journal.store, self.deployment.fleet
        )
        return RecoveryService(restored, **self._ctor_options)

    def run_epoch(self) -> None:
        """One log-update epoch with every device call routed through that
        device's FIFO worker (the pool must be running)."""
        self.provider.log.run_update(self._epoch_fleet)

    def run_shard_epochs(self, shards) -> dict:
        """Fan one epoch per listed shard out to the lane workers and join.

        Each lane commits its shard through ``ShardedLog.run_shard_update``
        with device calls still FIFO-serialized per HSM, so concurrent
        lanes interleave *across* devices but never within one.  Returns
        the per-shard outcome map the batcher uses to fail only the
        tickets of a rejected shard (that shard rolled itself back).
        """
        assert self._lane_pool is not None
        if not self._lane_pool.running:  # manual-tick tests drive epochs
            self._lane_pool.start()     # without start()ing the service
        log = self.provider.log
        jobs = {
            shard: self._lane_pool.submit(
                shard,
                lambda shard=shard: log.run_shard_update(shard, self._epoch_fleet),
            )
            for shard in shards
        }
        # A lane epoch is a bounded number of device calls, each of which the
        # device pool already times out after call_timeout — so a lane job
        # always terminates (commit or rollback).  Join with a bound safely
        # above any epoch's worst case: timing a lane out while it is still
        # running would report "rolled back" for an epoch that then commits,
        # silently burning the batch's attempt numbers.
        join_timeout = self._call_timeout * (4 + 3 * len(self.deployment.fleet))
        outcomes: dict = {}
        for shard, job in jobs.items():
            try:
                self._lane_pool.result(job, timeout=join_timeout)
                outcomes[shard] = None
            except BaseException as exc:  # per-lane isolation, not control flow
                outcomes[shard] = exc
        return outcomes

    # -- per-request mode session slot ----------------------------------------
    def acquire_session_slot(self, username: str, attempt: int) -> None:
        """Per-request mode: claim the one-session-at-a-time log slot."""
        deadline = time.monotonic() + self.session_timeout
        with self._slot_cv:
            while self._slot_owner is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    # The owner died between begin_recovery and its share
                    # phase: steal the slot so one crashed client cannot
                    # wedge the service (same philosophy as lease_timeout).
                    self.slot_steals += 1
                    break
                self._slot_cv.wait(remaining)
            self._slot_owner = (username, attempt)

    def release_session_slot(self, username: str, attempt: int) -> None:
        """Give the per-request slot back (idempotent; stale-safe)."""
        with self._slot_cv:
            # Owner check makes release idempotent and ignores a stale
            # release from a session whose slot was stolen.
            if self._slot_owner == (username, attempt):
                self._slot_owner = None
                self._slot_cv.notify()

    # -- clients ---------------------------------------------------------------
    def new_client(self, username: str) -> Client:
        """A client wired through the service: batched log, queued channels,
        provider calls framed through the provider RPC channel."""
        client = Client(
            username=username,
            params=self.deployment.params,
            provider=self.provider_channel,
            channels=self._channels,
            mpk=self.deployment.fleet.master_public_key(),
        )
        self.clients.append(client)
        # Registered with the deployment too, so mpk refreshes after key
        # rotation reach service clients as well.
        self.deployment.clients.append(client)
        return client

    # -- observability ---------------------------------------------------------
    def stats(self) -> dict:
        """Counters for benchmarks and tests (epochs, sessions, lanes...).

        Includes ``provider_wire`` (frames/bytes moved on the provider RPC
        leg) when the service runs the wire transport."""
        stats = {
            "epoch_mode": self.epoch_mode,
            "shard_lanes": self.shard_lanes,
            # Batcher counters, including the per-shard lease splits
            # (lease_timeouts_by_shard, outstanding_leases_by_shard).
            **self.batcher.stats(),
            "slot_steals": self.slot_steals,
            "jobs_per_device": list(self.pool.jobs_processed),
        }
        if isinstance(self.provider_channel, WireProviderChannel):
            stats["provider_wire"] = self.provider_channel.wire_stats()
        return stats
